#include "kop/trace/trace.hpp"

#include <algorithm>

namespace kop::trace {
namespace {

struct EventDesc {
  const char* name;
  const char* category;
  std::array<const char*, 4> args;
};

constexpr EventDesc kEvents[kEventCount] = {
    {"none", "none", {nullptr, nullptr, nullptr, nullptr}},
    {"guard.check", "guard", {"addr", "size", "flags", "site"}},
    {"guard.deny", "guard", {"addr", "size", "flags", "site"}},
    {"guard.intrinsic", "guard", {"intrinsic", "allowed", nullptr, "site"}},
    {"policy.lookup", "guard", {"scanned", "regions", nullptr, nullptr}},
    {"module.verify", "loader", {"ok", nullptr, nullptr, nullptr}},
    {"module.load", "loader", {"insts", "guards", nullptr, nullptr}},
    {"module.quarantine", "loader", {"addr", "size", "site", nullptr}},
    {"module.static_reject", "loader", {"errors", "insts", nullptr, nullptr}},
    {"module.rollback", "resilience", {"entries", "bytes", "reason", nullptr}},
    {"module.timeout", "resilience", {"steps", "budget", nullptr, nullptr}},
    {"module.restart", "resilience", {"attempt", "ok", nullptr, nullptr}},
    {"fault.injected", "fault", {"kind", "point", "detail", nullptr}},
    {"nic.desc_fetch", "nic", {"desc_addr", "head", nullptr, nullptr}},
    {"nic.xmit", "nic", {"bytes", "occupancy", nullptr, nullptr}},
    {"e1000e.xmit_frame", "nic", {"bytes", "slot", nullptr, nullptr}},
    {"kernel.panic", "kernel", {nullptr, nullptr, nullptr, nullptr}},
    {"dev.ioctl", "ioctl", {"cmd", nullptr, nullptr, nullptr}},
};

size_t Index(EventId id) {
  const size_t i = static_cast<size_t>(id);
  return i < kEventCount ? i : 0;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::string_view EventName(EventId id) { return kEvents[Index(id)].name; }

std::string_view EventCategory(EventId id) {
  return kEvents[Index(id)].category;
}

std::array<const char*, 4> EventArgNames(EventId id) {
  return kEvents[Index(id)].args;
}

TraceRing::TraceRing(size_t capacity)
    : slots_(RoundUpPow2(capacity)), mask_(slots_.size() - 1) {}

void TraceRing::Append(TraceRecord record) {
  const uint64_t seq = next_.fetch_add(1, std::memory_order_acq_rel);
  record.seq = seq;
  slots_[seq & mask_] = record;
}

std::vector<TraceRecord> TraceRing::Snapshot() const {
  const uint64_t total = next_.load(std::memory_order_acquire);
  const uint64_t retained = std::min<uint64_t>(total, slots_.size());
  std::vector<TraceRecord> out;
  out.reserve(retained);
  for (uint64_t seq = total - retained; seq < total; ++seq) {
    out.push_back(slots_[seq & mask_]);
  }
  return out;
}

void TraceRing::Clear() {
  next_.store(0, std::memory_order_release);
  std::fill(slots_.begin(), slots_.end(), TraceRecord{});
}

void Tracer::Record(EventId event, uint64_t a0, uint64_t a1, uint64_t a2,
                    uint64_t a3) {
  if (!enabled()) return;
  counts_[Index(event)].fetch_add(1, std::memory_order_relaxed);
  TraceRecord record;
  const sim::VirtualClock* clock = clock_.load(std::memory_order_acquire);
  record.tsc = clock != nullptr ? clock->ReadTsc() : 0;
  record.event = event;
  record.args[0] = a0;
  record.args[1] = a1;
  record.args[2] = a2;
  record.args[3] = a3;
  ring_.Append(record);
}

void Tracer::Reset() {
  ring_.Clear();
  for (auto& count : counts_) count.store(0, std::memory_order_relaxed);
}

Tracer& GlobalTracer() {
  static Tracer tracer;
  return tracer;
}

}  // namespace kop::trace
