// kop::trace spans — nested RAII latency scopes over the virtual clock,
// the flight-recorder half of the observability stack. A `KOP_SPAN`
// scope stamps its begin/end on the per-CPU virtual clock and records a
// fixed-size SpanEvent into an always-on per-CPU last-N ring (the
// "flight recorder": it survives containment, so the moments before a
// quarantine are always available to a postmortem bundle). Every span
// also feeds a per-CPU per-kind Log2Histogram, folded exactly on read
// for interpolated p50/p90/p99/p999 queries. Like tracepoints, spans
// never charge simulated cycles, and the whole layer compiles out when
// the build sets KOP_SPANS_ENABLED=0.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kop/smp/cpu.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/util/spinlock.hpp"

namespace kop::trace {

/// The instrumented seams of a contained module call, outermost first.
/// Keep kSpanKinds in span.cpp in sync when adding one.
enum class SpanKind : uint8_t {
  kModuleCall = 0,   // LoadedModule::Call, end to end
  kEngineDispatch,   // the engine executing module code
  kGuardDecision,    // one policy guard check
  kJournalCommit,    // committing the call's write journal
  kJournalRollback,  // undoing the journal after containment
  kRecovery,         // containment + recovery (quarantine/restart)
  kNapiPoll,         // one NAPI poll iteration on a TX/RX queue pair
  kXmitBatch,        // staging a descriptor batch behind one doorbell
  kSpanKindCount,
};

inline constexpr size_t kSpanKindCount =
    static_cast<size_t>(SpanKind::kSpanKindCount);

/// Stable wire name, e.g. "span.guard_decision".
std::string_view SpanKindName(SpanKind kind);

/// One completed span. `begin_tsc`/`end_tsc` are virtual cycles on the
/// recording CPU's clock; `depth` is the span-nesting depth at begin
/// (module call = 0); `seq` is the global completion ordinal.
struct SpanEvent {
  uint64_t begin_tsc = 0;
  uint64_t end_tsc = 0;
  uint64_t seq = 0;
  uint64_t arg = 0;
  SpanKind kind = SpanKind::kModuleCall;
  uint16_t cpu = 0;
  uint16_t depth = 0;
  uint64_t duration() const {
    return end_tsc >= begin_tsc ? end_tsc - begin_tsc : 0;
  }
};

/// Folded (all-CPU) latency summary for one span kind.
struct SpanStats {
  uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// Per-CPU span rings plus per-CPU per-kind duration histograms. The
/// write path touches only the recording CPU's cache-line-padded slot
/// (one spinlock that is never contended when CPUs stay on their own
/// ring); all cross-CPU folding happens on the read side.
class SpanRecorder {
 public:
  /// `per_cpu_capacity` rounded up to a power of two (min 64).
  explicit SpanRecorder(size_t per_cpu_capacity = 256);
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Open a span on the current CPU: bumps the nesting depth and returns
  /// the begin timestamp (virtual cycles; 0 with no clock registered).
  uint64_t BeginSpan();

  /// Close a span opened by BeginSpan on the same CPU.
  void EndSpan(SpanKind kind, uint64_t begin_tsc, uint64_t arg);

  /// All retained spans merged across CPUs, ordered by (begin_tsc, seq).
  std::vector<SpanEvent> Snapshot() const;

  /// The newest `n` spans recorded on `cpu`, oldest first — the flight-
  /// recorder tail a postmortem bundle embeds.
  std::vector<SpanEvent> Tail(uint32_t cpu, size_t n) const;

  /// Fold the per-CPU histograms for `kind` and compute interpolated
  /// percentiles — exact on read, nothing precomputed on the write path.
  SpanStats Stats(SpanKind kind) const;

  /// Lifetime spans recorded on `cpu` for `kind` (0 = all kinds).
  uint64_t CpuCount(uint32_t cpu, SpanKind kind) const;

  uint64_t total_recorded() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  /// Human-readable per-kind latency table.
  std::string RenderText() const;

  /// Prometheus text exposition of the folded span histograms.
  std::string RenderPrometheus() const;

  /// Drop retained spans, histograms, and depth state (enable kept).
  void Reset();

 private:
  struct alignas(64) Cpu {
    mutable Spinlock lock;
    std::vector<SpanEvent> slots;
    uint64_t count = 0;  // spans recorded on this CPU, ever
    uint16_t depth = 0;  // currently open spans (write path only)
    std::array<Log2Histogram, kSpanKindCount> hist;
  };

  Cpu& Mine();

  size_t per_cpu_capacity_;
  uint64_t mask_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_seq_{0};
  std::array<std::unique_ptr<Cpu>, smp::kMaxCpus> cpus_;
};

/// The recorder every KOP_SPAN scope records into.
SpanRecorder& GlobalSpans();

/// The RAII scope behind KOP_SPAN. Reads the enable flag once at entry;
/// a disabled recorder costs one relaxed load and a branch.
class SpanScope {
 public:
  explicit SpanScope(SpanKind kind, uint64_t arg = 0)
      : kind_(kind), arg_(arg), active_(GlobalSpans().enabled()) {
    if (active_) begin_ = GlobalSpans().BeginSpan();
  }
  ~SpanScope() {
    if (active_) GlobalSpans().EndSpan(kind_, begin_, arg_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  SpanKind kind_;
  uint64_t arg_;
  uint64_t begin_ = 0;
  bool active_;
};

}  // namespace kop::trace

// Compile-time switch, mirroring KOP_TRACE_ENABLED: the build defines
// KOP_SPANS_ENABLED globally (CMake option, default ON); with it off
// every KOP_SPAN site compiles to nothing — no object, no destructor,
// no argument evaluation.
#ifndef KOP_SPANS_ENABLED
#define KOP_SPANS_ENABLED 1
#endif

#if KOP_SPANS_ENABLED
#define KOP_SPAN_CONCAT_INNER(a, b) a##b
#define KOP_SPAN_CONCAT(a, b) KOP_SPAN_CONCAT_INNER(a, b)
#define KOP_SPAN(kind, ...)                                 \
  ::kop::trace::SpanScope KOP_SPAN_CONCAT(kop_span_scope_,  \
                                          __LINE__)(        \
      ::kop::trace::SpanKind::kind __VA_OPT__(, ) __VA_ARGS__)
#else
#define KOP_SPAN(kind, ...) ((void)0)
#endif
