// Trace exporters: Chrome trace-event JSON (loadable straight into
// Perfetto / chrome://tracing) and a flat CSV, both over the fixed-size
// records the tracepoints produce.
#pragma once

#include <string>
#include <vector>

#include "kop/trace/span.hpp"
#include "kop/trace/trace.hpp"

namespace kop::trace {

struct ChromeTraceOptions {
  /// Virtual cycles per microsecond used for the `ts` field (default:
  /// the R350 testbed's 2.8 GHz).
  double cycles_per_us = 2800.0;
  const char* process_name = "carat-kop-sim";
};

/// Records as Chrome trace-event JSON: one instant event per record,
/// categorized by subsystem, args named per event, with `tid` carrying
/// the simulated CPU the tracepoint fired on. Timestamps are
/// virtual-cycle counts scaled to microseconds; addresses render as hex
/// strings so 64-bit values survive JSON number precision. Pass the
/// TraceRing::Snapshot() output for a timestamp-merged SMP timeline.
std::string ExportChromeTrace(const std::vector<TraceRecord>& records,
                              const ChromeTraceOptions& options = {});

/// Records plus completed spans: spans export as real-duration "X"
/// events (`ts` = begin, `dur` = end - begin) on their CPU's `tid` row,
/// so Perfetto draws the nested module-call → engine → guard scopes.
std::string ExportChromeTrace(const std::vector<TraceRecord>& records,
                              const std::vector<SpanEvent>& spans,
                              const ChromeTraceOptions& options = {});

/// Convenience: snapshot the tracer's ring and export it.
std::string ExportChromeTrace(const Tracer& tracer,
                              const ChromeTraceOptions& options = {});

/// "seq,tsc,event,category,arg0..arg3" rows.
std::string ExportTraceCsv(const std::vector<TraceRecord>& records);

}  // namespace kop::trace
