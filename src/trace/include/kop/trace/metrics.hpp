// The metrics registry: named counters, gauges (with high-watermark),
// and log2-bucket histograms that subsystems register into by name —
// guard latency, policy lookup depth, printk-ring occupancy, TX-ring
// occupancy. Get-or-create semantics: the first caller of a name mints
// the metric, later callers share it, so subsystems need no coordination
// and a torn-down kernel's successor keeps accumulating into the same
// process-wide series (exactly how /proc counters behave across
// module reload).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kop/util/spinlock.hpp"

namespace kop::trace {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A sampled level (ring occupancy, table size). Tracks the most recent
/// value and the high watermark since reset.
class Gauge {
 public:
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Power-of-two bucket histogram: bucket 0 holds values < 1, bucket k
/// holds [2^(k-1), 2^k). 64 buckets cover the full uint64 range, so a
/// cycle-latency histogram never saturates.
class Log2Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Observe(double value);

  /// Every observation lands in exactly one bucket, so the count is the
  /// bucket sum — read-side work that keeps Observe down to one counter
  /// bump plus the sum accumulation.
  uint64_t count() const {
    uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Lower edge of bucket i (0 for bucket 0, else 2^(i-1)).
  static double BucketLo(size_t i);

  /// Interpolated quantile, p in [0, 100]. Walks cumulative bucket
  /// counts to the bucket holding rank p/100·n, then interpolates
  /// linearly inside it (HDR-histogram style): with c observations in a
  /// bucket [lo, hi) and k of the target rank falling inside it, the
  /// estimate is lo + k/c·(hi-lo). Returns 0 on an empty histogram.
  double Percentile(double p) const;

  /// The same interpolation over an externally folded bucket array —
  /// used to fold per-CPU histograms exactly on read before querying.
  static double PercentileFromBuckets(
      const std::array<uint64_t, kBuckets>& buckets, double p);

  size_t NonZeroBuckets() const;
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric flattened for export: counters carry `value`; gauges
/// `value` and `max`; histograms `count`, `sum`, and the bucket vector.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t value = 0;
  int64_t gauge_value = 0;
  int64_t gauge_max = 0;
  uint64_t count = 0;
  double sum = 0.0;
  std::vector<uint64_t> buckets;  // histograms only; trailing zeros trimmed
};

class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Log2Histogram* GetHistogram(const std::string& name);

  /// All metrics, sorted by name.
  std::vector<MetricSample> Snapshot() const;

  /// "name,kind,field,value" rows — the bench snapshot format.
  std::string RenderCsv() const;

  /// Human-readable table for proc-style dumps.
  std::string RenderText() const;

  /// Prometheus text exposition format (v0.0.4): counters and gauges as
  /// plain samples, histograms as cumulative `le` buckets plus `_sum`,
  /// `_count`, and interpolated p50/p99 quantile samples. Metric names
  /// have dots rewritten to underscores.
  std::string RenderPrometheus() const;

  /// Zero every registered metric (registrations survive).
  void Reset();

 private:
  mutable Spinlock lock_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Log2Histogram>> histograms_;
};

/// The registry every subsystem registers into.
MetricsRegistry& GlobalMetrics();

}  // namespace kop::trace
