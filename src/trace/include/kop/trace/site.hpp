// Guard-site attribution — the kernel-module analogue of `perf
// annotate`. Every injected guard call has a stable module-local site id
// (its position in the module's IR); at insmod the loader registers each
// site here and gets back a process-unique token. The interpreter's
// resolver pins the current token around each guard call (the simulated
// "return address" the guard runtime samples), and the policy engine
// charges hits/denials to it — so an operator can see *which* load or
// store in a module is hot or violating.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kop/util/spinlock.hpp"

namespace kop::trace {

/// Token 0 = guard fired with no site context (e.g. a direct probe).
inline constexpr uint64_t kUnknownSite = 0;

struct SiteInfo {
  uint64_t token = kUnknownSite;  // assigned by Register
  std::string module_name;        // module or subsystem, e.g. "scribbler"
  std::string function;           // "@fn" for IR sites, a category for
                                  // natively-built modules
  uint32_t site_id = 0;           // module-local guard ordinal
  uint32_t inst_index = 0;        // guard call's instruction index in fn
  std::string detail;             // e.g. "store size=8"

  /// "module:@fn+inst_index" — how proc views and exporters name a site.
  std::string Label() const;
};

/// Process-wide site directory. Registration is append-only: tokens stay
/// valid for the life of the process, like kallsyms entries.
class SiteRegistry {
 public:
  /// Assigns and returns the token (sequential from 1).
  uint64_t Register(SiteInfo info);

  std::optional<SiteInfo> Find(uint64_t token) const;

  /// Label for any token; "<unattributed>" for kUnknownSite, a numeric
  /// fallback for unknown tokens.
  std::string Label(uint64_t token) const;

  size_t size() const;

 private:
  mutable Spinlock lock_;
  std::vector<SiteInfo> sites_;
};

SiteRegistry& GlobalSites();

/// The guard-site context for the (single) simulated CPU.
uint64_t CurrentGuardSite();

/// RAII pin of the current guard site around a call into the guard.
class ScopedGuardSite {
 public:
  explicit ScopedGuardSite(uint64_t token);
  ~ScopedGuardSite();
  ScopedGuardSite(const ScopedGuardSite&) = delete;
  ScopedGuardSite& operator=(const ScopedGuardSite&) = delete;

 private:
  uint64_t prev_;
};

}  // namespace kop::trace
