// kop::trace — the ftrace analogue for the simulated kernel. Static
// tracepoints (`KOP_TRACE(event, args...)`) record fixed-size records
// (virtual-cycle timestamp, event id, up to four integer args) into a
// lock-free fixed ring. Tracepoints compile out entirely when the build
// sets KOP_TRACE_ENABLED=0, so the hot seams (guards, descriptor
// fetches, ioctls) carry zero code when observability is off. All
// timestamps come from the virtual clock — instrumentation never charges
// simulated cycles, so enabling tracing cannot perturb an experiment.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "kop/sim/clock.hpp"
#include "kop/smp/cpu.hpp"
#include "kop/util/spinlock.hpp"

namespace kop::trace {

/// Every static tracepoint in the tree. Keep EventName/EventCategory/
/// EventArgNames in trace.cpp in sync when adding one.
enum class EventId : uint16_t {
  kNone = 0,
  // Guard runtime (policy engine).
  kGuardCheck,        // addr, size, access_flags, site token
  kGuardDeny,         // addr, size, access_flags, site token
  kIntrinsicCheck,    // intrinsic id, allowed, 0, site token
  kPolicyLookup,      // entries scanned, table size
  // Module lifecycle (loader + validator).
  kModuleVerify,      // ok (1/0)
  kModuleLoad,        // instructions, guard count
  kModuleQuarantine,  // violating addr, size, site token
  kModuleStaticReject,  // error count, instruction count
  // Resilience (transactional module calls + recovery).
  kModuleRollback,    // journal entries undone, bytes restored, reason
  kModuleTimeout,     // steps at expiry, per-call step budget
  kModuleRestart,     // attempt number, ok (1/0)
  kFaultInjected,     // injector kind, injection point, detail
  // NIC hardware (DMA engine) and driver transmit path.
  kNicDescFetch,      // descriptor addr, head index
  kNicXmit,           // frame bytes, ring occupancy after
  kXmitFrame,         // frame bytes, descriptor slot
  // Kernel core.
  kPanic,             // 0
  kIoctl,             // cmd, device ordinal
  // Flight recorder (kop::flight).
  kPostmortemCapture,  // reason ordinal, incident count, cpu
  kEventCount,
};

inline constexpr size_t kEventCount =
    static_cast<size_t>(EventId::kEventCount);

/// Stable wire name, e.g. "guard.check".
std::string_view EventName(EventId id);

/// Subsystem bucket, e.g. "guard", "loader", "nic", "kernel".
std::string_view EventCategory(EventId id);

/// Display names of the four args (nullptr-terminated early when fewer).
std::array<const char*, 4> EventArgNames(EventId id);

/// One tracepoint firing. Fixed size; `seq` is the global firing ordinal
/// (monotonic even after the ring wraps); `cpu` is the simulated CPU the
/// tracepoint fired on (thread id in Chrome-trace exports).
struct TraceRecord {
  uint64_t tsc = 0;   // virtual cycles at firing time
  uint64_t seq = 0;
  EventId event = EventId::kNone;
  uint16_t cpu = 0;
  uint32_t pad32 = 0;
  uint64_t args[4] = {0, 0, 0, 0};
};

/// Sharded fixed ring of TraceRecords, ftrace's per-cpu ring buffers.
/// Each shard holds `capacity` slots behind its own spinlock; a writer
/// takes one global fetch_add for its seq, then appends to the shard for
/// its simulated CPU — shards never contend when CPUs stay on their own.
/// The newest `capacity` records per shard survive, oldest are
/// overwritten (ftrace overwrite mode). The default single shard makes
/// single-threaded runs record the exact slot/seq sequence the unsharded
/// ring did.
class TraceRing {
 public:
  /// `capacity` (per shard) is rounded up to a power of two (min 64).
  explicit TraceRing(size_t capacity = 1 << 14);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Reshape to `shards` shards (clamped to [1, smp::kMaxCpus]) and
  /// clear. NOT safe against concurrent Append — call at topology-setup
  /// time, before workers start.
  void SetShards(uint32_t shards);
  uint32_t shards() const { return static_cast<uint32_t>(shards_.size()); }

  void Append(TraceRecord record);

  /// Total retained slots across shards.
  size_t capacity() const { return per_shard_capacity_ * shards_.size(); }
  /// Total records ever appended (including overwritten ones).
  uint64_t total_appended() const {
    return next_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const;

  /// Retained records merged across shards into one stream ordered by
  /// virtual-clock timestamp (seq breaks ties), so an SMP run exports a
  /// monotonic timeline instead of shard-concatenation order. Per-CPU
  /// virtual clocks are monotone, so within a shard this degenerates to
  /// the append (seq) order the single-CPU ring always had.
  std::vector<TraceRecord> Snapshot() const;

  /// Not safe against concurrent Append; fine for the simulator.
  void Clear();

 private:
  struct alignas(64) Shard {
    mutable Spinlock lock;
    std::vector<TraceRecord> slots;
    uint64_t count = 0;  // appends into this shard, ever
  };

  Shard& MyShard();

  size_t per_shard_capacity_;
  uint64_t mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> next_{0};
};

/// The process-wide tracer: the ring, an enable switch, per-event
/// counters, and the virtual clock used for timestamps. The Kernel
/// registers its clock at construction; with no clock registered,
/// records carry tsc 0.
class Tracer {
 public:
  Tracer() = default;

  void SetClock(const sim::VirtualClock* clock) {
    clock_.store(clock, std::memory_order_release);
  }
  const sim::VirtualClock* clock() const {
    return clock_.load(std::memory_order_acquire);
  }

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// The tracepoint body. Cheap no-op when runtime-disabled; not emitted
  /// at all when compile-time disabled (see KOP_TRACE below).
  void Record(EventId event, uint64_t a0 = 0, uint64_t a1 = 0,
              uint64_t a2 = 0, uint64_t a3 = 0);

  TraceRing& ring() { return ring_; }
  const TraceRing& ring() const { return ring_; }

  /// Lifetime firings per event id (index by EventId value).
  uint64_t event_count(EventId id) const {
    return counts_[static_cast<size_t>(id)].load(std::memory_order_relaxed);
  }

  /// Clear the ring and per-event counters (clock and enable kept).
  void Reset();

 private:
  std::atomic<bool> enabled_{true};
  std::atomic<const sim::VirtualClock*> clock_{nullptr};
  TraceRing ring_;
  std::array<std::atomic<uint64_t>, kEventCount> counts_{};
};

/// The tracer every KOP_TRACE site records into.
Tracer& GlobalTracer();

}  // namespace kop::trace

// Compile-time switch. The build defines KOP_TRACE_ENABLED globally
// (CMake option, default ON); with it off every KOP_TRACE site compiles
// to nothing — no load, no branch, no argument evaluation.
#ifndef KOP_TRACE_ENABLED
#define KOP_TRACE_ENABLED 1
#endif

#if KOP_TRACE_ENABLED
#define KOP_TRACE(event, ...)                       \
  ::kop::trace::GlobalTracer().Record(              \
      ::kop::trace::EventId::event __VA_OPT__(, ) __VA_ARGS__)
#else
#define KOP_TRACE(event, ...) ((void)0)
#endif
