#include "kop/trace/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <mutex>

namespace kop::trace {

void Log2Histogram::Observe(double value) {
  // Bucket edges are powers of two, so for v in [1, 2^62) the bucket is
  // bit_width(floor(v)) — no libm on the guard hot path. Anything at or
  // above 2^62 lands in the clamp bucket either way.
  size_t bucket = 0;
  if (value >= 1.0) {
    bucket = value >= 0x1p62
                 ? kBuckets - 1
                 : static_cast<size_t>(
                       std::bit_width(static_cast<uint64_t>(value)));
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20; relaxed is fine, the sum is a
  // statistic, not a synchronization point.
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Log2Histogram::BucketLo(size_t i) {
  return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
}

double Log2Histogram::Percentile(double p) const {
  std::array<uint64_t, kBuckets> snapshot;
  for (size_t i = 0; i < kBuckets; ++i) snapshot[i] = bucket(i);
  return PercentileFromBuckets(snapshot, p);
}

double Log2Histogram::PercentileFromBuckets(
    const std::array<uint64_t, kBuckets>& buckets, double p) {
  uint64_t n = 0;
  for (uint64_t b : buckets) n += b;
  if (n == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  const double target = p / 100.0 * static_cast<double>(n);
  double cumulative = 0.0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double next = cumulative + static_cast<double>(buckets[i]);
    if (target <= next) {
      const double lo = BucketLo(i);
      const double hi = BucketLo(i + 1);
      const double within = (target - cumulative) / static_cast<double>(buckets[i]);
      return lo + within * (hi - lo);
    }
    cumulative = next;
  }
  // p == 100 with rounding slop: the upper edge of the last nonzero bucket.
  for (size_t i = kBuckets; i > 0; --i) {
    if (buckets[i - 1] != 0) return BucketLo(i);
  }
  return 0.0;
}

size_t Log2Histogram::NonZeroBuckets() const {
  size_t n = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (bucket(i) != 0) ++n;
  }
  return n;
}

void Log2Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

namespace {

/// Percentile over a MetricSample's (trimmed) bucket vector.
double SamplePercentile(const MetricSample& sample, double p) {
  std::array<uint64_t, Log2Histogram::kBuckets> buckets{};
  for (size_t i = 0; i < sample.buckets.size() && i < buckets.size(); ++i) {
    buckets[i] = sample.buckets[i];
  }
  return Log2Histogram::PercentileFromBuckets(buckets, p);
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map
/// dots (and any other byte) to underscores.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<Spinlock> guard(lock_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<Spinlock> guard(lock_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Log2Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<Spinlock> guard(lock_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Log2Histogram>();
  return slot.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<Spinlock> guard(lock_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricKind::kCounter;
    sample.value = counter->value();
    out.push_back(std::move(sample));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricKind::kGauge;
    sample.gauge_value = gauge->value();
    sample.gauge_max = gauge->max();
    out.push_back(std::move(sample));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricKind::kHistogram;
    sample.count = histogram->count();
    sample.sum = histogram->sum();
    size_t last = 0;
    for (size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
      if (histogram->bucket(i) != 0) last = i + 1;
    }
    sample.buckets.reserve(last);
    for (size_t i = 0; i < last; ++i) {
      sample.buckets.push_back(histogram->bucket(i));
    }
    out.push_back(std::move(sample));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::RenderCsv() const {
  std::string out = "metric,kind,field,value\n";
  char line[192];
  for (const MetricSample& sample : Snapshot()) {
    switch (sample.kind) {
      case MetricKind::kCounter:
        std::snprintf(line, sizeof(line), "%s,counter,value,%llu\n",
                      sample.name.c_str(),
                      static_cast<unsigned long long>(sample.value));
        out += line;
        break;
      case MetricKind::kGauge:
        std::snprintf(line, sizeof(line), "%s,gauge,value,%lld\n",
                      sample.name.c_str(),
                      static_cast<long long>(sample.gauge_value));
        out += line;
        std::snprintf(line, sizeof(line), "%s,gauge,max,%lld\n",
                      sample.name.c_str(),
                      static_cast<long long>(sample.gauge_max));
        out += line;
        break;
      case MetricKind::kHistogram:
        std::snprintf(line, sizeof(line), "%s,histogram,count,%llu\n",
                      sample.name.c_str(),
                      static_cast<unsigned long long>(sample.count));
        out += line;
        std::snprintf(line, sizeof(line), "%s,histogram,sum,%.6g\n",
                      sample.name.c_str(), sample.sum);
        out += line;
        std::snprintf(line, sizeof(line), "%s,histogram,p50,%.6g\n",
                      sample.name.c_str(), SamplePercentile(sample, 50.0));
        out += line;
        std::snprintf(line, sizeof(line), "%s,histogram,p99,%.6g\n",
                      sample.name.c_str(), SamplePercentile(sample, 99.0));
        out += line;
        for (size_t i = 0; i < sample.buckets.size(); ++i) {
          if (sample.buckets[i] == 0) continue;
          std::snprintf(line, sizeof(line), "%s,histogram,le_%.0f,%llu\n",
                        sample.name.c_str(), Log2Histogram::BucketLo(i + 1),
                        static_cast<unsigned long long>(sample.buckets[i]));
          out += line;
        }
        break;
    }
  }
  return out;
}

std::string MetricsRegistry::RenderText() const {
  std::string out;
  char line[192];
  for (const MetricSample& sample : Snapshot()) {
    switch (sample.kind) {
      case MetricKind::kCounter:
        std::snprintf(line, sizeof(line), "%-40s %llu\n", sample.name.c_str(),
                      static_cast<unsigned long long>(sample.value));
        out += line;
        break;
      case MetricKind::kGauge:
        std::snprintf(line, sizeof(line), "%-40s %lld (max %lld)\n",
                      sample.name.c_str(),
                      static_cast<long long>(sample.gauge_value),
                      static_cast<long long>(sample.gauge_max));
        out += line;
        break;
      case MetricKind::kHistogram: {
        std::snprintf(line, sizeof(line),
                      "%-40s n=%llu mean=%.3g p50=%.3g p99=%.3g\n",
                      sample.name.c_str(),
                      static_cast<unsigned long long>(sample.count),
                      sample.count == 0
                          ? 0.0
                          : sample.sum / static_cast<double>(sample.count),
                      SamplePercentile(sample, 50.0),
                      SamplePercentile(sample, 99.0));
        out += line;
        for (size_t i = 0; i < sample.buckets.size(); ++i) {
          if (sample.buckets[i] == 0) continue;
          std::snprintf(line, sizeof(line), "  [%11.4g, %11.4g) %llu\n",
                        Log2Histogram::BucketLo(i),
                        Log2Histogram::BucketLo(i + 1),
                        static_cast<unsigned long long>(sample.buckets[i]));
          out += line;
        }
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::string out;
  char line[256];
  for (const MetricSample& sample : Snapshot()) {
    const std::string name = PromName(sample.name);
    switch (sample.kind) {
      case MetricKind::kCounter:
        std::snprintf(line, sizeof(line), "# TYPE %s counter\n%s %llu\n",
                      name.c_str(), name.c_str(),
                      static_cast<unsigned long long>(sample.value));
        out += line;
        break;
      case MetricKind::kGauge:
        std::snprintf(line, sizeof(line),
                      "# TYPE %s gauge\n%s %lld\n%s_max %lld\n", name.c_str(),
                      name.c_str(), static_cast<long long>(sample.gauge_value),
                      name.c_str(), static_cast<long long>(sample.gauge_max));
        out += line;
        break;
      case MetricKind::kHistogram: {
        std::snprintf(line, sizeof(line), "# TYPE %s histogram\n",
                      name.c_str());
        out += line;
        // Prometheus buckets are cumulative and labelled by upper edge.
        unsigned long long cumulative = 0;
        for (size_t i = 0; i < sample.buckets.size(); ++i) {
          cumulative += sample.buckets[i];
          if (sample.buckets[i] == 0) continue;
          std::snprintf(line, sizeof(line), "%s_bucket{le=\"%.0f\"} %llu\n",
                        name.c_str(), Log2Histogram::BucketLo(i + 1),
                        cumulative);
          out += line;
        }
        std::snprintf(line, sizeof(line),
                      "%s_bucket{le=\"+Inf\"} %llu\n%s_sum %.6g\n%s_count "
                      "%llu\n",
                      name.c_str(),
                      static_cast<unsigned long long>(sample.count),
                      name.c_str(), sample.sum, name.c_str(),
                      static_cast<unsigned long long>(sample.count));
        out += line;
        std::snprintf(line, sizeof(line),
                      "%s{quantile=\"0.5\"} %.6g\n%s{quantile=\"0.99\"} "
                      "%.6g\n",
                      name.c_str(), SamplePercentile(sample, 50.0),
                      name.c_str(), SamplePercentile(sample, 99.0));
        out += line;
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<Spinlock> guard(lock_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace kop::trace
