// Load-time validation (kernel side). insmod accepts a module only when:
//   1. the container parses,
//   2. the signature verifies against the kernel keyring,
//   3. the attestation record matches the module it accompanies,
//   4. the IR parses and verifies, and
//   5. the attested properties hold when re-checked independently:
//      no inline assembly, and every load/store guard-preceded (unless
//      the attestation declares optimized guards — then the compiler's
//      certification is what the signature vouches for, as in the paper).
#pragma once

#include <memory>

#include "kop/kir/module.hpp"
#include "kop/signing/signer.hpp"
#include "kop/transform/attestation.hpp"
#include "kop/util/status.hpp"

namespace kop::signing {

struct ValidatedModule {
  std::unique_ptr<kir::Module> module;
  transform::AttestationRecord attestation;
};

/// Run the full insmod-time validation pipeline.
Result<ValidatedModule> ValidateSignedModule(const SignedModule& signed_module,
                                             const Keyring& keyring);

}  // namespace kop::signing
