// Load-time validation (kernel side). insmod accepts a module only when:
//   1. the container parses,
//   2. the signature verifies against the kernel keyring,
//   3. the attestation record matches the module it accompanies,
//   4. the IR parses and verifies, and
//   5. the attested properties hold when re-checked independently:
//      no inline assembly, and every load/store guard-preceded (unless
//      the attestation declares optimized guards — then the compiler's
//      certification is what the signature vouches for, as in the paper).
#pragma once

#include <memory>

#include "kop/kir/module.hpp"
#include "kop/signing/signer.hpp"
#include "kop/transform/attestation.hpp"
#include "kop/util/status.hpp"

namespace kop::signing {

struct ValidatedModule {
  std::unique_ptr<kir::Module> module;
  transform::AttestationRecord attestation;
};

struct ValidationOptions {
  /// When true (the default, step 5 above) the validator trusts the
  /// attestation's guard claims: guards_complete must be asserted, and
  /// the adjacency re-check is skipped for optimized modules. A loader
  /// that proves guard completeness itself (KOP_VERIFY=static) turns
  /// this off — the signature then vouches only for image integrity,
  /// not for guard placement.
  bool check_attested_guards = true;
};

/// Run the full insmod-time validation pipeline.
Result<ValidatedModule> ValidateSignedModule(const SignedModule& signed_module,
                                             const Keyring& keyring);
Result<ValidatedModule> ValidateSignedModule(const SignedModule& signed_module,
                                             const Keyring& keyring,
                                             const ValidationOptions& options);

}  // namespace kop::signing
