// From-scratch SHA-256 (FIPS 180-4). Used to fingerprint module images
// and as the compression function under HMAC for module signing. No
// external crypto dependency: the simulated toolchain is self-contained.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace kop::signing {

using Sha256Digest = std::array<uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t size);
  void Update(std::string_view text) { Update(text.data(), text.size()); }
  Sha256Digest Finish();

  /// One-shot convenience.
  static Sha256Digest Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  uint64_t total_bytes_ = 0;
  std::array<uint8_t, 64> buffer_;
  size_t buffered_ = 0;
};

/// Lowercase hex rendering of a digest.
std::string DigestHex(const Sha256Digest& digest);

/// Parse hex back to a digest; fails on malformed input.
bool DigestFromHex(std::string_view hex, Sha256Digest* out);

}  // namespace kop::signing
