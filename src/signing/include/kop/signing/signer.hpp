// Module signing and the .kko container. The compiler signs
// (module text || attestation) with a key shared with the kernel's
// keyring; insmod verifies the MAC, then independently re-validates the
// attested properties (guard completeness, no inline asm) on the parsed
// IR — trust, but verify.
#pragma once

#include <string>
#include <vector>

#include "kop/signing/sha256.hpp"
#include "kop/transform/attestation.hpp"
#include "kop/util/status.hpp"

namespace kop::signing {

/// A compiler signing identity.
struct SigningKey {
  std::string key_id;   // e.g. "carat-kop-ci-1"
  std::string secret;   // raw key bytes

  /// Deterministic test/demo key.
  static SigningKey DevelopmentKey();
};

/// The signed module image — the analogue of a signed .ko.
struct SignedModule {
  std::string module_text;       // canonical KIR serialization
  std::string attestation_text;  // AttestationRecord::Serialize()
  std::string key_id;
  Sha256Digest signature{};      // HMAC(key, module_text || attestation)

  /// Container (de)serialization: a simple length-prefixed text format.
  std::string Serialize() const;
  static Result<SignedModule> Deserialize(const std::string& container);
};

/// Sign a compiled module.
SignedModule SignModule(const std::string& module_text,
                        const transform::AttestationRecord& attestation,
                        const SigningKey& key);

/// The kernel's set of trusted compiler keys.
class Keyring {
 public:
  void Trust(const SigningKey& key);
  void Revoke(const std::string& key_id);
  bool Trusts(const std::string& key_id) const;

  /// Verify a signed module's MAC against the trusted keys.
  Status VerifySignature(const SignedModule& signed_module) const;

 private:
  std::vector<SigningKey> keys_;
};

/// The exact byte string covered by the signature.
std::string SignaturePayload(const std::string& module_text,
                             const std::string& attestation_text);

}  // namespace kop::signing
