// HMAC-SHA-256 (RFC 2104). The CARAT KOP compiler holds a signing key
// shared with the kernel's keyring (a MAC scheme stands in for the
// paper's unspecified "cryptographic code signing"; the trust chain —
// compiler certifies, kernel verifies at insmod — is identical).
#pragma once

#include <string>
#include <string_view>

#include "kop/signing/sha256.hpp"

namespace kop::signing {

/// Compute HMAC-SHA-256(key, message).
Sha256Digest HmacSha256(std::string_view key, std::string_view message);

/// Constant-time digest comparison (avoids signature-oracle timing).
bool DigestEquals(const Sha256Digest& a, const Sha256Digest& b);

}  // namespace kop::signing
