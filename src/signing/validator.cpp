#include "kop/signing/validator.hpp"

#include "kop/kir/parser.hpp"
#include "kop/kir/verifier.hpp"

namespace kop::signing {

Result<ValidatedModule> ValidateSignedModule(const SignedModule& signed_module,
                                             const Keyring& keyring) {
  // 2. Signature first: nothing unauthenticated gets parsed further than
  //    the container framing.
  KOP_RETURN_IF_ERROR(keyring.VerifySignature(signed_module));

  // 3. Attestation record.
  auto attestation =
      transform::AttestationRecord::Deserialize(signed_module.attestation_text);
  if (!attestation.ok()) return attestation.status();

  if (!attestation->no_inline_asm) {
    return BadModule("attestation admits inline assembly; refusing module '" +
                     attestation->module_name + "'");
  }
  if (!attestation->guards_complete) {
    return BadModule("attestation does not certify guard completeness for '" +
                     attestation->module_name + "'");
  }

  // 4. Parse + verify the IR.
  auto module = kir::ParseModule(signed_module.module_text);
  if (!module.ok()) return module.status();
  KOP_RETURN_IF_ERROR(kir::VerifyModule(**module));

  if ((*module)->name() != attestation->module_name) {
    return BadModule("attestation names module '" + attestation->module_name +
                     "' but image is '" + (*module)->name() + "'");
  }

  // 5. Independent re-checks of the attested properties.
  for (const auto& fn : (*module)->functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kInlineAsm) {
          return BadModule("validator found inline assembly in @" +
                           fn->name() + " despite attestation");
        }
      }
    }
  }
  // Strict guard-adjacency can be re-proven only for unoptimized guard
  // placement; optimized modules carry the compiler's certification,
  // which the (already verified) signature binds to this exact image.
  if (transform::Attest(**module).guard_count != attestation->guard_count) {
    return BadModule("guard count mismatch: image has different guards than "
                     "the attestation certifies");
  }
  if (!attestation->guards_optimized &&
      !transform::GuardsComplete(**module)) {
    return BadModule(
        "validator: unoptimized module has memory accesses without an "
        "adjacent covering guard");
  }

  ValidatedModule out;
  out.module = std::move(*module);
  out.attestation = *attestation;
  return out;
}

}  // namespace kop::signing
