#include "kop/signing/validator.hpp"

#include "kop/kir/parser.hpp"
#include "kop/kir/verifier.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/trace/trace.hpp"

namespace kop::signing {
namespace {

Result<ValidatedModule> ValidateSignedModuleImpl(
    const SignedModule& signed_module, const Keyring& keyring,
    const ValidationOptions& options) {
  // 2. Signature first: nothing unauthenticated gets parsed further than
  //    the container framing.
  KOP_RETURN_IF_ERROR(keyring.VerifySignature(signed_module));

  // 3. Attestation record.
  auto attestation =
      transform::AttestationRecord::Deserialize(signed_module.attestation_text);
  if (!attestation.ok()) return attestation.status();

  if (!attestation->no_inline_asm) {
    return BadModule("attestation admits inline assembly; refusing module '" +
                     attestation->module_name + "'");
  }
  if (options.check_attested_guards && !attestation->guards_complete) {
    return BadModule("attestation does not certify guard completeness for '" +
                     attestation->module_name + "'");
  }

  // 4. Parse + verify the IR.
  auto module = kir::ParseModule(signed_module.module_text);
  if (!module.ok()) return module.status();
  KOP_RETURN_IF_ERROR(kir::VerifyModule(**module));

  if ((*module)->name() != attestation->module_name) {
    return BadModule("attestation names module '" + attestation->module_name +
                     "' but image is '" + (*module)->name() + "'");
  }

  // 5. Independent re-checks of the attested properties.
  for (const auto& fn : (*module)->functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kInlineAsm) {
          return BadModule("validator found inline assembly in @" +
                           fn->name() + " despite attestation");
        }
      }
    }
  }
  // Strict guard-adjacency can be re-proven only for unoptimized guard
  // placement; optimized modules carry the compiler's certification,
  // which the (already verified) signature binds to this exact image.
  const transform::AttestationRecord recomputed = transform::Attest(**module);
  if (recomputed.guard_count != attestation->guard_count) {
    return BadModule("guard count mismatch: image has different guards than "
                     "the attestation certifies");
  }
  // The per-site table is rebuilt from the shipped IR; a signed table that
  // disagrees means the image or the record was swapped after signing.
  // Records predating site tables (empty) are accepted as-is.
  if (!attestation->sites.empty() && recomputed.sites != attestation->sites) {
    return BadModule("guard-site table mismatch: attestation sites do not "
                     "match the shipped IR");
  }
  if (options.check_attested_guards && !attestation->guards_optimized &&
      !transform::GuardsComplete(**module)) {
    return BadModule(
        "validator: unoptimized module has memory accesses without an "
        "adjacent covering guard");
  }
  // Elision provenance is re-proven against the shipped IR in every
  // verify mode: each claimed cover must exist with the claimed span,
  // flags and elided count, and its members must tile the interval. This
  // runs regardless of check_attested_guards because a forged table
  // corrupts runtime accounting even when static coverage holds.
  if (!attestation->elisions.empty()) {
    KOP_RETURN_IF_ERROR(transform::VerifyElisionProvenance(
        *attestation, recomputed.sites));
  }
  // The CFI table is likewise re-derived from the shipped IR in every
  // verify mode: the attested legal-target sets and site ordinals must
  // equal the proof's, member for member. A forged, widened, or stale
  // table — or a module importing carat_cfi_check with no table at all —
  // fails here before any indirect call can be dispatched.
  KOP_RETURN_IF_ERROR(
      transform::VerifyCfiProvenance(*attestation, **module));

  ValidatedModule out;
  out.module = std::move(*module);
  out.attestation = *attestation;
  return out;
}

}  // namespace

Result<ValidatedModule> ValidateSignedModule(const SignedModule& signed_module,
                                             const Keyring& keyring) {
  return ValidateSignedModule(signed_module, keyring, ValidationOptions{});
}

Result<ValidatedModule> ValidateSignedModule(const SignedModule& signed_module,
                                             const Keyring& keyring,
                                             const ValidationOptions& options) {
  auto result = ValidateSignedModuleImpl(signed_module, keyring, options);
  KOP_TRACE(kModuleVerify, result.ok() ? 1 : 0);
  trace::GlobalMetrics()
      .GetCounter(result.ok() ? "loader.verify_ok" : "loader.verify_fail")
      ->Add();
  return result;
}

}  // namespace kop::signing
