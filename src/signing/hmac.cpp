#include "kop/signing/hmac.hpp"

#include <cstring>

namespace kop::signing {

Sha256Digest HmacSha256(std::string_view key, std::string_view message) {
  uint8_t key_block[64] = {0};
  if (key.size() > 64) {
    const Sha256Digest hashed = Sha256::Hash(key);
    std::memcpy(key_block, hashed.data(), hashed.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  uint8_t ipad[64];
  uint8_t opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad, sizeof(ipad));
  inner.Update(message.data(), message.size());
  const Sha256Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad, sizeof(opad));
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

bool DigestEquals(const Sha256Digest& a, const Sha256Digest& b) {
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace kop::signing
