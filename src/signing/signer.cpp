#include "kop/signing/signer.hpp"

#include <algorithm>
#include <sstream>

#include "kop/signing/hmac.hpp"

namespace kop::signing {

SigningKey SigningKey::DevelopmentKey() {
  return SigningKey{"carat-kop-dev-1",
                    "carat-kop-development-signing-key-0123456789"};
}

std::string SignaturePayload(const std::string& module_text,
                             const std::string& attestation_text) {
  // Unambiguous framing: lengths first, then both byte strings.
  std::ostringstream out;
  out << module_text.size() << ':' << attestation_text.size() << ':'
      << module_text << attestation_text;
  return out.str();
}

SignedModule SignModule(const std::string& module_text,
                        const transform::AttestationRecord& attestation,
                        const SigningKey& key) {
  SignedModule out;
  out.module_text = module_text;
  out.attestation_text = attestation.Serialize();
  out.key_id = key.key_id;
  out.signature = HmacSha256(
      key.secret, SignaturePayload(out.module_text, out.attestation_text));
  return out;
}

std::string SignedModule::Serialize() const {
  std::ostringstream out;
  out << "carat-kop-signed-module v1\n"
      << "key_id: " << key_id << "\n"
      << "signature: " << DigestHex(signature) << "\n"
      << "attestation_bytes: " << attestation_text.size() << "\n"
      << attestation_text
      << "module_bytes: " << module_text.size() << "\n"
      << module_text;
  return out.str();
}

Result<SignedModule> SignedModule::Deserialize(const std::string& container) {
  SignedModule out;
  size_t pos = 0;
  auto take_line = [&]() -> Result<std::string> {
    const size_t end = container.find('\n', pos);
    if (end == std::string::npos) {
      return BadModule("signed module container truncated");
    }
    std::string line = container.substr(pos, end - pos);
    pos = end + 1;
    return line;
  };
  auto expect_prefix = [](const std::string& line,
                          const std::string& prefix) -> Result<std::string> {
    if (line.rfind(prefix, 0) != 0) {
      return BadModule("signed module container: expected '" + prefix + "'");
    }
    return line.substr(prefix.size());
  };

  KOP_ASSIGN_OR_RETURN(std::string header, take_line());
  if (header != "carat-kop-signed-module v1") {
    return BadModule("signed module container: bad magic");
  }
  KOP_ASSIGN_OR_RETURN(std::string key_line, take_line());
  KOP_ASSIGN_OR_RETURN(out.key_id, expect_prefix(key_line, "key_id: "));
  KOP_ASSIGN_OR_RETURN(std::string sig_line, take_line());
  KOP_ASSIGN_OR_RETURN(std::string sig_hex,
                       expect_prefix(sig_line, "signature: "));
  if (!DigestFromHex(sig_hex, &out.signature)) {
    return BadModule("signed module container: malformed signature");
  }
  KOP_ASSIGN_OR_RETURN(std::string att_line, take_line());
  KOP_ASSIGN_OR_RETURN(std::string att_size_text,
                       expect_prefix(att_line, "attestation_bytes: "));
  const size_t att_size = std::strtoull(att_size_text.c_str(), nullptr, 10);
  if (pos + att_size > container.size()) {
    return BadModule("signed module container: attestation truncated");
  }
  out.attestation_text = container.substr(pos, att_size);
  pos += att_size;
  KOP_ASSIGN_OR_RETURN(std::string mod_line, take_line());
  KOP_ASSIGN_OR_RETURN(std::string mod_size_text,
                       expect_prefix(mod_line, "module_bytes: "));
  const size_t mod_size = std::strtoull(mod_size_text.c_str(), nullptr, 10);
  if (pos + mod_size > container.size()) {
    return BadModule("signed module container: module text truncated");
  }
  out.module_text = container.substr(pos, mod_size);
  return out;
}

void Keyring::Trust(const SigningKey& key) {
  Revoke(key.key_id);
  keys_.push_back(key);
}

void Keyring::Revoke(const std::string& key_id) {
  keys_.erase(std::remove_if(keys_.begin(), keys_.end(),
                             [&](const SigningKey& key) {
                               return key.key_id == key_id;
                             }),
              keys_.end());
}

bool Keyring::Trusts(const std::string& key_id) const {
  return std::any_of(keys_.begin(), keys_.end(), [&](const SigningKey& key) {
    return key.key_id == key_id;
  });
}

Status Keyring::VerifySignature(const SignedModule& signed_module) const {
  for (const SigningKey& key : keys_) {
    if (key.key_id != signed_module.key_id) continue;
    const Sha256Digest expected = HmacSha256(
        key.secret, SignaturePayload(signed_module.module_text,
                                     signed_module.attestation_text));
    if (DigestEquals(expected, signed_module.signature)) return OkStatus();
    return PermissionDenied("module signature does not verify under key " +
                            key.key_id);
  }
  return PermissionDenied("module signed with untrusted key '" +
                          signed_module.key_id + "'");
}

}  // namespace kop::signing
