// The heartbeat-scheduling module — the paper's own motivating example
// of a specialized HPC kernel module (§1, citing their PLDI'21 heartbeat
// scheduling work). Like the e1000e driver, one source builds two ways:
// HeartbeatModule<RawMemOps> is the unprotected baseline and
// HeartbeatModule<GuardedMemOps> the CARAT KOP build, so the cost of
// guarding a *timer-interrupt fast path* can be measured directly
// (bench/ext1_heartbeat).
//
// The module programs the HPET-class timer for periodic interrupts and
// its ISR — the latency-critical part of heartbeat scheduling — does a
// handful of guarded MMIO and state accesses per beat: acknowledge the
// interrupt, read the counter, detect overruns, update bookkeeping.
#pragma once

#include <cstdint>

#include "kop/modrt/memops.hpp"
#include "kop/hpet/timer_device.hpp"

namespace kop::hpet {

/// Layout of the module's state page in simulated kernel memory.
namespace hb {
inline constexpr uint64_t kTimerBase = 0x00;     // u64 (MMIO base)
inline constexpr uint64_t kPeriod = 0x08;        // u64 (counter ticks)
inline constexpr uint64_t kBeats = 0x10;         // u64
inline constexpr uint64_t kLastCounter = 0x18;   // u64
inline constexpr uint64_t kOverruns = 0x20;      // u64 (late beats)
inline constexpr uint64_t kNextDeadline = 0x28;  // u64
inline constexpr uint64_t kSize = 0x30;
}  // namespace hb

struct HeartbeatCounters {
  uint64_t beats = 0;
  uint64_t overruns = 0;
  uint64_t last_counter = 0;
};

template <typename Ops>
class HeartbeatModule {
 public:
  /// Allocate the state page, program the timer for periodic interrupts
  /// every `period_ticks`, and enable it. The caller wires
  /// TimerDevice::SetIsr to Isr() (the kernel's IRQ plumbing).
  static Result<HeartbeatModule> Probe(Ops ops, uint64_t mmio_base,
                                       uint64_t period_ticks);

  /// Disable the timer and free the state page.
  Status Remove();

  /// The timer interrupt handler — the hot path heartbeat scheduling
  /// cares about. Every access goes through Ops (guarded on the carat
  /// build).
  Status Isr();

  Result<HeartbeatCounters> Counters();

  uint64_t state_addr() const { return state_; }
  Ops& ops() { return ops_; }

 private:
  HeartbeatModule(Ops ops, uint64_t state) : ops_(ops), state_(state) {}

  Ops ops_;
  uint64_t state_ = 0;
};

extern template class HeartbeatModule<modrt::RawMemOps>;
extern template class HeartbeatModule<modrt::GuardedMemOps>;

using BaselineHeartbeat = HeartbeatModule<modrt::RawMemOps>;
using CaratHeartbeat = HeartbeatModule<modrt::GuardedMemOps>;

}  // namespace kop::hpet
