// An HPET-class high-precision timer device. This is the substrate for
// the paper's *motivating* module (§1): the authors built Linux kernel
// modules for "fast timer delivery for heartbeat scheduling" — exactly
// the kind of specialized HPC module CARAT KOP exists to make deployable.
//
// Register layout (a simplified single-comparator HPET):
//   0x000 CAP        RO  counter period in femtoseconds (low 32 bits)
//   0x010 CONFIG     RW  bit 0: ENABLE (main counter runs)
//   0x020 ISR        RW1C bit 0: timer 0 interrupt status
//   0x0F0 COUNTER    RW  64-bit main counter
//   0x100 T0_CONFIG  RW  bit 2: INT_ENB, bit 3: PERIODIC
//   0x108 T0_CMP     RW  64-bit comparator (in PERIODIC mode, writes also
//                        latch the period)
//
// Time advances only via Tick(n) — the simulation's clock edge — so tests
// and benches are deterministic.
#pragma once

#include <cstdint>
#include <functional>

#include "kop/kernel/address_space.hpp"
#include "kop/util/status.hpp"

namespace kop::hpet {

inline constexpr uint64_t REG_CAP = 0x000;
inline constexpr uint64_t REG_CONFIG = 0x010;
inline constexpr uint64_t REG_ISR = 0x020;
inline constexpr uint64_t REG_COUNTER = 0x0f0;
inline constexpr uint64_t REG_T0_CONFIG = 0x100;
inline constexpr uint64_t REG_T0_CMP = 0x108;

inline constexpr uint32_t CONFIG_ENABLE = 1u << 0;
inline constexpr uint32_t T0_INT_ENB = 1u << 2;
inline constexpr uint32_t T0_PERIODIC = 1u << 3;
inline constexpr uint32_t ISR_T0 = 1u << 0;

inline constexpr uint64_t kTimerBarSize = 0x400;
/// 10 MHz counter: 100,000,000 fs per tick (a typical HPET-ish rate).
inline constexpr uint32_t kCounterPeriodFs = 100000000;

struct TimerStats {
  uint64_t ticks = 0;
  uint64_t interrupts_raised = 0;
  uint64_t interrupts_suppressed = 0;  // comparator hit, INT_ENB clear
};

class TimerDevice final : public kernel::MmioDevice {
 public:
  /// The interrupt wire: invoked (synchronously, "in IRQ context") each
  /// time timer 0 fires with interrupts enabled.
  using IsrCallback = std::function<void()>;

  TimerDevice() = default;

  Status MapAt(kernel::AddressSpace* memory, uint64_t mmio_base);

  void SetIsr(IsrCallback isr) { isr_ = std::move(isr); }

  /// Advance the main counter by `ticks` clock edges, firing the
  /// comparator as it is crossed (multiple times in periodic mode).
  void Tick(uint64_t ticks);

  // kernel::MmioDevice:
  uint64_t MmioRead(uint64_t offset, uint32_t size) override;
  void MmioWrite(uint64_t offset, uint64_t value, uint32_t size) override;

  const TimerStats& stats() const { return stats_; }
  uint64_t counter() const { return counter_; }
  bool interrupt_pending() const { return (isr_status_ & ISR_T0) != 0; }

 private:
  void FireTimer();

  uint32_t config_ = 0;
  uint32_t isr_status_ = 0;
  uint64_t counter_ = 0;
  uint32_t t0_config_ = 0;
  uint64_t t0_cmp_ = ~uint64_t{0};
  uint64_t t0_period_ = 0;  // latched by comparator writes in periodic mode
  IsrCallback isr_;
  TimerStats stats_;
};

}  // namespace kop::hpet
