#include "kop/hpet/timer_device.hpp"

namespace kop::hpet {

Status TimerDevice::MapAt(kernel::AddressSpace* memory, uint64_t mmio_base) {
  return memory->MapMmio("hpet", mmio_base, kTimerBarSize, this);
}

uint64_t TimerDevice::MmioRead(uint64_t offset, uint32_t size) {
  (void)size;
  switch (offset) {
    case REG_CAP: return kCounterPeriodFs;
    case REG_CONFIG: return config_;
    case REG_ISR: return isr_status_;
    case REG_COUNTER: return counter_;
    case REG_T0_CONFIG: return t0_config_;
    case REG_T0_CMP: return t0_cmp_;
    default: return 0;
  }
}

void TimerDevice::MmioWrite(uint64_t offset, uint64_t value, uint32_t size) {
  (void)size;
  switch (offset) {
    case REG_CONFIG:
      config_ = static_cast<uint32_t>(value);
      break;
    case REG_ISR:
      // Write-1-to-clear, like the real part's level-triggered status.
      isr_status_ &= ~static_cast<uint32_t>(value);
      break;
    case REG_COUNTER:
      counter_ = value;
      break;
    case REG_T0_CONFIG:
      t0_config_ = static_cast<uint32_t>(value);
      break;
    case REG_T0_CMP:
      t0_cmp_ = value;
      // HPET quirk kept: in periodic mode a comparator write latches the
      // period used for automatic re-arming.
      if (t0_config_ & T0_PERIODIC) t0_period_ = value - counter_;
      break;
    default:
      break;
  }
}

void TimerDevice::FireTimer() {
  if ((t0_config_ & T0_INT_ENB) == 0) {
    ++stats_.interrupts_suppressed;
    return;
  }
  isr_status_ |= ISR_T0;
  ++stats_.interrupts_raised;
  if (isr_) isr_();
}

void TimerDevice::Tick(uint64_t ticks) {
  if ((config_ & CONFIG_ENABLE) == 0) return;
  stats_.ticks += ticks;
  while (ticks > 0) {
    // Distance to the comparator, in counter ticks (wrap-around safe).
    const uint64_t distance = t0_cmp_ - counter_;
    if (distance == 0 || distance > ticks) {
      // No crossing within this batch (distance 0 means "just written
      // equal": fires after a full wrap, as on hardware).
      counter_ += ticks;
      return;
    }
    counter_ += distance;
    ticks -= distance;
    FireTimer();
    if (t0_config_ & T0_PERIODIC) {
      t0_cmp_ += t0_period_ == 0 ? 1 : t0_period_;
    }
    // One-shot comparators stay put; the next crossing is a full wrap
    // away, so the loop exits via the distance check.
  }
}

}  // namespace kop::hpet
