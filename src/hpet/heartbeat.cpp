#include "kop/hpet/heartbeat.hpp"

namespace kop::hpet {

template <typename Ops>
Result<HeartbeatModule<Ops>> HeartbeatModule<Ops>::Probe(
    Ops ops, uint64_t mmio_base, uint64_t period_ticks) {
  if (period_ticks == 0) return InvalidArgument("zero heartbeat period");
  kernel::Kernel* kernel = ops.kernel();
  KOP_ASSIGN_OR_RETURN(uint64_t state,
                       kernel->heap().Kmalloc(hb::kSize, 64));
  HeartbeatModule module(ops, state);
  Ops& o = module.ops_;

  KOP_RETURN_IF_ERROR(o.Store(state + hb::kTimerBase, mmio_base, 8));
  KOP_RETURN_IF_ERROR(o.Store(state + hb::kPeriod, period_ticks, 8));
  KOP_RETURN_IF_ERROR(o.Store(state + hb::kBeats, 0, 8));
  KOP_RETURN_IF_ERROR(o.Store(state + hb::kLastCounter, 0, 8));
  KOP_RETURN_IF_ERROR(o.Store(state + hb::kOverruns, 0, 8));
  KOP_RETURN_IF_ERROR(
      o.Store(state + hb::kNextDeadline, period_ticks, 8));

  // Program the timer: zero the counter, arm timer 0 periodic with
  // interrupts, then enable the main counter. All guarded MMIO on the
  // carat build.
  KOP_RETURN_IF_ERROR(o.MmioWrite32(mmio_base + REG_CONFIG, 0));
  KOP_RETURN_IF_ERROR(o.MmioWrite64(mmio_base + REG_COUNTER, 0));
  KOP_RETURN_IF_ERROR(
      o.MmioWrite32(mmio_base + REG_T0_CONFIG, T0_INT_ENB | T0_PERIODIC));
  KOP_RETURN_IF_ERROR(o.MmioWrite64(mmio_base + REG_T0_CMP, period_ticks));
  KOP_RETURN_IF_ERROR(o.MmioWrite32(mmio_base + REG_CONFIG, CONFIG_ENABLE));
  return module;
}

template <typename Ops>
Status HeartbeatModule<Ops>::Remove() {
  KOP_ASSIGN_OR_RETURN(uint64_t mmio_base,
                       ops_.Load(state_ + hb::kTimerBase, 8));
  KOP_RETURN_IF_ERROR(ops_.MmioWrite32(mmio_base + REG_CONFIG, 0));
  KOP_RETURN_IF_ERROR(ops_.MmioWrite32(mmio_base + REG_T0_CONFIG, 0));
  KOP_RETURN_IF_ERROR(ops_.kernel()->heap().Kfree(state_));
  state_ = 0;
  return OkStatus();
}

template <typename Ops>
Status HeartbeatModule<Ops>::Isr() {
  // The heartbeat fast path: ack the interrupt, read the time, account
  // the beat, detect overruns (we were late by more than a period).
  KOP_ASSIGN_OR_RETURN(uint64_t mmio_base,
                       ops_.Load(state_ + hb::kTimerBase, 8));
  KOP_RETURN_IF_ERROR(ops_.MmioWrite32(mmio_base + REG_ISR, ISR_T0));
  KOP_ASSIGN_OR_RETURN(uint64_t now, ops_.MmioRead64(mmio_base + REG_COUNTER));

  KOP_ASSIGN_OR_RETURN(uint64_t period, ops_.Load(state_ + hb::kPeriod, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t deadline,
                       ops_.Load(state_ + hb::kNextDeadline, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t beats, ops_.Load(state_ + hb::kBeats, 8));

  if (now > deadline + period) {
    KOP_ASSIGN_OR_RETURN(uint64_t overruns,
                         ops_.Load(state_ + hb::kOverruns, 8));
    KOP_RETURN_IF_ERROR(
        ops_.Store(state_ + hb::kOverruns, overruns + 1, 8));
  }
  KOP_RETURN_IF_ERROR(ops_.Store(state_ + hb::kBeats, beats + 1, 8));
  KOP_RETURN_IF_ERROR(ops_.Store(state_ + hb::kLastCounter, now, 8));
  KOP_RETURN_IF_ERROR(
      ops_.Store(state_ + hb::kNextDeadline, deadline + period, 8));
  return OkStatus();
}

template <typename Ops>
Result<HeartbeatCounters> HeartbeatModule<Ops>::Counters() {
  HeartbeatCounters out;
  KOP_ASSIGN_OR_RETURN(out.beats, ops_.Load(state_ + hb::kBeats, 8));
  KOP_ASSIGN_OR_RETURN(out.overruns, ops_.Load(state_ + hb::kOverruns, 8));
  KOP_ASSIGN_OR_RETURN(out.last_counter,
                       ops_.Load(state_ + hb::kLastCounter, 8));
  return out;
}

template class HeartbeatModule<modrt::RawMemOps>;
template class HeartbeatModule<modrt::GuardedMemOps>;

}  // namespace kop::hpet
