// Memory-access policies for natively-built protected modules (the
// module runtime). A module template written once against this interface
// instantiates two ways: RawMemOps is the paper's baseline build,
// GuardedMemOps the CARAT KOP build — "we built two versions of the
// driver, one with the CARAT KOP transformation applied, the other
// without it. In both cases, the same compiler was used... No code was
// modified in the driver." (§4.1). Used by the e1000e driver and the
// heartbeat module.
//
// GuardedMemOps invokes the policy module's guard before every load and
// store — including MMIO, which on Linux is just a load/store to an
// ioremapped address — then performs the access and charges the machine
// model's access cost on the virtual clock. The guard itself charges the
// machine's guard cost (see PolicyEngine::Guard).
#pragma once

#include <cstdint>

#include "kop/kernel/kernel.hpp"
#include "kop/policy/engine.hpp"
#include "kop/smp/percpu.hpp"
#include "kop/trace/site.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::modrt {

/// Synthetic guard-site for natively-built driver code, one per access
/// category. Native modules have no IR to derive per-instruction sites
/// from, so their guards attribute at category granularity ("the guarded
/// MMIO writes") instead of per call site. Registered process-wide on
/// first use.
inline uint64_t NativeCategorySite(const char* category) {
  trace::SiteInfo info;
  info.module_name = "native";
  info.function = category;
  info.detail = "native-build access category";
  return trace::GlobalSites().Register(std::move(info));
}

struct MemOpsStats {
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t mmio_reads = 0;
  uint64_t mmio_writes = 0;
  uint64_t accesses() const {
    return loads + stores + mmio_reads + mmio_writes;
  }
};

/// Baseline build: plain accesses, no guards. One driver instance serves
/// every queue, and the MQ datapath drives queues from many CPUs at
/// once, so the access counters are per-CPU single-writer slots (same
/// contract as the virtual clock) folded on the read side.
class RawMemOps {
 public:
  static constexpr bool kGuarded = false;

  explicit RawMemOps(kernel::Kernel* kernel) : kernel_(kernel) {}

  Result<uint64_t> Load(uint64_t addr, uint32_t size) {
    ++stats_.Mine().loads;
    kernel_->clock().Advance(kernel_->machine().mem_read_cycles);
    return DoLoad(addr, size);
  }

  Status Store(uint64_t addr, uint64_t value, uint32_t size) {
    ++stats_.Mine().stores;
    kernel_->clock().Advance(kernel_->machine().mem_write_cycles);
    return DoStore(addr, value, size);
  }

  Result<uint32_t> MmioRead32(uint64_t addr) {
    ++stats_.Mine().mmio_reads;
    kernel_->clock().Advance(kernel_->machine().mmio_read_cycles);
    auto value = DoLoad(addr, 4);
    if (!value.ok()) return value.status();
    return static_cast<uint32_t>(*value);
  }

  Status MmioWrite32(uint64_t addr, uint32_t value) {
    ++stats_.Mine().mmio_writes;
    kernel_->clock().Advance(kernel_->machine().mmio_write_cycles);
    return DoStore(addr, value, 4);
  }

  Result<uint64_t> MmioRead64(uint64_t addr) {
    ++stats_.Mine().mmio_reads;
    kernel_->clock().Advance(kernel_->machine().mmio_read_cycles);
    return DoLoad(addr, 8);
  }

  Status MmioWrite64(uint64_t addr, uint64_t value) {
    ++stats_.Mine().mmio_writes;
    kernel_->clock().Advance(kernel_->machine().mmio_write_cycles);
    return DoStore(addr, value, 8);
  }

  /// Store on a rarely executed path (the short-frame pad/bounce loop).
  /// Identical semantics to Store; the guarded build charges the cold-
  /// guard penalty (an unwarmed branch predictor and cache give guards on
  /// cold paths nothing to hide behind — the machine model's
  /// pad_guard_cycles_per_byte).
  Status StoreSlowPath(uint64_t addr, uint64_t value, uint32_t size) {
    return Store(addr, value, size);
  }
  Result<uint64_t> LoadSlowPath(uint64_t addr, uint32_t size) {
    return Load(addr, size);
  }

  kernel::Kernel* kernel() { return kernel_; }

  /// All-CPU fold of the access counters. Call only while no CPU is
  /// mid-access (between runs, or after an SMP join).
  MemOpsStats stats() const {
    MemOpsStats total;
    stats_.ForEach([&total](uint32_t, const MemOpsStats& s) {
      total.loads += s.loads;
      total.stores += s.stores;
      total.mmio_reads += s.mmio_reads;
      total.mmio_writes += s.mmio_writes;
    });
    return total;
  }
  void ResetStats() {
    stats_.ForEach([](uint32_t, MemOpsStats& s) { s = MemOpsStats(); });
  }

 protected:
  Result<uint64_t> DoLoad(uint64_t addr, uint32_t size) {
    switch (size) {
      case 1: {
        auto v = kernel_->mem().Read8(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      case 2: {
        auto v = kernel_->mem().Read16(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      case 4: {
        auto v = kernel_->mem().Read32(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      default:
        return kernel_->mem().Read64(addr);
    }
  }

  Status DoStore(uint64_t addr, uint64_t value, uint32_t size) {
    switch (size) {
      case 1: return kernel_->mem().Write8(addr, static_cast<uint8_t>(value));
      case 2: return kernel_->mem().Write16(addr,
                                            static_cast<uint16_t>(value));
      case 4: return kernel_->mem().Write32(addr,
                                            static_cast<uint32_t>(value));
      default: return kernel_->mem().Write64(addr, value);
    }
  }

  kernel::Kernel* kernel_;
  smp::PerCpu<MemOpsStats> stats_;
};

/// CARAT KOP build: every access is preceded by a guard call into the
/// policy module, resolved at "insmod" by handing the driver the engine
/// behind the kernel's carat_guard export.
class GuardedMemOps : public RawMemOps {
 public:
  static constexpr bool kGuarded = true;

  GuardedMemOps(kernel::Kernel* kernel, policy::PolicyEngine* engine)
      : RawMemOps(kernel), engine_(engine) {}

  Result<uint64_t> Load(uint64_t addr, uint32_t size) {
    static const uint64_t site = NativeCategorySite("load");
    trace::ScopedGuardSite scope(site);
    engine_->Guard(addr, size, kGuardAccessRead);  // panics on violation
    return RawMemOps::Load(addr, size);
  }

  Status Store(uint64_t addr, uint64_t value, uint32_t size) {
    static const uint64_t site = NativeCategorySite("store");
    trace::ScopedGuardSite scope(site);
    engine_->Guard(addr, size, kGuardAccessWrite);
    return RawMemOps::Store(addr, value, size);
  }

  Result<uint32_t> MmioRead32(uint64_t addr) {
    static const uint64_t site = NativeCategorySite("mmio_read");
    trace::ScopedGuardSite scope(site);
    engine_->Guard(addr, 4, kGuardAccessRead);
    return RawMemOps::MmioRead32(addr);
  }

  Status MmioWrite32(uint64_t addr, uint32_t value) {
    static const uint64_t site = NativeCategorySite("mmio_write");
    trace::ScopedGuardSite scope(site);
    engine_->Guard(addr, 4, kGuardAccessWrite);
    return RawMemOps::MmioWrite32(addr, value);
  }

  Result<uint64_t> MmioRead64(uint64_t addr) {
    static const uint64_t site = NativeCategorySite("mmio_read");
    trace::ScopedGuardSite scope(site);
    engine_->Guard(addr, 8, kGuardAccessRead);
    return RawMemOps::MmioRead64(addr);
  }

  Status MmioWrite64(uint64_t addr, uint64_t value) {
    static const uint64_t site = NativeCategorySite("mmio_write");
    trace::ScopedGuardSite scope(site);
    engine_->Guard(addr, 8, kGuardAccessWrite);
    return RawMemOps::MmioWrite64(addr, value);
  }

  Status StoreSlowPath(uint64_t addr, uint64_t value, uint32_t size) {
    kernel_->clock().Advance(kernel_->machine().pad_guard_cycles_per_byte *
                             size);
    return Store(addr, value, size);
  }

  Result<uint64_t> LoadSlowPath(uint64_t addr, uint32_t size) {
    kernel_->clock().Advance(kernel_->machine().pad_guard_cycles_per_byte *
                             size);
    return Load(addr, size);
  }

  policy::PolicyEngine* engine() { return engine_; }

 private:
  policy::PolicyEngine* engine_;
};

}  // namespace kop::modrt
