#include "kop/flight/postmortem.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <mutex>
#include <string_view>

#include "kop/smp/cpu.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/trace/site.hpp"

namespace kop::flight {
namespace {

struct Providers {
  Spinlock lock;
  std::function<PolicyInfo()> policy;
  std::function<std::vector<HeatSite>()> heatmap;
};

}  // namespace

/// One thread-private flight surface (see ScopedFlightIsolation).
struct ScopedFlightIsolation::Surface {
  PostmortemStore store;
  Providers providers;
};

namespace {

thread_local ScopedFlightIsolation::Surface* tls_surface = nullptr;

Providers& GlobalProviders() {
  if (tls_surface != nullptr) return tls_surface->providers;
  static Providers providers;
  return providers;
}

void AppendEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendKeyString(std::string* out, const char* key,
                     std::string_view value) {
  *out += '"';
  *out += key;
  *out += "\":\"";
  AppendEscaped(out, value);
  *out += '"';
}

void AppendKeyU64(std::string* out, const char* key, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, key, value);
  *out += buf;
}

void AppendKeyHex(std::string* out, const char* key, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":\"0x%" PRIx64 "\"", key, value);
  *out += buf;
}

}  // namespace

void SetPolicyProvider(std::function<PolicyInfo()> provider) {
  Providers& providers = GlobalProviders();
  std::lock_guard<Spinlock> guard(providers.lock);
  providers.policy = std::move(provider);
}

void SetHeatmapProvider(std::function<std::vector<HeatSite>()> provider) {
  Providers& providers = GlobalProviders();
  std::lock_guard<Spinlock> guard(providers.lock);
  providers.heatmap = std::move(provider);
}

PolicyInfo QueryPolicy() {
  // Copy the callable out under the lock, invoke it outside: the
  // provider reaches into the policy engine and may take its own locks.
  std::function<PolicyInfo()> provider;
  {
    Providers& providers = GlobalProviders();
    std::lock_guard<Spinlock> guard(providers.lock);
    provider = providers.policy;
  }
  return provider ? provider() : PolicyInfo{};
}

std::vector<HeatSite> QueryHeatmap() {
  std::function<std::vector<HeatSite>()> provider;
  {
    Providers& providers = GlobalProviders();
    std::lock_guard<Spinlock> guard(providers.lock);
    provider = providers.heatmap;
  }
  return provider ? provider() : std::vector<HeatSite>{};
}

// Site tokens are interned in process-registration order, so their
// numeric values depend on everything loaded before this module. The
// bundle's determinism contract (same seed -> same bytes, either
// engine, any process) demands the module-local guard ordinal instead.
uint64_t SiteOrdinal(uint64_t token) {
  if (token == trace::kUnknownSite) return 0;
  if (auto info = trace::GlobalSites().Find(token)) return info->site_id;
  return token;
}

void FillEnvironment(PostmortemBundle* bundle, size_t tail_len) {
  bundle->policy = QueryPolicy();
  bundle->heatmap = QueryHeatmap();
  if (bundle->heatmap.size() > 8) bundle->heatmap.resize(8);
  bundle->site_ordinal = static_cast<uint32_t>(SiteOrdinal(bundle->site_token));

  // Group the merged trace snapshot back into per-CPU tails.
  std::map<uint32_t, std::vector<TailRecord>> per_cpu;
  for (const trace::TraceRecord& record :
       trace::GlobalTracer().ring().Snapshot()) {
    TailRecord tail;
    tail.tsc = record.tsc;
    tail.event = std::string(trace::EventName(record.event));
    const std::array<const char*, 4> names =
        trace::EventArgNames(record.event);
    for (size_t i = 0; i < 4; ++i) {
      tail.args[i] = names[i] != nullptr &&
                             std::string_view(names[i]) == "site"
                         ? SiteOrdinal(record.args[i])
                         : record.args[i];
    }
    per_cpu[record.cpu].push_back(std::move(tail));
  }
  bundle->tails.clear();
  for (auto& [cpu, records] : per_cpu) {
    CpuTail tail;
    tail.cpu = cpu;
    if (records.size() > tail_len) {
      records.erase(records.begin(),
                    records.end() - static_cast<ptrdiff_t>(tail_len));
    }
    tail.records = std::move(records);
    for (const trace::SpanEvent& span :
         trace::GlobalSpans().Tail(cpu, tail_len)) {
      TailSpan tail_span;
      tail_span.kind = std::string(trace::SpanKindName(span.kind));
      tail_span.begin_tsc = span.begin_tsc;
      tail_span.end_tsc = span.end_tsc;
      tail_span.depth = span.depth;
      tail.spans.push_back(std::move(tail_span));
    }
    bundle->tails.push_back(std::move(tail));
  }
}

std::string PostmortemBundle::ToJson() const {
  std::string out = "{\"schema\":\"kop.flight.postmortem/v1\",";
  AppendKeyString(&out, "module", module);
  out += ',';
  AppendKeyString(&out, "engine", engine);
  out += ',';
  AppendKeyString(&out, "reason", reason);
  out += ',';
  AppendKeyString(&out, "what", what);
  out += ',';
  AppendKeyString(&out, "recovery", recovery);
  out += ',';
  AppendKeyU64(&out, "cpu", cpu);
  out += ',';
  AppendKeyU64(&out, "tsc", tsc);

  out += ",\"violation\":";
  if (!has_violation) {
    out += "null";
  } else {
    out += '{';
    AppendKeyHex(&out, "addr", violation_addr);
    out += ',';
    AppendKeyU64(&out, "size", violation_size);
    out += ',';
    AppendKeyU64(&out, "flags", violation_flags);
    out += ',';
    AppendKeyU64(&out, "site", site_ordinal);
    out += ',';
    AppendKeyString(&out, "site_label", site_label);
    out += '}';
  }

  out += ",\"vm\":";
  if (!vm.valid) {
    out += "null";
  } else {
    out += '{';
    AppendKeyString(&out, "function", vm.function);
    out += ',';
    AppendKeyU64(&out, "depth", vm.depth);
    out += ',';
    // Both engines retire the identical instruction sequence, so the
    // step counter doubles as an engine-neutral program counter.
    AppendKeyU64(&out, "pc", vm.stats.steps);
    out += ",\"args\":[";
    for (size_t i = 0; i < vm.args.size(); ++i) {
      if (i != 0) out += ',';
      char buf[32];
      std::snprintf(buf, sizeof(buf), "\"0x%" PRIx64 "\"", vm.args[i]);
      out += buf;
    }
    out += "],";
    AppendKeyU64(&out, "steps", vm.stats.steps);
    out += ',';
    AppendKeyU64(&out, "loads", vm.stats.loads);
    out += ',';
    AppendKeyU64(&out, "stores", vm.stats.stores);
    out += ',';
    AppendKeyU64(&out, "calls_internal", vm.stats.calls_internal);
    out += ',';
    AppendKeyU64(&out, "calls_external", vm.stats.calls_external);
    out += '}';
  }

  out += ",\"journal\":{";
  AppendKeyU64(&out, "rollbacks", journal_rollbacks);
  out += ',';
  AppendKeyU64(&out, "entries_recorded", journal_entries_recorded);
  out += ',';
  AppendKeyU64(&out, "entries_undone", journal_entries_undone);
  out += "},\"heap\":{";
  AppendKeyU64(&out, "live_blocks", heap_live_blocks);
  out += ",\"live_addrs\":[";
  for (size_t i = 0; i < heap_live_addrs.size(); ++i) {
    if (i != 0) out += ',';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "\"0x%" PRIx64 "\"", heap_live_addrs[i]);
    out += buf;
  }
  out += "]},\"restarts\":{";
  AppendKeyU64(&out, "attempts", restart_attempts);
  out += ',';
  AppendKeyU64(&out, "completed", restarts_completed);
  out += '}';

  out += ",\"policy\":";
  if (!policy.present) {
    out += "null";
  } else {
    out += '{';
    AppendKeyU64(&out, "frames_published", policy.frames_published);
    out += ',';
    AppendKeyU64(&out, "store_generation", policy.store_generation);
    out += ',';
    AppendKeyU64(&out, "store_size", policy.store_size);
    out += ',';
    AppendKeyString(&out, "mode", policy.mode);
    out += '}';
  }

  out += ",\"heatmap\":[";
  for (size_t i = 0; i < heatmap.size(); ++i) {
    if (i != 0) out += ',';
    out += '{';
    AppendKeyString(&out, "site", heatmap[i].site);
    out += ',';
    AppendKeyU64(&out, "hits", heatmap[i].hits);
    out += ',';
    AppendKeyU64(&out, "denied", heatmap[i].denied);
    out += '}';
  }

  out += "],\"trace\":[";
  for (size_t t = 0; t < tails.size(); ++t) {
    if (t != 0) out += ',';
    out += '{';
    AppendKeyU64(&out, "cpu", tails[t].cpu);
    out += ",\"tail\":[";
    for (size_t i = 0; i < tails[t].records.size(); ++i) {
      const TailRecord& record = tails[t].records[i];
      if (i != 0) out += ',';
      out += '{';
      AppendKeyU64(&out, "tsc", record.tsc);
      out += ',';
      AppendKeyString(&out, "event", record.event);
      out += ",\"args\":[";
      for (size_t a = 0; a < 4; ++a) {
        if (a != 0) out += ',';
        char buf[32];
        std::snprintf(buf, sizeof(buf), "\"0x%" PRIx64 "\"", record.args[a]);
        out += buf;
      }
      out += "]}";
    }
    out += "],\"spans\":[";
    for (size_t i = 0; i < tails[t].spans.size(); ++i) {
      const TailSpan& span = tails[t].spans[i];
      if (i != 0) out += ',';
      out += '{';
      AppendKeyString(&out, "kind", span.kind);
      out += ',';
      AppendKeyU64(&out, "begin", span.begin_tsc);
      out += ',';
      AppendKeyU64(&out, "end", span.end_tsc);
      out += ',';
      AppendKeyU64(&out, "depth", span.depth);
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string PostmortemBundle::ToText() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "postmortem: module %s contained on cpu%u at tsc %" PRIu64
                "\n  reason:   %s (%s)\n  recovery: %s\n  engine:   %s\n",
                module.c_str(), cpu, tsc, reason.c_str(), what.c_str(),
                recovery.c_str(), engine.c_str());
  out += line;
  if (has_violation) {
    std::snprintf(line, sizeof(line),
                  "  violation: addr 0x%" PRIx64 " size %" PRIu64
                  " flags %u at %s\n",
                  violation_addr, violation_size, violation_flags,
                  site_label.c_str());
    out += line;
  }
  if (vm.valid) {
    std::snprintf(line, sizeof(line),
                  "  vm: @%s depth %u pc %" PRIu64 " (%" PRIu64
                  " loads, %" PRIu64 " stores, %" PRIu64 " ext calls)\n",
                  vm.function.c_str(), vm.depth, vm.stats.steps,
                  vm.stats.loads, vm.stats.stores, vm.stats.calls_external);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  journal: %" PRIu64 " rollbacks, %" PRIu64
                " entries undone of %" PRIu64 " recorded\n  heap: %" PRIu64
                " live blocks\n  restarts: %u attempts, %u completed\n",
                journal_rollbacks, journal_entries_undone,
                journal_entries_recorded, heap_live_blocks, restart_attempts,
                restarts_completed);
  out += line;
  if (policy.present) {
    std::snprintf(line, sizeof(line),
                  "  policy: %s, %" PRIu64 " frames published, store gen "
                  "%" PRIu64 " (%" PRIu64 " regions)\n",
                  policy.mode.c_str(), policy.frames_published,
                  policy.store_generation, policy.store_size);
    out += line;
  }
  for (const HeatSite& site : heatmap) {
    std::snprintf(line, sizeof(line), "  heat: %-40s %8" PRIu64 " hits %6"
                  PRIu64 " denied\n",
                  site.site.c_str(), site.hits, site.denied);
    out += line;
  }
  for (const CpuTail& tail : tails) {
    std::snprintf(line, sizeof(line), "  cpu%u trace tail (%zu records, %zu "
                  "spans):\n",
                  tail.cpu, tail.records.size(), tail.spans.size());
    out += line;
    for (const TailRecord& record : tail.records) {
      std::snprintf(line, sizeof(line),
                    "    %10" PRIu64 " %-22s 0x%" PRIx64 " 0x%" PRIx64
                    " 0x%" PRIx64 " 0x%" PRIx64 "\n",
                    record.tsc, record.event.c_str(), record.args[0],
                    record.args[1], record.args[2], record.args[3]);
      out += line;
    }
    for (const TailSpan& span : tail.spans) {
      std::snprintf(line, sizeof(line),
                    "    %10" PRIu64 " %-22s dur %" PRIu64 " depth %u\n",
                    span.begin_tsc, span.kind.c_str(),
                    span.end_tsc - span.begin_tsc, span.depth);
      out += line;
    }
  }
  return out;
}

void PostmortemStore::Capture(PostmortemBundle bundle) {
  uint64_t incidents = 0;
  {
    std::lock_guard<Spinlock> guard(lock_);
    ++incidents_;
    incidents = incidents_;
    ring_.push_back(std::move(bundle));
    if (ring_.size() > kKeep) ring_.erase(ring_.begin());
  }
  trace::GlobalMetrics().GetCounter("flight.postmortems")->Add();
  KOP_TRACE(kPostmortemCapture, 0, incidents, smp::CurrentCpu());
}

uint64_t PostmortemStore::incidents() const {
  std::lock_guard<Spinlock> guard(lock_);
  return incidents_;
}

bool PostmortemStore::Latest(PostmortemBundle* out) const {
  std::lock_guard<Spinlock> guard(lock_);
  if (ring_.empty()) return false;
  *out = ring_.back();
  return true;
}

std::vector<PostmortemBundle> PostmortemStore::All() const {
  std::lock_guard<Spinlock> guard(lock_);
  return ring_;
}

void PostmortemStore::Reset() {
  std::lock_guard<Spinlock> guard(lock_);
  ring_.clear();
  incidents_ = 0;
}

PostmortemStore& GlobalPostmortems() {
  if (tls_surface != nullptr) return tls_surface->store;
  static PostmortemStore store;
  return store;
}

ScopedFlightIsolation::ScopedFlightIsolation()
    : surface_(std::make_unique<Surface>()), prev_(tls_surface) {
  tls_surface = surface_.get();
}

ScopedFlightIsolation::~ScopedFlightIsolation() { tls_surface = prev_; }

}  // namespace kop::flight
