// kop::flight — the black-box layer over kop::trace. When containment
// fires (guard violation, watchdog expiry, panic, quarantine) the module
// loader snapshots everything a human needs to diagnose the incident
// into a PostmortemBundle: the per-CPU flight-recorder tails (trace ring
// + span ring), the engine's fault state, journal and heap-ledger
// summaries, the policy-frame generation and guard-site heatmap, and
// the recovery decision. Bundles render to deterministic JSON — same
// seed, same bundle, byte for byte, on either engine (the engine name
// is the one sanctioned difference) — and surface through a procfs
// node, CARAT_IOC_READ_POSTMORTEM, and `kopcc postmortem`.
//
// Layering: flight sits below the kernel (kernel links flight, not the
// other way round), and the policy-side fields arrive through provider
// hooks the policy module registers at insert time — flight never
// depends on kop::policy or kop::kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kop/kir/engine.hpp"
#include "kop/trace/span.hpp"
#include "kop/trace/trace.hpp"
#include "kop/util/spinlock.hpp"

namespace kop::flight {

/// One retained tracepoint firing, resolved to wire names. The global
/// seq is deliberately dropped: it counts from process start, so it
/// would make otherwise-identical bundles differ across runs.
struct TailRecord {
  uint64_t tsc = 0;
  std::string event;
  uint64_t args[4] = {0, 0, 0, 0};
};

/// One retained span on a CPU's flight-recorder ring.
struct TailSpan {
  std::string kind;
  uint64_t begin_tsc = 0;
  uint64_t end_tsc = 0;
  uint32_t depth = 0;
};

/// The newest events of one CPU, oldest first.
struct CpuTail {
  uint32_t cpu = 0;
  std::vector<TailRecord> records;
  std::vector<TailSpan> spans;
};

/// Guard-site heat, as rendered by the policy provider (labels come
/// from the site registry, so bundles are self-describing).
struct HeatSite {
  std::string site;
  uint64_t hits = 0;
  uint64_t denied = 0;
};

/// Policy-engine state at capture time, from the registered provider.
struct PolicyInfo {
  bool present = false;
  uint64_t frames_published = 0;
  uint64_t store_generation = 0;
  uint64_t store_size = 0;
  std::string mode;
};

/// Everything captured at the containment seam. Field order here is the
/// key order of the JSON rendering; keep DESIGN.md §14 in sync.
struct PostmortemBundle {
  std::string module;
  std::string engine;
  std::string reason;    // "violation" | "timeout" | "panic" | ...
  std::string what;      // human-readable detail (exception text)
  std::string recovery;  // decision taken: "panic"|"quarantine"|"restart"
  uint32_t cpu = 0;      // CPU the incident was contained on
  uint64_t tsc = 0;      // virtual cycles at capture

  // The denied access, when the incident was a guard violation.
  bool has_violation = false;
  uint64_t violation_addr = 0;
  uint64_t violation_size = 0;
  uint32_t violation_flags = 0;
  uint64_t site_token = 0;    // process-interned (runtime lookups only)
  uint32_t site_ordinal = 0;  // module-local guard ordinal (deterministic)
  std::string site_label;

  // Engine fault state (kir::EngineSnapshot, engine-neutral).
  kir::EngineSnapshot vm;

  // Journal and heap-ledger summaries for the contained slot.
  uint64_t journal_rollbacks = 0;
  uint64_t journal_entries_recorded = 0;
  uint64_t journal_entries_undone = 0;
  uint64_t heap_live_blocks = 0;
  std::vector<uint64_t> heap_live_addrs;  // first 8

  uint32_t restart_attempts = 0;
  uint32_t restarts_completed = 0;

  PolicyInfo policy;
  std::vector<HeatSite> heatmap;  // top sites by hits
  std::vector<CpuTail> tails;     // per-CPU flight-recorder tails

  /// Deterministic JSON (fixed key order, hex for addresses).
  std::string ToJson() const;
  /// Human-readable rendering for `kopcc postmortem`.
  std::string ToText() const;
};

/// Provider hooks the policy module registers on insert and clears on
/// removal; flight reads them at capture time. Null clears.
void SetPolicyProvider(std::function<PolicyInfo()> provider);
void SetHeatmapProvider(std::function<std::vector<HeatSite>()> provider);
PolicyInfo QueryPolicy();
std::vector<HeatSite> QueryHeatmap();

/// Fill the environment-derived fields of a bundle: per-CPU trace and
/// span tails (newest `tail_len` events per CPU that has any), policy
/// info, and the guard-site heatmap. The caller (the containment path)
/// fills the module/engine/journal/heap fields first-hand.
void FillEnvironment(PostmortemBundle* bundle, size_t tail_len = 16);

/// The process-wide incident store: the newest kKeep bundles plus a
/// lifetime incident counter. Capture fires the flight.postmortem
/// tracepoint and bumps the "flight.postmortems" metric.
class PostmortemStore {
 public:
  static constexpr size_t kKeep = 8;

  void Capture(PostmortemBundle bundle);

  /// Lifetime incidents captured (survives the ring wrapping).
  uint64_t incidents() const;

  /// Copy of the newest bundle; false when none captured yet.
  bool Latest(PostmortemBundle* out) const;

  /// Retained bundles, oldest first.
  std::vector<PostmortemBundle> All() const;

  /// Drop retained bundles and zero the incident counter (the fault
  /// campaign resets between trials for present-iff-contained checks).
  void Reset();

 private:
  mutable Spinlock lock_;
  std::vector<PostmortemBundle> ring_;
  uint64_t incidents_ = 0;
};

PostmortemStore& GlobalPostmortems();

/// RAII: give the calling thread a private flight surface — its own
/// PostmortemStore plus its own policy/heatmap provider slots — for the
/// lifetime of the scope. While armed, GlobalPostmortems(),
/// SetPolicyProvider/SetHeatmapProvider and QueryPolicy/QueryHeatmap on
/// this thread all resolve to the private surface; other threads (and
/// this thread outside the scope) keep the process-wide one.
///
/// This is the concurrency seam the forge campaign runs on: each worker
/// CPU hosts a stream of fresh simulated kernels, and every trial
/// resets the incident store and registers providers pointing into its
/// own (short-lived) policy engine. Without isolation those would race
/// across workers and dangle across trials. Scopes nest; the previous
/// surface is restored on destruction.
class ScopedFlightIsolation {
 public:
  // Opaque to callers; the implementation's thread-local surface slot
  // needs the name, so it cannot be a private member.
  struct Surface;

  ScopedFlightIsolation();
  ~ScopedFlightIsolation();
  ScopedFlightIsolation(const ScopedFlightIsolation&) = delete;
  ScopedFlightIsolation& operator=(const ScopedFlightIsolation&) = delete;

 private:
  std::unique_ptr<Surface> surface_;
  Surface* prev_;
};

}  // namespace kop::flight
