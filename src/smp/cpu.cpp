#include "kop/smp/cpu.hpp"

namespace kop::smp {
namespace {

thread_local uint32_t t_current_cpu = 0;

}  // namespace

uint32_t CurrentCpu() { return t_current_cpu; }

ScopedCpu::ScopedCpu(uint32_t cpu) : prev_(t_current_cpu) {
  t_current_cpu = cpu < kMaxCpus ? cpu : kMaxCpus - 1;
}

ScopedCpu::~ScopedCpu() { t_current_cpu = prev_; }

}  // namespace kop::smp
