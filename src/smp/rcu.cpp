#include "kop/smp/rcu.hpp"

#include <thread>

namespace kop::smp {
namespace {

// Process-wide reader-slot leases. A thread claims a slot index the
// first time it enters any domain's read section and returns it when the
// thread exits; every RcuDomain indexes its own epoch array by the same
// slot, so domains never have to learn about thread creation.
std::atomic<uint8_t> g_slot_used[kMaxRcuReaders] = {};

struct SlotLease {
  uint32_t index = 0;
  SlotLease() {
    for (;;) {
      for (uint32_t i = 0; i < kMaxRcuReaders; ++i) {
        uint8_t expected = 0;
        if (g_slot_used[i].compare_exchange_strong(
                expected, 1, std::memory_order_acq_rel)) {
          index = i;
          return;
        }
      }
      // Every slot busy: more live threads than kMaxRcuReaders. Wait for
      // one to exit rather than corrupting a slot.
      std::this_thread::yield();
    }
  }
  ~SlotLease() { g_slot_used[index].store(0, std::memory_order_release); }
};

uint32_t ThisThreadSlot() {
  thread_local SlotLease lease;
  return lease.index;
}

}  // namespace

RcuDomain::ReadGuard::ReadGuard(RcuDomain& domain)
    : domain_(domain), slot_(ThisThreadSlot()) {
  ReaderSlot& slot = domain_.readers_[slot_];
  if (slot.depth++ == 0) {
    // Pin the current epoch with a seq_cst store: it must be globally
    // visible before any subsequent load of the protected pointer, so a
    // writer that swapped the pointer and then polls the slots cannot
    // miss this reader.
    slot.epoch.store(domain_.global_epoch_.load(std::memory_order_relaxed),
                     std::memory_order_seq_cst);
  }
}

RcuDomain::ReadGuard::~ReadGuard() {
  ReaderSlot& slot = domain_.readers_[slot_];
  if (--slot.depth == 0) {
    slot.epoch.store(0, std::memory_order_release);
  }
}

void RcuDomain::Synchronize() {
  const uint64_t target =
      global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  for (const ReaderSlot& slot : readers_) {
    for (;;) {
      const uint64_t epoch = slot.epoch.load(std::memory_order_seq_cst);
      if (epoch == 0 || epoch >= target) break;
      std::this_thread::yield();
    }
  }
  ReclaimQuiescent();
}

void RcuDomain::RetireRaw(const void* p, void (*deleter)(const void*)) {
  // Bump the epoch so later read sections are distinguishable from any
  // reader that could still hold `p` — the object is reclaimable once
  // every active reader entered after this bump.
  const uint64_t retire_epoch =
      global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::lock_guard<Spinlock> guard(retired_lock_);
    retired_.push_back(RetiredObject{p, deleter, retire_epoch});
  }
  ReclaimQuiescent();
}

uint64_t RcuDomain::MinActiveEpoch() const {
  uint64_t min_epoch = ~uint64_t{0};
  for (const ReaderSlot& slot : readers_) {
    const uint64_t epoch = slot.epoch.load(std::memory_order_seq_cst);
    if (epoch != 0 && epoch < min_epoch) min_epoch = epoch;
  }
  return min_epoch;
}

void RcuDomain::ReclaimQuiescent() {
  std::vector<RetiredObject> to_free;
  {
    std::lock_guard<Spinlock> guard(retired_lock_);
    if (retired_.empty()) return;
    const uint64_t min_active = MinActiveEpoch();
    for (size_t i = 0; i < retired_.size();) {
      if (retired_[i].retire_epoch < min_active) {
        to_free.push_back(retired_[i]);
        retired_[i] = retired_.back();
        retired_.pop_back();
      } else {
        ++i;
      }
    }
  }
  for (const RetiredObject& object : to_free) {
    object.deleter(object.ptr);
  }
}

size_t RcuDomain::retired_count() const {
  std::lock_guard<Spinlock> guard(retired_lock_);
  return retired_.size();
}

RcuDomain::~RcuDomain() {
  // No readers may be active at destruction; free whatever is left.
  std::lock_guard<Spinlock> guard(retired_lock_);
  for (const RetiredObject& object : retired_) {
    object.deleter(object.ptr);
  }
  retired_.clear();
}

}  // namespace kop::smp
