// Queue↔CPU affinity for the multi-queue datapath. Real drivers pin one
// TX/RX queue pair per core so the per-CPU guard machinery (clock slots,
// policy-stat shards, trace rings) is the only state a queue's datapath
// touches — that is what turns kop::smp's per-CPU guard scaling into
// end-to-end packets/sec. The mapping is the standard round-robin both
// directions: with fewer CPUs than queues, a CPU services every queue
// congruent to it; with fewer queues than CPUs, CPUs share queues.
#pragma once

#include <cstdint>

#include "kop/smp/cpu.hpp"

namespace kop::smp {

/// The TX/RX queue CPU `cpu` owns when `num_queues` queues are spread
/// over `num_cpus` CPUs (netif_set_xps_queue's default spreading).
constexpr uint32_t QueueForCpu(uint32_t cpu, uint32_t num_queues) {
  return num_queues == 0 ? 0 : cpu % num_queues;
}

/// The CPU that owns `queue` — the inverse spreading (irqbalance's
/// round-robin of queue vectors over cores).
constexpr uint32_t CpuForQueue(uint32_t queue, uint32_t num_cpus) {
  return num_cpus == 0 ? 0 : queue % num_cpus;
}

/// True when `queue` is one of the queues `cpu` services: every queue
/// whose owning CPU is `cpu`. The per-CPU NAPI loop polls exactly its
/// owned set so no two CPUs ever touch one queue's ring state.
constexpr bool CpuOwnsQueue(uint32_t cpu, uint32_t queue,
                            uint32_t num_cpus) {
  return CpuForQueue(queue, num_cpus) == cpu;
}

/// The queue the calling CPU owns (bind with ScopedCpu first).
inline uint32_t MyQueue(uint32_t num_queues) {
  return QueueForCpu(CurrentCpu(), num_queues);
}

}  // namespace kop::smp
