// kop::smp — the simulated multi-CPU substrate. A "CPU" is a host thread
// that has bound itself to a simulated CPU id: every per-CPU structure in
// the tree (virtual-clock slots, trace-ring shards, policy-engine stats,
// module execution contexts) indexes by CurrentCpu(). The single-threaded
// configuration is CPU 0 everywhere, so code that never binds a CPU runs
// exactly as it did before SMP existed — the seam costs nothing unused.
#pragma once

#include <cstdint>

namespace kop::smp {

/// Hard ceiling on simulated CPUs. Per-CPU arrays are statically sized by
/// this so the hot paths index without bounds churn; 16 covers the
/// 1→8-CPU scaling experiments with headroom.
inline constexpr uint32_t kMaxCpus = 16;

/// The simulated CPU this host thread is bound to (0 when never bound —
/// the boot CPU, and the only CPU in single-threaded runs).
uint32_t CurrentCpu();

/// RAII CPU binding. The SMP executor binds each worker thread for the
/// duration of its workload; tests can bind ad hoc. Bindings nest (the
/// previous id is restored), though nesting is rare outside tests.
class ScopedCpu {
 public:
  explicit ScopedCpu(uint32_t cpu);
  ~ScopedCpu();
  ScopedCpu(const ScopedCpu&) = delete;
  ScopedCpu& operator=(const ScopedCpu&) = delete;

 private:
  uint32_t prev_;
};

}  // namespace kop::smp
