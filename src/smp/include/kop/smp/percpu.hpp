// PerCpu<T>: a fixed array of cache-line-padded per-CPU slots, indexed by
// smp::CurrentCpu(). The SMP contract is one host thread per simulated
// CPU, so a slot has a single writer and never false-shares with its
// neighbours; cross-CPU readers (stat folds, snapshots) synchronize at
// whatever level T provides (relaxed atomics for counters, a slot lock
// for structures).
#pragma once

#include <array>
#include <cstdint>

#include "kop/smp/cpu.hpp"

namespace kop::smp {

template <typename T>
class PerCpu {
 public:
  T& Get(uint32_t cpu) { return slots_[cpu].value; }
  const T& Get(uint32_t cpu) const { return slots_[cpu].value; }

  /// The calling thread's own slot.
  T& Mine() { return Get(CurrentCpu()); }
  const T& Mine() const { return Get(CurrentCpu()); }

  static constexpr uint32_t size() { return kMaxCpus; }

  /// Visit every slot: fn(cpu, slot). Fold-on-read helpers build on this.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (uint32_t cpu = 0; cpu < kMaxCpus; ++cpu) fn(cpu, slots_[cpu].value);
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint32_t cpu = 0; cpu < kMaxCpus; ++cpu) fn(cpu, slots_[cpu].value);
  }

 private:
  struct alignas(64) Slot {
    T value{};
  };
  std::array<Slot, kMaxCpus> slots_{};
};

}  // namespace kop::smp
