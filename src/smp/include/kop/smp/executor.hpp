// RunOnCpus: the SMP dispatcher. Spawns one host thread per simulated
// CPU, binds each to its CPU id (ScopedCpu), runs the body, joins, and
// rethrows the first exception any CPU raised. Deliberately minimal —
// determinism in the battery comes from the workloads (seeded per-CPU
// interleavings), not from the dispatcher.
#pragma once

#include <cstdint>
#include <functional>

namespace kop::smp {

/// Run `body(cpu)` concurrently on CPUs [0, cpus). Blocks until every
/// CPU finishes. If one or more bodies throw, the lowest-numbered CPU's
/// exception is rethrown after all threads have joined.
void RunOnCpus(uint32_t cpus, const std::function<void(uint32_t)>& body);

}  // namespace kop::smp
