// Epoch-based read-copy-update, the guard hot path's synchronization
// primitive. Readers never take a lock: entering a read-side critical
// section is one sequentially-consistent store to the thread's own
// padded epoch slot, leaving it is one release store. Writers publish a
// new version of the protected data (copy-publish), then either block
// for a grace period (Synchronize) or retire the old version for
// deferred reclamation once every reader that could hold it has left —
// the kernel's synchronize_rcu()/call_rcu() split.
//
// Reader slots are process-wide: a thread claims one the first time it
// enters any read section and releases it at thread exit, so domains can
// poll a fixed array instead of tracking thread lifetimes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "kop/util/spinlock.hpp"

namespace kop::smp {

/// Upper bound on threads concurrently inside read sections, across the
/// process (slots are reused as threads exit). Far above any simulated
/// CPU count; hitting it spins until a slot frees.
inline constexpr uint32_t kMaxRcuReaders = 64;

class RcuDomain {
 public:
  RcuDomain() = default;
  ~RcuDomain();
  RcuDomain(const RcuDomain&) = delete;
  RcuDomain& operator=(const RcuDomain&) = delete;

  /// RAII read-side critical section. Re-entrant: nested guards on the
  /// same thread keep the outermost epoch pin.
  class ReadGuard {
   public:
    explicit ReadGuard(RcuDomain& domain);
    ~ReadGuard();
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    RcuDomain& domain_;
    uint32_t slot_;
  };

  /// Block until every reader that was inside a read section when this
  /// call began has left it (a grace period). Must NOT be called from
  /// inside a read section of this domain.
  void Synchronize();

  /// Hand `p` to the domain for deferred deletion: it is freed once no
  /// reader can still hold it. Never blocks, so it is safe to call from
  /// inside a read section (the lazy-republish path does exactly that).
  template <typename T>
  void Retire(const T* p) {
    RetireRaw(p, [](const void* q) { delete static_cast<const T*>(q); });
  }

  /// Free every retired object whose grace period has elapsed. Called
  /// opportunistically by Retire and Synchronize; exposed for tests.
  void ReclaimQuiescent();

  /// Retired-but-not-yet-freed objects (test introspection).
  size_t retired_count() const;

 private:
  struct RetiredObject {
    const void* ptr;
    void (*deleter)(const void*);
    uint64_t retire_epoch;
  };

  /// One process-wide reader slot's view of THIS domain. `epoch` is the
  /// global epoch the reader pinned on entry (0 = quiescent); `depth`
  /// tracks nesting and is only ever touched by the owning thread.
  struct alignas(64) ReaderSlot {
    std::atomic<uint64_t> epoch{0};
    uint32_t depth = 0;
  };

  void RetireRaw(const void* p, void (*deleter)(const void*));

  /// Oldest epoch a still-active reader entered at (or ~0 when none).
  uint64_t MinActiveEpoch() const;

  std::atomic<uint64_t> global_epoch_{2};
  std::array<ReaderSlot, kMaxRcuReaders> readers_{};
  mutable Spinlock retired_lock_;
  std::vector<RetiredObject> retired_;
};

}  // namespace kop::smp
