#include "kop/smp/executor.hpp"

#include <exception>
#include <thread>
#include <vector>

#include "kop/smp/cpu.hpp"

namespace kop::smp {

void RunOnCpus(uint32_t cpus, const std::function<void(uint32_t)>& body) {
  if (cpus == 0) return;
  if (cpus > kMaxCpus) cpus = kMaxCpus;
  if (cpus == 1) {
    // Single-CPU runs stay on the calling thread: no scheduler noise, so
    // --cpus 1 is bit-identical to the non-SMP path.
    ScopedCpu bind(0);
    body(0);
    return;
  }
  std::vector<std::exception_ptr> errors(cpus);
  std::vector<std::thread> threads;
  threads.reserve(cpus);
  for (uint32_t cpu = 0; cpu < cpus; ++cpu) {
    threads.emplace_back([cpu, &body, &errors] {
      ScopedCpu bind(cpu);
      try {
        body(cpu);
      } catch (...) {
        errors[cpu] = std::current_exception();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace kop::smp
