#include "kop/analysis/guard_coverage.hpp"

#include <sstream>
#include <unordered_map>

#include "kop/analysis/guard_lattice.hpp"
#include "kop/kir/printer.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::analysis {
namespace {

struct Access {
  const kir::Value* addr;
  uint64_t size;
  uint64_t flags;
};

bool AccessOf(const kir::Instruction& inst, Access* access) {
  if (inst.opcode() == kir::Opcode::kLoad) {
    access->addr = inst.operand(0);
    access->size = kir::StoreSize(inst.memory_type());
    access->flags = kGuardAccessRead;
    return true;
  }
  if (inst.opcode() == kir::Opcode::kStore) {
    access->addr = inst.operand(1);
    access->size = kir::StoreSize(inst.memory_type());
    access->flags = kGuardAccessWrite;
    return true;
  }
  return false;
}

std::string Trimmed(std::string text) {
  const size_t begin = text.find_first_not_of(" \t\n");
  const size_t end = text.find_last_not_of(" \t\n");
  if (begin == std::string::npos) return "";
  return text.substr(begin, end - begin + 1);
}

}  // namespace

void CheckGuardCoverage(const kir::Module& module, AnalysisReport& report) {
  // Module-wide call ordinals, numbered exactly as the guard-site table
  // (transform::EnumerateGuardSites) numbers them: every kCall and every
  // kCallIndirect counts.
  std::unordered_map<const kir::Instruction*, int64_t> call_ordinal;
  int64_t next_ordinal = 0;
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kCall ||
            inst->opcode() == kir::Opcode::kCallIndirect) {
          call_ordinal[inst.get()] = next_ordinal++;
        }
      }
    }
  }

  for (const auto& fn : module.functions()) {
    if (fn->is_external() || fn->blocks().empty()) continue;

    // Function-wide instruction indices (block order, the guard-site
    // numbering).
    std::unordered_map<const kir::Instruction*, uint32_t> inst_index;
    uint32_t next_index = 0;
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) inst_index[inst.get()] = next_index++;
    }

    const kir::Cfg cfg(*fn);
    const DataflowResult<GuardSet> availability = SolveGuardAvailability(cfg);

    for (const kir::BasicBlock* block : cfg.ReversePostorder()) {
      GuardSet state = availability.in.at(block);
      for (const auto& inst : *block) {
        Access access;
        if (AccessOf(*inst, &access) &&
            !state.CoversAccess(access.addr, access.size, access.flags)) {
          Diagnostic d;
          d.severity = Severity::kError;
          d.analysis = "guard-coverage";
          d.function = fn->name();
          d.block = block->label();
          d.inst_index = inst_index.at(inst.get());

          std::ostringstream message;
          message << "unguarded "
                  << (access.flags == kGuardAccessWrite ? "store" : "load")
                  << " of " << access.size << " byte(s): `"
                  << Trimmed(kir::PrintInstruction(*inst)) << "`";
          if (const GuardFact* partial = state.FindPartial(access.addr)) {
            message << "; nearest guard for this address covers size "
                    << partial->size << " flags " << partial->flags
                    << " (need size >= " << access.size << " flags "
                    << access.flags << ")";
            const auto ordinal = call_ordinal.find(partial->origin);
            if (ordinal != call_ordinal.end()) d.guard_site = ordinal->second;
          } else {
            message << "; no guard for this address is available on every "
                       "path here";
          }
          d.message = message.str();
          report.diagnostics.push_back(std::move(d));
        }
        ApplyGuardStep(*inst, state);
      }
    }
  }
}

}  // namespace kop::analysis
