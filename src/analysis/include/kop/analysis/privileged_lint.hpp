// Privileged-operation and callee lint. Folds the checks the
// PrivilegedIntrinsicWrapPass performs ad hoc into the dataflow
// framework: every modeled kir.* privileged intrinsic should execute
// under an available carat_intrinsic_guard fact for its id (the same
// availability lattice guard coverage uses), and every external callee
// should be on the known-kernel-API whitelist — an import outside it is
// how a module reaches symbols the reviewer never considered.
#pragma once

#include <string>
#include <vector>

#include "kop/analysis/diagnostics.hpp"
#include "kop/kir/module.hpp"

namespace kop::analysis {

struct PrivilegedLintOptions {
  /// When true an unwrapped privileged intrinsic is an error (use for
  /// modules compiled with --wrap-priv, where the wrap pass promised
  /// every one is guarded); otherwise a warning.
  bool require_wrapped = false;
  /// Extra external symbols to accept beyond the built-in kernel API
  /// whitelist.
  std::vector<std::string> extra_allowed_externals;
};

/// The built-in whitelist: guard ABI symbols plus the kernel exports
/// every in-tree module may import.
bool IsWhitelistedExternal(const std::string& name,
                           const PrivilegedLintOptions& options);

/// Append privileged/callee diagnostics for `module` to `report`.
void CheckPrivileged(const kir::Module& module, AnalysisReport& report,
                     const PrivilegedLintOptions& options = {});

}  // namespace kop::analysis
