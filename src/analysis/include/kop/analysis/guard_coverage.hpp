// Guard-coverage verification: prove that every load and store in the
// module executes under an available carat_guard covering its (address,
// size, access kind) — the property the CARAT KOP compiler promises and
// the attestation merely asserts. Built on the shared availability
// lattice, so "covered" here means exactly what the guard optimizer
// means when it deletes a redundant guard.
#pragma once

#include "kop/analysis/diagnostics.hpp"
#include "kop/kir/module.hpp"

namespace kop::analysis {

/// Append guard-coverage diagnostics for `module` to `report`. Every
/// uncovered memory access yields one kError diagnostic naming the
/// function, block, function-wide instruction index and the offending
/// instruction; when a guard for the same address exists but fails to
/// cover (wrong size or flags), the diagnostic attributes it by its
/// module-wide guard-site call ordinal.
void CheckGuardCoverage(const kir::Module& module, AnalysisReport& report);

}  // namespace kop::analysis
