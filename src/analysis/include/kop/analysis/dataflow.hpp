// kop::analysis — a generic worklist dataflow solver over KIR CFGs.
//
// A Problem supplies the lattice and the transfer function:
//
//   struct Problem {
//     using State = ...;
//     State Boundary() const;   // state at the boundary block (entry for
//                               // forward, exit for backward)
//     State Top() const;        // meet identity / optimistic initial state
//     bool MeetInto(State& dst, const State& src) const;  // dst ⊓= src
//     bool Equal(const State& a, const State& b) const;
//     State Transfer(const kir::BasicBlock& block, State state) const;
//   };
//
// Transfer flows the state through a whole block: in program order for
// forward problems, in reverse program order for backward problems (the
// problem's Transfer must match the direction it is solved in). The
// solver iterates to fixpoint from Top, so meets must only move states
// down the lattice; termination needs finite-height lattices, which every
// client here has (fact sets drawn from the function's instructions).
//
// Results are keyed in PROGRAM order for both directions: `in[B]` is the
// state at the top of block B, `out[B]` at the bottom. Unreachable blocks
// are not solved and are absent from the maps — they never execute, so no
// client should draw conclusions about them.
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "kop/kir/cfg.hpp"

namespace kop::analysis {

template <typename State>
struct DataflowResult {
  std::unordered_map<const kir::BasicBlock*, State> in;
  std::unordered_map<const kir::BasicBlock*, State> out;
};

template <typename Problem>
DataflowResult<typename Problem::State> SolveForward(const kir::Cfg& cfg,
                                                     const Problem& problem) {
  using State = typename Problem::State;
  DataflowResult<State> result;
  const auto& rpo = cfg.ReversePostorder();
  if (rpo.empty()) return result;
  const kir::BasicBlock* entry = rpo.front();

  for (const kir::BasicBlock* block : rpo) {
    result.out.emplace(block, problem.Top());
  }

  std::deque<const kir::BasicBlock*> worklist(rpo.begin(), rpo.end());
  std::unordered_set<const kir::BasicBlock*> queued(rpo.begin(), rpo.end());
  while (!worklist.empty()) {
    const kir::BasicBlock* block = worklist.front();
    worklist.pop_front();
    queued.erase(block);

    // Entry keeps the boundary state; back edges into the entry (a loop
    // headed by the first block) still meet in, which is conservative.
    State in = block == entry ? problem.Boundary() : problem.Top();
    for (const kir::BasicBlock* pred : cfg.preds(block)) {
      if (!cfg.IsReachable(pred)) continue;
      problem.MeetInto(in, result.out.at(pred));
    }

    State out = problem.Transfer(*block, in);
    result.in.insert_or_assign(block, std::move(in));
    if (!problem.Equal(out, result.out.at(block))) {
      result.out.insert_or_assign(block, std::move(out));
      for (const kir::BasicBlock* succ : cfg.succs(block)) {
        if (queued.insert(succ).second) worklist.push_back(succ);
      }
    }
  }
  return result;
}

template <typename Problem>
DataflowResult<typename Problem::State> SolveBackward(const kir::Cfg& cfg,
                                                      const Problem& problem) {
  using State = typename Problem::State;
  DataflowResult<State> result;
  const auto& rpo = cfg.ReversePostorder();
  if (rpo.empty()) return result;

  for (const kir::BasicBlock* block : rpo) {
    result.in.emplace(block, problem.Top());
  }

  // Postorder (reversed RPO) is the natural seed order for backward flow.
  std::deque<const kir::BasicBlock*> worklist(rpo.rbegin(), rpo.rend());
  std::unordered_set<const kir::BasicBlock*> queued(rpo.begin(), rpo.end());
  while (!worklist.empty()) {
    const kir::BasicBlock* block = worklist.front();
    worklist.pop_front();
    queued.erase(block);

    const auto& succs = cfg.succs(block);
    State out = succs.empty() ? problem.Boundary() : problem.Top();
    for (const kir::BasicBlock* succ : succs) {
      problem.MeetInto(out, result.in.at(succ));
    }

    State in = problem.Transfer(*block, out);
    result.out.insert_or_assign(block, std::move(out));
    if (!problem.Equal(in, result.in.at(block))) {
      result.in.insert_or_assign(block, std::move(in));
      for (const kir::BasicBlock* pred : cfg.preds(block)) {
        if (!cfg.IsReachable(pred)) continue;
        if (queued.insert(pred).second) worklist.push_back(pred);
      }
    }
  }
  return result;
}

}  // namespace kop::analysis
