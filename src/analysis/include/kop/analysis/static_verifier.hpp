// The load-time static verifier: one entry point that runs every
// kop::analysis check over a module and returns the aggregated report.
// This is what replaces "trust the attestation": the kernel can prove
// guard completeness on the IR it actually received instead of believing
// a bit the compiler set.
#pragma once

#include "kop/analysis/diagnostics.hpp"
#include "kop/analysis/privileged_lint.hpp"
#include "kop/kir/module.hpp"

namespace kop::analysis {

struct StaticVerifyOptions {
  /// Run the pointer-provenance check (warnings/notes only).
  bool provenance = true;
  /// Run the privileged-intrinsic / callee-whitelist lint.
  bool privileged = true;
  /// Run the CFI completeness/target-set must-analysis (DESIGN.md §16).
  bool cfi = true;
  PrivilegedLintOptions privileged_options;
};

/// Run guard-coverage (always) plus the optional checks; diagnostics
/// arrive in check order: guard-coverage, provenance, privileged, cfi.
/// The report rejects (ok() == false) on guard-coverage and cfi errors,
/// and additionally on privileged-lint errors when
/// `privileged_options.require_wrapped` escalates the lint.
AnalysisReport AnalyzeModule(const kir::Module& module,
                             const StaticVerifyOptions& options = {});

}  // namespace kop::analysis
