// kop::cfi — attested call-graph derivation for indirect calls
// (DESIGN.md §16). One derivation, three consumers:
//
//   - the CfiInjectionPass lowers every `icall` to a preceding
//     carat_cfi_check(target, set_id) against the sets derived here and
//     records them in the signed attestation,
//   - kopcc check surfaces the per-site sets as diagnostics/JSON,
//   - the insmod static verifier re-derives the sets from the shipped IR
//     and rejects attestations whose claimed sets differ — forged, stale,
//     or wider-than-proof tables never reach the policy engine.
//
// The derivation is a forward points-to fixpoint over function-pointer
// values: `funcaddr` roots are singletons, phi/select join by union, and
// anything that launders a pointer through memory or arithmetic
// (load, inttoptr, gep, call results) degrades to ⊤. ⊤ resolves to the
// sound over-approximation "every address-taken function whose signature
// matches the call site" — the classic type-based CFI fallback. External
// targets are additionally gated: only exported kernel entry points may
// ever be address-taken (the module<->kernel call gate), so the guard
// symbols themselves can never become indirect-call targets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kop/analysis/diagnostics.hpp"
#include "kop/kir/instruction.hpp"
#include "kop/kir/module.hpp"

namespace kop::analysis {

/// One legal-target set: sorted, unique function names (defined or
/// declared). Sets are deduplicated by content module-wide.
struct CfiTargetSet {
  std::vector<std::string> members;

  bool operator==(const CfiTargetSet& other) const {
    return members == other.members;
  }
};

/// One indirect-call site with its derived legal-target set and the
/// adjacency facts the completeness must-analysis consumes.
struct CfiSite {
  std::string function;
  std::string block;
  uint32_t inst_index = 0;    // function-wide instruction index of the icall
  uint64_t call_ordinal = 0;  // module-wide call ordinal of the icall
  uint32_t set_id = 0;        // index into CfiSummary::sets
  bool gate = false;          // set names at least one external symbol
  bool derived_top = false;   // lattice hit ⊤ (type-compatible closure)
  const kir::Instruction* inst = nullptr;  // the icall, for attribution

  // The instruction immediately before the icall in the same block, when
  // it is a carat_cfi_check call (the only placement the injection pass
  // produces and the only one the verifier accepts):
  bool has_check = false;            // adjacent carat_cfi_check exists
  bool check_covers_target = false;  // ...and guards the icall's target SSA
                                     // value (not some other pointer)
  int64_t check_set_id = -1;   // constant set-id operand, -1 when absent
                               // or non-constant
  int64_t check_ordinal = -1;  // module-wide call ordinal of the check

  // Finite-set members dropped because their signature cannot match this
  // call site (wrong return type or parameter list) — calling one would
  // fault at dispatch, so CheckCfi reports each as an error.
  std::vector<std::string> incompatible;
};

struct CfiSummary {
  std::vector<CfiTargetSet> sets;  // deduped, first-use order
  std::vector<CfiSite> sites;      // icalls in module program order
  std::vector<std::string> address_taken;  // every funcaddr'd name, sorted
};

/// True when `name` is an exported kernel entry point that indirect calls
/// may legally target through the module<->kernel call gate. Deliberately
/// excludes the guard/CFI symbols: policy-module entry points are direct-
/// call-only.
bool IsExportedKernelEntry(const std::string& name);

/// Derive the per-indirect-call legal target sets for `module`.
/// Deterministic: re-running on the same IR (before or after check
/// injection — checks are plain calls and do not feed the pointer
/// lattice) yields identical sets and numbering, which is what lets the
/// insmod verifier compare attested tables by exact equality.
CfiSummary DeriveCfi(const kir::Module& module);

/// The CFI completeness/structural must-analysis (analysis name "cfi"):
///   - funcaddr of an external symbol outside the exported-kernel-entry
///     whitelist -> error,
///   - finite-set member with an incompatible signature -> error,
///   - empty legal-target set -> warning,
///   - when the module imports carat_cfi_check (i.e. claims CFI):
///     missing/misplaced/mistargeted/mis-numbered checks -> error,
///   - otherwise each ungated icall -> note.
void CheckCfi(const kir::Module& module, AnalysisReport& report);

}  // namespace kop::analysis
