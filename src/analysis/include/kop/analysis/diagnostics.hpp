// Structured diagnostics shared by every kop::analysis check and its
// consumers (kopcc check, the module loader, tests). One diagnostic
// pinpoints one instruction: function, block label, function-wide
// instruction index (the same numbering guard-site tables use) and, when
// the finding is about a specific guard call, that call's module-wide
// ordinal for attribution against the attestation's site table.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kop::analysis {

enum class Severity : uint8_t {
  kError,    // the module must not be inserted
  kWarning,  // suspicious but not disqualifying
  kNote,     // informational
};

std::string_view SeverityName(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string analysis;  // "guard-coverage" | "provenance" | "privileged"
  std::string function;  // without '@'
  std::string block;     // label
  uint32_t inst_index = 0;  // function-wide instruction index
  /// Module-wide call ordinal of the guard call this finding attributes
  /// (e.g. the undersized guard that failed to cover an access); -1 when
  /// no guard site is involved.
  int64_t guard_site = -1;
  std::string message;

  bool operator==(const Diagnostic&) const = default;
};

/// The outcome of running analyses over one module.
struct AnalysisReport {
  std::string module_name;
  std::vector<Diagnostic> diagnostics;

  size_t errors() const;
  size_t warnings() const;
  size_t notes() const;
  /// True when no diagnostic is an error (warnings/notes do not reject).
  bool ok() const { return errors() == 0; }
};

/// Human-readable rendering, one line per diagnostic:
///   error: [guard-coverage] @poke, block merge, inst 5: store i64 ...
std::string RenderText(const AnalysisReport& report);

/// Stable machine-readable rendering (the `kopcc check --json` contract):
/// {"module":...,"errors":N,"warnings":N,"notes":N,"diagnostics":[{...}]}
/// with diagnostic fields severity/analysis/function/block/inst_index/
/// guard_site/message in that order.
std::string RenderJson(const AnalysisReport& report);

/// Escape a string for embedding in a JSON string literal.
std::string JsonEscape(std::string_view text);

}  // namespace kop::analysis
