// Pointer-provenance classification: where does each address a module
// dereferences come from? Module-local allocations and module globals are
// the benign cases; kernel-supplied pointers are expected (that is what
// guards police); a pointer with no traceable origin — materialized from
// an integer, loaded from memory, or a raw constant — is how a module
// smuggles a forged address past review, so writes through one are
// flagged.
#pragma once

#include <unordered_map>

#include "kop/analysis/diagnostics.hpp"
#include "kop/kir/module.hpp"
#include "kop/kir/value.hpp"

namespace kop::analysis {

enum class Provenance : uint8_t {
  kUnknown,  // inttoptr, ptr load, raw constant, or conflicting joins
  kLocal,    // alloca in this function
  kGlobal,   // module global (possibly via gep)
  kKernel,   // function argument or external-call result
  kCode,     // funcaddr — a function address taken for an indirect call
};

std::string_view ProvenanceName(Provenance provenance);

/// Classify every pointer-typed value in `fn` by a forward fixpoint
/// (phi/select join to the common class, or kUnknown on conflict).
/// Values that are not pointers are absent from the result.
std::unordered_map<const kir::Value*, Provenance> ClassifyPointers(
    const kir::Function& fn);

/// Append provenance diagnostics: a store through a kUnknown pointer is a
/// kWarning, a load through one a kNote.
void CheckProvenance(const kir::Module& module, AnalysisReport& report);

}  // namespace kop::analysis
