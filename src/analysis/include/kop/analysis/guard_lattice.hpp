// The available-guards lattice: the one definition of "which carat_guard
// facts hold here" shared by the static guard-coverage verifier and the
// guard-optimization passes. A fact (addr, size, flags) is available at a
// program point when a guard call with exactly that address SSA value,
// at least that size, and a flag superset has executed on EVERY path from
// the entry with no intervening policy-mutating call. Using one lattice
// for both the optimizer (which deletes redundant guards) and the
// verifier (which proves the remaining guards sufficient) is what makes
// the pair sound: they cannot disagree about availability.
#pragma once

#include <cstdint>
#include <vector>

#include "kop/analysis/dataflow.hpp"
#include "kop/kir/cfg.hpp"
#include "kop/kir/instruction.hpp"

namespace kop::analysis {

/// Peel constant-index kGep chains off an address: returns the root SSA
/// value and accumulates the constant byte offset into `*offset` (which
/// must start at the caller's chosen base, normally 0). A gep whose index
/// is not a kir::Constant stops the walk. For a non-gep value the result
/// is the value itself with offset 0 — so two addresses compare interval-
/// wise exactly when they share a root.
const kir::Value* ResolveConstGep(const kir::Value* addr, uint64_t* offset);

/// One available memory-guard fact. `origin` is the guard call that
/// established the fact — kept for diagnostics attribution, excluded from
/// fact identity (two guards with the same triple are the same fact).
/// Every fact is an interval: carat_guard(addr, size) licenses any access
/// wholly inside [addr, addr+size), and carat_guard_range covers are just
/// facts with a wider size. `root`/`root_offset` cache ResolveConstGep of
/// `addr` so interval covering across distinct gep-derived SSA values is a
/// root comparison plus arithmetic.
struct GuardFact {
  const kir::Value* addr = nullptr;
  uint64_t size = 0;
  uint64_t flags = 0;
  const kir::Instruction* origin = nullptr;
  const kir::Value* root = nullptr;  // ResolveConstGep(addr)
  uint64_t root_offset = 0;          // constant byte offset of addr from root
  bool is_range = false;             // fact from a carat_guard_range cover

  /// True when this fact licenses an access of (`addr`, `size`, `flags`):
  /// same SSA address value, at least as large, flag superset.
  bool Covers(const kir::Value* a, uint64_t s, uint64_t f) const {
    return addr == a && size >= s && (flags & f) == f;
  }
  /// Interval form: the access at constant offset `off` from `r` of `s`
  /// bytes lies wholly inside this fact's [root_offset, root_offset+size)
  /// window on the same root, with a flag superset.
  bool CoversInterval(const kir::Value* r, uint64_t off, uint64_t s,
                      uint64_t f) const {
    return root != nullptr && root == r && off >= root_offset &&
           off - root_offset <= size && size - (off - root_offset) >= s &&
           (flags & f) == f;
  }
  bool SameKey(const GuardFact& other) const {
    return addr == other.addr && size == other.size && flags == other.flags;
  }
};

/// One available privileged-intrinsic guard fact: carat_intrinsic_guard(id)
/// has executed on every path here.
struct IntrinsicGuardFact {
  uint64_t id = 0;
  const kir::Instruction* origin = nullptr;
};

/// A set of available guard facts, or ⊤ (the universe: "every fact
/// holds"). ⊤ is the optimistic initial state of the fixpoint and only
/// ever appears mid-iteration; at the fixpoint every reachable block's
/// state is a concrete set.
class GuardSet {
 public:
  static GuardSet MakeEmpty() { return GuardSet(false); }
  static GuardSet MakeUniverse() { return GuardSet(true); }

  bool is_universe() const { return universe_; }
  const std::vector<GuardFact>& facts() const { return facts_; }
  const std::vector<IntrinsicGuardFact>& intrinsics() const {
    return intrinsics_;
  }

  /// Add a fact (no-op on an exact-key duplicate; ⊤ absorbs everything).
  void AddGuard(const GuardFact& fact);
  void AddIntrinsic(uint64_t id, const kir::Instruction* origin);

  /// Drop every fact (a policy-mutating call happened).
  void Clear();

  /// The fact covering (`addr`, `size`, `flags`), or nullptr. Never call
  /// on ⊤ when attribution matters; CoversAccess answers the pure query.
  const GuardFact* FindCovering(const kir::Value* addr, uint64_t size,
                                uint64_t flags) const;
  bool CoversAccess(const kir::Value* addr, uint64_t size,
                    uint64_t flags) const {
    return universe_ || FindCovering(addr, size, flags) != nullptr;
  }

  /// A fact for the same address that fails to cover — the "you guarded
  /// this pointer, but not enough" diagnostic hook. Null if none.
  const GuardFact* FindPartial(const kir::Value* addr) const;

  bool CoversIntrinsic(uint64_t id) const;

  /// dst ⊓= src: keep exactly the facts covered by both sides. Returns
  /// true when this set changed.
  bool MeetInto(const GuardSet& src);

  /// Set equality by fact keys (origin is attribution, not identity).
  bool operator==(const GuardSet& other) const;

 private:
  explicit GuardSet(bool universe) : universe_(universe) {}

  bool universe_;
  std::vector<GuardFact> facts_;
  std::vector<IntrinsicGuardFact> intrinsics_;
};

/// Decode a well-formed carat_guard(addr, const size, const flags) call
/// into a fact. False for anything else, including guard calls with
/// non-constant size/flags (those add no analyzable fact).
bool MatchGuardCall(const kir::Instruction& inst, GuardFact* fact);

/// Decode a carat_guard_range(addr, const span, const flags, const elided)
/// cover into an interval fact of `span` bytes. False for anything else.
bool MatchGuardRangeCall(const kir::Instruction& inst, GuardFact* fact);

/// The per-instruction transfer function. Exactly seven cases:
///   carat_guard with constant operands      -> gen a GuardFact
///   carat_guard_range with constant operands-> gen an interval GuardFact
///   carat_intrinsic_guard with constant id  -> gen an IntrinsicGuardFact
///   kir.* intrinsic call                    -> no effect (the resolver
///     dispatches these through the intrinsic table; none can reach the
///     policy module's mutation paths)
///   carat_cfi_check                         -> no effect (reads the
///     target-set table, never mutates the region table)
///   any other direct call                   -> kill everything
///   indirect call                           -> kill everything
/// Non-call instructions never touch the set.
void ApplyGuardStep(const kir::Instruction& inst, GuardSet& state);

/// Forward must-analysis problem for SolveForward: boundary = no guards
/// at the function entry, meet = covering intersection, transfer = the
/// guard step over the block in program order.
struct GuardAvailabilityProblem {
  using State = GuardSet;
  State Boundary() const { return GuardSet::MakeEmpty(); }
  State Top() const { return GuardSet::MakeUniverse(); }
  bool MeetInto(State& dst, const State& src) const {
    return dst.MeetInto(src);
  }
  bool Equal(const State& a, const State& b) const { return a == b; }
  State Transfer(const kir::BasicBlock& block, State state) const;
};

/// Solve guard availability for one function over its Cfg. `in[B]` is the
/// guard set available on entry to B at fixpoint.
DataflowResult<GuardSet> SolveGuardAvailability(const kir::Cfg& cfg);

}  // namespace kop::analysis
