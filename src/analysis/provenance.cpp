#include "kop/analysis/provenance.hpp"

#include <sstream>

#include "kop/kir/cfg.hpp"
#include "kop/kir/printer.hpp"

namespace kop::analysis {

std::string_view ProvenanceName(Provenance provenance) {
  switch (provenance) {
    case Provenance::kUnknown: return "unknown";
    case Provenance::kLocal: return "local";
    case Provenance::kGlobal: return "global";
    case Provenance::kKernel: return "kernel";
    case Provenance::kCode: return "code";
  }
  return "?";
}

namespace {

bool IsPointer(const kir::Value& value) {
  return value.type() == kir::Type::kPtr;
}

/// Join for phi/select: agreeing classes keep their class, disagreement
/// (or any unknown input) degrades to unknown.
Provenance Join(Provenance a, Provenance b) {
  if (a == b) return a;
  return Provenance::kUnknown;
}

}  // namespace

std::unordered_map<const kir::Value*, Provenance> ClassifyPointers(
    const kir::Function& fn) {
  std::unordered_map<const kir::Value*, Provenance> classes;

  // Roots with intrinsic provenance.
  for (const auto& arg : fn.args()) {
    if (IsPointer(*arg)) classes[arg.get()] = Provenance::kKernel;
  }

  // `lookup` treats an unclassified operand optimistically during the
  // fixpoint: phi inputs from blocks not yet visited stay neutral until
  // they get a class, so a loop-carried pointer keeps its real class
  // instead of defaulting to unknown.
  auto lookup = [&classes](const kir::Value* value,
                           bool* known) -> Provenance {
    if (const auto* global = kir::dyn_cast<kir::GlobalVariable>(value)) {
      (void)global;
      *known = true;
      return Provenance::kGlobal;
    }
    if (kir::isa<kir::Constant>(value)) {
      // A raw constant used as an address has no provenance at all.
      *known = true;
      return Provenance::kUnknown;
    }
    const auto it = classes.find(value);
    if (it == classes.end()) {
      *known = false;
      return Provenance::kUnknown;
    }
    *known = true;
    return it->second;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& block : fn.blocks()) {
      for (const auto& inst : *block) {
        if (!IsPointer(*inst)) continue;
        Provenance next = Provenance::kUnknown;
        switch (inst->opcode()) {
          case kir::Opcode::kAlloca:
            next = Provenance::kLocal;
            break;
          case kir::Opcode::kGep: {
            bool known = false;
            next = lookup(inst->operand(0), &known);
            if (!known) continue;  // base not classified yet
            break;
          }
          case kir::Opcode::kCall:
          case kir::Opcode::kCallIndirect:
            // A pointer handed back by a callee is kernel-side memory as
            // far as this module can tell (kmalloc and friends).
            next = Provenance::kKernel;
            break;
          case kir::Opcode::kFuncAddr:
            // A taken function address: traceable, but it is code, not
            // data — indirect calls through it are fine (the CFI check
            // polices which code), memory accesses through it are not.
            next = Provenance::kCode;
            break;
          case kir::Opcode::kPhi:
          case kir::Opcode::kSelect: {
            const size_t first =
                inst->opcode() == kir::Opcode::kSelect ? 1 : 0;
            bool any_known = false;
            bool seeded = false;
            Provenance joined = Provenance::kUnknown;
            for (size_t i = first; i < inst->operand_count(); ++i) {
              bool known = false;
              const Provenance p = lookup(inst->operand(i), &known);
              if (!known) continue;  // optimistic: skip unvisited inputs
              any_known = true;
              joined = seeded ? Join(joined, p) : p;
              seeded = true;
            }
            if (!any_known) continue;
            next = joined;
            break;
          }
          case kir::Opcode::kIntToPtr:
          case kir::Opcode::kLoad:
          default:
            // Materialized from an integer or fetched from memory: no
            // traceable origin.
            next = Provenance::kUnknown;
            break;
        }
        const auto it = classes.find(inst.get());
        if (it == classes.end()) {
          classes[inst.get()] = next;
          changed = true;
        } else if (it->second != next) {
          // Monotone refinement: classes only ever degrade toward
          // unknown once set, which guarantees termination.
          const Provenance merged = Join(it->second, next);
          if (merged != it->second) {
            it->second = merged;
            changed = true;
          }
        }
      }
    }
  }
  return classes;
}

void CheckProvenance(const kir::Module& module, AnalysisReport& report) {
  for (const auto& fn : module.functions()) {
    if (fn->is_external() || fn->blocks().empty()) continue;
    const auto classes = ClassifyPointers(*fn);

    uint32_t inst_index = 0;
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        const uint32_t index = inst_index++;
        if (!inst->IsMemoryAccess()) continue;
        const bool is_store = inst->opcode() == kir::Opcode::kStore;
        const kir::Value* addr = inst->operand(is_store ? 1 : 0);

        Provenance provenance = Provenance::kUnknown;
        if (kir::isa<kir::GlobalVariable>(addr)) {
          provenance = Provenance::kGlobal;
        } else {
          const auto it = classes.find(addr);
          if (it != classes.end()) provenance = it->second;
        }
        if (provenance != Provenance::kUnknown) continue;

        Diagnostic d;
        d.severity = is_store ? Severity::kWarning : Severity::kNote;
        d.analysis = "provenance";
        d.function = fn->name();
        d.block = block->label();
        d.inst_index = index;
        std::ostringstream message;
        message << (is_store ? "store through" : "load through")
                << " pointer with no traceable provenance: `"
                << kir::PrintInstruction(*inst) << "`";
        d.message = message.str();
        report.diagnostics.push_back(std::move(d));
      }
    }
  }
}

}  // namespace kop::analysis
