#include "kop/analysis/privileged_lint.hpp"

#include <sstream>
#include <unordered_map>

#include "kop/analysis/guard_lattice.hpp"
#include "kop/analysis/provenance.hpp"
#include "kop/kir/cfg.hpp"
#include "kop/kir/intrinsics.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::analysis {

bool IsWhitelistedExternal(const std::string& name,
                           const PrivilegedLintOptions& options) {
  // Guard ABI plus the kernel exports every in-tree module may import.
  static constexpr const char* kKnown[] = {
      "printk_str",
      "kmalloc",
      "kfree",
  };
  if (name == kCaratGuardSymbol || name == kCaratGuardRangeSymbol ||
      name == kCaratIntrinsicGuardSymbol || name == kCaratCfiCheckSymbol) {
    return true;
  }
  for (const char* known : kKnown) {
    if (name == known) return true;
  }
  for (const std::string& extra : options.extra_allowed_externals) {
    if (name == extra) return true;
  }
  return false;
}

void CheckPrivileged(const kir::Module& module, AnalysisReport& report,
                     const PrivilegedLintOptions& options) {
  for (const auto& fn : module.functions()) {
    if (fn->is_external() || fn->blocks().empty()) continue;

    std::unordered_map<const kir::Instruction*, uint32_t> inst_index;
    uint32_t next_index = 0;
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) inst_index[inst.get()] = next_index++;
    }

    const kir::Cfg cfg(*fn);
    const DataflowResult<GuardSet> availability = SolveGuardAvailability(cfg);
    // Shared with the provenance check: one classification answers both
    // "store through what?" and "indirect call through what?".
    const auto pointer_classes = ClassifyPointers(*fn);

    for (const kir::BasicBlock* block : cfg.ReversePostorder()) {
      GuardSet state = availability.in.at(block);
      for (const auto& inst : *block) {
        const auto emit = [&](Severity severity, std::string message) {
          Diagnostic d;
          d.severity = severity;
          d.analysis = "privileged";
          d.function = fn->name();
          d.block = block->label();
          d.inst_index = inst_index.at(inst.get());
          d.message = std::move(message);
          report.diagnostics.push_back(std::move(d));
        };

        if (inst->opcode() == kir::Opcode::kCallIndirect) {
          // A function pointer that came out of inttoptr / a load / any
          // other untraceable source is the control-flow twin of a wild
          // store: flag it here, and let the CFI must-analysis decide
          // whether a check gates it.
          const kir::Value* target = inst->operand(0);
          auto it = pointer_classes.find(target);
          const Provenance p =
              it == pointer_classes.end() ? Provenance::kUnknown : it->second;
          if (p == Provenance::kUnknown) {
            emit(Severity::kWarning,
                 "indirect call through a pointer with no traceable "
                 "provenance (inttoptr or loaded)");
          }
          ApplyGuardStep(*inst, state);
          continue;
        }
        if (inst->opcode() != kir::Opcode::kCall) {
          continue;
        }
        const std::string& callee = inst->callee();

        if (kir::IsIntrinsicName(callee)) {
          const kir::Intrinsic intrinsic = kir::IntrinsicFromName(callee);
          if (intrinsic == kir::Intrinsic::kNone) {
            emit(Severity::kNote,
                 "call to unmodeled kir.* intrinsic `" + callee + "`");
          } else if (!state.CoversIntrinsic(
                         static_cast<uint64_t>(intrinsic))) {
            std::ostringstream message;
            message << "privileged intrinsic `" << callee
                    << "` executes without an available "
                    << kCaratIntrinsicGuardSymbol << "("
                    << static_cast<uint64_t>(intrinsic) << ") on every path";
            emit(options.require_wrapped ? Severity::kError
                                         : Severity::kWarning,
                 message.str());
          }
        } else if (callee != kCaratGuardSymbol &&
                   callee != kCaratGuardRangeSymbol &&
                   callee != kCaratIntrinsicGuardSymbol) {
          const kir::Function* target = module.FindFunction(callee);
          const bool external = target == nullptr || target->is_external();
          if (external && !IsWhitelistedExternal(callee, options)) {
            emit(Severity::kWarning,
                 "call to external symbol `" + callee +
                     "` outside the known kernel API whitelist");
          }
        }
        ApplyGuardStep(*inst, state);
      }
    }
  }
}

}  // namespace kop::analysis
