#include "kop/analysis/guard_lattice.hpp"

#include <algorithm>

#include "kop/kir/basic_block.hpp"
#include "kop/kir/intrinsics.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::analysis {
namespace {

/// Exact-value or interval covering of `want` by `have` — the one covering
/// relation both meet directions and the access query use, so optimizer
/// and verifier agree on it by construction.
bool FactCovers(const GuardFact& have, const GuardFact& want) {
  if (have.Covers(want.addr, want.size, want.flags)) return true;
  return have.CoversInterval(want.root, want.root_offset, want.size,
                             want.flags);
}

}  // namespace

const kir::Value* ResolveConstGep(const kir::Value* addr, uint64_t* offset) {
  while (true) {
    const auto* inst = kir::dyn_cast<kir::Instruction>(addr);
    if (inst == nullptr || inst->opcode() != kir::Opcode::kGep) return addr;
    const auto* index = kir::dyn_cast<kir::Constant>(inst->operand(1));
    if (index == nullptr) return addr;
    *offset += index->bits() * inst->gep_scale() + inst->gep_offset();
    addr = inst->operand(0);
  }
}

void GuardSet::AddGuard(const GuardFact& fact) {
  if (universe_) return;
  for (const GuardFact& have : facts_) {
    if (have.SameKey(fact)) return;
  }
  facts_.push_back(fact);
}

void GuardSet::AddIntrinsic(uint64_t id, const kir::Instruction* origin) {
  if (universe_) return;
  for (const IntrinsicGuardFact& have : intrinsics_) {
    if (have.id == id) return;
  }
  intrinsics_.push_back(IntrinsicGuardFact{id, origin});
}

void GuardSet::Clear() {
  universe_ = false;
  facts_.clear();
  intrinsics_.clear();
}

const GuardFact* GuardSet::FindCovering(const kir::Value* addr, uint64_t size,
                                        uint64_t flags) const {
  for (const GuardFact& fact : facts_) {
    if (fact.Covers(addr, size, flags)) return &fact;
  }
  // Interval covering: the access at a constant gep offset from some root
  // may fall inside a wider fact on that root (a carat_guard_range cover,
  // or simply a larger guard of the same object).
  uint64_t offset = 0;
  const kir::Value* root = ResolveConstGep(addr, &offset);
  for (const GuardFact& fact : facts_) {
    if (fact.CoversInterval(root, offset, size, flags)) return &fact;
  }
  return nullptr;
}

const GuardFact* GuardSet::FindPartial(const kir::Value* addr) const {
  for (const GuardFact& fact : facts_) {
    if (fact.addr == addr) return &fact;
  }
  return nullptr;
}

bool GuardSet::CoversIntrinsic(uint64_t id) const {
  if (universe_) return true;
  for (const IntrinsicGuardFact& fact : intrinsics_) {
    if (fact.id == id) return true;
  }
  return false;
}

bool GuardSet::MeetInto(const GuardSet& src) {
  if (src.universe_) return false;
  if (universe_) {
    universe_ = false;
    facts_ = src.facts_;
    intrinsics_ = src.intrinsics_;
    return true;
  }

  // A fact survives the meet when BOTH sides guarantee it. Candidates are
  // drawn from both sides: dst's (addr,8,rw) survives against src's
  // (addr,16,rw), and so does src's larger fact against dst's — covering
  // is not symmetric, so we check each candidate against the other set.
  const std::vector<GuardFact> old = std::move(facts_);
  facts_.clear();
  bool changed = false;
  for (const GuardFact& fact : old) {
    bool src_covers = false;
    for (const GuardFact& have : src.facts_) {
      if (FactCovers(have, fact)) {
        src_covers = true;
        break;
      }
    }
    if (src_covers) {
      facts_.push_back(fact);
    } else {
      changed = true;
    }
  }
  for (const GuardFact& fact : src.facts_) {
    bool dst_covers = false;
    for (const GuardFact& have : old) {
      if (FactCovers(have, fact)) {
        dst_covers = true;
        break;
      }
    }
    if (!dst_covers) continue;
    bool dup = false;
    for (const GuardFact& have : facts_) {
      if (have.SameKey(fact)) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      facts_.push_back(fact);
      changed = true;
    }
  }

  const size_t before = intrinsics_.size();
  intrinsics_.erase(
      std::remove_if(intrinsics_.begin(), intrinsics_.end(),
                     [&src](const IntrinsicGuardFact& fact) {
                       return !src.CoversIntrinsic(fact.id);
                     }),
      intrinsics_.end());
  return changed || intrinsics_.size() != before;
}

bool GuardSet::operator==(const GuardSet& other) const {
  if (universe_ != other.universe_) return false;
  if (facts_.size() != other.facts_.size() ||
      intrinsics_.size() != other.intrinsics_.size()) {
    return false;
  }
  for (const GuardFact& fact : facts_) {
    bool found = false;
    for (const GuardFact& have : other.facts_) {
      if (have.SameKey(fact)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  for (const IntrinsicGuardFact& fact : intrinsics_) {
    bool found = false;
    for (const IntrinsicGuardFact& have : other.intrinsics_) {
      if (have.id == fact.id) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool MatchGuardCall(const kir::Instruction& inst, GuardFact* fact) {
  if (inst.opcode() != kir::Opcode::kCall ||
      inst.callee() != kCaratGuardSymbol || inst.operand_count() != 3) {
    return false;
  }
  const auto* size_const = kir::dyn_cast<kir::Constant>(inst.operand(1));
  const auto* flags_const = kir::dyn_cast<kir::Constant>(inst.operand(2));
  if (size_const == nullptr || flags_const == nullptr) return false;
  fact->addr = inst.operand(0);
  fact->size = size_const->bits();
  fact->flags = flags_const->bits();
  fact->origin = &inst;
  fact->root_offset = 0;
  fact->root = ResolveConstGep(fact->addr, &fact->root_offset);
  return true;
}

bool MatchGuardRangeCall(const kir::Instruction& inst, GuardFact* fact) {
  if (inst.opcode() != kir::Opcode::kCall ||
      inst.callee() != kCaratGuardRangeSymbol || inst.operand_count() != 4) {
    return false;
  }
  const auto* span_const = kir::dyn_cast<kir::Constant>(inst.operand(1));
  const auto* flags_const = kir::dyn_cast<kir::Constant>(inst.operand(2));
  const auto* elided_const = kir::dyn_cast<kir::Constant>(inst.operand(3));
  if (span_const == nullptr || flags_const == nullptr ||
      elided_const == nullptr) {
    return false;
  }
  fact->addr = inst.operand(0);
  fact->size = span_const->bits();
  fact->flags = flags_const->bits();
  fact->origin = &inst;
  fact->root_offset = 0;
  fact->root = ResolveConstGep(fact->addr, &fact->root_offset);
  fact->is_range = true;
  return true;
}

void ApplyGuardStep(const kir::Instruction& inst, GuardSet& state) {
  if (inst.opcode() == kir::Opcode::kCallIndirect) {
    // An indirect call may reach any address-taken function, and through
    // a gate extern the policy module itself; conservatively forget
    // everything, exactly like an unrecognized direct call.
    state.Clear();
    return;
  }
  if (inst.opcode() != kir::Opcode::kCall) return;
  const std::string& callee = inst.callee();
  if (callee == kCaratGuardSymbol) {
    GuardFact fact;
    if (MatchGuardCall(inst, &fact)) state.AddGuard(fact);
    // A guard with non-constant size/flags contributes no analyzable
    // fact, but it also cannot mutate the policy table: no kill.
    return;
  }
  if (callee == kCaratGuardRangeSymbol) {
    GuardFact fact;
    if (MatchGuardRangeCall(inst, &fact)) state.AddGuard(fact);
    return;
  }
  if (callee == kCaratIntrinsicGuardSymbol) {
    if (inst.operand_count() == 1) {
      if (const auto* id = kir::dyn_cast<kir::Constant>(inst.operand(0))) {
        state.AddIntrinsic(id->bits(), &inst);
      }
    }
    return;
  }
  // kir.* intrinsics are dispatched through the loader's intrinsic table;
  // none of them can reach the policy module's mutation paths, so guards
  // stay live across them.
  if (kir::IsIntrinsicName(callee)) return;
  // The CFI check only reads the policy engine's target-set table; it
  // cannot mutate the region table, so guards stay live across it.
  if (callee == kCaratCfiCheckSymbol) return;
  // Any other call (intra-module or external) may transitively reach the
  // policy table; conservatively forget everything.
  state.Clear();
}

GuardSet GuardAvailabilityProblem::Transfer(const kir::BasicBlock& block,
                                            GuardSet state) const {
  for (const auto& inst : block) {
    ApplyGuardStep(*inst, state);
  }
  return state;
}

DataflowResult<GuardSet> SolveGuardAvailability(const kir::Cfg& cfg) {
  return SolveForward(cfg, GuardAvailabilityProblem{});
}

}  // namespace kop::analysis
