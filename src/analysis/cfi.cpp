#include "kop/analysis/cfi.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>

#include "kop/kir/function.hpp"
#include "kop/kir/instruction.hpp"
#include "kop/kir/printer.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::analysis {
namespace {

// The lattice element for one pointer value: unknown (not yet computed —
// the optimistic fixpoint start), a finite set of function names, or ⊤.
struct TargetLattice {
  bool known = false;
  bool top = false;
  std::set<std::string> fns;
};

TargetLattice MakeTop() {
  TargetLattice t;
  t.known = true;
  t.top = true;
  return t;
}

// The call-site signature an indirect call demands of its targets.
struct SiteSignature {
  kir::Type ret = kir::Type::kVoid;
  std::vector<kir::Type> params;
};

SiteSignature SignatureOf(const kir::Instruction& icall) {
  SiteSignature sig;
  sig.ret = icall.type();
  for (size_t i = 1; i < icall.operand_count(); ++i) {
    sig.params.push_back(icall.operand(i)->type());
  }
  return sig;
}

bool SignatureCompatible(const kir::Function& fn, const SiteSignature& sig) {
  if (fn.return_type() != sig.ret) return false;
  if (fn.arg_count() != sig.params.size()) return false;
  for (size_t i = 0; i < sig.params.size(); ++i) {
    if (fn.args()[i]->type() != sig.params[i]) return false;
  }
  return true;
}

// Per-function forward points-to fixpoint over function-pointer values.
// Mirrors ClassifyPointers (provenance.cpp): optimistic start, monotone
// degradation toward ⊤, so it terminates.
std::unordered_map<const kir::Value*, TargetLattice> SolveTargets(
    const kir::Function& fn) {
  std::unordered_map<const kir::Value*, TargetLattice> state;

  // Non-instruction values (constants, globals, arguments) are never
  // traceable to a funcaddr root within the function.
  auto lookup = [&](const kir::Value* v) -> TargetLattice {
    if (kir::isa<kir::Instruction>(v)) {
      auto it = state.find(v);
      return it == state.end() ? TargetLattice{} : it->second;
    }
    return MakeTop();
  };

  auto join = [](TargetLattice a, const TargetLattice& b) {
    if (!b.known) return a;  // optimistic: skip not-yet-computed inputs
    if (!a.known) return b;
    if (a.top || b.top) return MakeTop();
    a.fns.insert(b.fns.begin(), b.fns.end());
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& block : fn.blocks()) {
      for (const auto& inst : *block) {
        if (inst->type() != kir::Type::kPtr) continue;
        TargetLattice next;
        switch (inst->opcode()) {
          case kir::Opcode::kFuncAddr:
            next.known = true;
            next.fns.insert(inst->callee());
            break;
          case kir::Opcode::kPhi: {
            for (const kir::Value* in : inst->operands()) {
              next = join(next, lookup(in));
            }
            if (!next.known) continue;  // all inputs pending; retry
            break;
          }
          case kir::Opcode::kSelect: {
            next = join(lookup(inst->operand(1)), lookup(inst->operand(2)));
            if (!next.known) continue;
            break;
          }
          default:
            // load, gep, inttoptr, alloca, call results: the pointer was
            // laundered through memory or arithmetic — ⊤.
            next = MakeTop();
            break;
        }
        TargetLattice& cur = state[inst.get()];
        if (!cur.known || cur.top != next.top || cur.fns != next.fns) {
          // Monotone: unknown -> finite -> ⊤, and finite sets only grow.
          cur = std::move(next);
          changed = true;
        }
      }
    }
  }
  return state;
}

std::string Trimmed(std::string text) {
  const size_t begin = text.find_first_not_of(" \t\n");
  const size_t end = text.find_last_not_of(" \t\n");
  if (begin == std::string::npos) return "";
  return text.substr(begin, end - begin + 1);
}

}  // namespace

bool IsExportedKernelEntry(const std::string& name) {
  // The exported kernel API indirect calls may target through the gate.
  // Mirrors the privileged-lint whitelist minus the guard/CFI symbols:
  // policy-module entry points are direct-call-only by construction.
  static const char* const kExported[] = {"printk_str", "kmalloc", "kfree"};
  for (const char* known : kExported) {
    if (name == known) return true;
  }
  return false;
}

CfiSummary DeriveCfi(const kir::Module& module) {
  CfiSummary summary;

  // The address-taken set: every function (defined or declared) named by
  // a funcaddr anywhere in the module — the universe ⊤ resolves against.
  std::set<std::string> address_taken;
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kFuncAddr) {
          address_taken.insert(inst->callee());
        }
      }
    }
  }
  summary.address_taken.assign(address_taken.begin(), address_taken.end());

  auto intern_set = [&](CfiTargetSet set) -> uint32_t {
    for (size_t i = 0; i < summary.sets.size(); ++i) {
      if (summary.sets[i] == set) return static_cast<uint32_t>(i);
    }
    summary.sets.push_back(std::move(set));
    return static_cast<uint32_t>(summary.sets.size() - 1);
  };

  uint64_t call_ordinal = 0;
  for (const auto& fn : module.functions()) {
    if (fn->is_external() || fn->blocks().empty()) continue;
    const auto targets = SolveTargets(*fn);

    uint32_t inst_index = 0;
    for (const auto& block : fn->blocks()) {
      const kir::Instruction* prev = nullptr;
      int64_t prev_ordinal = -1;
      for (const auto& inst : *block) {
        const bool is_call = inst->opcode() == kir::Opcode::kCall;
        const bool is_icall = inst->opcode() == kir::Opcode::kCallIndirect;
        if (is_icall) {
          const SiteSignature sig = SignatureOf(*inst);
          const kir::Value* target = inst->operand(0);
          TargetLattice lat;
          if (kir::isa<kir::Instruction>(target)) {
            auto it = targets.find(target);
            if (it != targets.end()) lat = it->second;
          }
          // Unknown (unreachable code) degrades to ⊤ — sound either way.
          if (!lat.known) lat = MakeTop();

          CfiSite site;
          site.inst = inst.get();
          site.function = fn->name();
          site.block = block->label();
          site.inst_index = inst_index;
          site.call_ordinal = call_ordinal;
          site.derived_top = lat.top;

          CfiTargetSet set;
          if (lat.top) {
            for (const std::string& name : address_taken) {
              const kir::Function* cand = module.FindFunction(name);
              if (cand != nullptr && SignatureCompatible(*cand, sig)) {
                set.members.push_back(name);
              }
            }
          } else {
            for (const std::string& name : lat.fns) {
              const kir::Function* cand = module.FindFunction(name);
              if (cand != nullptr && !SignatureCompatible(*cand, sig)) {
                site.incompatible.push_back(name);
              } else {
                set.members.push_back(name);
              }
            }
          }
          for (const std::string& name : set.members) {
            const kir::Function* cand = module.FindFunction(name);
            if (cand != nullptr && cand->is_external()) site.gate = true;
          }
          site.set_id = intern_set(std::move(set));

          if (prev != nullptr && prev->opcode() == kir::Opcode::kCall &&
              prev->callee() == kCaratCfiCheckSymbol &&
              prev->operand_count() == 2) {
            site.has_check = true;
            site.check_ordinal = prev_ordinal;
            site.check_covers_target = prev->operand(0) == target;
            if (const auto* id =
                    kir::dyn_cast<kir::Constant>(prev->operand(1))) {
              site.check_set_id = static_cast<int64_t>(id->bits());
            }
          }
          summary.sites.push_back(std::move(site));
        }
        if (is_call || is_icall) {
          prev_ordinal = static_cast<int64_t>(call_ordinal);
          ++call_ordinal;
        } else {
          prev_ordinal = -1;
        }
        prev = inst.get();
        ++inst_index;
      }
    }
  }
  return summary;
}

void CheckCfi(const kir::Module& module, AnalysisReport& report) {
  const CfiSummary summary = DeriveCfi(module);

  // The gate lint: an address-taken external symbol must be an exported
  // kernel entry point, or the icall gate could reach arbitrary kernel
  // (or policy-module) code the attestation never vouched for.
  for (const auto& fn : module.functions()) {
    uint32_t inst_index = 0;
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kFuncAddr) {
          const kir::Function* target = module.FindFunction(inst->callee());
          if (target != nullptr && target->is_external() &&
              !IsExportedKernelEntry(target->name())) {
            Diagnostic d;
            d.severity = Severity::kError;
            d.analysis = "cfi";
            d.function = fn->name();
            d.block = block->label();
            d.inst_index = inst_index;
            d.message = "funcaddr of external symbol `" + target->name() +
                        "` which is not an exported kernel entry point";
            report.diagnostics.push_back(std::move(d));
          }
        }
        ++inst_index;
      }
    }
  }

  // Completeness is a claim the module makes by importing the check
  // symbol; modules compiled with KOP_CFI=off load un-gated (notes only).
  const kir::Function* check_decl = module.FindFunction(kCaratCfiCheckSymbol);
  const bool claims_cfi = check_decl != nullptr && check_decl->is_external();

  for (const CfiSite& site : summary.sites) {
    Diagnostic d;
    d.analysis = "cfi";
    d.function = site.function;
    d.block = site.block;
    d.inst_index = site.inst_index;
    d.guard_site = static_cast<int64_t>(site.call_ordinal);

    for (const std::string& name : site.incompatible) {
      Diagnostic bad = d;
      bad.severity = Severity::kError;
      bad.message = "indirect call may target `" + name +
                    "` whose signature is incompatible with this call site";
      report.diagnostics.push_back(std::move(bad));
    }

    const CfiTargetSet& set = summary.sets[site.set_id];
    if (set.members.empty()) {
      Diagnostic empty = d;
      empty.severity = Severity::kWarning;
      empty.message =
          "indirect call has no legal targets: every execution faults";
      report.diagnostics.push_back(std::move(empty));
    }

    if (!claims_cfi) {
      d.severity = Severity::kNote;
      d.message =
          "indirect call is not CFI-gated (module imports no "
          "carat_cfi_check)";
      report.diagnostics.push_back(std::move(d));
      continue;
    }
    if (!site.has_check) {
      d.severity = Severity::kError;
      d.message = "indirect call without an adjacent carat_cfi_check: `" +
                  Trimmed(kir::PrintInstruction(*site.inst)) + "`";
      report.diagnostics.push_back(std::move(d));
      continue;
    }
    if (!site.check_covers_target) {
      d.severity = Severity::kError;
      d.message =
          "carat_cfi_check does not cover the indirect call's target value";
      report.diagnostics.push_back(std::move(d));
      continue;
    }
    if (site.check_set_id < 0) {
      d.severity = Severity::kError;
      d.message = "carat_cfi_check set id is not a constant";
      report.diagnostics.push_back(std::move(d));
      continue;
    }
    if (site.check_set_id != static_cast<int64_t>(site.set_id)) {
      std::ostringstream message;
      message << "carat_cfi_check claims target set " << site.check_set_id
              << " but the derivation proves set " << site.set_id << " ("
              << set.members.size() << " legal target(s))";
      d.severity = Severity::kError;
      d.message = message.str();
      report.diagnostics.push_back(std::move(d));
    }
  }
}

}  // namespace kop::analysis
