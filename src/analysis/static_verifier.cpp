#include "kop/analysis/static_verifier.hpp"

#include "kop/analysis/cfi.hpp"
#include "kop/analysis/guard_coverage.hpp"
#include "kop/analysis/provenance.hpp"

namespace kop::analysis {

AnalysisReport AnalyzeModule(const kir::Module& module,
                             const StaticVerifyOptions& options) {
  AnalysisReport report;
  report.module_name = module.name();
  CheckGuardCoverage(module, report);
  if (options.provenance) CheckProvenance(module, report);
  if (options.privileged) {
    CheckPrivileged(module, report, options.privileged_options);
  }
  if (options.cfi) CheckCfi(module, report);
  return report;
}

}  // namespace kop::analysis
