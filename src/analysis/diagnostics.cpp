#include "kop/analysis/diagnostics.hpp"

#include <cstdio>
#include <sstream>

namespace kop::analysis {

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

namespace {

size_t CountSeverity(const AnalysisReport& report, Severity severity) {
  size_t count = 0;
  for (const Diagnostic& diagnostic : report.diagnostics) {
    if (diagnostic.severity == severity) ++count;
  }
  return count;
}

}  // namespace

size_t AnalysisReport::errors() const {
  return CountSeverity(*this, Severity::kError);
}
size_t AnalysisReport::warnings() const {
  return CountSeverity(*this, Severity::kWarning);
}
size_t AnalysisReport::notes() const {
  return CountSeverity(*this, Severity::kNote);
}

std::string RenderText(const AnalysisReport& report) {
  std::ostringstream out;
  for (const Diagnostic& d : report.diagnostics) {
    out << SeverityName(d.severity) << ": [" << d.analysis << "] @"
        << d.function << ", block " << d.block << ", inst " << d.inst_index;
    if (d.guard_site >= 0) out << ", guard site " << d.guard_site;
    out << ": " << d.message << "\n";
  }
  out << report.module_name << ": " << report.errors() << " error(s), "
      << report.warnings() << " warning(s), " << report.notes()
      << " note(s)\n";
  return out.str();
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderJson(const AnalysisReport& report) {
  std::ostringstream out;
  out << "{\"module\":\"" << JsonEscape(report.module_name) << "\","
      << "\"errors\":" << report.errors() << ","
      << "\"warnings\":" << report.warnings() << ","
      << "\"notes\":" << report.notes() << ",\"diagnostics\":[";
  for (size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i != 0) out << ",";
    out << "{\"severity\":\"" << SeverityName(d.severity) << "\","
        << "\"analysis\":\"" << JsonEscape(d.analysis) << "\","
        << "\"function\":\"" << JsonEscape(d.function) << "\","
        << "\"block\":\"" << JsonEscape(d.block) << "\","
        << "\"inst_index\":" << d.inst_index << ","
        << "\"guard_site\":" << d.guard_site << ","
        << "\"message\":\"" << JsonEscape(d.message) << "\"}";
  }
  out << "]}";
  return out.str();
}

}  // namespace kop::analysis
