#include "kop/nic/e1000_device.hpp"

#include <cstring>

#include "kop/trace/metrics.hpp"
#include "kop/trace/trace.hpp"
#include "kop/util/log.hpp"

namespace kop::nic {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

E1000Device::E1000Device(kernel::AddressSpace* memory, PacketSink* sink)
    : memory_(memory), sink_(sink) {
  static constexpr uint8_t kDefaultMac[6] = {0x02, 0xca, 0x4a,
                                             0x70, 0x0b, 0x01};
  SetNvmMac(kDefaultMac);
  Reset();
}

void E1000Device::SetNvmMac(const uint8_t mac[6]) {
  nvm_[0] = static_cast<uint16_t>(mac[0] | (mac[1] << 8));
  nvm_[1] = static_cast<uint16_t>(mac[2] | (mac[3] << 8));
  nvm_[2] = static_cast<uint16_t>(mac[4] | (mac[5] << 8));
}

void E1000Device::ReceiveAddress(uint8_t out[6]) const {
  out[0] = static_cast<uint8_t>(ral0_);
  out[1] = static_cast<uint8_t>(ral0_ >> 8);
  out[2] = static_cast<uint8_t>(ral0_ >> 16);
  out[3] = static_cast<uint8_t>(ral0_ >> 24);
  out[4] = static_cast<uint8_t>(rah0_);
  out[5] = static_cast<uint8_t>(rah0_ >> 8);
}

Status E1000Device::MapAt(uint64_t mmio_base) {
  KOP_RETURN_IF_ERROR(
      memory_->MapMmio("e1000e-bar0", mmio_base, kMmioBarSize, this));
  mmio_base_ = mmio_base;
  return OkStatus();
}

void E1000Device::Reset() {
  ctrl_ = 0;
  status_ = 0;  // link down until CTRL.SLU
  icr_.store(0, kRelaxed);
  ims_.store(0, kRelaxed);
  eicr_.store(0, kRelaxed);
  eims_.store(0, kRelaxed);
  tctl_ = 0;
  rctl_ = 0;
  tipg_ = 0;
  mrqc_ = 0;
  gptc_.store(0, kRelaxed);
  gprc_.store(0, kRelaxed);
  gotc_.store(0, kRelaxed);
  eerd_ = 0;
  for (uint32_t q = 0; q < kMaxQueues; ++q) {
    tx_[q] = TxQueue();
    rx_[q] = RxQueue();
    ivar_[q].store(0, kRelaxed);
  }
  for (uint32_t v = 0; v < kMaxVectors; ++v) {
    eitr_[v].store(0, kRelaxed);
    eitr_last_fire_[v].store(0, kRelaxed);
  }
}

DeviceStats E1000Device::QueueStats(uint32_t queue) const {
  DeviceStats out;
  if (queue >= kMaxQueues) return out;
  const QueueCounters& c = counters_[queue];
  out.descriptors_processed = c.descriptors_processed.load(kRelaxed);
  out.frames_transmitted = c.frames_transmitted.load(kRelaxed);
  out.bytes_transmitted = c.bytes_transmitted.load(kRelaxed);
  out.dma_descriptor_reads = c.dma_descriptor_reads.load(kRelaxed);
  out.dma_payload_reads = c.dma_payload_reads.load(kRelaxed);
  out.writebacks = c.writebacks.load(kRelaxed);
  out.tail_writes = c.tail_writes.load(kRelaxed);
  out.bad_descriptors = c.bad_descriptors.load(kRelaxed);
  out.bad_doorbells = c.bad_doorbells.load(kRelaxed);
  out.frames_received = c.frames_received.load(kRelaxed);
  out.bytes_received = c.bytes_received.load(kRelaxed);
  out.rx_dropped = c.rx_dropped.load(kRelaxed);
  return out;
}

DeviceStats E1000Device::stats() const {
  DeviceStats out;
  for (uint32_t q = 0; q < kMaxQueues; ++q) {
    const DeviceStats qs = QueueStats(q);
    out.descriptors_processed += qs.descriptors_processed;
    out.frames_transmitted += qs.frames_transmitted;
    out.bytes_transmitted += qs.bytes_transmitted;
    out.dma_descriptor_reads += qs.dma_descriptor_reads;
    out.dma_payload_reads += qs.dma_payload_reads;
    out.writebacks += qs.writebacks;
    out.tail_writes += qs.tail_writes;
    out.bad_descriptors += qs.bad_descriptors;
    out.bad_doorbells += qs.bad_doorbells;
    out.frames_received += qs.frames_received;
    out.bytes_received += qs.bytes_received;
    out.rx_dropped += qs.rx_dropped;
  }
  return out;
}

void E1000Device::ResetStats() {
  for (uint32_t q = 0; q < kMaxQueues; ++q) {
    counters_[q].descriptors_processed.store(0, kRelaxed);
    counters_[q].frames_transmitted.store(0, kRelaxed);
    counters_[q].bytes_transmitted.store(0, kRelaxed);
    counters_[q].dma_descriptor_reads.store(0, kRelaxed);
    counters_[q].dma_payload_reads.store(0, kRelaxed);
    counters_[q].writebacks.store(0, kRelaxed);
    counters_[q].tail_writes.store(0, kRelaxed);
    counters_[q].bad_descriptors.store(0, kRelaxed);
    counters_[q].bad_doorbells.store(0, kRelaxed);
    counters_[q].frames_received.store(0, kRelaxed);
    counters_[q].bytes_received.store(0, kRelaxed);
    counters_[q].rx_dropped.store(0, kRelaxed);
  }
  for (uint32_t v = 0; v < kMaxVectors; ++v) {
    msix_asserts_[v].store(0, kRelaxed);
    msix_throttled_[v].store(0, kRelaxed);
  }
}

void E1000Device::RaiseMsix(uint32_t vector) {
  vector &= IVAR_VECTOR_MASK;
  eicr_.fetch_or(1u << vector, kRelaxed);
  if (((eims_.load(kRelaxed) >> vector) & 1u) == 0) return;  // masked
  const uint32_t interval = eitr_[vector].load(kRelaxed);
  if (interval != 0 && clock_ != nullptr) {
    // ITR mitigation: the cause stays latched in EICR, but the vector
    // only fires when its throttle window has elapsed on the virtual
    // clock (the owning CPU's view of time — one queue, one CPU).
    const uint64_t now = static_cast<uint64_t>(clock_->NowCycles());
    const uint64_t last = eitr_last_fire_[vector].load(kRelaxed);
    if (msix_asserts_[vector].load(kRelaxed) != 0 && now - last < interval) {
      msix_throttled_[vector].fetch_add(1, kRelaxed);
      return;
    }
    eitr_last_fire_[vector].store(now, kRelaxed);
  }
  msix_asserts_[vector].fetch_add(1, kRelaxed);
}

void E1000Device::RaiseQueueVector(uint32_t queue, bool tx) {
  const uint32_t ivar = ivar_[queue].load(kRelaxed);
  const uint32_t field = tx ? (ivar >> IVAR_TX_SHIFT) & 0xff : ivar & 0xff;
  if (field & IVAR_VALID) RaiseMsix(field & IVAR_VECTOR_MASK);
}

uint64_t E1000Device::MmioRead(uint64_t offset, uint32_t size) {
  (void)size;  // registers are 32-bit; AddressSpace enforces alignment
  // Queue-strided register blocks first (queue 0 == the legacy block).
  if (offset >= REG_TDBAL &&
      offset < REG_TDBAL + kMaxQueues * kQueueRegStride) {
    const uint32_t q =
        static_cast<uint32_t>((offset - REG_TDBAL) / kQueueRegStride);
    switch (offset - uint64_t{q} * kQueueRegStride) {
      case REG_TDBAL: return tx_[q].tdbal;
      case REG_TDBAH: return tx_[q].tdbah;
      case REG_TDLEN: return tx_[q].tdlen;
      case REG_TDH: return tx_[q].tdh;
      case REG_TDT: return tx_[q].tdt;
      default: return 0;
    }
  }
  if (offset >= REG_RDBAL &&
      offset < REG_RDBAL + kMaxQueues * kQueueRegStride) {
    const uint32_t q =
        static_cast<uint32_t>((offset - REG_RDBAL) / kQueueRegStride);
    switch (offset - uint64_t{q} * kQueueRegStride) {
      case REG_RDBAL: return rx_[q].rdbal;
      case REG_RDBAH: return rx_[q].rdbah;
      case REG_RDLEN: return rx_[q].rdlen;
      case REG_RDH: return rx_[q].rdh;
      case REG_RDT: return rx_[q].rdt;
      default: return 0;
    }
  }
  if (offset >= REG_EITR0 && offset < REG_EITR0 + 4 * kMaxVectors) {
    return eitr_[(offset - REG_EITR0) / 4].load(kRelaxed);
  }
  if (offset >= REG_IVAR0 && offset < REG_IVAR0 + 4 * kMaxQueues) {
    return ivar_[(offset - REG_IVAR0) / 4].load(kRelaxed);
  }
  switch (offset) {
    case REG_CTRL: return ctrl_;
    case REG_STATUS: return status_;
    case REG_ICR:
      // Read-to-clear, like the real part.
      return icr_.exchange(0, kRelaxed);
    case REG_IMS: return ims_.load(kRelaxed);
    case REG_EICR:
      // The extended cause register is read-to-clear too.
      return eicr_.exchange(0, kRelaxed);
    case REG_EIMS: return eims_.load(kRelaxed);
    case REG_EERD: return eerd_;
    case REG_TCTL: return tctl_;
    case REG_RCTL: return rctl_;
    case REG_TIPG: return tipg_;
    case REG_MRQC: return mrqc_;
    case REG_GPTC: return gptc_.load(kRelaxed);
    case REG_GPRC: return gprc_.load(kRelaxed);
    case REG_GOTCL:
      return static_cast<uint32_t>(gotc_.load(kRelaxed));
    case REG_GOTCH:
      return static_cast<uint32_t>(gotc_.load(kRelaxed) >> 32);
    case REG_RAL0: return ral0_;
    case REG_RAH0: return rah0_;
    default:
      // Unimplemented registers read as zero (matches many real holes).
      return 0;
  }
}

void E1000Device::MmioWrite(uint64_t offset, uint64_t value, uint32_t size) {
  (void)size;
  const uint32_t v = static_cast<uint32_t>(value);
  if (offset >= REG_TDBAL &&
      offset < REG_TDBAL + kMaxQueues * kQueueRegStride) {
    const uint32_t q =
        static_cast<uint32_t>((offset - REG_TDBAL) / kQueueRegStride);
    switch (offset - uint64_t{q} * kQueueRegStride) {
      case REG_TDBAL:
        tx_[q].tdbal = v & ~0xfu;  // 16-byte aligned
        break;
      case REG_TDBAH:
        tx_[q].tdbah = v;
        break;
      case REG_TDLEN:
        tx_[q].tdlen = v & ~0x7fu;  // multiple of 128 bytes
        break;
      case REG_TDH:
        tx_[q].tdh = v;
        break;
      case REG_TDT:
        tx_[q].tdt = v;
        counters_[q].tail_writes.fetch_add(1, kRelaxed);
        if (auto_process_) ProcessTransmitRing(q);
        break;
      default:
        break;
    }
    return;
  }
  if (offset >= REG_RDBAL &&
      offset < REG_RDBAL + kMaxQueues * kQueueRegStride) {
    const uint32_t q =
        static_cast<uint32_t>((offset - REG_RDBAL) / kQueueRegStride);
    switch (offset - uint64_t{q} * kQueueRegStride) {
      case REG_RDBAL:
        rx_[q].rdbal = v & ~0xfu;
        break;
      case REG_RDBAH:
        rx_[q].rdbah = v;
        break;
      case REG_RDLEN:
        rx_[q].rdlen = v & ~0x7fu;
        break;
      case REG_RDH:
        rx_[q].rdh = v;
        break;
      case REG_RDT:
        rx_[q].rdt = v;
        break;
      default:
        break;
    }
    return;
  }
  if (offset >= REG_EITR0 && offset < REG_EITR0 + 4 * kMaxVectors) {
    eitr_[(offset - REG_EITR0) / 4].store(v, kRelaxed);
    return;
  }
  if (offset >= REG_IVAR0 && offset < REG_IVAR0 + 4 * kMaxQueues) {
    ivar_[(offset - REG_IVAR0) / 4].store(v, kRelaxed);
    return;
  }
  switch (offset) {
    case REG_CTRL:
      if (v & CTRL_RST) {
        Reset();
        return;
      }
      ctrl_ = v;
      if (v & CTRL_SLU) {
        if ((status_ & STATUS_LU) == 0) RaiseLegacy(ICR_LSC);
        status_ |= STATUS_LU;
      }
      break;
    case REG_EERD:
      if (v & EERD_START) {
        // The simulated NVM answers instantly: latch DONE + data.
        const uint32_t addr = (v >> EERD_ADDR_SHIFT) & 0xff;
        const uint16_t word = addr < kNvmWords ? nvm_[addr] : 0xffff;
        eerd_ = EERD_DONE | (uint32_t{word} << EERD_DATA_SHIFT);
      } else {
        eerd_ = 0;
      }
      break;
    case REG_IMS:
      ims_.fetch_or(v, kRelaxed);
      break;
    case REG_IMC:
      ims_.fetch_and(~v, kRelaxed);
      break;
    case REG_EIMS:
      eims_.fetch_or(v, kRelaxed);
      break;
    case REG_EIMC:
      eims_.fetch_and(~v, kRelaxed);
      break;
    case REG_TCTL:
      tctl_ = v;
      break;
    case REG_RCTL:
      rctl_ = v;
      break;
    case REG_TIPG:
      tipg_ = v;
      break;
    case REG_MRQC:
      mrqc_ = v;
      break;
    case REG_RAL0:
      ral0_ = v;
      break;
    case REG_RAH0:
      rah0_ = v;
      break;
    case REG_ICR:
      icr_.fetch_and(~v, kRelaxed);  // write-1-to-clear
      break;
    case REG_EICR:
      eicr_.fetch_and(~v, kRelaxed);
      break;
    default:
      break;  // writes to unimplemented registers are ignored
  }
}

uint32_t E1000Device::RouteRxQueue(const std::vector<uint8_t>& frame) const {
  if ((mrqc_ & MRQC_ENABLE) == 0) return 0;
  uint32_t n = (mrqc_ >> MRQC_QUEUES_SHIFT) & 0xf;
  if (n > kMaxQueues) n = kMaxQueues;
  if (n <= 1) return 0;
  // RSS-lite: FNV-1a over the Ethernet header's address bytes, so a
  // flow (MAC pair) always lands on the same queue.
  uint32_t hash = 2166136261u;
  const size_t header = frame.size() < 12 ? frame.size() : 12;
  for (size_t i = 0; i < header; ++i) {
    hash ^= frame[i];
    hash *= 16777619u;
  }
  // Avalanche finalizer: FNV's low bits alone spread poorly modulo a
  // small queue count when only a byte or two of the header differs.
  hash ^= hash >> 16;
  hash *= 0x7feb352du;
  hash ^= hash >> 15;
  hash *= 0x846ca68bu;
  hash ^= hash >> 16;
  return hash % n;
}

bool E1000Device::ReceiveFrame(const std::vector<uint8_t>& frame) {
  return ReceiveFrameOn(RouteRxQueue(frame), frame);
}

bool E1000Device::ReceiveFrameOn(uint32_t queue,
                                 const std::vector<uint8_t>& frame) {
  if (queue >= kMaxQueues) return false;
  RxQueue& rxq = rx_[queue];
  QueueCounters& c = counters_[queue];
  if ((rctl_ & RCTL_EN) == 0 || (status_ & STATUS_LU) == 0 ||
      frame.empty() || frame.size() > kRxBufferBytes) {
    c.rx_dropped.fetch_add(1, kRelaxed);
    if (queue == 0) RaiseLegacy(ICR_RXO);
    return false;
  }
  const uint32_t count = RxRingCount(rxq);
  if (count == 0 || rxq.rdh == rxq.rdt) {  // no software-provided buffers
    c.rx_dropped.fetch_add(1, kRelaxed);
    if (queue == 0) RaiseLegacy(ICR_RXO);
    return false;
  }
  const uint64_t ring_base =
      (static_cast<uint64_t>(rxq.rdbah) << 32) | rxq.rdbal;
  const uint64_t desc_addr = ring_base + uint64_t{rxq.rdh} * kRxDescBytes;

  LegacyRxDescriptor desc{};
  uint8_t raw[kRxDescBytes];
  c.dma_descriptor_reads.fetch_add(1, kRelaxed);
  if (!memory_->Read(desc_addr, raw, sizeof(raw)).ok()) {
    c.bad_descriptors.fetch_add(1, kRelaxed);
    c.rx_dropped.fetch_add(1, kRelaxed);
    return false;
  }
  std::memcpy(&desc, raw, sizeof(desc));

  // DMA the frame into the software buffer and write the descriptor back.
  if (!memory_->Write(desc.buffer_addr, frame.data(), frame.size()).ok()) {
    c.bad_descriptors.fetch_add(1, kRelaxed);
    c.rx_dropped.fetch_add(1, kRelaxed);
    return false;
  }
  desc.length = static_cast<uint16_t>(frame.size());
  desc.status = RXD_STAT_DD | RXD_STAT_EOP;
  desc.errors = 0;
  std::memcpy(raw, &desc, sizeof(desc));
  if (!memory_->Write(desc_addr, raw, sizeof(raw)).ok()) {
    c.bad_descriptors.fetch_add(1, kRelaxed);
    return false;
  }
  c.writebacks.fetch_add(1, kRelaxed);
  rxq.rdh = (rxq.rdh + 1) % count;
  c.frames_received.fetch_add(1, kRelaxed);
  c.bytes_received.fetch_add(frame.size(), kRelaxed);
  gprc_.fetch_add(1, kRelaxed);
  if (queue == 0) RaiseLegacy(ICR_RXT0);
  RaiseQueueVector(queue, /*tx=*/false);
  return true;
}

void E1000Device::ProcessTransmitRing(uint32_t queue) {
  if (queue >= kMaxQueues) return;
  if ((tctl_ & TCTL_EN) == 0) return;        // transmitter disabled
  if ((status_ & STATUS_LU) == 0) return;    // no link
  TxQueue& txq = tx_[queue];
  QueueCounters& c = counters_[queue];
  const uint32_t count = TxRingCount(txq);
  if (count == 0) return;
  // A head or tail pointer outside the ring (a corrupted doorbell write)
  // would make the tdh != tdt sweep spin forever, because head wraps
  // modulo the ring size and can never meet an out-of-range tail. Real
  // hardware wedges on such programming; the model refuses the doorbell.
  if (txq.tdh >= count || txq.tdt >= count) {
    c.bad_doorbells.fetch_add(1, kRelaxed);
    KOP_LOG(kWarn) << "e1000e: TX ring pointers out of range (queue "
                   << queue << ", head " << txq.tdh << ", tail " << txq.tdt
                   << ", ring " << count << "); transmitter wedged";
    return;
  }
  const uint64_t ring_base =
      (static_cast<uint64_t>(txq.tdbah) << 32) | txq.tdbal;

  // Queue 0 keeps the legacy occupancy gauge; concurrent queues would
  // otherwise scribble over each other's sample.
  trace::Gauge* occupancy_gauge =
      queue == 0 ? trace::GlobalMetrics().GetGauge("nic.tx_ring_occupancy")
                 : nullptr;
  if (occupancy_gauge != nullptr) {
    occupancy_gauge->Set((txq.tdt + count - txq.tdh) % count);
  }

  std::vector<uint8_t> frame;
  while (txq.tdh != txq.tdt) {
    const uint64_t desc_addr = ring_base + uint64_t{txq.tdh} * kTxDescBytes;
    LegacyTxDescriptor desc{};
    uint8_t raw[kTxDescBytes];
    c.dma_descriptor_reads.fetch_add(1, kRelaxed);
    KOP_TRACE(kNicDescFetch, desc_addr, txq.tdh);
    if (!memory_->Read(desc_addr, raw, sizeof(raw)).ok()) {
      c.bad_descriptors.fetch_add(1, kRelaxed);
      KOP_LOG(kWarn) << "e1000e DMA: descriptor fetch failed at 0x"
                     << std::hex << desc_addr;
      break;  // hardware would wedge; stop processing
    }
    std::memcpy(&desc, raw, sizeof(desc));

    // Pull the payload via DMA (unguarded by design).
    if (desc.length > 0) {
      std::vector<uint8_t> chunk(desc.length);
      c.dma_payload_reads.fetch_add(1, kRelaxed);
      if (!memory_->Read(desc.buffer_addr, chunk.data(), chunk.size()).ok()) {
        c.bad_descriptors.fetch_add(1, kRelaxed);
      } else {
        frame.insert(frame.end(), chunk.begin(), chunk.end());
      }
    }
    c.descriptors_processed.fetch_add(1, kRelaxed);

    const bool end_of_packet = (desc.cmd & TXD_CMD_EOP) != 0;
    if (end_of_packet && !frame.empty()) {
      sink_->Deliver(frame);
      c.frames_transmitted.fetch_add(1, kRelaxed);
      c.bytes_transmitted.fetch_add(frame.size(), kRelaxed);
      KOP_TRACE(kNicXmit, frame.size(),
                (txq.tdt + count - (txq.tdh + 1) % count) % count);
      gptc_.fetch_add(1, kRelaxed);
      gotc_.fetch_add(frame.size(), kRelaxed);
      frame.clear();
    }

    // Write back DD when requested.
    if (desc.cmd & TXD_CMD_RS) {
      desc.status |= TXD_STAT_DD;
      std::memcpy(raw, &desc, sizeof(desc));
      if (memory_->Write(desc_addr, raw, sizeof(raw)).ok()) {
        c.writebacks.fetch_add(1, kRelaxed);
      }
    }

    txq.tdh = (txq.tdh + 1) % count;
    if (occupancy_gauge != nullptr) {
      occupancy_gauge->Set((txq.tdt + count - txq.tdh) % count);
    }
    if (queue == 0) RaiseLegacy(ICR_TXDW);
    if (txq.tdh == txq.tdt && queue == 0) RaiseLegacy(ICR_TXQE);
    RaiseQueueVector(queue, /*tx=*/true);
  }
}

void LoopbackWire::Deliver(const std::vector<uint8_t>& frame) {
  if (receiver_ != nullptr && receiver_->ReceiveFrame(frame)) {
    ++forwarded_;
  } else {
    ++dropped_;
  }
}

}  // namespace kop::nic
