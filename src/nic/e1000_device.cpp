#include "kop/nic/e1000_device.hpp"

#include <cstring>

#include "kop/trace/metrics.hpp"
#include "kop/trace/trace.hpp"
#include "kop/util/log.hpp"

namespace kop::nic {

E1000Device::E1000Device(kernel::AddressSpace* memory, PacketSink* sink)
    : memory_(memory), sink_(sink) {
  static constexpr uint8_t kDefaultMac[6] = {0x02, 0xca, 0x4a,
                                             0x70, 0x0b, 0x01};
  SetNvmMac(kDefaultMac);
  Reset();
}

void E1000Device::SetNvmMac(const uint8_t mac[6]) {
  nvm_[0] = static_cast<uint16_t>(mac[0] | (mac[1] << 8));
  nvm_[1] = static_cast<uint16_t>(mac[2] | (mac[3] << 8));
  nvm_[2] = static_cast<uint16_t>(mac[4] | (mac[5] << 8));
}

void E1000Device::ReceiveAddress(uint8_t out[6]) const {
  out[0] = static_cast<uint8_t>(ral0_);
  out[1] = static_cast<uint8_t>(ral0_ >> 8);
  out[2] = static_cast<uint8_t>(ral0_ >> 16);
  out[3] = static_cast<uint8_t>(ral0_ >> 24);
  out[4] = static_cast<uint8_t>(rah0_);
  out[5] = static_cast<uint8_t>(rah0_ >> 8);
}

Status E1000Device::MapAt(uint64_t mmio_base) {
  KOP_RETURN_IF_ERROR(
      memory_->MapMmio("e1000e-bar0", mmio_base, kMmioBarSize, this));
  mmio_base_ = mmio_base;
  return OkStatus();
}

void E1000Device::Reset() {
  ctrl_ = 0;
  status_ = 0;  // link down until CTRL.SLU
  icr_ = 0;
  ims_ = 0;
  tctl_ = 0;
  rctl_ = 0;
  tipg_ = 0;
  tdbal_ = tdbah_ = tdlen_ = tdh_ = tdt_ = 0;
  rdbal_ = rdbah_ = rdlen_ = rdh_ = rdt_ = 0;
  gptc_ = 0;
  gprc_ = 0;
  gotc_ = 0;
  eerd_ = 0;
}

uint64_t E1000Device::MmioRead(uint64_t offset, uint32_t size) {
  (void)size;  // registers are 32-bit; AddressSpace enforces alignment
  switch (offset) {
    case REG_CTRL: return ctrl_;
    case REG_STATUS: return status_;
    case REG_ICR: {
      // Read-to-clear, like the real part.
      const uint32_t causes = icr_;
      icr_ = 0;
      return causes;
    }
    case REG_IMS: return ims_;
    case REG_EERD: return eerd_;
    case REG_TCTL: return tctl_;
    case REG_RCTL: return rctl_;
    case REG_TIPG: return tipg_;
    case REG_TDBAL: return tdbal_;
    case REG_TDBAH: return tdbah_;
    case REG_TDLEN: return tdlen_;
    case REG_TDH: return tdh_;
    case REG_TDT: return tdt_;
    case REG_RDBAL: return rdbal_;
    case REG_RDBAH: return rdbah_;
    case REG_RDLEN: return rdlen_;
    case REG_RDH: return rdh_;
    case REG_RDT: return rdt_;
    case REG_GPTC: return gptc_;
    case REG_GPRC: return gprc_;
    case REG_GOTCL: return static_cast<uint32_t>(gotc_);
    case REG_GOTCH: return static_cast<uint32_t>(gotc_ >> 32);
    case REG_RAL0: return ral0_;
    case REG_RAH0: return rah0_;
    default:
      // Unimplemented registers read as zero (matches many real holes).
      return 0;
  }
}

void E1000Device::MmioWrite(uint64_t offset, uint64_t value, uint32_t size) {
  (void)size;
  const uint32_t v = static_cast<uint32_t>(value);
  switch (offset) {
    case REG_CTRL:
      if (v & CTRL_RST) {
        Reset();
        return;
      }
      ctrl_ = v;
      if (v & CTRL_SLU) {
        if ((status_ & STATUS_LU) == 0) icr_ |= ICR_LSC;
        status_ |= STATUS_LU;
      }
      break;
    case REG_EERD:
      if (v & EERD_START) {
        // The simulated NVM answers instantly: latch DONE + data.
        const uint32_t addr = (v >> EERD_ADDR_SHIFT) & 0xff;
        const uint16_t word = addr < kNvmWords ? nvm_[addr] : 0xffff;
        eerd_ = EERD_DONE | (uint32_t{word} << EERD_DATA_SHIFT);
      } else {
        eerd_ = 0;
      }
      break;
    case REG_IMS:
      ims_ |= v;
      break;
    case REG_IMC:
      ims_ &= ~v;
      break;
    case REG_TCTL:
      tctl_ = v;
      break;
    case REG_RCTL:
      rctl_ = v;
      break;
    case REG_TIPG:
      tipg_ = v;
      break;
    case REG_TDBAL:
      tdbal_ = v & ~0xfu;  // 16-byte aligned
      break;
    case REG_TDBAH:
      tdbah_ = v;
      break;
    case REG_TDLEN:
      tdlen_ = v & ~0x7fu;  // multiple of 128 bytes
      break;
    case REG_TDH:
      tdh_ = v;
      break;
    case REG_TDT:
      tdt_ = v;
      ++stats_.tail_writes;
      if (auto_process_) ProcessTransmitRing();
      break;
    case REG_RDBAL:
      rdbal_ = v & ~0xfu;
      break;
    case REG_RDBAH:
      rdbah_ = v;
      break;
    case REG_RDLEN:
      rdlen_ = v & ~0x7fu;
      break;
    case REG_RDH:
      rdh_ = v;
      break;
    case REG_RDT:
      rdt_ = v;
      break;
    case REG_RAL0:
      ral0_ = v;
      break;
    case REG_RAH0:
      rah0_ = v;
      break;
    case REG_ICR:
      icr_ &= ~v;  // write-1-to-clear
      break;
    default:
      break;  // writes to unimplemented registers are ignored
  }
}

bool E1000Device::ReceiveFrame(const std::vector<uint8_t>& frame) {
  if ((rctl_ & RCTL_EN) == 0 || (status_ & STATUS_LU) == 0 ||
      frame.empty() || frame.size() > kRxBufferBytes) {
    ++stats_.rx_dropped;
    icr_ |= ICR_RXO;
    return false;
  }
  const uint32_t count = RxRingDescriptorCount();
  if (count == 0 || rdh_ == rdt_) {  // no software-provided buffers
    ++stats_.rx_dropped;
    icr_ |= ICR_RXO;
    return false;
  }
  const uint64_t ring_base = (static_cast<uint64_t>(rdbah_) << 32) | rdbal_;
  const uint64_t desc_addr = ring_base + uint64_t{rdh_} * kRxDescBytes;

  LegacyRxDescriptor desc{};
  uint8_t raw[kRxDescBytes];
  ++stats_.dma_descriptor_reads;
  if (!memory_->Read(desc_addr, raw, sizeof(raw)).ok()) {
    ++stats_.bad_descriptors;
    ++stats_.rx_dropped;
    return false;
  }
  std::memcpy(&desc, raw, sizeof(desc));

  // DMA the frame into the software buffer and write the descriptor back.
  if (!memory_->Write(desc.buffer_addr, frame.data(), frame.size()).ok()) {
    ++stats_.bad_descriptors;
    ++stats_.rx_dropped;
    return false;
  }
  desc.length = static_cast<uint16_t>(frame.size());
  desc.status = RXD_STAT_DD | RXD_STAT_EOP;
  desc.errors = 0;
  std::memcpy(raw, &desc, sizeof(desc));
  if (!memory_->Write(desc_addr, raw, sizeof(raw)).ok()) {
    ++stats_.bad_descriptors;
    return false;
  }
  ++stats_.writebacks;
  rdh_ = (rdh_ + 1) % count;
  ++stats_.frames_received;
  stats_.bytes_received += frame.size();
  ++gprc_;
  icr_ |= ICR_RXT0;
  return true;
}

void E1000Device::ProcessTransmitRing() {
  if ((tctl_ & TCTL_EN) == 0) return;        // transmitter disabled
  if ((status_ & STATUS_LU) == 0) return;    // no link
  const uint32_t count = RingDescriptorCount();
  if (count == 0) return;
  // A head or tail pointer outside the ring (a corrupted doorbell write)
  // would make the tdh_ != tdt_ sweep spin forever, because head wraps
  // modulo the ring size and can never meet an out-of-range tail. Real
  // hardware wedges on such programming; the model refuses the doorbell.
  if (tdh_ >= count || tdt_ >= count) {
    ++stats_.bad_doorbells;
    KOP_LOG(kWarn) << "e1000e: TX ring pointers out of range (head "
                   << tdh_ << ", tail " << tdt_ << ", ring " << count
                   << "); transmitter wedged";
    return;
  }
  const uint64_t ring_base =
      (static_cast<uint64_t>(tdbah_) << 32) | tdbal_;

  trace::Gauge* occupancy_gauge =
      trace::GlobalMetrics().GetGauge("nic.tx_ring_occupancy");
  occupancy_gauge->Set((tdt_ + count - tdh_) % count);

  std::vector<uint8_t> frame;
  while (tdh_ != tdt_) {
    const uint64_t desc_addr = ring_base + uint64_t{tdh_} * kTxDescBytes;
    LegacyTxDescriptor desc{};
    uint8_t raw[kTxDescBytes];
    ++stats_.dma_descriptor_reads;
    KOP_TRACE(kNicDescFetch, desc_addr, tdh_);
    if (!memory_->Read(desc_addr, raw, sizeof(raw)).ok()) {
      ++stats_.bad_descriptors;
      KOP_LOG(kWarn) << "e1000e DMA: descriptor fetch failed at 0x"
                     << std::hex << desc_addr;
      break;  // hardware would wedge; stop processing
    }
    std::memcpy(&desc, raw, sizeof(desc));

    // Pull the payload via DMA (unguarded by design).
    if (desc.length > 0) {
      std::vector<uint8_t> chunk(desc.length);
      ++stats_.dma_payload_reads;
      if (!memory_->Read(desc.buffer_addr, chunk.data(), chunk.size()).ok()) {
        ++stats_.bad_descriptors;
      } else {
        frame.insert(frame.end(), chunk.begin(), chunk.end());
      }
    }
    ++stats_.descriptors_processed;

    const bool end_of_packet = (desc.cmd & TXD_CMD_EOP) != 0;
    if (end_of_packet && !frame.empty()) {
      sink_->Deliver(frame);
      ++stats_.frames_transmitted;
      stats_.bytes_transmitted += frame.size();
      KOP_TRACE(kNicXmit, frame.size(),
                (tdt_ + count - (tdh_ + 1) % count) % count);
      ++gptc_;
      gotc_ += frame.size();
      frame.clear();
    }

    // Write back DD when requested.
    if (desc.cmd & TXD_CMD_RS) {
      desc.status |= TXD_STAT_DD;
      std::memcpy(raw, &desc, sizeof(desc));
      if (memory_->Write(desc_addr, raw, sizeof(raw)).ok()) {
        ++stats_.writebacks;
      }
    }

    tdh_ = (tdh_ + 1) % count;
    occupancy_gauge->Set((tdt_ + count - tdh_) % count);
    icr_ |= ICR_TXDW;
    if (tdh_ == tdt_) icr_ |= ICR_TXQE;
  }
}

void LoopbackWire::Deliver(const std::vector<uint8_t>& frame) {
  if (receiver_ != nullptr && receiver_->ReceiveFrame(frame)) {
    ++forwarded_;
  } else {
    ++dropped_;
  }
}

}  // namespace kop::nic
