// Register map and descriptor layout for the simulated Intel 82574L-class
// device (the paper's Intel CT / EXPI9301CTBLK test NIC). Offsets and bit
// positions follow the 8257x software developer's manual closely enough
// that the driver code reads like the real e1000e.
#pragma once

#include <cstdint>

namespace kop::nic {

// Register offsets within the MMIO BAR.
inline constexpr uint64_t REG_CTRL = 0x0000;    // device control
inline constexpr uint64_t REG_STATUS = 0x0008;  // device status
inline constexpr uint64_t REG_EERD = 0x0014;    // EEPROM read (EERD)
inline constexpr uint64_t REG_ICR = 0x00C0;     // interrupt cause read
inline constexpr uint64_t REG_IMS = 0x00D0;     // interrupt mask set
inline constexpr uint64_t REG_IMC = 0x00D8;     // interrupt mask clear
inline constexpr uint64_t REG_RCTL = 0x0100;    // receive control
inline constexpr uint64_t REG_TCTL = 0x0400;    // transmit control
inline constexpr uint64_t REG_TIPG = 0x0410;    // transmit IPG
inline constexpr uint64_t REG_RDBAL = 0x2800;   // RX descriptor base low
inline constexpr uint64_t REG_RDBAH = 0x2804;   // RX descriptor base high
inline constexpr uint64_t REG_RDLEN = 0x2808;   // RX descriptor ring bytes
inline constexpr uint64_t REG_RDH = 0x2810;     // RX descriptor head
inline constexpr uint64_t REG_RDT = 0x2818;     // RX descriptor tail
inline constexpr uint64_t REG_TDBAL = 0x3800;   // TX descriptor base low
inline constexpr uint64_t REG_TDBAH = 0x3804;   // TX descriptor base high
inline constexpr uint64_t REG_TDLEN = 0x3808;   // TX descriptor ring bytes
inline constexpr uint64_t REG_TDH = 0x3810;     // TX descriptor head
inline constexpr uint64_t REG_TDT = 0x3818;     // TX descriptor tail
inline constexpr uint64_t REG_GPRC = 0x4074;    // good packets received
inline constexpr uint64_t REG_GPTC = 0x4080;    // good packets transmitted
inline constexpr uint64_t REG_GOTCL = 0x4088;   // good octets transmitted lo
inline constexpr uint64_t REG_GOTCH = 0x408C;   // good octets transmitted hi
inline constexpr uint64_t REG_RAL0 = 0x5400;    // receive address low
inline constexpr uint64_t REG_RAH0 = 0x5404;    // receive address high

inline constexpr uint64_t kMmioBarSize = 0x20000;  // 128 KiB BAR

// --------------------------------------------------------- multi-queue --
// TX/RX queue register blocks repeat at the real 82571/igb stride of
// 0x100: queue q's TDBAL is 0x3800 + q*0x100, so queue 0's block IS the
// legacy register block and single-queue software never notices the
// other seven.
inline constexpr uint32_t kMaxQueues = 8;
inline constexpr uint64_t kQueueRegStride = 0x100;

/// Queue-q variant of a legacy ring register (works for both the TX
/// block at 0x3800 and the RX block at 0x2800).
constexpr uint64_t QReg(uint64_t legacy_reg, uint32_t q) {
  return legacy_reg + uint64_t{q} * kQueueRegStride;
}

// MSI-X-style extended interrupt block (igb layout). EICR is
// read-to-clear like ICR; EIMS/EIMC set/clear the extended mask.
inline constexpr uint64_t REG_EIMS = 0x1524;  // extended mask set
inline constexpr uint64_t REG_EIMC = 0x1528;  // extended mask clear
inline constexpr uint64_t REG_EICR = 0x1580;  // extended cause (RC)
inline constexpr uint64_t REG_EITR0 = 0x1680; // per-vector throttle, +4*v
inline constexpr uint64_t REG_IVAR0 = 0x1700; // per-queue vector map, +4*q

inline constexpr uint32_t kMaxVectors = 16;

/// EITR(v): interrupt-throttle interval for vector v, in virtual-clock
/// cycles. 0 disables mitigation (every cause asserts).
constexpr uint64_t EITR(uint32_t v) { return REG_EITR0 + 4ull * v; }

/// IVAR(q): vector routing for queue q. Low byte = RX vector, byte 1 =
/// TX vector; bit 7 of each field marks it valid (igb's scheme). An
/// invalid field leaves that cause on the legacy ICR path only.
constexpr uint64_t IVAR(uint32_t q) { return REG_IVAR0 + 4ull * q; }
inline constexpr uint32_t IVAR_VALID = 0x80;
inline constexpr uint32_t IVAR_VECTOR_MASK = 0x0f;
inline constexpr uint32_t IVAR_TX_SHIFT = 8;

// RSS-lite multiple-receive-queues control. Software writes
// MRQC_ENABLE | (n << MRQC_QUEUES_SHIFT) to spread RX across n queues
// by flow hash; 0 (the reset value) routes everything to queue 0.
inline constexpr uint64_t REG_MRQC = 0x5818;
inline constexpr uint32_t MRQC_ENABLE = 1u << 0;
inline constexpr uint32_t MRQC_QUEUES_SHIFT = 3;

// EERD bits: software writes START|(addr<<8), hardware sets DONE and the
// 16-bit data in [31:16].
inline constexpr uint32_t EERD_START = 1u << 0;
inline constexpr uint32_t EERD_DONE = 1u << 4;
inline constexpr uint32_t EERD_ADDR_SHIFT = 8;
inline constexpr uint32_t EERD_DATA_SHIFT = 16;

/// NVM word layout: words 0..2 hold the MAC address (little-endian
/// byte pairs), as on the real part.
inline constexpr uint32_t kNvmWords = 64;

// CTRL bits.
inline constexpr uint32_t CTRL_SLU = 1u << 6;   // set link up
inline constexpr uint32_t CTRL_RST = 1u << 26;  // device reset

// STATUS bits.
inline constexpr uint32_t STATUS_LU = 1u << 1;  // link up

// TCTL bits.
inline constexpr uint32_t TCTL_EN = 1u << 1;  // transmit enable
inline constexpr uint32_t TCTL_PSP = 1u << 3; // pad short packets

// RCTL bits.
inline constexpr uint32_t RCTL_EN = 1u << 1;   // receive enable
inline constexpr uint32_t RCTL_BAM = 1u << 15; // accept broadcast

// Interrupt cause bits.
inline constexpr uint32_t ICR_TXDW = 1u << 0;   // TX descriptor written back
inline constexpr uint32_t ICR_TXQE = 1u << 1;   // TX queue empty
inline constexpr uint32_t ICR_LSC = 1u << 2;    // link status change
inline constexpr uint32_t ICR_RXO = 1u << 6;    // receiver overrun (drop)
inline constexpr uint32_t ICR_RXT0 = 1u << 7;   // receive timer / frame in

// Legacy TX descriptor command bits.
inline constexpr uint8_t TXD_CMD_EOP = 1u << 0;  // end of packet
inline constexpr uint8_t TXD_CMD_IFCS = 1u << 1; // insert FCS
inline constexpr uint8_t TXD_CMD_RS = 1u << 3;   // report status

// Legacy TX descriptor status bits.
inline constexpr uint8_t TXD_STAT_DD = 1u << 0;  // descriptor done

/// Legacy transmit descriptor, 16 bytes, exactly as laid out in memory.
struct LegacyTxDescriptor {
  uint64_t buffer_addr;
  uint16_t length;
  uint8_t cso;
  uint8_t cmd;
  uint8_t status;
  uint8_t css;
  uint16_t special;
};
static_assert(sizeof(LegacyTxDescriptor) == 16);

inline constexpr uint32_t kTxDescBytes = 16;

// Legacy RX descriptor status bits.
inline constexpr uint8_t RXD_STAT_DD = 1u << 0;   // descriptor done
inline constexpr uint8_t RXD_STAT_EOP = 1u << 1;  // end of packet

/// Legacy receive descriptor, 16 bytes, exactly as laid out in memory.
struct LegacyRxDescriptor {
  uint64_t buffer_addr;
  uint16_t length;
  uint16_t csum;
  uint8_t status;
  uint8_t errors;
  uint16_t special;
};
static_assert(sizeof(LegacyRxDescriptor) == 16);

inline constexpr uint32_t kRxDescBytes = 16;

}  // namespace kop::nic
