// Where transmitted frames go. The paper's testbed attaches the NIC to
// "a packet sink"; ours counts frames/bytes, optionally retains the most
// recent ones for inspection, and models the wire's drain rate so the
// link can be a bottleneck when an experiment wants it to be. Sinks are
// thread-safe: with the multi-queue device, concurrent queue sweeps on
// different CPUs deliver into the same sink.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "kop/util/ring_buffer.hpp"

namespace kop::nic {

class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void Deliver(const std::vector<uint8_t>& frame) = 0;
};

/// External loopback plug: every transmitted frame reappears on the
/// receive side of the same (or another) device — the software analogue
/// of the loopback dongle every NIC lab drawer contains. Optionally
/// counts what passed through.
class LoopbackWire : public PacketSink {
 public:
  /// `receiver` is set after device construction (the wire and the device
  /// reference each other).
  LoopbackWire() = default;

  void AttachReceiver(class E1000Device* receiver) { receiver_ = receiver; }

  void Deliver(const std::vector<uint8_t>& frame) override;

  uint64_t forwarded() const {
    return forwarded_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  friend class E1000Device;
  class E1000Device* receiver_ = nullptr;
  std::atomic<uint64_t> forwarded_{0};
  std::atomic<uint64_t> dropped_{0};
};

class CountingSink : public PacketSink {
 public:
  /// Retains the last `retain` frames for test inspection.
  explicit CountingSink(size_t retain = 16) : recent_(retain) {}

  void Deliver(const std::vector<uint8_t>& frame) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++packets_;
    bytes_ += frame.size();
    recent_.push(frame);
  }

  uint64_t packets() const {
    std::lock_guard<std::mutex> lock(mu_);
    return packets_;
  }
  uint64_t bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
  }
  std::vector<std::vector<uint8_t>> RecentFrames() const {
    std::lock_guard<std::mutex> lock(mu_);
    return recent_.snapshot();
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    packets_ = 0;
    bytes_ = 0;
    recent_.clear();
  }

 private:
  mutable std::mutex mu_;
  uint64_t packets_ = 0;
  uint64_t bytes_ = 0;
  RingBuffer<std::vector<uint8_t>> recent_;
};

}  // namespace kop::nic
