// The simulated 82574L-class NIC. Implements kernel::MmioDevice: the
// driver talks to it exclusively through MMIO register reads/writes on
// the mapped BAR, and the device's DMA engine pulls descriptors and
// frame payloads straight out of simulated physical memory — unguarded,
// exactly as the paper notes real DMA is ("the overwhelming amount of
// data transfer occurs due to the DMA engine on the NIC, which is not
// checked (and thus not slowed) by CARAT KOP").
#pragma once

#include <cstdint>
#include <string>

#include "kop/kernel/address_space.hpp"
#include "kop/nic/e1000_regs.hpp"
#include "kop/nic/packet_sink.hpp"
#include "kop/util/status.hpp"

namespace kop::nic {

struct DeviceStats {
  uint64_t descriptors_processed = 0;
  uint64_t frames_transmitted = 0;
  uint64_t bytes_transmitted = 0;
  uint64_t dma_descriptor_reads = 0;
  uint64_t dma_payload_reads = 0;
  uint64_t writebacks = 0;
  uint64_t tail_writes = 0;
  uint64_t bad_descriptors = 0;  // malformed ring entries skipped
  uint64_t bad_doorbells = 0;    // TDH/TDT outside the ring; TX wedged
  uint64_t frames_received = 0;
  uint64_t bytes_received = 0;
  uint64_t rx_dropped = 0;       // RX disabled / ring empty / too big
};

class E1000Device final : public kernel::MmioDevice {
 public:
  /// `memory` is the simulated physical/kernel address space the DMA
  /// engine reads descriptors and payloads from. `sink` receives frames.
  /// Neither is owned; both must outlive the device.
  E1000Device(kernel::AddressSpace* memory, PacketSink* sink);

  /// Map the device's 128 KiB BAR at `mmio_base` in `memory`.
  Status MapAt(uint64_t mmio_base);

  // kernel::MmioDevice:
  uint64_t MmioRead(uint64_t offset, uint32_t size) override;
  void MmioWrite(uint64_t offset, uint64_t value, uint32_t size) override;

  /// Process pending descriptors (TDH..TDT). Called automatically on TDT
  /// writes when `auto_process` (default); callable directly for tests
  /// that stage the ring first.
  void ProcessTransmitRing();

  /// A frame arrives on the wire: DMA it into the next software-provided
  /// RX buffer (RDH side of the ring), write the descriptor back with
  /// DD|EOP, and raise RXT0. Returns false (counted as rx_dropped) when
  /// the receiver is disabled, the link is down, the ring has no free
  /// buffers, or the frame exceeds the buffer size.
  bool ReceiveFrame(const std::vector<uint8_t>& frame);

  void set_auto_process(bool on) { auto_process_ = on; }

  const DeviceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DeviceStats(); }

  /// Current interrupt causes that are unmasked (what the INTx line sees).
  uint32_t PendingInterrupts() const { return icr_ & ims_; }

  uint64_t mmio_base() const { return mmio_base_; }

  /// RX buffer size the device assumes (RCTL.BSIZE fixed at 2048).
  static constexpr uint32_t kRxBufferBytes = 2048;

  /// Program the NVM's factory MAC (words 0..2). Default is
  /// 02:ca:4a:70:0b:01 ("CARAT KOP" leetish, locally administered).
  void SetNvmMac(const uint8_t mac[6]);

  /// The MAC currently programmed into RAL0/RAH0 by the driver.
  void ReceiveAddress(uint8_t out[6]) const;

 private:
  void Reset();
  uint32_t RingDescriptorCount() const { return tdlen_ / kTxDescBytes; }
  uint32_t RxRingDescriptorCount() const { return rdlen_ / kRxDescBytes; }

  kernel::AddressSpace* memory_;
  PacketSink* sink_;
  uint64_t mmio_base_ = 0;
  bool auto_process_ = true;

  // Register file (the subset the driver uses).
  uint32_t ctrl_ = 0;
  uint32_t status_ = 0;
  uint32_t icr_ = 0;
  uint32_t ims_ = 0;
  uint32_t tctl_ = 0;
  uint32_t rctl_ = 0;
  uint32_t tipg_ = 0;
  uint32_t tdbal_ = 0;
  uint32_t tdbah_ = 0;
  uint32_t tdlen_ = 0;
  uint32_t tdh_ = 0;
  uint32_t tdt_ = 0;
  uint32_t rdbal_ = 0;
  uint32_t rdbah_ = 0;
  uint32_t rdlen_ = 0;
  uint32_t rdh_ = 0;
  uint32_t rdt_ = 0;
  uint32_t ral0_ = 0;
  uint32_t rah0_ = 0;
  uint32_t gptc_ = 0;
  uint32_t gprc_ = 0;
  uint64_t gotc_ = 0;
  uint32_t eerd_ = 0;
  uint16_t nvm_[kNvmWords] = {};

  DeviceStats stats_;
};

}  // namespace kop::nic
