// The simulated 82574L/igb-class NIC. Implements kernel::MmioDevice: the
// driver talks to it exclusively through MMIO register reads/writes on
// the mapped BAR, and the device's DMA engine pulls descriptors and
// frame payloads straight out of simulated physical memory — unguarded,
// exactly as the paper notes real DMA is ("the overwhelming amount of
// data transfer occurs due to the DMA engine on the NIC, which is not
// checked (and thus not slowed) by CARAT KOP").
//
// The device exposes up to kMaxQueues TX/RX queue pairs at the real
// 0x100 register stride; queue 0's block is the legacy register block,
// so single-queue software sees the exact pre-multi-queue device.
// Distinct queues may be processed concurrently from different CPUs:
// per-queue ring state is owned by the queue's driving CPU, and
// everything shared (ICR/EICR, hardware counters, folded stats) is
// atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "kop/kernel/address_space.hpp"
#include "kop/nic/e1000_regs.hpp"
#include "kop/nic/packet_sink.hpp"
#include "kop/sim/clock.hpp"
#include "kop/util/status.hpp"

namespace kop::nic {

struct DeviceStats {
  uint64_t descriptors_processed = 0;
  uint64_t frames_transmitted = 0;
  uint64_t bytes_transmitted = 0;
  uint64_t dma_descriptor_reads = 0;
  uint64_t dma_payload_reads = 0;
  uint64_t writebacks = 0;
  uint64_t tail_writes = 0;
  uint64_t bad_descriptors = 0;  // malformed ring entries skipped
  uint64_t bad_doorbells = 0;    // TDH/TDT outside the ring; TX wedged
  uint64_t frames_received = 0;
  uint64_t bytes_received = 0;
  uint64_t rx_dropped = 0;       // RX disabled / ring empty / too big
};

class E1000Device final : public kernel::MmioDevice {
 public:
  /// `memory` is the simulated physical/kernel address space the DMA
  /// engine reads descriptors and payloads from. `sink` receives frames.
  /// Neither is owned; both must outlive the device.
  E1000Device(kernel::AddressSpace* memory, PacketSink* sink);

  /// Map the device's 128 KiB BAR at `mmio_base` in `memory`.
  Status MapAt(uint64_t mmio_base);

  /// Attach the virtual clock used by the EITR interrupt-mitigation
  /// model. Without a clock every cause asserts (EITR ignored).
  void AttachClock(const sim::VirtualClock* clock) { clock_ = clock; }

  // kernel::MmioDevice:
  uint64_t MmioRead(uint64_t offset, uint32_t size) override;
  void MmioWrite(uint64_t offset, uint64_t value, uint32_t size) override;

  /// Process pending descriptors (TDH..TDT) on queue 0. Called
  /// automatically on TDT writes when `auto_process` (default); callable
  /// directly for tests that stage the ring first.
  void ProcessTransmitRing() { ProcessTransmitRing(0); }

  /// Same, for an arbitrary TX queue.
  void ProcessTransmitRing(uint32_t queue);

  /// A frame arrives on the wire: route it to an RX queue (flow hash
  /// when MRQC enables RSS, queue 0 otherwise), DMA it into the next
  /// software-provided buffer, write the descriptor back with DD|EOP,
  /// and raise RXT0/the queue's MSI-X vector. Returns false (counted as
  /// rx_dropped) when the receiver is disabled, the link is down, the
  /// ring has no free buffers, or the frame exceeds the buffer size.
  bool ReceiveFrame(const std::vector<uint8_t>& frame);

  /// Deliver a frame directly to a specific RX queue (bypasses RSS).
  bool ReceiveFrameOn(uint32_t queue, const std::vector<uint8_t>& frame);

  /// The RX queue RSS would pick for this frame right now.
  uint32_t RouteRxQueue(const std::vector<uint8_t>& frame) const;

  void set_auto_process(bool on) { auto_process_ = on; }

  /// Stats folded across all queues (legacy shape: a queue-0-only
  /// workload folds to exactly the pre-multi-queue numbers).
  DeviceStats stats() const;
  /// Stats for a single queue.
  DeviceStats QueueStats(uint32_t queue) const;
  void ResetStats();

  /// Current legacy causes that are unmasked (what the INTx line sees).
  uint32_t PendingInterrupts() const {
    return icr_.load(std::memory_order_relaxed) &
           ims_.load(std::memory_order_relaxed);
  }

  /// Current extended (MSI-X) causes that are unmasked.
  uint32_t PendingMsix() const {
    return eicr_.load(std::memory_order_relaxed) &
           eims_.load(std::memory_order_relaxed);
  }

  /// MSI-X assertion/throttle counters for one vector. An assert is a
  /// cause that fired with the vector unmasked and its EITR window
  /// elapsed; a throttled cause latched into EICR without firing.
  uint64_t MsixAsserts(uint32_t vector) const {
    return msix_asserts_[vector].load(std::memory_order_relaxed);
  }
  uint64_t MsixThrottled(uint32_t vector) const {
    return msix_throttled_[vector].load(std::memory_order_relaxed);
  }

  uint64_t mmio_base() const { return mmio_base_; }

  /// RX buffer size the device assumes (RCTL.BSIZE fixed at 2048).
  static constexpr uint32_t kRxBufferBytes = 2048;

  /// Program the NVM's factory MAC (words 0..2). Default is
  /// 02:ca:4a:70:0b:01 ("CARAT KOP" leetish, locally administered).
  void SetNvmMac(const uint8_t mac[6]);

  /// The MAC currently programmed into RAL0/RAH0 by the driver.
  void ReceiveAddress(uint8_t out[6]) const;

 private:
  struct TxQueue {
    uint32_t tdbal = 0;
    uint32_t tdbah = 0;
    uint32_t tdlen = 0;
    uint32_t tdh = 0;
    uint32_t tdt = 0;
  };
  struct RxQueue {
    uint32_t rdbal = 0;
    uint32_t rdbah = 0;
    uint32_t rdlen = 0;
    uint32_t rdh = 0;
    uint32_t rdt = 0;
  };
  /// Per-queue counters. Atomic so a fold from any thread is clean
  /// while the owning CPU's sweep is mid-flight.
  struct QueueCounters {
    std::atomic<uint64_t> descriptors_processed{0};
    std::atomic<uint64_t> frames_transmitted{0};
    std::atomic<uint64_t> bytes_transmitted{0};
    std::atomic<uint64_t> dma_descriptor_reads{0};
    std::atomic<uint64_t> dma_payload_reads{0};
    std::atomic<uint64_t> writebacks{0};
    std::atomic<uint64_t> tail_writes{0};
    std::atomic<uint64_t> bad_descriptors{0};
    std::atomic<uint64_t> bad_doorbells{0};
    std::atomic<uint64_t> frames_received{0};
    std::atomic<uint64_t> bytes_received{0};
    std::atomic<uint64_t> rx_dropped{0};
  };

  void Reset();
  uint32_t TxRingCount(const TxQueue& q) const { return q.tdlen / kTxDescBytes; }
  uint32_t RxRingCount(const RxQueue& q) const { return q.rdlen / kRxDescBytes; }

  /// Raise a cause for queue `queue`: legacy ICR bits for queue 0, plus
  /// the MSI-X vector IVAR maps the queue's TX or RX cause to (if any).
  void RaiseLegacy(uint32_t causes) {
    icr_.fetch_or(causes, std::memory_order_relaxed);
  }
  void RaiseQueueVector(uint32_t queue, bool tx);
  void RaiseMsix(uint32_t vector);

  kernel::AddressSpace* memory_;
  PacketSink* sink_;
  const sim::VirtualClock* clock_ = nullptr;
  uint64_t mmio_base_ = 0;
  bool auto_process_ = true;

  // Register file (the subset the driver uses). Shared registers that
  // concurrent queue sweeps touch are atomic; per-queue ring state is
  // only ever accessed by the queue's driving CPU.
  uint32_t ctrl_ = 0;
  uint32_t status_ = 0;
  std::atomic<uint32_t> icr_{0};
  std::atomic<uint32_t> ims_{0};
  std::atomic<uint32_t> eicr_{0};
  std::atomic<uint32_t> eims_{0};
  uint32_t tctl_ = 0;
  uint32_t rctl_ = 0;
  uint32_t tipg_ = 0;
  uint32_t mrqc_ = 0;
  uint32_t ral0_ = 0;
  uint32_t rah0_ = 0;
  std::atomic<uint32_t> gptc_{0};
  std::atomic<uint32_t> gprc_{0};
  std::atomic<uint64_t> gotc_{0};
  uint32_t eerd_ = 0;
  uint16_t nvm_[kNvmWords] = {};

  TxQueue tx_[kMaxQueues];
  RxQueue rx_[kMaxQueues];
  QueueCounters counters_[kMaxQueues];
  std::atomic<uint32_t> ivar_[kMaxQueues] = {};
  std::atomic<uint32_t> eitr_[kMaxVectors] = {};
  std::atomic<uint64_t> eitr_last_fire_[kMaxVectors] = {};
  std::atomic<uint64_t> msix_asserts_[kMaxVectors] = {};
  std::atomic<uint64_t> msix_throttled_[kMaxVectors] = {};
};

}  // namespace kop::nic
