#include "kop/util/hexdump.hpp"

#include <cctype>
#include <cstdio>

namespace kop {

std::string Hexdump(const void* data, size_t size, uint64_t base_offset) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  std::string out;
  char line[96];
  for (size_t row = 0; row < size; row += 16) {
    int pos = std::snprintf(line, sizeof(line), "%08llx: ",
                            static_cast<unsigned long long>(base_offset + row));
    for (size_t col = 0; col < 16; ++col) {
      if (row + col < size) {
        pos += std::snprintf(line + pos, sizeof(line) - pos, "%02x",
                             bytes[row + col]);
      } else {
        pos += std::snprintf(line + pos, sizeof(line) - pos, "  ");
      }
      if (col % 2 == 1) line[pos++] = ' ';
    }
    line[pos++] = ' ';
    for (size_t col = 0; col < 16 && row + col < size; ++col) {
      const uint8_t byte = bytes[row + col];
      line[pos++] = std::isprint(byte) ? static_cast<char>(byte) : '.';
    }
    line[pos++] = '\n';
    out.append(line, pos);
  }
  return out;
}

}  // namespace kop
