#include "kop/util/status.hpp"

namespace kop {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kPermissionDenied: return "permission_denied";
    case ErrorCode::kOutOfMemory: return "out_of_memory";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kNoSpace: return "no_space";
    case ErrorCode::kBadModule: return "bad_module";
    case ErrorCode::kBusy: return "busy";
    case ErrorCode::kUnimplemented: return "unimplemented";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kInterrupted: return "interrupted";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace kop
