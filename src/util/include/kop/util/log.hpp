// Host-side logging for the simulator itself (the simulated kernel's own
// printk ring lives in kop::kernel). Severity-filtered, thread-safe,
// redirectable to any std::ostream for test capture.
#pragma once

#include <sstream>
#include <string_view>

namespace kop {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

std::string_view LogLevelName(LogLevel level);

/// Global minimum severity; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Redirect log output (default: stderr). Pass nullptr to restore stderr.
/// The stream must outlive all logging calls made while installed.
void SetLogStream(std::ostream* stream);

namespace internal {
void Emit(LogLevel level, std::string_view file, int line,
          const std::string& message);

/// RAII builder so call sites can stream: KOP_LOG(kInfo) << "x=" << x;
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { Emit(level_, file_, line_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

#define KOP_LOG(severity)                                               \
  if (::kop::LogLevel::severity < ::kop::GetLogLevel()) {               \
  } else                                                                \
    ::kop::internal::LogLine(::kop::LogLevel::severity, __FILE__, __LINE__)

}  // namespace kop
