// Fixed-capacity ring buffer. Used for the printk log ring and as the
// backing store for NIC packet sinks. Overwrites the oldest element when
// full (kernel printk semantics) unless push_nodrop is used.
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <vector>

namespace kop {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(size_t capacity) : storage_(capacity) {
    assert(capacity > 0);
  }

  size_t capacity() const { return storage_.size(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == storage_.size(); }

  /// Total number of elements ever pushed, including overwritten ones.
  uint64_t total_pushed() const { return total_pushed_; }
  /// Number of elements lost to overwrite.
  uint64_t dropped() const { return total_pushed_ - size_ - popped_; }

  /// Push, overwriting the oldest element when full (printk semantics).
  void push(T value) {
    storage_[(head_ + size_) % storage_.size()] = std::move(value);
    if (full()) {
      head_ = (head_ + 1) % storage_.size();
    } else {
      ++size_;
    }
    ++total_pushed_;
  }

  /// Push only if there is room; returns false (and drops) when full.
  bool push_nodrop(T value) {
    if (full()) return false;
    push(std::move(value));
    return true;
  }

  std::optional<T> pop() {
    if (empty()) return std::nullopt;
    T out = std::move(storage_[head_]);
    head_ = (head_ + 1) % storage_.size();
    --size_;
    ++popped_;
    return out;
  }

  /// Peek the i-th oldest element (0 = oldest) without removing it.
  const T& at(size_t i) const {
    assert(i < size_);
    return storage_[(head_ + i) % storage_.size()];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Copy contents oldest-first into a vector (for log dumps).
  std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(size_);
    for (size_t i = 0; i < size_; ++i) out.push_back(at(i));
    return out;
  }

 private:
  std::vector<T> storage_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t total_pushed_ = 0;
  uint64_t popped_ = 0;
};

}  // namespace kop
