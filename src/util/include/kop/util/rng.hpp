// Deterministic, seedable PRNGs for workload generation and the machine
// noise model. SplitMix64 for seeding, xoshiro256** as the workhorse.
// Benches must be reproducible, so nothing here touches std::random_device.
#pragma once

#include <cmath>
#include <cstdint>

namespace kop {

/// SplitMix64: used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256**: fast, high-quality, 256-bit state.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 mix(seed);
    for (auto& word : state_) word = mix.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Uses Lemire's multiply-shift reduction.
  uint64_t NextBelow(uint64_t bound) {
    // The tiny modulo bias at 64 bits is irrelevant for workload gen.
    return bound == 0 ? 0 : static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    return lo + NextBelow(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box-Muller on cached pairs.
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    while (u1 <= 1e-300) u1 = NextDouble();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.141592653589793 * u2;
    cached_gaussian_ = radius * std::sin(theta);
    has_cached_gaussian_ = true;
    return radius * std::cos(theta);
  }

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace kop
