// The CARAT KOP guard ABI — the one contract shared by the compiler-side
// transform and the runtime policy module (paper §3.1):
//
//   void carat_guard(void* addr, size_t size, int access_flags);
//
// The transform injects calls with these flag values; the policy module
// interprets them. Nothing else crosses the boundary, which is what lets
// one guard implementation be swapped for another without recompiling the
// protected module.
#pragma once

#include <cstdint>

namespace kop {

/// Name of the guard symbol the policy module exports and protected
/// modules import.
inline constexpr const char* kCaratGuardSymbol = "carat_guard";

/// Name of the privileged-intrinsic guard symbol (§5 extension).
inline constexpr const char* kCaratIntrinsicGuardSymbol =
    "carat_intrinsic_guard";

/// Covering-interval guard emitted by the proof-driven elision pass:
///
///   void carat_guard_range(void* addr, size_t size, int access_flags,
///                          size_t elided);
///
/// One check over [addr, addr+size) whose flags are the union of the
/// member accesses it covers; `elided` is the number of original guard
/// calls this check subsumes beyond itself (for guard.elided accounting).
/// The attestation's elision-provenance table names the member sites so
/// the static verifier can re-prove the covering claim at insmod.
inline constexpr const char* kCaratGuardRangeSymbol = "carat_guard_range";

/// Control-flow integrity check emitted by the CfiInjectionPass
/// (DESIGN.md §16) immediately before every indirect call:
///
///   int carat_cfi_check(void* target, size_t set_id);
///
/// `set_id` indexes the per-module target-set table carried in the
/// signed attestation and registered with the policy engine at insmod
/// (the loader's resolver rebases module-local ids into the engine's
/// global table). Returns nonzero when `target` is a member; a denial
/// owns the same violation/containment semantics as a memory guard.
inline constexpr const char* kCaratCfiCheckSymbol = "carat_cfi_check";

/// access_flags bits.
inline constexpr uint64_t kGuardAccessRead = 1u << 0;
inline constexpr uint64_t kGuardAccessWrite = 1u << 1;

}  // namespace kop
