// The CARAT KOP guard ABI — the one contract shared by the compiler-side
// transform and the runtime policy module (paper §3.1):
//
//   void carat_guard(void* addr, size_t size, int access_flags);
//
// The transform injects calls with these flag values; the policy module
// interprets them. Nothing else crosses the boundary, which is what lets
// one guard implementation be swapped for another without recompiling the
// protected module.
#pragma once

#include <cstdint>

namespace kop {

/// Name of the guard symbol the policy module exports and protected
/// modules import.
inline constexpr const char* kCaratGuardSymbol = "carat_guard";

/// Name of the privileged-intrinsic guard symbol (§5 extension).
inline constexpr const char* kCaratIntrinsicGuardSymbol =
    "carat_intrinsic_guard";

/// access_flags bits.
inline constexpr uint64_t kGuardAccessRead = 1u << 0;
inline constexpr uint64_t kGuardAccessWrite = 1u << 1;

}  // namespace kop
