// Hexdump formatting for debugging packet payloads, descriptor rings and
// module images — output format matches `xxd` (offset, 16 bytes, ASCII).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace kop {

/// Format `size` bytes starting at `data` as a multi-line hexdump.
/// `base_offset` is printed as the address of the first byte.
std::string Hexdump(const void* data, size_t size, uint64_t base_offset = 0);

}  // namespace kop
