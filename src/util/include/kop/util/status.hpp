// Lightweight status / expected-value types used across the CARAT KOP
// libraries. Kernel-style code paths (module loading, ioctl handling,
// policy updates) report recoverable errors through these instead of
// exceptions; exceptions are reserved for simulated kernel panics.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace kop {

/// Error categories, loosely mirroring the errno values the real kernel
/// module interface would return from init/ioctl paths.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // EINVAL
  kNotFound,          // ENOENT
  kAlreadyExists,     // EEXIST
  kPermissionDenied,  // EACCES
  kOutOfMemory,       // ENOMEM
  kOutOfRange,        // EFAULT-ish: address outside the physical map
  kNoSpace,           // ENOSPC: e.g. region table full
  kBadModule,         // ENOEXEC: module failed validation
  kBusy,              // EBUSY
  kUnimplemented,     // ENOSYS
  kTimeout,           // ETIME: watchdog/step-budget expiry
  kInterrupted,       // EINTR: call aborted by a cross-CPU stop request
  kInternal,          // anything that indicates a bug in the simulator
};

/// Human-readable name for an error code ("invalid_argument", ...).
std::string_view ErrorCodeName(ErrorCode code);

/// A success-or-error result with a message. Cheap to copy on the success
/// path (no allocation when ok).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "use Status() / OkStatus() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

inline Status InvalidArgument(std::string msg) {
  return Status(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(ErrorCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(ErrorCode::kAlreadyExists, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(ErrorCode::kPermissionDenied, std::move(msg));
}
inline Status OutOfMemory(std::string msg) {
  return Status(ErrorCode::kOutOfMemory, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(ErrorCode::kOutOfRange, std::move(msg));
}
inline Status NoSpace(std::string msg) {
  return Status(ErrorCode::kNoSpace, std::move(msg));
}
inline Status BadModule(std::string msg) {
  return Status(ErrorCode::kBadModule, std::move(msg));
}
inline Status Busy(std::string msg) {
  return Status(ErrorCode::kBusy, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(ErrorCode::kUnimplemented, std::move(msg));
}
inline Status Timeout(std::string msg) {
  return Status(ErrorCode::kTimeout, std::move(msg));
}
inline Status Interrupted(std::string msg) {
  return Status(ErrorCode::kInterrupted, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(ErrorCode::kInternal, std::move(msg));
}

/// Result<T>: either a value or a Status. Modeled after absl::StatusOr.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}         // NOLINT(implicit)
  Result(Status status) : rep_(std::move(status)) {   // NOLINT(implicit)
    assert(!std::get<Status>(rep_).ok() &&
           "Result<T> must not hold an OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

// Propagate-on-error helpers, kernel-module-init style.
#define KOP_RETURN_IF_ERROR(expr)               \
  do {                                          \
    ::kop::Status kop_status_ = (expr);         \
    if (!kop_status_.ok()) return kop_status_;  \
  } while (0)

#define KOP_INTERNAL_CONCAT_(a, b) a##b
#define KOP_INTERNAL_CONCAT(a, b) KOP_INTERNAL_CONCAT_(a, b)

#define KOP_ASSIGN_OR_RETURN(lhs, expr) \
  KOP_ASSIGN_OR_RETURN_IMPL(KOP_INTERNAL_CONCAT(kop_result_, __LINE__), lhs, \
                            expr)

#define KOP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

}  // namespace kop
