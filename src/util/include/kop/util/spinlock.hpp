// A test-and-test-and-set spinlock mirroring the kernel's spinlock_t usage
// in the policy module and printk ring. BasicLockable, so it composes with
// std::lock_guard / std::scoped_lock.
#pragma once

#include <atomic>
#include <thread>

namespace kop {

class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Spin on a plain load to avoid cache-line ping-pong, yielding
      // occasionally so single-core CI machines make progress.
      unsigned spins = 0;
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins == 1024) {
          spins = 0;
          std::this_thread::yield();
        }
      }
    }
  }

  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace kop
