// Bit and alignment helpers shared by the memory map, allocator, NIC
// register file and descriptor ring code.
#pragma once

#include <cstdint>
#include <type_traits>

namespace kop {

/// True when `value` is a power of two (zero is not).
constexpr bool IsPowerOfTwo(uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

/// Round `value` up to the next multiple of `alignment` (a power of two).
constexpr uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

/// Round `value` down to a multiple of `alignment` (a power of two).
constexpr uint64_t AlignDown(uint64_t value, uint64_t alignment) {
  return value & ~(alignment - 1);
}

/// True when `value` is a multiple of `alignment` (a power of two).
constexpr bool IsAligned(uint64_t value, uint64_t alignment) {
  return (value & (alignment - 1)) == 0;
}

/// Extract bits [lo, hi] (inclusive) of `value`.
constexpr uint64_t ExtractBits(uint64_t value, unsigned lo, unsigned hi) {
  const uint64_t width = hi - lo + 1;
  const uint64_t mask = width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  return (value >> lo) & mask;
}

/// Overflow-safe "does [base, base+size) contain [addr, addr+len)".
/// Zero-length inner ranges are contained iff addr lies within the range.
constexpr bool RangeContains(uint64_t base, uint64_t size, uint64_t addr,
                             uint64_t len) {
  if (addr < base) return false;
  const uint64_t offset = addr - base;
  if (offset > size) return false;
  return len <= size - offset;
}

/// Overflow-safe "do [a, a+asize) and [b, b+bsize) intersect".
constexpr bool RangesOverlap(uint64_t a, uint64_t asize, uint64_t b,
                             uint64_t bsize) {
  if (asize == 0 || bsize == 0) return false;
  // a < b+bsize && b < a+asize, written without overflow.
  if (a >= b) return a - b < bsize;
  return b - a < asize;
}

/// Ceiling division for unsigned integers.
template <typename T>
constexpr T CeilDiv(T num, T den) {
  static_assert(std::is_unsigned_v<T>);
  return (num + den - 1) / den;
}

}  // namespace kop
