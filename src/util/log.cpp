#include "kop/util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace kop {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::atomic<std::ostream*> g_stream{nullptr};
std::mutex g_emit_mutex;

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }
void SetLogStream(std::ostream* stream) { g_stream.store(stream); }

namespace internal {

void Emit(LogLevel level, std::string_view file, int line,
          const std::string& message) {
  // Strip directories: log the basename like kernel log prefixes do.
  size_t slash = file.rfind('/');
  if (slash != std::string_view::npos) file = file.substr(slash + 1);

  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::ostream& out = g_stream.load() ? *g_stream.load() : std::cerr;
  out << '[' << LogLevelName(level) << "] " << file << ':' << line << ": "
      << message << '\n';
}

}  // namespace internal
}  // namespace kop
