#include "kop/net/packet_gun.hpp"

namespace kop::net {

Result<TrialResult> PacketGun::RunTrial(const TrialConfig& config) {
  if (config.frame_bytes < kEthHeaderBytes) {
    return InvalidArgument("frame smaller than an Ethernet header");
  }
  const EthernetFrame frame = MakeTestFrame(config.frame_bytes);
  const std::vector<uint8_t> wire = frame.Serialize();

  TrialResult result;
  if (config.collect_latencies) {
    result.latencies_cycles.reserve(config.packets);
  }

  auto& clock = kernel_->clock();
  const double start = clock.NowCycles();
  for (uint64_t i = 0; i < config.packets; ++i) {
    KOP_ASSIGN_OR_RETURN(SendmsgResult send, socket_->Sendmsg(wire));
    if (send.blocked) ++result.blocked;
    if (config.collect_latencies) {
      result.latencies_cycles.push_back(
          static_cast<double>(send.latency_cycles));
    }
    // Between calls: loop overhead, IRQ handling, amortized waits.
    clock.Advance(kernel_->machine().inter_call_cycles);
  }

  result.packets = config.packets;
  result.total_cycles = clock.NowCycles() - start;
  result.cycles_per_packet =
      result.total_cycles / static_cast<double>(config.packets);
  result.packets_per_second =
      kernel_->machine().freq_hz / result.cycles_per_packet;
  return result;
}

}  // namespace kop::net
