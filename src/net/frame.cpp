#include "kop/net/frame.hpp"

#include <cassert>
#include <cstdio>
#include <cstring>

namespace kop::net {

std::vector<uint8_t> EthernetFrame::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(WireSize());
  out.insert(out.end(), dst.begin(), dst.end());
  out.insert(out.end(), src.begin(), src.end());
  out.push_back(static_cast<uint8_t>(ethertype >> 8));
  out.push_back(static_cast<uint8_t>(ethertype));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bool EthernetFrame::Parse(const std::vector<uint8_t>& wire,
                          EthernetFrame* out) {
  if (wire.size() < kEthHeaderBytes) return false;
  std::memcpy(out->dst.data(), wire.data(), 6);
  std::memcpy(out->src.data(), wire.data() + 6, 6);
  out->ethertype = static_cast<uint16_t>((wire[12] << 8) | wire[13]);
  out->payload.assign(wire.begin() + kEthHeaderBytes, wire.end());
  return true;
}

MacAddress MacFromString(const std::string& text) {
  MacAddress mac{};
  unsigned bytes[6] = {};
  const int matched = std::sscanf(text.c_str(), "%x:%x:%x:%x:%x:%x",
                                  &bytes[0], &bytes[1], &bytes[2], &bytes[3],
                                  &bytes[4], &bytes[5]);
  if (matched != 6) {
    assert(false && "malformed MAC");
    return mac;
  }
  for (int i = 0; i < 6; ++i) mac[i] = static_cast<uint8_t>(bytes[i]);
  return mac;
}

std::string MacToString(const MacAddress& mac) {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", mac[0],
                mac[1], mac[2], mac[3], mac[4], mac[5]);
  return buf;
}

EthernetFrame MakeTestFrame(size_t wire_size, uint8_t seed) {
  assert(wire_size >= kEthHeaderBytes);
  EthernetFrame frame;
  frame.dst = MacFromString("02:00:00:00:00:fe");  // fake destination
  frame.src = MacFromString("02:00:00:00:00:01");
  frame.payload.resize(wire_size - kEthHeaderBytes);
  uint8_t value = seed;
  for (uint8_t& byte : frame.payload) {
    byte = value;
    value = static_cast<uint8_t>(value * 167 + 13);
  }
  return frame;
}

FlowSet::FlowSet(uint32_t num_flows, uint64_t seed,
                 std::vector<uint32_t> sizes)
    : num_flows_(num_flows == 0 ? 1 : num_flows),
      seed_(seed),
      sizes_(std::move(sizes)) {
  if (sizes_.empty()) {
    // Span the copybreak boundary and the common MTU sizes.
    sizes_ = {64, 128, 256, 512, 1024, 1514};
  }
}

uint32_t FlowSet::FrameBytes(uint32_t flow) const {
  return sizes_[(flow + static_cast<uint32_t>(seed_)) % sizes_.size()];
}

EthernetFrame FlowSet::MakeFrame(uint32_t flow, uint64_t seq) const {
  EthernetFrame frame;
  // Stable per-flow MACs: the RSS hash reads the first 12 wire bytes
  // (dst | src), so baking the flow id into both gives each flow a
  // stable queue and different flows different hashes.
  const uint64_t tag = seed_ * 1099511628211ull + flow;
  frame.dst = {0x02, uint8_t(tag >> 24), uint8_t(tag >> 16),
               uint8_t(tag >> 8), uint8_t(tag), uint8_t(flow)};
  frame.src = {0x02, 0x01, uint8_t(flow >> 8), uint8_t(flow),
               uint8_t(tag >> 32), uint8_t(tag >> 40)};
  frame.payload.resize(FrameBytes(flow) - kEthHeaderBytes);
  uint8_t value = uint8_t(tag ^ (seq * 167));
  for (uint8_t& byte : frame.payload) {
    byte = value;
    value = static_cast<uint8_t>(value * 167 + 13);
  }
  return frame;
}

std::vector<uint8_t> FlowSet::MakeWire(uint32_t flow, uint64_t seq) const {
  return MakeFrame(flow, seq).Serialize();
}

}  // namespace kop::net
