// The measurement tool of §4.2: "The tool can vary the number of packets
// sent and the size of the packets. The tool measures the throughput of
// the packet transmissions, and the latency of individual packet
// launches." Latency is the sendmsg() interior (rdtsc pair around the
// call); throughput additionally includes the inter-call overhead per
// packet (userspace loop, interrupt handling, amortized blocking) from
// the machine model.
#pragma once

#include <cstdint>
#include <vector>

#include "kop/kernel/kernel.hpp"
#include "kop/net/frame.hpp"
#include "kop/net/socket.hpp"

namespace kop::net {

struct TrialConfig {
  uint64_t packets = 1000;
  uint32_t frame_bytes = 128;
  bool collect_latencies = false;
};

struct TrialResult {
  uint64_t packets = 0;
  double total_cycles = 0.0;  // whole trial, inter-call overhead included
  double cycles_per_packet = 0.0;
  double packets_per_second = 0.0;  // at the machine's core frequency
  uint64_t blocked = 0;
  std::vector<double> latencies_cycles;  // when collect_latencies
};

class PacketGun {
 public:
  PacketGun(kernel::Kernel* kernel, PacketSocket* socket)
      : kernel_(kernel), socket_(socket) {}

  /// Launch `config.packets` frames of `config.frame_bytes` and report.
  Result<TrialResult> RunTrial(const TrialConfig& config);

 private:
  kernel::Kernel* kernel_;
  PacketSocket* socket_;
};

}  // namespace kop::net
