// The raw-packet socket layer: the core-kernel path between the test
// tool's sendmsg() and the driver's xmit_frame. Core-kernel code is NOT
// transformed by CARAT KOP — only the module is — so this layer performs
// plain (unguarded) work: syscall entry, copying the frame from user
// space into the skb, then handing the skb to the bound net device.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/smp/affinity.hpp"
#include "kop/util/rng.hpp"
#include "kop/util/status.hpp"

namespace kop::net {

/// What the socket layer needs from a driver. Adapts both Driver<Ops>
/// instantiations (and anything else that can transmit).
class NetDevice {
 public:
  virtual ~NetDevice() = default;
  /// Queue a frame whose bytes sit in simulated memory.
  virtual Status Xmit(uint64_t frame_addr, uint32_t len) = 0;
  /// Reclaim completed descriptors (the interrupt path's job).
  virtual Status CleanTx() = 0;
};

template <typename DriverT>
class DriverNetDevice final : public NetDevice {
 public:
  explicit DriverNetDevice(DriverT* driver) : driver_(driver) {}
  Status Xmit(uint64_t frame_addr, uint32_t len) override {
    if (down_) return PermissionDenied("netdev down: driver contained");
    try {
      return driver_->XmitFrame(frame_addr, len);
    } catch (const kernel::GuardViolation&) {
      // The driver (or a guarded module it called into) was contained
      // mid-transmit. Degrade: mark the device down and report a soft
      // error — core-kernel code must never re-enter a contained driver.
      down_ = true;
      return PermissionDenied("netdev down: driver contained during xmit");
    }
  }
  Status CleanTx() override {
    if (down_) return PermissionDenied("netdev down: driver contained");
    try {
      auto cleaned = driver_->CleanTxRing();
      return cleaned.ok() ? OkStatus() : cleaned.status();
    } catch (const kernel::GuardViolation&) {
      down_ = true;
      return PermissionDenied("netdev down: driver contained during tx clean");
    }
  }

 private:
  DriverT* driver_;
  bool down_ = false;
};

/// NetDevice over a multi-queue driver (ProbeMq): every Xmit lands on
/// the TX queue the *calling CPU* owns under the round-robin affinity,
/// so concurrent senders on different CPUs never share ring state — the
/// wiring that turns per-CPU guard scaling into aggregate packets/sec.
/// CleanTx likewise reclaims only the calling CPU's queue.
template <typename DriverT>
class MqDriverNetDevice final : public NetDevice {
 public:
  explicit MqDriverNetDevice(DriverT* driver) : driver_(driver) {}
  Status Xmit(uint64_t frame_addr, uint32_t len) override {
    if (down_.load(std::memory_order_acquire)) {
      return PermissionDenied("netdev down: driver contained");
    }
    const uint32_t queue = smp::MyQueue(driver_->num_queues());
    try {
      return driver_->XmitFrameOn(queue, frame_addr, len);
    } catch (const kernel::GuardViolation&) {
      down_.store(true, std::memory_order_release);
      return PermissionDenied("netdev down: driver contained during xmit");
    }
  }
  Status CleanTx() override {
    if (down_.load(std::memory_order_acquire)) {
      return PermissionDenied("netdev down: driver contained");
    }
    const uint32_t queue = smp::MyQueue(driver_->num_queues());
    try {
      auto cleaned = driver_->CleanTxRingOn(queue);
      return cleaned.ok() ? OkStatus() : cleaned.status();
    } catch (const kernel::GuardViolation&) {
      down_.store(true, std::memory_order_release);
      return PermissionDenied("netdev down: driver contained during tx clean");
    }
  }

 private:
  DriverT* driver_;
  std::atomic<bool> down_{false};
};

/// NetDevice over a loaded (guarded) KIR driver module, e.g. kop_knic.
/// The module owns the TX path: its xmit entry point builds the
/// descriptor and rings the doorbell, DMA-ing from the module's own
/// frame buffer (so `frame_addr` is unused — the frame must already be
/// staged there, e.g. via knic_fill).
///
/// Degradation is the point of this adapter: a quarantined or
/// mid-restart driver yields an ENETDOWN-style soft error from Xmit
/// instead of a fault from dereferencing dead driver state. Containment
/// inside the module (rollback + quarantine/restart) happens in
/// LoadedModule::Call; this layer only translates the outcome for the
/// socket path.
class ModuleNetDevice final : public NetDevice {
 public:
  ModuleNetDevice(kernel::LoadedModule* module, uint64_t mmio_base,
                  std::string xmit_fn = "knic_send")
      : module_(module), mmio_base_(mmio_base),
        xmit_fn_(std::move(xmit_fn)) {}

  Status Xmit(uint64_t frame_addr, uint32_t len) override {
    (void)frame_addr;  // the guarded driver transmits from its own buffer
    if (module_->quarantined()) {
      return PermissionDenied("netdev down: driver '" + module_->name() +
                              "' is quarantined");
    }
    auto sent = module_->Call(xmit_fn_, {mmio_base_, len});
    if (!sent.ok()) {
      return PermissionDenied("netdev down: driver '" + module_->name() +
                              "' xmit contained: " + sent.status().message());
    }
    return OkStatus();
  }

  Status CleanTx() override {
    // The simulated NIC completes descriptors on the doorbell write; a
    // real driver's IRQ-side reclaim has no work to do here.
    return OkStatus();
  }

 private:
  kernel::LoadedModule* module_;
  uint64_t mmio_base_;
  std::string xmit_fn_;
};

struct SendmsgResult {
  /// Cycles spent inside the call, as the tool's rdtsc pair would see.
  uint64_t latency_cycles = 0;
  bool blocked = false;  // hit the ring-full/deschedule path
};

/// A bound packet socket (one per experiment).
class PacketSocket {
 public:
  /// `noise_seed` drives the per-packet microarchitectural noise drawn
  /// from the kernel's machine model. The skb buffer is allocated from
  /// the simulated heap at construction.
  PacketSocket(kernel::Kernel* kernel, NetDevice* device,
               uint64_t noise_seed = 1);
  ~PacketSocket();
  PacketSocket(const PacketSocket&) = delete;
  PacketSocket& operator=(const PacketSocket&) = delete;

  /// The syscall: copy `frame` into the skb (charged per byte), invoke
  /// the driver, apply the machine model's noise terms. Returns the
  /// interior latency in cycles.
  Result<SendmsgResult> Sendmsg(const std::vector<uint8_t>& frame);

  /// Toggle the stochastic noise/outlier model (off = fully deterministic
  /// costs, used by unit tests).
  void set_noise_enabled(bool on) { noise_enabled_ = on; }

  uint64_t skb_addr() const { return skb_addr_; }

 private:
  kernel::Kernel* kernel_;
  NetDevice* device_;
  uint64_t skb_addr_ = 0;
  Xoshiro256 rng_;
  bool noise_enabled_ = true;
};

}  // namespace kop::net
