// The raw-packet socket layer: the core-kernel path between the test
// tool's sendmsg() and the driver's xmit_frame. Core-kernel code is NOT
// transformed by CARAT KOP — only the module is — so this layer performs
// plain (unguarded) work: syscall entry, copying the frame from user
// space into the skb, then handing the skb to the bound net device.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "kop/kernel/kernel.hpp"
#include "kop/util/rng.hpp"
#include "kop/util/status.hpp"

namespace kop::net {

/// What the socket layer needs from a driver. Adapts both Driver<Ops>
/// instantiations (and anything else that can transmit).
class NetDevice {
 public:
  virtual ~NetDevice() = default;
  /// Queue a frame whose bytes sit in simulated memory.
  virtual Status Xmit(uint64_t frame_addr, uint32_t len) = 0;
  /// Reclaim completed descriptors (the interrupt path's job).
  virtual Status CleanTx() = 0;
};

template <typename DriverT>
class DriverNetDevice final : public NetDevice {
 public:
  explicit DriverNetDevice(DriverT* driver) : driver_(driver) {}
  Status Xmit(uint64_t frame_addr, uint32_t len) override {
    return driver_->XmitFrame(frame_addr, len);
  }
  Status CleanTx() override {
    auto cleaned = driver_->CleanTxRing();
    return cleaned.ok() ? OkStatus() : cleaned.status();
  }

 private:
  DriverT* driver_;
};

struct SendmsgResult {
  /// Cycles spent inside the call, as the tool's rdtsc pair would see.
  uint64_t latency_cycles = 0;
  bool blocked = false;  // hit the ring-full/deschedule path
};

/// A bound packet socket (one per experiment).
class PacketSocket {
 public:
  /// `noise_seed` drives the per-packet microarchitectural noise drawn
  /// from the kernel's machine model. The skb buffer is allocated from
  /// the simulated heap at construction.
  PacketSocket(kernel::Kernel* kernel, NetDevice* device,
               uint64_t noise_seed = 1);
  ~PacketSocket();
  PacketSocket(const PacketSocket&) = delete;
  PacketSocket& operator=(const PacketSocket&) = delete;

  /// The syscall: copy `frame` into the skb (charged per byte), invoke
  /// the driver, apply the machine model's noise terms. Returns the
  /// interior latency in cycles.
  Result<SendmsgResult> Sendmsg(const std::vector<uint8_t>& frame);

  /// Toggle the stochastic noise/outlier model (off = fully deterministic
  /// costs, used by unit tests).
  void set_noise_enabled(bool on) { noise_enabled_ = on; }

  uint64_t skb_addr() const { return skb_addr_; }

 private:
  kernel::Kernel* kernel_;
  NetDevice* device_;
  uint64_t skb_addr_ = 0;
  Xoshiro256 rng_;
  bool noise_enabled_ = true;
};

}  // namespace kop::net
