// Ethernet frame construction/parsing for the measurement tool ("a
// user-level tool that sends raw Ethernet packets to a fake destination",
// §4.2).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace kop::net {

using MacAddress = std::array<uint8_t, 6>;

inline constexpr uint16_t kEtherTypeExperimental = 0x88B5;
inline constexpr size_t kEthHeaderBytes = 14;

struct EthernetFrame {
  MacAddress dst{};
  MacAddress src{};
  uint16_t ethertype = kEtherTypeExperimental;
  std::vector<uint8_t> payload;

  /// Wire form: dst | src | ethertype | payload.
  std::vector<uint8_t> Serialize() const;

  /// Parse wire bytes; false when shorter than a header.
  static bool Parse(const std::vector<uint8_t>& wire, EthernetFrame* out);

  /// Total wire size.
  size_t WireSize() const { return kEthHeaderBytes + payload.size(); }
};

/// "aa:bb:cc:dd:ee:ff" -> MacAddress (asserts on malformed input in
/// debug; returns zero MAC otherwise).
MacAddress MacFromString(const std::string& text);
std::string MacToString(const MacAddress& mac);

/// Deterministic test frame of exactly `wire_size` bytes (header +
/// patterned payload). wire_size must be >= kEthHeaderBytes.
EthernetFrame MakeTestFrame(size_t wire_size, uint8_t seed = 0x5a);

}  // namespace kop::net
