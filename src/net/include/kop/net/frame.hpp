// Ethernet frame construction/parsing for the measurement tool ("a
// user-level tool that sends raw Ethernet packets to a fake destination",
// §4.2).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace kop::net {

using MacAddress = std::array<uint8_t, 6>;

inline constexpr uint16_t kEtherTypeExperimental = 0x88B5;
inline constexpr size_t kEthHeaderBytes = 14;

struct EthernetFrame {
  MacAddress dst{};
  MacAddress src{};
  uint16_t ethertype = kEtherTypeExperimental;
  std::vector<uint8_t> payload;

  /// Wire form: dst | src | ethertype | payload.
  std::vector<uint8_t> Serialize() const;

  /// Parse wire bytes; false when shorter than a header.
  static bool Parse(const std::vector<uint8_t>& wire, EthernetFrame* out);

  /// Total wire size.
  size_t WireSize() const { return kEthHeaderBytes + payload.size(); }
};

/// "aa:bb:cc:dd:ee:ff" -> MacAddress (asserts on malformed input in
/// debug; returns zero MAC otherwise).
MacAddress MacFromString(const std::string& text);
std::string MacToString(const MacAddress& mac);

/// Deterministic test frame of exactly `wire_size` bytes (header +
/// patterned payload). wire_size must be >= kEthHeaderBytes.
EthernetFrame MakeTestFrame(size_t wire_size, uint8_t seed = 0x5a);

/// A deterministic population of flows for multi-queue experiments: each
/// flow has a stable (src, dst) MAC pair and frame size, so the device's
/// RSS hash — which keys on the destination/source header bytes — routes
/// every frame of a flow to the same RX queue, while different flows
/// spread across queues. Frame contents depend only on (seed, flow,
/// sequence), making soak runs replayable byte-for-byte.
class FlowSet {
 public:
  /// `num_flows` flows with frame sizes cycling through `sizes`
  /// (defaults to a mix spanning the copybreak boundary when empty).
  FlowSet(uint32_t num_flows, uint64_t seed,
          std::vector<uint32_t> sizes = {});

  uint32_t num_flows() const { return num_flows_; }

  /// Wire size every frame of `flow` uses.
  uint32_t FrameBytes(uint32_t flow) const;

  /// The `seq`-th frame of `flow`, fully deterministic.
  EthernetFrame MakeFrame(uint32_t flow, uint64_t seq) const;

  /// Serialized wire bytes of MakeFrame (what Sendmsg consumes).
  std::vector<uint8_t> MakeWire(uint32_t flow, uint64_t seq) const;

 private:
  uint32_t num_flows_;
  uint64_t seed_;
  std::vector<uint32_t> sizes_;
};

}  // namespace kop::net
