#include "kop/net/socket.hpp"

#include <cmath>

namespace kop::net {
namespace {

constexpr uint32_t kSkbBytes = 2048;

}  // namespace

PacketSocket::PacketSocket(kernel::Kernel* kernel, NetDevice* device,
                           uint64_t noise_seed)
    : kernel_(kernel), device_(device), rng_(noise_seed) {
  auto skb = kernel_->heap().Kmalloc(kSkbBytes, 64);
  // Heap exhaustion at socket setup is programmer error in experiments.
  skb_addr_ = skb.ok() ? *skb : 0;
}

PacketSocket::~PacketSocket() {
  if (skb_addr_ != 0) (void)kernel_->heap().Kfree(skb_addr_);
}

Result<SendmsgResult> PacketSocket::Sendmsg(
    const std::vector<uint8_t>& frame) {
  if (skb_addr_ == 0) return OutOfMemory("socket has no skb buffer");
  if (frame.empty() || frame.size() > kSkbBytes) {
    return InvalidArgument("frame size out of range");
  }
  const auto& machine = kernel_->machine();
  auto& clock = kernel_->clock();

  SendmsgResult result;
  const uint64_t t0 = clock.ReadTsc();

  // Syscall entry + socket-layer dispatch (core kernel, unguarded).
  clock.Advance(machine.syscall_cycles);

  // copy_from_user of the frame into the skb.
  KOP_RETURN_IF_ERROR(
      kernel_->mem().Write(skb_addr_, frame.data(), frame.size()));
  clock.Advance(machine.copy_cycles_per_byte *
                static_cast<double>(frame.size()));

  // Hand the skb to the driver. A full ring means the socket blocks until
  // the TX-complete interrupt reclaims descriptors. The device call is
  // additionally fenced against containment escaping a mis-adapted
  // driver: the socket layer is core kernel and must survive a driver
  // quarantine with a soft error, never unwind through sendmsg.
  Status xmit;
  try {
    xmit = device_->Xmit(skb_addr_, static_cast<uint32_t>(frame.size()));
    if (!xmit.ok() && xmit.code() == ErrorCode::kBusy) {
      result.blocked = true;
      clock.Advance(machine.outlier_cycles);  // descheduled until the IRQ
      KOP_RETURN_IF_ERROR(device_->CleanTx());
      xmit = device_->Xmit(skb_addr_, static_cast<uint32_t>(frame.size()));
    }
  } catch (const kernel::GuardViolation&) {
    xmit = PermissionDenied("netdev down: driver contained during sendmsg");
  }
  KOP_RETURN_IF_ERROR(xmit);

  if (noise_enabled_) {
    // Per-packet microarchitectural noise: lognormal multiplier applied
    // to the interior work so far, a secondary cache-miss path, and the
    // rare deschedule outlier (>10M cycles in the paper).
    const double interior = clock.NowCycles() - static_cast<double>(t0);
    const double jitter =
        std::exp(machine.packet_noise_sigma * rng_.NextGaussian());
    if (jitter > 1.0) clock.Advance(interior * (jitter - 1.0));
    if (rng_.NextBernoulli(machine.slowpath_prob)) {
      clock.Advance(machine.slowpath_extra_cycles *
                    (0.5 + rng_.NextDouble()));
    }
    if (rng_.NextBernoulli(machine.outlier_prob)) {
      result.blocked = true;
      clock.Advance(machine.outlier_cycles * (0.5 + rng_.NextDouble()));
    }
  }

  result.latency_cycles = clock.ReadTsc() - t0;
  return result;
}

}  // namespace kop::net
