#include "kop/resilience/journal.hpp"

namespace kop::resilience {

std::string_view RollbackReasonName(RollbackReason reason) {
  switch (reason) {
    case RollbackReason::kGuardViolation: return "guard_violation";
    case RollbackReason::kTimeout: return "timeout";
    case RollbackReason::kPanic: return "panic";
    case RollbackReason::kFault: return "fault";
  }
  return "?";
}

size_t WriteJournal::Rollback(kir::MemoryInterface& memory) {
  const size_t undone = entries_.size();
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    (void)memory.Store(it->addr, it->old_value, it->size);
  }
  entries_.clear();
  active_ = false;
  ++total_rollbacks_;
  total_entries_undone_ += undone;
  return undone;
}

Result<uint64_t> JournaledMemory::Load(uint64_t addr, uint32_t size) {
  if (Stopped()) return Interrupted("module stopped by cross-CPU request");
  const uint64_t ordinal = ++op_count_;
  auto value = inner_->Load(addr, size);
  if (value.ok() && fault_hook_) {
    return fault_hook_(/*is_store=*/false, ordinal, addr, *value, size);
  }
  return value;
}

Status JournaledMemory::Store(uint64_t addr, uint64_t value, uint32_t size) {
  if (Stopped()) return Interrupted("module stopped by cross-CPU request");
  const uint64_t ordinal = ++op_count_;
  if (fault_hook_) {
    value = fault_hook_(/*is_store=*/true, ordinal, addr, value, size);
  }
  if (journal_.active() && ram_probe_ && ram_probe_(addr, size)) {
    // Capture-before-write. The read is charged through the inner
    // interface so journaling cost shows up on the virtual clock the
    // same way in both engines.
    auto old_value = inner_->Load(addr, size);
    if (old_value.ok()) {
      journal_.RecordStore(addr, *old_value, size);
    }
  }
  return inner_->Store(addr, value, size);
}

}  // namespace kop::resilience
