// kop::resilience — the recovery policy: what the module loader does
// with a module after a contained failure (guard violation, watchdog
// timeout, in-module panic unwound through rollback).
//
// State machine (per loaded module):
//
//             containment, kRestart policy
//   Live ────────────────────────────────────► NeedsRestart
//    ▲                                              │ next call (or the
//    │ restart ok: teardown + re-init               │ containing call)
//    └────────────── Restarted ◄────────────────────┘ retries with
//                        │                            exponential backoff
//                        │ attempts exhausted / kQuarantine policy
//                        ▼
//                   Quarantined  (permanent: allocations reclaimed,
//                                 module symbols unregistered)
#pragma once

#include <cstdint>
#include <string_view>

namespace kop::resilience {

/// What containment does to the offending module. Selected through the
/// KOP_RECOVERY environment variable; kQuarantine preserves the
/// pre-resilience behavior and is the default.
enum class RecoveryPolicy {
  kPanic,       // paper §3.1: log and panic the machine
  kQuarantine,  // flag the module off; reclaim its resources
  kRestart,     // tear the module down and re-run init, with backoff
};

std::string_view RecoveryPolicyName(RecoveryPolicy policy);

/// Policy selected by KOP_RECOVERY ("panic", "quarantine" or "restart");
/// kQuarantine when unset or unrecognized.
RecoveryPolicy DefaultRecoveryPolicy();

/// Per-call watchdog step budget selected by KOP_WATCHDOG_STEPS (decimal;
/// 0 disables); 8'000'000 when unset or unparsable — far above any sane
/// module call, far below the engine-lifetime budget.
uint64_t DefaultWatchdogSteps();

/// Lifecycle state the loader tracks per module (procfs lsmod column).
enum class ModuleState : uint8_t {
  kLive,          // never contained
  kNeedsRestart,  // contained; restart pending (retried on next call)
  kRestarted,     // recovered at least once; running
  kQuarantined,   // permanently off
};

std::string_view ModuleStateName(ModuleState state);

/// Bounded retry with exponential backoff: attempt n costs
/// min(base << (n-1), max) cycles of simulated downtime; after
/// max_attempts failed restarts the module is quarantined for good.
struct BackoffPolicy {
  uint32_t max_attempts = 3;
  uint64_t base_cycles = 50'000;
  uint64_t max_cycles = 50'000'000;

  uint64_t CyclesFor(uint32_t attempt) const {
    if (attempt == 0) return 0;
    const uint32_t shift = attempt - 1 < 63 ? attempt - 1 : 63;
    const uint64_t cycles = base_cycles << shift;
    const bool overflowed = shift != 0 && (cycles >> shift) != base_cycles;
    return (overflowed || cycles > max_cycles) ? max_cycles : cycles;
  }
};

}  // namespace kop::resilience
