// kop::resilience — transactional module entry. Every call the loader
// makes into a guarded module runs against a JournaledMemory: each store
// to RAM-backed simulated memory records the previous bytes first, so
// when the call is contained (guard violation, watchdog expiry, in-module
// panic) the journal is replayed newest-first and kernel memory is
// byte-identical to what it was at call entry. MMIO stores are NOT
// journaled — device state cannot be rolled back — which mirrors the real
// constraint that a transactional kernel boundary stops at the device.
//
// The journal sits on the loader's MemoryInterface seam, below both
// execution engines, so the interpreter and the bytecode VM journal (and
// roll back) identically by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "kop/kir/engine.hpp"
#include "kop/util/status.hpp"

namespace kop::resilience {

/// Classifies an address range for journaling. Only RAM-backed stores are
/// undoable; the loader builds this from AddressSpace::RawHostPointer so
/// the resilience library needs no kernel dependency.
using RamProbe = std::function<bool(uint64_t addr, uint32_t size)>;

/// Why a rollback ran — the third argument of the module.rollback trace
/// event and the campaign report.
enum class RollbackReason : uint8_t {
  kGuardViolation = 1,
  kTimeout = 2,
  kPanic = 3,
  kFault = 4,
};

std::string_view RollbackReasonName(RollbackReason reason);

/// One undo record: the bytes `addr` held before the journaled store.
struct JournalEntry {
  uint64_t addr = 0;
  uint64_t old_value = 0;
  uint32_t size = 0;  // access width in bytes (1/2/4/8)
};

/// The per-call write journal. Begin() opens a transaction, every
/// journaled store appends an undo record, and the call either Commit()s
/// (drop the records — the writes stand) or Rollback()s (replay them
/// newest-first). Not re-entrant: nested module entries share the
/// outermost transaction, which is exactly the unit the loader contains.
class WriteJournal {
 public:
  void Begin() {
    entries_.clear();
    active_ = true;
  }

  void Commit() {
    entries_.clear();
    active_ = false;
  }

  bool active() const { return active_; }
  size_t size() const { return entries_.size(); }
  const std::vector<JournalEntry>& entries() const { return entries_; }

  /// Bytes of kernel memory the journal can restore.
  uint64_t bytes() const {
    uint64_t total = 0;
    for (const JournalEntry& entry : entries_) total += entry.size;
    return total;
  }

  void RecordStore(uint64_t addr, uint64_t old_value, uint32_t size) {
    if (!active_) return;
    entries_.push_back({addr, old_value, size});
    ++total_entries_recorded_;
  }

  /// Undo every recorded store, newest first, through `memory` (the
  /// UN-journaled inner interface), then close the transaction. Returns
  /// the number of entries undone. Undo failures are ignored — the
  /// region a store hit cannot unmap mid-call in this simulator.
  size_t Rollback(kir::MemoryInterface& memory);

  /// Lifetime counters (for metrics/bench).
  uint64_t total_rollbacks() const { return total_rollbacks_; }
  uint64_t total_entries_undone() const { return total_entries_undone_; }
  uint64_t total_entries_recorded() const { return total_entries_recorded_; }

 private:
  std::vector<JournalEntry> entries_;
  bool active_ = false;
  uint64_t total_rollbacks_ = 0;
  uint64_t total_entries_undone_ = 0;
  uint64_t total_entries_recorded_ = 0;
};

/// MemoryInterface wrapper the loader interposes between the execution
/// engines and kernel memory. While a journal transaction is open, every
/// store to RAM first captures the old value (charged as a read through
/// the inner interface, so the journaling cost is visible on the virtual
/// clock and identical across engines).
///
/// Doubles as the fault-injection seam: kop::fault can arm a hook that
/// observes/perturbs the value of the Nth memory operation (bit flips at
/// a chosen point in the call, deterministic across engines because both
/// issue the same memory-op sequence).
class JournaledMemory final : public kir::MemoryInterface {
 public:
  /// `hook(is_store, ordinal, addr, value, size)` returns the (possibly
  /// perturbed) value the operation proceeds with.
  using MemFaultHook = std::function<uint64_t(
      bool is_store, uint64_t ordinal, uint64_t addr, uint64_t value,
      uint32_t size)>;

  JournaledMemory(kir::MemoryInterface* inner, RamProbe ram_probe)
      : inner_(inner), ram_probe_(std::move(ram_probe)) {}

  Result<uint64_t> Load(uint64_t addr, uint32_t size) override;
  Status Store(uint64_t addr, uint64_t value, uint32_t size) override;

  WriteJournal& journal() { return journal_; }
  const WriteJournal& journal() const { return journal_; }
  kir::MemoryInterface& inner() { return *inner_; }

  void SetFaultHook(MemFaultHook hook) { fault_hook_ = std::move(hook); }
  void ClearFaultHook() { fault_hook_ = nullptr; }
  /// Memory operations (loads + stores) issued since construction — the
  /// ordinal space fault injection points are drawn from.
  uint64_t op_count() const { return op_count_; }

  /// Arm a cross-CPU stop flag: while set, every Load/Store returns
  /// kInterrupted instead of touching memory. This is the containment
  /// seam for SMP stop-the-module — both engines hit it on their next
  /// memory operation, unwind with an error, and the caller rolls back
  /// its own journal. Pass nullptr to disarm.
  void SetStopFlag(const std::atomic<bool>* stop) { stop_ = stop; }

 private:
  bool Stopped() const {
    return stop_ != nullptr && stop_->load(std::memory_order_acquire);
  }

  kir::MemoryInterface* inner_;
  RamProbe ram_probe_;
  WriteJournal journal_;
  MemFaultHook fault_hook_;
  const std::atomic<bool>* stop_ = nullptr;
  uint64_t op_count_ = 0;
};

}  // namespace kop::resilience
