#include "kop/resilience/recovery.hpp"

#include <cstdlib>
#include <string>

namespace kop::resilience {

std::string_view RecoveryPolicyName(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kPanic: return "panic";
    case RecoveryPolicy::kQuarantine: return "quarantine";
    case RecoveryPolicy::kRestart: return "restart";
  }
  return "?";
}

RecoveryPolicy DefaultRecoveryPolicy() {
  const char* env = std::getenv("KOP_RECOVERY");
  if (env != nullptr) {
    const std::string_view policy(env);
    if (policy == "panic") return RecoveryPolicy::kPanic;
    if (policy == "restart") return RecoveryPolicy::kRestart;
  }
  return RecoveryPolicy::kQuarantine;
}

uint64_t DefaultWatchdogSteps() {
  constexpr uint64_t kDefault = 8'000'000;
  const char* env = std::getenv("KOP_WATCHDOG_STEPS");
  if (env == nullptr || *env == '\0') return kDefault;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return kDefault;
  return parsed;
}

std::string_view ModuleStateName(ModuleState state) {
  switch (state) {
    case ModuleState::kLive: return "Live";
    case ModuleState::kNeedsRestart: return "NEEDS-RESTART";
    case ModuleState::kRestarted: return "RESTARTED";
    case ModuleState::kQuarantined: return "QUARANTINED";
  }
  return "?";
}

}  // namespace kop::resilience
