#include "kop/kernel/kmalloc.hpp"

#include <algorithm>
#include <mutex>

#include "kop/util/bits.hpp"

namespace kop::kernel {

KmallocArena::KmallocArena(uint64_t base, uint64_t size)
    : base_(base), size_(size) {
  free_chunks_[base] = size;
  stats_.total_bytes = size;
  stats_.free_bytes = size;
}

Result<uint64_t> KmallocArena::Kmalloc(uint64_t size, uint64_t alignment) {
  if (size == 0) return InvalidArgument("kmalloc of zero bytes");
  if (!IsPowerOfTwo(alignment) || alignment < 8) {
    return InvalidArgument("kmalloc alignment must be a power of two >= 8");
  }
  size = AlignUp(size, 8);

  std::lock_guard<Spinlock> guard(lock_);
  for (auto it = free_chunks_.begin(); it != free_chunks_.end(); ++it) {
    const uint64_t chunk_base = it->first;
    const uint64_t chunk_size = it->second;
    const uint64_t aligned = AlignUp(chunk_base, alignment);
    const uint64_t waste = aligned - chunk_base;
    if (chunk_size < waste || chunk_size - waste < size) continue;

    // Split: [chunk_base, aligned) stays free, [aligned, aligned+size)
    // becomes live, the rest stays free.
    free_chunks_.erase(it);
    if (waste > 0) free_chunks_[chunk_base] = waste;
    const uint64_t remainder = chunk_size - waste - size;
    if (remainder > 0) free_chunks_[aligned + size] = remainder;

    live_allocs_[aligned] = size;
    stats_.allocated_bytes += size;
    stats_.free_bytes -= size;
    ++stats_.allocation_count;
    ++stats_.total_allocs;
    return aligned;
  }
  ++stats_.failed_allocs;
  return OutOfMemory("kmalloc(" + std::to_string(size) + ") failed");
}

Status KmallocArena::Kfree(uint64_t addr) {
  std::lock_guard<Spinlock> guard(lock_);
  auto it = live_allocs_.find(addr);
  if (it == live_allocs_.end()) {
    return InvalidArgument("kfree of address not returned by kmalloc: 0x" +
                           std::to_string(addr));
  }
  uint64_t free_base = addr;
  uint64_t free_size = it->second;
  live_allocs_.erase(it);

  stats_.allocated_bytes -= free_size;
  stats_.free_bytes += free_size;
  --stats_.allocation_count;
  ++stats_.total_frees;

  // Coalesce with the following free chunk.
  auto next = free_chunks_.lower_bound(free_base);
  if (next != free_chunks_.end() && free_base + free_size == next->first) {
    free_size += next->second;
    free_chunks_.erase(next);
  }
  // Coalesce with the preceding free chunk.
  auto prev = free_chunks_.lower_bound(free_base);
  if (prev != free_chunks_.begin()) {
    --prev;
    if (prev->first + prev->second == free_base) {
      free_base = prev->first;
      free_size += prev->second;
      free_chunks_.erase(prev);
    }
  }
  free_chunks_[free_base] = free_size;
  return OkStatus();
}

Result<uint64_t> KmallocArena::AllocationSize(uint64_t addr) const {
  std::lock_guard<Spinlock> guard(lock_);
  auto it = live_allocs_.find(addr);
  if (it == live_allocs_.end()) {
    return NotFound("no live allocation at that address");
  }
  return it->second;
}

KmallocStats KmallocArena::Stats() const {
  std::lock_guard<Spinlock> guard(lock_);
  KmallocStats out = stats_;
  out.largest_free_chunk = 0;
  for (const auto& [base, size] : free_chunks_) {
    out.largest_free_chunk = std::max(out.largest_free_chunk, size);
  }
  return out;
}

}  // namespace kop::kernel
