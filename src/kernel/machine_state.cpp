#include "kop/kernel/machine_state.hpp"

namespace kop::kernel {

MsrFile::MsrFile() {
  // A plausible boot state for the interesting registers.
  values_[MSR_APIC_BASE] = 0xfee00900;  // xAPIC enabled, BSP
  values_[MSR_EFER] = 0xd01;            // LME|LMA|SCE|NXE
}

uint64_t MsrFile::Read(uint64_t msr) const {
  ++reads_;
  auto it = values_.find(msr);
  return it == values_.end() ? 0 : it->second;
}

void MsrFile::Write(uint64_t msr, uint64_t value) {
  ++writes_;
  values_[msr] = value;
}

const PortBus::Claimed* PortBus::Find(uint16_t port, uint16_t* base) const {
  auto it = claims_.upper_bound(port);
  if (it == claims_.begin()) return nullptr;
  --it;
  if (port >= it->first && port < it->first + it->second.count) {
    *base = it->first;
    return &it->second;
  }
  return nullptr;
}

Status PortBus::Claim(uint16_t first_port, uint16_t count, InHandler in,
                      OutHandler out) {
  if (count == 0) return InvalidArgument("empty port range");
  uint16_t base = 0;
  for (uint32_t p = first_port; p < uint32_t{first_port} + count; ++p) {
    if (Find(static_cast<uint16_t>(p), &base) != nullptr) {
      return AlreadyExists("port 0x" + std::to_string(p) +
                           " already claimed");
    }
  }
  claims_[first_port] = Claimed{count, std::move(in), std::move(out)};
  return OkStatus();
}

void PortBus::Release(uint16_t first_port) { claims_.erase(first_port); }

uint8_t PortBus::In(uint16_t port) {
  ++ins_;
  uint16_t base = 0;
  const Claimed* claim = Find(port, &base);
  if (claim == nullptr || !claim->in) return 0xff;  // floating bus
  return claim->in(port);
}

void PortBus::Out(uint16_t port, uint8_t value) {
  ++outs_;
  uint16_t base = 0;
  const Claimed* claim = Find(port, &base);
  if (claim != nullptr && claim->out) claim->out(port, value);
}

}  // namespace kop::kernel
