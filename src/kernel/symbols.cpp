#include "kop/kernel/symbols.hpp"

#include <algorithm>

namespace kop::kernel {

Status SymbolTable::ExportFunction(const std::string& name,
                                   KernelFunction fn) {
  if (!fn) return InvalidArgument("null function for symbol " + name);
  if (functions_.count(name) || data_.count(name)) {
    return AlreadyExists("symbol already exported: " + name);
  }
  functions_[name] = std::move(fn);
  ++generation_;
  return OkStatus();
}

Status SymbolTable::ExportData(const std::string& name, uint64_t address) {
  if (functions_.count(name) || data_.count(name)) {
    return AlreadyExists("symbol already exported: " + name);
  }
  data_[name] = address;
  ++generation_;
  return OkStatus();
}

Status SymbolTable::Unexport(const std::string& name) {
  if (functions_.erase(name) > 0) {
    ++generation_;
    return OkStatus();
  }
  if (data_.erase(name) > 0) {
    ++generation_;
    return OkStatus();
  }
  return NotFound("symbol not exported: " + name);
}

bool SymbolTable::HasFunction(const std::string& name) const {
  return functions_.count(name) > 0;
}

bool SymbolTable::HasData(const std::string& name) const {
  return data_.count(name) > 0;
}

const KernelFunction* SymbolTable::FindFunction(const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

Result<uint64_t> SymbolTable::Call(const std::string& name,
                                   const std::vector<uint64_t>& args) const {
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return NotFound("undefined kernel symbol: " + name);
  }
  return it->second(args);
}

Result<uint64_t> SymbolTable::DataAddress(const std::string& name) const {
  auto it = data_.find(name);
  if (it == data_.end()) return NotFound("undefined data symbol: " + name);
  return it->second;
}

std::vector<std::string> SymbolTable::Names() const {
  std::vector<std::string> out;
  out.reserve(functions_.size() + data_.size());
  for (const auto& [name, fn] : functions_) out.push_back(name);
  for (const auto& [name, addr] : data_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace kop::kernel
