#include "kop/kernel/symbols.hpp"

#include <algorithm>
#include <mutex>

namespace kop::kernel {

SymbolTable::Shard& SymbolTable::ShardFor(const std::string& name) const {
  return shards_[std::hash<std::string>{}(name) % kShardCount];
}

Status SymbolTable::ExportFunction(const std::string& name,
                                   KernelFunction fn) {
  if (!fn) return InvalidArgument("null function for symbol " + name);
  Shard& shard = ShardFor(name);
  std::lock_guard<Spinlock> guard(shard.lock);
  if (shard.functions.count(name) || shard.data.count(name)) {
    return AlreadyExists("symbol already exported: " + name);
  }
  shard.functions[name] = std::make_unique<KernelFunction>(std::move(fn));
  generation_.fetch_add(1, std::memory_order_acq_rel);
  return OkStatus();
}

Status SymbolTable::ExportData(const std::string& name, uint64_t address) {
  Shard& shard = ShardFor(name);
  std::lock_guard<Spinlock> guard(shard.lock);
  if (shard.functions.count(name) || shard.data.count(name)) {
    return AlreadyExists("symbol already exported: " + name);
  }
  shard.data[name] = address;
  generation_.fetch_add(1, std::memory_order_acq_rel);
  return OkStatus();
}

Status SymbolTable::Unexport(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<Spinlock> guard(shard.lock);
  if (auto it = shard.functions.find(name); it != shard.functions.end()) {
    shard.graveyard.push_back(std::move(it->second));
    shard.functions.erase(it);
    generation_.fetch_add(1, std::memory_order_acq_rel);
    return OkStatus();
  }
  if (shard.data.erase(name) > 0) {
    generation_.fetch_add(1, std::memory_order_acq_rel);
    return OkStatus();
  }
  return NotFound("symbol not exported: " + name);
}

bool SymbolTable::HasFunction(const std::string& name) const {
  Shard& shard = ShardFor(name);
  std::lock_guard<Spinlock> guard(shard.lock);
  return shard.functions.count(name) > 0;
}

bool SymbolTable::HasData(const std::string& name) const {
  Shard& shard = ShardFor(name);
  std::lock_guard<Spinlock> guard(shard.lock);
  return shard.data.count(name) > 0;
}

const KernelFunction* SymbolTable::FindFunction(const std::string& name) const {
  Shard& shard = ShardFor(name);
  std::lock_guard<Spinlock> guard(shard.lock);
  auto it = shard.functions.find(name);
  return it == shard.functions.end() ? nullptr : it->second.get();
}

Result<uint64_t> SymbolTable::Call(const std::string& name,
                                   const std::vector<uint64_t>& args) const {
  // Resolve under the shard lock, invoke outside it: exported closures
  // may run arbitrarily long (they ARE the kernel services) and must not
  // serialize unrelated exports; the graveyard keeps the target callable
  // even if it is unexported between resolve and invoke.
  const KernelFunction* fn = FindFunction(name);
  if (fn == nullptr) return NotFound("undefined kernel symbol: " + name);
  return (*fn)(args);
}

Result<uint64_t> SymbolTable::DataAddress(const std::string& name) const {
  Shard& shard = ShardFor(name);
  std::lock_guard<Spinlock> guard(shard.lock);
  auto it = shard.data.find(name);
  if (it == shard.data.end()) {
    return NotFound("undefined data symbol: " + name);
  }
  return it->second;
}

std::vector<std::string> SymbolTable::Names() const {
  std::vector<std::string> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<Spinlock> guard(shard.lock);
    for (const auto& [name, fn] : shard.functions) out.push_back(name);
    for (const auto& [name, addr] : shard.data) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace kop::kernel
