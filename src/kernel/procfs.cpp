#include "kop/kernel/procfs.hpp"

#include <cstdio>

#include "kop/flight/postmortem.hpp"
#include "kop/trace/trace.hpp"

namespace kop::kernel {
namespace {

std::string FormatKmallocStats(const char* label, const KmallocStats& stats) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-12s total %10llu B, used %10llu B in %llu allocations, "
                "largest free chunk %llu B\n",
                label, static_cast<unsigned long long>(stats.total_bytes),
                static_cast<unsigned long long>(stats.allocated_bytes),
                static_cast<unsigned long long>(stats.allocation_count),
                static_cast<unsigned long long>(stats.largest_free_chunk));
  return buf;
}

}  // namespace

std::string ProcModules(const ModuleLoader& loader) {
  std::string out =
      "Module            Insts  Guards  Restarts  State        LastEvent\n";
  char line[224];
  for (const std::string& name : loader.LoadedNames()) {
    const LoadedModule* module =
        const_cast<ModuleLoader&>(loader).Find(name);
    if (module == nullptr) continue;
    char last_event[64] = "-";
    if (const char* reason = module->last_event_reason()) {
      std::snprintf(last_event, sizeof(last_event), "%s@%llu", reason,
                    static_cast<unsigned long long>(module->last_event_tsc()));
    }
    std::snprintf(line, sizeof(line), "%-16s %6zu %7llu  %8u  %-12s %s\n",
                  name.c_str(), module->ir().InstructionCount(),
                  static_cast<unsigned long long>(
                      module->attestation().guard_count),
                  module->restart_count(),
                  resilience::ModuleStateName(module->state()).data(),
                  last_event);
    out += line;
  }
  return out;
}

std::string ProcPostmortem() {
  flight::PostmortemBundle bundle;
  if (!flight::GlobalPostmortems().Latest(&bundle)) return "none\n";
  std::string out = bundle.ToJson();
  out += '\n';
  return out;
}

std::string ProcKallsyms(const Kernel& kernel) {
  std::string out;
  for (const std::string& name :
       const_cast<Kernel&>(kernel).symbols().Names()) {
    // Function symbols print as T (text), data as D.
    const bool is_function =
        const_cast<Kernel&>(kernel).symbols().HasFunction(name);
    out += is_function ? "T " : "D ";
    out += name;
    out += '\n';
  }
  return out;
}

std::string ProcIomem(const Kernel& kernel) {
  std::string out;
  char line[160];
  for (const RegionInfo& region : kernel.mem().Regions()) {
    std::snprintf(line, sizeof(line), "%016llx-%016llx : %s (%s%s)\n",
                  static_cast<unsigned long long>(region.base),
                  static_cast<unsigned long long>(region.base + region.size -
                                                  1),
                  region.name.c_str(),
                  region.backing == RegionBacking::kRam ? "ram" : "mmio",
                  region.writable ? "" : ", ro");
    out += line;
  }
  return out;
}

std::string ProcMeminfo(const Kernel& kernel) {
  Kernel& mutable_kernel = const_cast<Kernel&>(kernel);
  std::string out;
  out += FormatKmallocStats("heap:", mutable_kernel.heap().Stats());
  out += FormatKmallocStats("module-area:",
                            mutable_kernel.module_area().Stats());
  return out;
}

std::string ProcTracepoints() {
  const trace::Tracer& tracer = trace::GlobalTracer();
  char line[192];
  std::string out;
  std::snprintf(line, sizeof(line),
                "tracing: %s  ring: %zu slots, %llu appended, %llu dropped\n",
                tracer.enabled() ? "on" : "off", tracer.ring().capacity(),
                static_cast<unsigned long long>(
                    tracer.ring().total_appended()),
                static_cast<unsigned long long>(tracer.ring().dropped()));
  out += line;
  for (size_t i = 1; i < trace::kEventCount; ++i) {
    const auto id = static_cast<trace::EventId>(i);
    std::snprintf(line, sizeof(line), "%-10s %-22s %llu\n",
                  std::string(trace::EventCategory(id)).c_str(),
                  std::string(trace::EventName(id)).c_str(),
                  static_cast<unsigned long long>(tracer.event_count(id)));
    out += line;
  }
  return out;
}

}  // namespace kop::kernel
