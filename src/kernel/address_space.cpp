#include "kop/kernel/address_space.hpp"

#include <algorithm>
#include <cstring>

#include "kop/util/bits.hpp"

namespace kop::kernel {
namespace {

std::string HexRange(uint64_t base, uint64_t size) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[0x%llx, 0x%llx)",
                static_cast<unsigned long long>(base),
                static_cast<unsigned long long>(base + size));
  return buf;
}

bool ValidMmioAccess(uint64_t addr, uint64_t size) {
  return (size == 1 || size == 2 || size == 4 || size == 8) &&
         IsAligned(addr, size);
}

}  // namespace

Status AddressSpace::MapRam(std::string name, uint64_t base, uint64_t size,
                            bool writable) {
  if (size == 0) return InvalidArgument("cannot map empty region " + name);
  if (base + size < base) return InvalidArgument("region wraps: " + name);
  for (const auto& region : regions_) {
    if (RangesOverlap(base, size, region->info.base, region->info.size)) {
      return AlreadyExists("mapping " + name + " " + HexRange(base, size) +
                           " overlaps " + region->info.name);
    }
  }
  auto region = std::make_unique<Region>();
  region->info = RegionInfo{std::move(name), base, size, RegionBacking::kRam,
                            writable};
  region->ram.assign(size, 0);
  auto pos = std::upper_bound(
      regions_.begin(), regions_.end(), base,
      [](uint64_t b, const std::unique_ptr<Region>& r) {
        return b < r->info.base;
      });
  regions_.insert(pos, std::move(region));
  return OkStatus();
}

Status AddressSpace::MapMmio(std::string name, uint64_t base, uint64_t size,
                             MmioDevice* device) {
  if (device == nullptr) return InvalidArgument("null MMIO device: " + name);
  if (size == 0) return InvalidArgument("cannot map empty region " + name);
  if (base + size < base) return InvalidArgument("region wraps: " + name);
  for (const auto& region : regions_) {
    if (RangesOverlap(base, size, region->info.base, region->info.size)) {
      return AlreadyExists("mapping " + name + " " + HexRange(base, size) +
                           " overlaps " + region->info.name);
    }
  }
  auto region = std::make_unique<Region>();
  region->info = RegionInfo{std::move(name), base, size, RegionBacking::kMmio,
                            true};
  region->mmio = device;
  auto pos = std::upper_bound(
      regions_.begin(), regions_.end(), base,
      [](uint64_t b, const std::unique_ptr<Region>& r) {
        return b < r->info.base;
      });
  regions_.insert(pos, std::move(region));
  return OkStatus();
}

Status AddressSpace::Unmap(uint64_t base) {
  for (auto it = regions_.begin(); it != regions_.end(); ++it) {
    if ((*it)->info.base == base) {
      if (last_hit_.load(std::memory_order_relaxed) == it->get()) {
        last_hit_.store(nullptr, std::memory_order_relaxed);
      }
      regions_.erase(it);
      return OkStatus();
    }
  }
  return NotFound("no region mapped at " + HexRange(base, 0));
}

const AddressSpace::Region* AddressSpace::Find(uint64_t addr,
                                               uint64_t size) const {
  const uint64_t span = size == 0 ? 1 : size;
  const Region* cached = last_hit_.load(std::memory_order_relaxed);
  if (cached != nullptr &&
      RangeContains(cached->info.base, cached->info.size, addr, span)) {
    return cached;
  }
  // Binary search over the sorted region list.
  auto pos = std::upper_bound(
      regions_.begin(), regions_.end(), addr,
      [](uint64_t a, const std::unique_ptr<Region>& r) {
        return a < r->info.base;
      });
  if (pos == regions_.begin()) return nullptr;
  const Region* region = std::prev(pos)->get();
  if (!RangeContains(region->info.base, region->info.size, addr, span)) {
    return nullptr;
  }
  last_hit_.store(region, std::memory_order_relaxed);
  return region;
}

AddressSpace::Region* AddressSpace::Find(uint64_t addr, uint64_t size) {
  return const_cast<Region*>(
      static_cast<const AddressSpace*>(this)->Find(addr, size));
}

Status AddressSpace::Read(uint64_t addr, void* out, uint64_t size) const {
  if (size == 0) return OkStatus();
  const Region* region = Find(addr, size);
  if (region == nullptr) {
    return OutOfRange("read of " + HexRange(addr, size) +
                      " hits unmapped memory");
  }
  const uint64_t offset = addr - region->info.base;
  if (region->info.backing == RegionBacking::kRam) {
    std::memcpy(out, region->ram.data() + offset, size);
    return OkStatus();
  }
  if (!ValidMmioAccess(addr, size)) {
    return InvalidArgument("MMIO read " + HexRange(addr, size) +
                           " must be a naturally aligned 1/2/4/8-byte unit");
  }
  const uint64_t value =
      region->mmio->MmioRead(offset, static_cast<uint32_t>(size));
  std::memcpy(out, &value, size);
  return OkStatus();
}

Status AddressSpace::Write(uint64_t addr, const void* data, uint64_t size) {
  if (size == 0) return OkStatus();
  Region* region = Find(addr, size);
  if (region == nullptr) {
    return OutOfRange("write of " + HexRange(addr, size) +
                      " hits unmapped memory");
  }
  if (!region->info.writable) {
    return PermissionDenied("write to read-only region " + region->info.name);
  }
  const uint64_t offset = addr - region->info.base;
  if (region->info.backing == RegionBacking::kRam) {
    std::memcpy(region->ram.data() + offset, data, size);
    return OkStatus();
  }
  if (!ValidMmioAccess(addr, size)) {
    return InvalidArgument("MMIO write " + HexRange(addr, size) +
                           " must be a naturally aligned 1/2/4/8-byte unit");
  }
  uint64_t value = 0;
  std::memcpy(&value, data, size);
  region->mmio->MmioWrite(offset, value, static_cast<uint32_t>(size));
  return OkStatus();
}

template <typename T>
static Result<T> TypedRead(const AddressSpace& space, uint64_t addr) {
  T value{};
  Status status = space.Read(addr, &value, sizeof(T));
  if (!status.ok()) return status;
  return value;
}

Result<uint8_t> AddressSpace::Read8(uint64_t addr) const {
  return TypedRead<uint8_t>(*this, addr);
}
Result<uint16_t> AddressSpace::Read16(uint64_t addr) const {
  return TypedRead<uint16_t>(*this, addr);
}
Result<uint32_t> AddressSpace::Read32(uint64_t addr) const {
  return TypedRead<uint32_t>(*this, addr);
}
Result<uint64_t> AddressSpace::Read64(uint64_t addr) const {
  return TypedRead<uint64_t>(*this, addr);
}

Status AddressSpace::Write8(uint64_t addr, uint8_t value) {
  return Write(addr, &value, sizeof(value));
}
Status AddressSpace::Write16(uint64_t addr, uint16_t value) {
  return Write(addr, &value, sizeof(value));
}
Status AddressSpace::Write32(uint64_t addr, uint32_t value) {
  return Write(addr, &value, sizeof(value));
}
Status AddressSpace::Write64(uint64_t addr, uint64_t value) {
  return Write(addr, &value, sizeof(value));
}

Status AddressSpace::Memset(uint64_t addr, uint8_t value, uint64_t size) {
  if (size == 0) return OkStatus();
  Region* region = Find(addr, size);
  if (region == nullptr || region->info.backing != RegionBacking::kRam) {
    return OutOfRange("memset of " + HexRange(addr, size) +
                      " must target one mapped RAM region");
  }
  if (!region->info.writable) {
    return PermissionDenied("memset of read-only region " +
                            region->info.name);
  }
  std::memset(region->ram.data() + (addr - region->info.base), value, size);
  return OkStatus();
}

bool AddressSpace::IsMapped(uint64_t addr, uint64_t size) const {
  return Find(addr, size) != nullptr;
}

uint8_t* AddressSpace::RawHostPointer(uint64_t addr, uint64_t size) {
  Region* region = Find(addr, size);
  if (region == nullptr || region->info.backing != RegionBacking::kRam) {
    return nullptr;
  }
  return region->ram.data() + (addr - region->info.base);
}

const uint8_t* AddressSpace::RawHostPointer(uint64_t addr,
                                            uint64_t size) const {
  const Region* region = Find(addr, size);
  if (region == nullptr || region->info.backing != RegionBacking::kRam) {
    return nullptr;
  }
  return region->ram.data() + (addr - region->info.base);
}

std::vector<RegionInfo> AddressSpace::Regions() const {
  std::vector<RegionInfo> out;
  out.reserve(regions_.size());
  for (const auto& region : regions_) out.push_back(region->info);
  return out;
}

}  // namespace kop::kernel
