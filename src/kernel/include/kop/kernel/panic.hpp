// Kernel panic machinery. The paper's policy module responds to a
// forbidden access by logging it and panicking (§3.1): "a kernel panic is
// actually a reasonable response for the HPC use cases we focus on".
// In the simulator a panic is a C++ exception the test/bench harness
// catches — the simulated kernel is dead afterwards until Reset().
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace kop::kernel {

/// Thrown by Kernel::Panic. Carries the panic reason string.
class KernelPanic : public std::runtime_error {
 public:
  explicit KernelPanic(const std::string& reason)
      : std::runtime_error("kernel panic: " + reason) {}
};

/// Thrown by the policy engine under ViolationAction::kQuarantine: the
/// violating module call unwinds and the module loader quarantines the
/// offender instead of panicking the machine. Defined here (not in
/// kop::policy) so the loader can catch it without a dependency cycle.
class GuardViolation : public std::runtime_error {
 public:
  GuardViolation(uint64_t addr, uint64_t size, uint64_t access_flags,
                 uint64_t site = 0, bool is_cfi = false)
      : std::runtime_error(is_cfi ? "CARAT KOP cfi violation"
                                  : "CARAT KOP guard violation"),
        addr(addr),
        size(size),
        access_flags(access_flags),
        site(site),
        is_cfi(is_cfi) {}

  uint64_t addr;
  uint64_t size;
  uint64_t access_flags;
  /// Guard-site token (trace::GlobalSites) the violating guard fired
  /// from; 0 when the guard ran without site context (direct probes).
  /// The loader resolves it to "module:@fn+inst" for the quarantine log.
  uint64_t site;
  /// True when the violation is a control-flow-integrity denial (a
  /// carat_cfi_check rejected the indirect-call target); addr then holds
  /// the rejected target address and size the engine-global set id. The
  /// loader keys the "cfi" containment reason off this flag.
  bool is_cfi;
};

}  // namespace kop::kernel
