// A kmalloc-style allocator carving the simulated direct-map region.
// First-fit free list with coalescing; allocation metadata lives on the
// host side so a module scribbling over simulated memory can corrupt
// *data* but never the allocator itself (we want deterministic tests even
// for misbehaving modules — the kernel's own survival is what CARAT KOP
// guards provide on real hardware).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kop/util/spinlock.hpp"
#include "kop/util/status.hpp"

namespace kop::kernel {

struct KmallocStats {
  uint64_t total_bytes = 0;
  uint64_t allocated_bytes = 0;
  uint64_t free_bytes = 0;
  uint64_t allocation_count = 0;  // currently live
  uint64_t total_allocs = 0;      // lifetime
  uint64_t total_frees = 0;
  uint64_t failed_allocs = 0;
  uint64_t largest_free_chunk = 0;
};

class KmallocArena {
 public:
  /// Manages [base, base+size) of already-mapped simulated memory.
  KmallocArena(uint64_t base, uint64_t size);

  /// Allocate `size` bytes aligned to `alignment` (power of two, >= 8).
  /// Returns the simulated address.
  Result<uint64_t> Kmalloc(uint64_t size, uint64_t alignment = 16);

  /// Free a previous allocation. Double frees and wild frees fail.
  Status Kfree(uint64_t addr);

  /// Size of the live allocation at `addr`, if any.
  Result<uint64_t> AllocationSize(uint64_t addr) const;

  KmallocStats Stats() const;

  uint64_t base() const { return base_; }
  uint64_t size() const { return size_; }

 private:
  struct FreeChunk {
    uint64_t size = 0;
  };

  uint64_t base_;
  uint64_t size_;
  // One arena-wide lock — the slab allocator's list_lock. Per-CPU
  // magazine caches would hide it entirely, but this simulator's modules
  // allocate rarely (the guard path never does), so contention here is
  // not on any measured path.
  mutable Spinlock lock_;
  // addr -> size. Free chunks sorted by address for coalescing.
  std::map<uint64_t, uint64_t> free_chunks_;
  std::map<uint64_t, uint64_t> live_allocs_;
  KmallocStats stats_;
};

}  // namespace kop::kernel
