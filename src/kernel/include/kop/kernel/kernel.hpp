// The Kernel facade: assembles the simulated machine a CARAT KOP
// experiment runs on — address space with the canonical memory map,
// kmalloc arena in the direct map, module-area allocator, printk ring,
// exported-symbol table, /dev registry, panic machinery, and the virtual
// clock + machine cost model used for performance accounting.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "kop/kernel/address_space.hpp"
#include "kop/kernel/guard_fast.hpp"
#include "kop/kernel/chardev.hpp"
#include "kop/kernel/kmalloc.hpp"
#include "kop/kernel/machine_state.hpp"
#include "kop/kernel/memory_map.hpp"
#include "kop/kernel/panic.hpp"
#include "kop/kernel/printk.hpp"
#include "kop/kernel/symbols.hpp"
#include "kop/sim/clock.hpp"
#include "kop/sim/machine.hpp"
#include "kop/util/status.hpp"

namespace kop::kernel {

struct KernelConfig {
  /// Physical RAM size exposed through the direct map.
  uint64_t ram_bytes = 64ull << 20;
  /// Size of the kernel text region (read-only).
  uint64_t kernel_text_bytes = 16ull << 20;
  /// Size of the module mapping area.
  uint64_t module_area_bytes = 64ull << 20;
  /// A small user-space mapping so experiments can demonstrate modules
  /// reaching into the low half (and policies forbidding it).
  uint64_t user_bytes = 4ull << 20;
  uint64_t user_base = 0x0000000000400000ULL;
  /// Cost model for performance accounting. Defaults to the fast box.
  sim::MachineModel machine = sim::MachineModel::R350();
};

class Kernel {
 public:
  explicit Kernel(const KernelConfig& config = KernelConfig());
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  AddressSpace& mem() { return mem_; }
  const AddressSpace& mem() const { return mem_; }
  KmallocArena& heap() { return *heap_; }
  KmallocArena& module_area() { return *module_area_; }
  PrintkRing& log() { return log_; }
  SymbolTable& symbols() { return symbols_; }
  CharDeviceRegistry& devices() { return devices_; }
  MsrFile& msrs() { return msrs_; }
  PortBus& ports() { return ports_; }
  CpuFlags& cpu() { return cpu_; }
  sim::VirtualClock& clock() { return clock_; }
  const sim::MachineModel& machine() const { return config_.machine; }
  const KernelConfig& config() const { return config_; }

  /// Swap the cost model (e.g. R415 vs R350 experiments).
  void SetMachine(const sim::MachineModel& machine) {
    config_.machine = machine;
  }

  /// Inline-guard fast-path provider (the policy module while inserted;
  /// null otherwise, which routes every guard through the slow path —
  /// unloading the policy module is observed exactly as on the symbol
  /// path). Registered/cleared by kop::policy::PolicyModule.
  void SetGuardFastOps(GuardFastOps* ops) {
    guard_fast_ops_.store(ops, std::memory_order_release);
  }
  GuardFastOps* guard_fast_ops() const {
    return guard_fast_ops_.load(std::memory_order_acquire);
  }

  /// Log the reason at EMERG level, mark the kernel dead, and throw
  /// KernelPanic. [[noreturn]].
  [[noreturn]] void Panic(const std::string& reason);

  bool panicked() const { return panicked_; }
  const std::string& panic_reason() const { return panic_reason_; }

  /// Bring a panicked kernel back for the next test (reboot).
  void ClearPanic() {
    panicked_ = false;
    panic_reason_.clear();
  }

  // Convenience bounds of the standard map (useful for policies).
  uint64_t direct_map_base() const { return kDirectMapBase; }
  uint64_t direct_map_size() const { return config_.ram_bytes; }
  uint64_t kernel_text_base() const { return kKernelTextBase; }
  uint64_t kernel_text_size() const { return config_.kernel_text_bytes; }
  uint64_t module_area_base() const { return kModuleBase; }
  uint64_t module_area_size() const { return config_.module_area_bytes; }

 private:
  KernelConfig config_;
  AddressSpace mem_;
  std::unique_ptr<KmallocArena> heap_;
  std::unique_ptr<KmallocArena> module_area_;
  PrintkRing log_;
  SymbolTable symbols_;
  CharDeviceRegistry devices_;
  MsrFile msrs_;
  PortBus ports_;
  CpuFlags cpu_;
  sim::VirtualClock clock_;
  std::atomic<GuardFastOps*> guard_fast_ops_{nullptr};
  bool panicked_ = false;
  std::string panic_reason_;
};

}  // namespace kop::kernel
