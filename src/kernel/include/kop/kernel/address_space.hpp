// The simulated kernel address space: a sparse collection of mapped
// regions, each backed either by host memory (RAM regions: direct map,
// kernel data, module area) or by an MMIO handler (device register
// windows). All simulated loads and stores — from the KIR interpreter,
// the e1000e driver's MemOps, and the NIC's DMA engine — go through here
// and are bounds-checked against the map.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kop/util/status.hpp"

namespace kop::kernel {

/// A device that owns a window of MMIO addresses. Offsets passed to the
/// callbacks are relative to the window base. MMIO is accessed in 1/2/4/8
/// byte units, like real device BARs.
class MmioDevice {
 public:
  virtual ~MmioDevice() = default;
  virtual uint64_t MmioRead(uint64_t offset, uint32_t size) = 0;
  virtual void MmioWrite(uint64_t offset, uint64_t value, uint32_t size) = 0;
};

/// Kind of backing behind a mapped region.
enum class RegionBacking { kRam, kMmio };

/// Metadata for one mapped region (exposed for introspection/tests).
struct RegionInfo {
  std::string name;
  uint64_t base = 0;
  uint64_t size = 0;
  RegionBacking backing = RegionBacking::kRam;
  bool writable = true;  // e.g. kernel text / module text are read-only
};

class AddressSpace {
 public:
  AddressSpace() = default;
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  /// Map `size` bytes of zeroed RAM at `base`. Fails on overlap.
  Status MapRam(std::string name, uint64_t base, uint64_t size,
                bool writable = true);

  /// Map an MMIO window serviced by `device` (not owned; must outlive
  /// the mapping). Fails on overlap.
  Status MapMmio(std::string name, uint64_t base, uint64_t size,
                 MmioDevice* device);

  /// Remove the region starting exactly at `base`.
  Status Unmap(uint64_t base);

  /// Raw byte access. Fails (kOutOfRange) when any byte of
  /// [addr, addr+size) is unmapped, or (kPermissionDenied) when writing
  /// a read-only region. RAM accesses may span region boundaries only
  /// within one region; MMIO must be 1/2/4/8 bytes and size-aligned.
  Status Read(uint64_t addr, void* out, uint64_t size) const;
  Status Write(uint64_t addr, const void* data, uint64_t size);

  /// Typed helpers; they panic-free return 0 on error paths in release
  /// use ReadChecked for error visibility.
  Result<uint8_t> Read8(uint64_t addr) const;
  Result<uint16_t> Read16(uint64_t addr) const;
  Result<uint32_t> Read32(uint64_t addr) const;
  Result<uint64_t> Read64(uint64_t addr) const;
  Status Write8(uint64_t addr, uint8_t value);
  Status Write16(uint64_t addr, uint16_t value);
  Status Write32(uint64_t addr, uint32_t value);
  Status Write64(uint64_t addr, uint64_t value);

  /// Zero-fill a RAM range.
  Status Memset(uint64_t addr, uint8_t value, uint64_t size);

  /// True when [addr, addr+size) lies fully inside one mapped region.
  bool IsMapped(uint64_t addr, uint64_t size) const;

  /// Direct host pointer into a RAM region's backing store, or nullptr
  /// for MMIO/unmapped. Used by the DMA engine for bulk copies; regular
  /// simulated code must use Read/Write.
  uint8_t* RawHostPointer(uint64_t addr, uint64_t size);
  const uint8_t* RawHostPointer(uint64_t addr, uint64_t size) const;

  /// Introspection for tests and dumps.
  std::vector<RegionInfo> Regions() const;

 private:
  struct Region {
    RegionInfo info;
    std::vector<uint8_t> ram;   // backing for kRam
    MmioDevice* mmio = nullptr; // handler for kMmio
  };

  const Region* Find(uint64_t addr, uint64_t size) const;
  Region* Find(uint64_t addr, uint64_t size);

  // Sorted by base address; regions never overlap.
  std::vector<std::unique_ptr<Region>> regions_;
  // Most-recently-hit region. Accesses cluster (a driver hammers its
  // ring, its MMIO window, its globals), so one range check usually
  // replaces the binary search. Region objects are heap-stable; the
  // cache only needs invalidating when a region is unmapped. Atomic so
  // concurrent CPUs sharing the address space race benignly on the hint
  // (each CPU's miss just refills it) instead of tearing a pointer.
  mutable std::atomic<const Region*> last_hit_{nullptr};
};

}  // namespace kop::kernel
