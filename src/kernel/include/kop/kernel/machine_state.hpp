// Privileged machine state behind the kir.* hardware intrinsics: the
// model-specific-register file, the port-I/O bus, and the interrupt-flag
// bit. The module loader's resolver routes kir.rdmsr/wrmsr/inb/outb/
// cli/sti here, so a module granted an intrinsic really changes machine
// state (and a test can observe exactly what a rogue module would have
// done).
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "kop/util/status.hpp"

namespace kop::kernel {

/// A handful of architecturally interesting MSR numbers for tests/demos.
inline constexpr uint64_t MSR_APIC_BASE = 0x1b;
inline constexpr uint64_t MSR_EFER = 0xc0000080;
inline constexpr uint64_t MSR_STAR = 0xc0000081;
inline constexpr uint64_t MSR_LSTAR = 0xc0000082;

class MsrFile {
 public:
  MsrFile();

  /// Unknown MSRs read as zero (a permissive model; real hardware #GPs,
  /// which is beyond what an intrinsic-permission demo needs).
  uint64_t Read(uint64_t msr) const;
  void Write(uint64_t msr, uint64_t value);

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

 private:
  std::map<uint64_t, uint64_t> values_;
  mutable uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

/// Port-mapped I/O. Devices claim ports with in/out handlers; unclaimed
/// ports read 0xff (floating bus) and swallow writes.
class PortBus {
 public:
  using InHandler = std::function<uint8_t(uint16_t port)>;
  using OutHandler = std::function<void(uint16_t port, uint8_t value)>;

  Status Claim(uint16_t first_port, uint16_t count, InHandler in,
               OutHandler out);
  void Release(uint16_t first_port);

  uint8_t In(uint16_t port);
  void Out(uint16_t port, uint8_t value);

  uint64_t ins() const { return ins_; }
  uint64_t outs() const { return outs_; }

 private:
  struct Claimed {
    uint16_t count = 0;
    InHandler in;
    OutHandler out;
  };
  /// first_port -> claim; lookup walks to the covering claim.
  std::map<uint16_t, Claimed> claims_;
  uint64_t ins_ = 0;
  uint64_t outs_ = 0;

  const Claimed* Find(uint16_t port, uint16_t* base) const;
};

/// CPU interrupt-flag model for cli/sti/hlt.
class CpuFlags {
 public:
  bool interrupts_enabled() const { return interrupts_enabled_; }
  void Cli() { interrupts_enabled_ = false; ++cli_count_; }
  void Sti() { interrupts_enabled_ = true; ++sti_count_; }
  void Halt() { ++halt_count_; }

  uint64_t cli_count() const { return cli_count_; }
  uint64_t sti_count() const { return sti_count_; }
  uint64_t halt_count() const { return halt_count_; }

 private:
  bool interrupts_enabled_ = true;
  uint64_t cli_count_ = 0;
  uint64_t sti_count_ = 0;
  uint64_t halt_count_ = 0;
};

}  // namespace kop::kernel
