// Character-device registry: the simulated /dev tree. The CARAT KOP
// policy module registers /dev/carat here; the policy-manager example
// drives it through Ioctl(), mirroring Figure 1 of the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "kop/util/status.hpp"

namespace kop::kernel {

/// An ioctl handler: (cmd, arg buffer in/out) -> status. The arg buffer
/// plays the role of the userspace struct passed by pointer; handlers
/// may read and rewrite it (copy_in/copy_out semantics).
using IoctlHandler =
    std::function<Status(uint32_t cmd, std::vector<uint8_t>& arg)>;

class CharDeviceRegistry {
 public:
  /// Register a device node, e.g. "/dev/carat".
  Status Register(const std::string& path, IoctlHandler handler);

  Status Unregister(const std::string& path);

  bool Exists(const std::string& path) const;

  /// Issue an ioctl as userspace would. `arg` is copied in and out.
  Status Ioctl(const std::string& path, uint32_t cmd,
               std::vector<uint8_t>& arg) const;

  std::vector<std::string> Paths() const;

 private:
  std::map<std::string, IoctlHandler> devices_;
};

}  // namespace kop::kernel
