// Canonical layout of the simulated kernel virtual address space.
//
// CARAT KOP guards check *kernel virtual* addresses (on Linux the physical
// address space is remapped at a known offset — the direct map), so the
// simulator models the kernel's view: a low user half, and in the high
// half the direct map, kernel text, vmalloc/ioremap space and the module
// area. The constants mirror x86-64 Linux (Documentation/x86/x86_64/mm.rst)
// closely enough that policy rules like "deny the low half" read naturally.
#pragma once

#include <cstdint>

namespace kop::kernel {

// Low (user) half: 0 .. 0x0000_7fff_ffff_ffff.
inline constexpr uint64_t kUserSpaceBase = 0x0000000000000000ULL;
inline constexpr uint64_t kUserSpaceEnd = 0x0000800000000000ULL;

// Start of the canonical high half.
inline constexpr uint64_t kKernelHalfBase = 0xffff800000000000ULL;

// Direct map of all physical RAM (page_offset_base on real Linux).
inline constexpr uint64_t kDirectMapBase = 0xffff888000000000ULL;

// vmalloc / ioremap space: where MMIO BARs get mapped.
inline constexpr uint64_t kVmallocBase = 0xffffc90000000000ULL;

// Kernel text/rodata/data.
inline constexpr uint64_t kKernelTextBase = 0xffffffff81000000ULL;

// Module mapping space (where .ko text+data land).
inline constexpr uint64_t kModuleBase = 0xffffffffa0000000ULL;
inline constexpr uint64_t kModuleEnd = 0xffffffffc0000000ULL;

/// True when `addr` is in the canonical low (user) half.
inline constexpr bool IsUserAddress(uint64_t addr) {
  return addr < kUserSpaceEnd;
}

/// True when `addr` is in the canonical high (kernel) half.
inline constexpr bool IsKernelAddress(uint64_t addr) {
  return addr >= kKernelHalfBase;
}

}  // namespace kop::kernel
