// The simulated kernel's log: a fixed-size printk ring with severities,
// readable like `dmesg`. The policy module logs forbidden accesses here
// before panicking, exactly as the paper's policy module does.
#pragma once

#include <cstdarg>
#include <string>
#include <vector>

#include "kop/util/ring_buffer.hpp"
#include "kop/util/spinlock.hpp"

namespace kop::kernel {

enum class KernLevel {
  kEmerg = 0,
  kAlert = 1,
  kCrit = 2,
  kErr = 3,
  kWarning = 4,
  kNotice = 5,
  kInfo = 6,
  kDebug = 7,
};

struct PrintkRecord {
  KernLevel level = KernLevel::kInfo;
  uint64_t seq = 0;
  std::string text;
};

class PrintkRing {
 public:
  explicit PrintkRing(size_t capacity = 1024) : ring_(capacity) {}

  /// printf-style, like the kernel's printk(KERN_ERR "...").
  void Printk(KernLevel level, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

  void Emit(KernLevel level, std::string text);

  /// Oldest-first snapshot (dmesg).
  std::vector<PrintkRecord> Dmesg() const;

  /// Dmesg rendered as "<level>: text" lines — convenient for tests.
  std::string DmesgText() const;

  /// True when any record at `level` or more severe contains `needle`.
  bool Contains(std::string_view needle) const;

  uint64_t total_emitted() const;
  void Clear();

 private:
  mutable Spinlock lock_;
  RingBuffer<PrintkRecord> ring_;
  uint64_t seq_ = 0;
};

}  // namespace kop::kernel
