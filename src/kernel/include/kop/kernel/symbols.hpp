// The kernel's exported-symbol table (EXPORT_SYMBOL). Protected modules
// link against it at insmod time: notably the policy module's single
// export, `carat_guard`, plus printk-style helpers. Function symbols are
// host closures so the KIR interpreter can call straight into simulated
// kernel services; data symbols are simulated addresses.
//
// SMP-safe: the table is sharded by name hash, each shard behind its own
// spinlock, so concurrent insmod/rmmod on different CPUs only contend
// when their symbols hash together. Unexported closures move to a
// per-shard graveyard instead of being destroyed — a CPU that cached a
// FindFunction pointer and races the unexport calls a dead-but-valid
// closure instead of freed memory, and the generation check catches the
// staleness on its next revalidation.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "kop/util/spinlock.hpp"
#include "kop/util/status.hpp"

namespace kop::kernel {

/// Host implementation of an exported kernel function. Arguments and the
/// return value follow a simple 64-bit integer ABI (pointers are simulated
/// addresses), which is what KIR call instructions produce.
using KernelFunction = std::function<uint64_t(const std::vector<uint64_t>&)>;

class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Export a function symbol. Fails if the name is taken.
  Status ExportFunction(const std::string& name, KernelFunction fn);

  /// Export a data symbol at a simulated address.
  Status ExportData(const std::string& name, uint64_t address);

  /// Remove an export (module unload).
  Status Unexport(const std::string& name);

  bool HasFunction(const std::string& name) const;
  bool HasData(const std::string& name) const;

  /// Stable pointer to an exported function's host closure, or nullptr.
  /// The pointer stays *callable* for the table's lifetime (unexported
  /// closures are parked, not freed), but callers caching it across calls
  /// must revalidate against generation() to observe unloads.
  const KernelFunction* FindFunction(const std::string& name) const;

  /// Monotonic export-set revision: bumped by every successful
  /// ExportFunction / ExportData / Unexport. A cached FindFunction
  /// pointer is safe to keep using while generation() is unchanged —
  /// this is what lets the bytecode engine bind symbols once at insmod
  /// and still observe a later policy-module unload.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Call an exported function.
  Result<uint64_t> Call(const std::string& name,
                        const std::vector<uint64_t>& args) const;

  Result<uint64_t> DataAddress(const std::string& name) const;

  /// All exported names, sorted (for /proc/kallsyms-style dumps).
  std::vector<std::string> Names() const;

 private:
  static constexpr uint32_t kShardCount = 8;

  struct alignas(64) Shard {
    mutable Spinlock lock;
    std::unordered_map<std::string, std::unique_ptr<KernelFunction>>
        functions;
    std::unordered_map<std::string, uint64_t> data;
    // Unexported closures, kept alive for racing cached-pointer callers.
    std::vector<std::unique_ptr<KernelFunction>> graveyard;
  };

  Shard& ShardFor(const std::string& name) const;

  mutable std::array<Shard, kShardCount> shards_;
  std::atomic<uint64_t> generation_{0};
};

}  // namespace kop::kernel
