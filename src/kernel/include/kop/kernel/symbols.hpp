// The kernel's exported-symbol table (EXPORT_SYMBOL). Protected modules
// link against it at insmod time: notably the policy module's single
// export, `carat_guard`, plus printk-style helpers. Function symbols are
// host closures so the KIR interpreter can call straight into simulated
// kernel services; data symbols are simulated addresses.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "kop/util/status.hpp"

namespace kop::kernel {

/// Host implementation of an exported kernel function. Arguments and the
/// return value follow a simple 64-bit integer ABI (pointers are simulated
/// addresses), which is what KIR call instructions produce.
using KernelFunction = std::function<uint64_t(const std::vector<uint64_t>&)>;

class SymbolTable {
 public:
  /// Export a function symbol. Fails if the name is taken.
  Status ExportFunction(const std::string& name, KernelFunction fn);

  /// Export a data symbol at a simulated address.
  Status ExportData(const std::string& name, uint64_t address);

  /// Remove an export (module unload).
  Status Unexport(const std::string& name);

  bool HasFunction(const std::string& name) const;
  bool HasData(const std::string& name) const;

  /// Stable pointer to an exported function's host closure, or nullptr.
  /// The pointer stays valid until that symbol is unexported; callers
  /// caching it across calls must revalidate against generation().
  const KernelFunction* FindFunction(const std::string& name) const;

  /// Monotonic export-set revision: bumped by every successful
  /// ExportFunction / ExportData / Unexport. A cached FindFunction
  /// pointer is safe to keep using while generation() is unchanged —
  /// this is what lets the bytecode engine bind symbols once at insmod
  /// and still observe a later policy-module unload.
  uint64_t generation() const { return generation_; }

  /// Call an exported function.
  Result<uint64_t> Call(const std::string& name,
                        const std::vector<uint64_t>& args) const;

  Result<uint64_t> DataAddress(const std::string& name) const;

  /// All exported names, sorted (for /proc/kallsyms-style dumps).
  std::vector<std::string> Names() const;

 private:
  std::unordered_map<std::string, KernelFunction> functions_;
  std::unordered_map<std::string, uint64_t> data_;
  uint64_t generation_ = 0;
};

}  // namespace kop::kernel
