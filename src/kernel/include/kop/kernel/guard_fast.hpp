// The inline-guard fast-path seam between the execution engines and the
// policy module. The engines cannot depend on kop::policy (layering), so
// the policy module registers this interface on the Kernel at insert and
// clears it at removal; the module loader's resolver forwards the
// engines' inline guard checks through it.
//
// Protocol (DESIGN.md §15):
//  - PinFrame/UnpinFrame bracket one outermost LoadedModule::Call on the
//    calling CPU. A pin captures the RCU-published PolicyFrame pointer
//    plus its store/config generations once, so every inline guard in the
//    call decides against an immutable region index without re-entering
//    the RCU read lock per guard. Pins nest (module-to-module calls).
//  - FastGuard/FastGuardRange return true only when the access was proven
//    allowed against the pinned frame AND fully accounted (counters,
//    per-site attribution, virtual-clock charge). Any other outcome —
//    no pin, frame generation moved, fault-injection armed, flag
//    mismatch, or check failure — returns false and the caller must take
//    the out-of-line slow path, which re-decides with full violation
//    attribution, journal rollback, and containment semantics.
#pragma once

#include <cstdint>
#include <vector>

namespace kop::kernel {

class GuardFastOps {
 public:
  virtual ~GuardFastOps() = default;

  /// Open (or nest) the calling CPU's frame pin. Returns false when no
  /// pin is available (callers then skip UnpinFrame and every inline
  /// check deopts).
  virtual bool PinFrame() = 0;
  /// Close one nesting level; the outermost close releases the frame.
  virtual void UnpinFrame() = 0;

  /// Inline check of one guarded access. `site` is the guard-site token
  /// for attribution (0 = unattributed). True = allowed and accounted.
  virtual bool FastGuard(uint64_t addr, uint64_t size, uint64_t flags,
                         uint64_t site) = 0;
  /// Inline check of a covering interval emitted by the elision pass;
  /// `elided` is the number of member guards the cover subsumes beyond
  /// itself (credited to guard.elided on success).
  virtual bool FastGuardRange(uint64_t addr, uint64_t size, uint64_t flags,
                              uint64_t elided, uint64_t site) = 0;

  /// Register a module's attested CFI legal-target sets (each a list of
  /// simulated function addresses) and return the engine-global base id
  /// its module-local set ids were rebased by. Virtual-with-default so
  /// pre-CFI GuardFastOps implementors keep compiling; the default
  /// accepts nothing and FastCfiCheck's default deopts everything to the
  /// slow path, which preserves containment semantics exactly.
  virtual uint64_t RegisterCfiSets(
      const std::vector<std::vector<uint64_t>>& sets) {
    (void)sets;
    return 0;
  }

  /// Inline check of one indirect-call target against the pinned frame's
  /// CFI table. Same contract as FastGuard: true = proven a member of
  /// set `set_id` AND fully accounted; false = caller must take the
  /// out-of-line carat_cfi_check slow path, which owns violation
  /// semantics (containment is byte-identical either way).
  virtual bool FastCfiCheck(uint64_t target, uint64_t set_id, uint64_t site) {
    (void)target;
    (void)set_id;
    (void)site;
    return false;
  }
};

}  // namespace kop::kernel
