// /proc-style introspection: the text views an operator uses to see what
// is going on inside the simulated kernel — loaded modules (lsmod),
// exported symbols (kallsyms), the memory map (iomem) and allocator
// state (meminfo). Pure renderers over existing state.
#pragma once

#include <string>

#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"

namespace kop::kernel {

/// lsmod: name, instruction count, guard count, quarantine state, and
/// the LastEvent column (most recent containment event as reason@tsc on
/// the virtual clock; "-" before any incident).
std::string ProcModules(const ModuleLoader& loader);

/// The newest flight-recorder postmortem bundle as deterministic JSON,
/// or "none\n" when no incident has been captured yet.
std::string ProcPostmortem();

/// kallsyms: exported function/data symbols, sorted.
std::string ProcKallsyms(const Kernel& kernel);

/// iomem: the address-space map (RAM/MMIO regions with permissions).
std::string ProcIomem(const Kernel& kernel);

/// meminfo: heap and module-area allocator statistics.
std::string ProcMeminfo(const Kernel& kernel);

/// available_events + per-event firing counts from the global tracer,
/// plus ring capacity/appended/dropped — the ftrace directory analogue.
std::string ProcTracepoints();

}  // namespace kop::kernel
