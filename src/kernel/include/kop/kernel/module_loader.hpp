// insmod/rmmod for signed KIR modules. The paper's load path (§3.2):
// "When a protected module is inserted into the kernel (after validating
// its signature), it is linked against the policy module's implementation
// of carat_guard."
//
// Insmod: verify signature + attestation (signing::ValidateSignedModule),
// resolve every external against the exported-symbol table (unknown
// symbol -> refuse, like real insmod), lay the module's globals and stack
// out in the module area, and wire an execution engine so the module can
// run. The default engine compiles the verified IR to bytecode and runs
// it on the register VM; KOP_ENGINE=interp selects the reference
// tree-walking interpreter instead.
//
// Every call into a loaded module is transactional (kop::resilience): a
// write journal opens at call entry, and on containment — guard
// violation, watchdog expiry, in-module panic — it is rolled back before
// the error propagates, leaving kernel memory byte-identical to call
// entry. What happens to the module afterwards is the recovery policy:
// panic, quarantine (default), or restart with bounded exponential
// backoff (KOP_RECOVERY).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kop/kernel/kernel.hpp"
#include "kop/kir/engine.hpp"
#include "kop/kir/interp.hpp"
#include "kop/kir/module.hpp"
#include "kop/kir/vm.hpp"
#include "kop/resilience/journal.hpp"
#include "kop/resilience/recovery.hpp"
#include "kop/signing/signer.hpp"
#include "kop/signing/validator.hpp"
#include "kop/smp/cpu.hpp"
#include "kop/smp/percpu.hpp"
#include "kop/util/spinlock.hpp"
#include "kop/util/status.hpp"

namespace kop::kernel {

/// Which execution engine Insmod wires a module to.
enum class ExecEngine {
  kInterp,    // reference tree-walking interpreter (the oracle)
  kBytecode,  // register VM over load-time-compiled bytecode (default)
};

std::string_view ExecEngineName(ExecEngine engine);

/// Engine selected by the KOP_ENGINE environment variable ("interp" or
/// "bytecode"); kBytecode when unset or unrecognized.
ExecEngine DefaultExecEngine();

/// How Insmod establishes guard completeness before linking a module.
enum class VerifyMode {
  kAttest,  // trust the signed attestation's guard claims (paper baseline)
  kStatic,  // ignore attested guard claims; require a static proof
  kBoth,    // demand both: attested claims AND the static proof (default)
};

std::string_view VerifyModeName(VerifyMode mode);

/// Mode selected by the KOP_VERIFY environment variable ("attest",
/// "static" or "both"); kBoth when unset or unrecognized.
VerifyMode DefaultVerifyMode();

/// Runtime heap allocations owned by one module (made through the
/// kernel's exported kmalloc). The resolver records them so quarantine /
/// restart / rmmod can reclaim what the module would otherwise leak.
/// Internally locked — CPUs allocate concurrently — with the open-call
/// subset tracked per CPU (each CPU's transaction reclaims only its own
/// call's allocations on rollback).
struct HeapLedger {
  void OnAlloc(uint64_t addr) {
    if (addr == 0) return;
    std::lock_guard<Spinlock> guard(lock_);
    live_.push_back(addr);
    call_new_.Mine().push_back(addr);
  }
  void OnFree(uint64_t addr) {
    std::lock_guard<Spinlock> guard(lock_);
    Erase(live_, addr);
    call_new_.ForEach(
        [addr](uint32_t, std::vector<uint64_t>& v) { Erase(v, addr); });
  }

  /// Open a transaction on the calling CPU: its call-new set empties.
  void BeginCall() {
    std::lock_guard<Spinlock> guard(lock_);
    call_new_.Mine().clear();
  }
  /// Claim the calling CPU's call-new set (rollback reclaims these).
  std::vector<uint64_t> TakeMyCallNew() {
    std::lock_guard<Spinlock> guard(lock_);
    std::vector<uint64_t> out = std::move(call_new_.Mine());
    call_new_.Mine().clear();
    return out;
  }
  /// Claim everything still owned (quarantine / teardown / rmmod).
  std::vector<uint64_t> TakeAllLive() {
    std::lock_guard<Spinlock> guard(lock_);
    std::vector<uint64_t> out = std::move(live_);
    live_.clear();
    call_new_.ForEach([](uint32_t, std::vector<uint64_t>& v) { v.clear(); });
    return out;
  }
  std::vector<uint64_t> LiveSnapshot() const {
    std::lock_guard<Spinlock> guard(lock_);
    return live_;
  }

 private:
  static void Erase(std::vector<uint64_t>& v, uint64_t addr) {
    for (size_t i = 0; i < v.size(); ++i) {
      if (v[i] == addr) {
        v.erase(v.begin() + i);
        return;
      }
    }
  }

  mutable Spinlock lock_;
  std::vector<uint64_t> live_;  // currently-owned heap addresses
  smp::PerCpu<std::vector<uint64_t>> call_new_;  // per-CPU open-call subset
};

class LoadedModule {
 public:
  ~LoadedModule();
  LoadedModule(const LoadedModule&) = delete;
  LoadedModule& operator=(const LoadedModule&) = delete;

  const std::string& name() const { return name_; }
  const kir::Module& ir() const { return *ir_; }
  const transform::AttestationRecord& attestation() const {
    return attestation_;
  }

  /// Call an exported entry point of the module. The call runs inside a
  /// write-journal transaction: on guard violation, watchdog expiry or
  /// in-module panic the journal is rolled back (kernel memory restored
  /// to call entry) before the error propagates, and the recovery policy
  /// decides the module's fate — quarantine (every later Call refuses
  /// immediately; the module is NOT forcibly unloaded — the paper's §3.1
  /// warning stands: any lock it held when the violating call unwound is
  /// still held) or restart (teardown + re-init under bounded
  /// exponential backoff; exhausted -> permanent quarantine).
  Result<uint64_t> Call(const std::string& function,
                        const std::vector<uint64_t>& args);

  /// Build per-CPU execution contexts so `cpus` simulated CPUs can Call
  /// into the module concurrently. Each CPU gets its own engine, frame
  /// stack (fresh 64 KiB module-area allocation), write journal, and
  /// resolver; module globals and the kernel heap stay shared — that
  /// sharing is exactly what the guard path and the containment protocol
  /// protect. Idempotent; slot 0 is the context Insmod built, so
  /// PrepareCpus(1) is a no-op and --cpus 1 stays bit-identical to the
  /// non-SMP path.
  Status PrepareCpus(uint32_t cpus);
  uint32_t prepared_cpus() const {
    return static_cast<uint32_t>(slots_.size());
  }

  /// Recovery state machine position (procfs lsmod State column).
  resilience::ModuleState state() const {
    return state_.load(std::memory_order_acquire);
  }
  bool quarantined() const {
    return state() == resilience::ModuleState::kQuarantined;
  }
  std::string quarantine_reason() const {
    std::lock_guard<Spinlock> guard(state_lock_);
    return quarantine_reason_;
  }

  /// Most recent containment-relevant event on this module, for the
  /// procfs lsmod LastEvent column: a static reason string ("violation",
  /// "timeout", "panic", "quarantine", "restart", "restart-failed") plus
  /// the virtual-clock timestamp it was noted at. Null reason = none yet.
  const char* last_event_reason() const {
    return last_event_reason_.load(std::memory_order_acquire);
  }
  uint64_t last_event_tsc() const {
    return last_event_tsc_.load(std::memory_order_acquire);
  }

  /// Completed restarts / restart attempts consumed from the backoff
  /// budget (attempts include failed ones).
  uint32_t restart_count() const {
    return restarts_completed_.load(std::memory_order_acquire);
  }
  uint32_t restart_attempts() const {
    return restart_attempts_.load(std::memory_order_acquire);
  }

  /// Per-module recovery knobs (defaults come from the loader, which
  /// reads KOP_RECOVERY / KOP_WATCHDOG_STEPS).
  resilience::RecoveryPolicy recovery_policy() const { return recovery_; }
  void set_recovery_policy(resilience::RecoveryPolicy policy) {
    recovery_ = policy;
  }
  const resilience::BackoffPolicy& backoff() const { return backoff_; }
  void set_backoff(const resilience::BackoffPolicy& backoff) {
    backoff_ = backoff;
  }
  uint64_t watchdog_steps() const { return watchdog_steps_; }
  void set_watchdog_steps(uint64_t steps) {
    watchdog_steps_ = steps;
    for (auto& slot : slots_) slot->engine->set_watchdog_steps(steps);
  }

  /// Bench-only escape hatch: with journaling off, Call opens no write
  /// transaction (the pre-resilience configuration), so containment can
  /// no longer roll anything back. Ships enabled; nothing but the
  /// resilience overhead bench should ever turn it off.
  bool journaling_enabled() const { return journaling_enabled_; }
  void set_journaling_enabled(bool enabled) { journaling_enabled_ = enabled; }

  /// Entry point a restart re-runs after teardown (auto-detected as a
  /// zero-arg @init when present; override for modules whose init takes
  /// arguments, e.g. knic_init(mmio_base)).
  void set_restart_entry(std::string entry, std::vector<uint64_t> args) {
    restart_entry_ = std::move(entry);
    restart_args_ = std::move(args);
  }

  /// Simulated address of one of the module's globals.
  Result<uint64_t> GlobalAddress(const std::string& global) const;

  /// Boot-CPU (slot 0) engine statistics — the legacy single-CPU view.
  const kir::InterpStats& exec_stats() const {
    return slots_[0]->engine->stats();
  }
  void ResetExecStats() {
    for (auto& slot : slots_) slot->engine->ResetStats();
  }
  /// One CPU's engine statistics (test introspection for the SMP battery).
  const kir::InterpStats& CpuExecStats(uint32_t cpu) const {
    return slots_.at(cpu)->engine->stats();
  }

  /// Name of the engine executing this module ("interp" or "bytecode").
  std::string_view engine_name() const {
    return slots_[0]->engine->engine_name();
  }

  /// Guard-site tokens registered for this module at insmod, indexed by
  /// module-local site id (see trace::GlobalSites()).
  const std::vector<uint64_t>& site_tokens() const { return site_tokens_; }

  /// The journaling memory seam (also the fault-injection hook point).
  /// Boot-CPU slot; fault campaigns are single-CPU.
  resilience::JournaledMemory& journaled_memory() {
    return *slots_[0]->journaled;
  }
  const resilience::JournaledMemory& journaled_memory() const {
    return *slots_[0]->journaled;
  }

  /// Heap allocations currently owned by the module (kernel kmalloc).
  /// By value: the ledger mutates under concurrent calls.
  std::vector<uint64_t> heap_allocations() const {
    return heap_ledger_.LiveSnapshot();
  }
  /// Kernel symbols this module exported at insmod ("<module>.<fn>").
  const std::vector<std::string>& exported_symbols() const {
    return exported_symbols_;
  }

 private:
  friend class ModuleLoader;
  LoadedModule() = default;

  /// One simulated CPU's execution context. Engine, frame stack, write
  /// journal and resolver are private to the CPU; module globals, the
  /// kernel heap, and the exported-symbol table are shared across slots.
  /// Slot 0 is built by Insmod (the boot CPU); PrepareCpus adds the rest.
  struct CpuSlot {
    std::unique_ptr<kir::MemoryInterface> memory;
    std::unique_ptr<resilience::JournaledMemory> journaled;
    std::unique_ptr<kir::ExternalResolver> resolver;
    std::unique_ptr<kir::ExecutionEngine> engine;
    uint32_t call_depth = 0;  // re-entry via exported module symbols
  };

  /// The calling CPU's slot; CPUs beyond prepared_cpus() fall back to
  /// slot 0 (callers must PrepareCpus before fanning out).
  CpuSlot& MySlot() {
    const uint32_t cpu = smp::CurrentCpu();
    return cpu < slots_.size() ? *slots_[cpu] : *slots_[0];
  }

  /// Containment: roll the calling CPU's journal back, reclaim its
  /// call-local allocations, then race for recovery ownership. Exactly
  /// one contained call per incident wins `containing_` and drives the
  /// recovery policy after stopping the module machine-wide (every other
  /// in-flight call aborts at its next memory access and unwinds on its
  /// own CPU); losers report the violation and return without touching
  /// the state machine. `violation` is non-null for guard violations.
  Result<uint64_t> Contain(CpuSlot& slot, resilience::RollbackReason reason,
                           const std::string& what,
                           const GuardViolation* violation);

  /// One restart attempt (backoff charge + teardown + re-init). Ok when
  /// the module is running again; error while it stays down (kTimeout /
  /// kPermissionDenied) or once the budget is exhausted (quarantined).
  /// Serialized on restart_lock_ — concurrent callers that find the
  /// module already restarted return Ok without consuming budget.
  Status TryRestart();

  size_t RollbackJournal(CpuSlot& slot, resilience::RollbackReason reason);

  /// Stamp the LastEvent pair (`reason` must be a string literal — the
  /// pointer is stored as-is and read lock-free by procfs).
  void NoteEvent(const char* reason);

  /// Snapshot the incident into a flight::PostmortemBundle and hand it
  /// to the global store. Fired at the containment seams: the Contain
  /// winner (before recovery runs), the in-module panic unwind, and
  /// restart-budget exhaustion.
  void CapturePostmortem(CpuSlot& slot, const char* reason,
                         const std::string& what,
                         const GuardViolation* violation,
                         const char* recovery);

  void ReclaimCallAllocations();
  void ReclaimHeapAllocations();
  void UnexportSymbols();
  Status ResetGlobals();
  void Quarantine(const std::string& reason, const GuardViolation* violation);

  std::string name_;
  std::atomic<resilience::ModuleState> state_{resilience::ModuleState::kLive};
  mutable Spinlock state_lock_;  // quarantine_reason_
  std::string quarantine_reason_;
  Kernel* kernel_ = nullptr;
  std::unique_ptr<kir::Module> ir_;
  transform::AttestationRecord attestation_;
  std::map<std::string, uint64_t> global_addresses_;
  std::vector<uint64_t> allocations_;  // module-area blocks to free
  std::vector<uint64_t> site_tokens_;  // guard-site tokens by site id
  std::vector<std::unique_ptr<CpuSlot>> slots_;

  // Saved by Insmod so PrepareCpus can stamp out more slots.
  ExecEngine engine_kind_ = ExecEngine::kBytecode;
  kir::InterpConfig base_config_;
  std::unordered_map<uint64_t, uint64_t> site_token_map_;
  std::unordered_map<std::string, uint64_t> address_map_;
  /// Engine-global base the module's local CFI set ids are rebased by
  /// (RegisterCfiSets' return at insmod; 0 for un-gated modules).
  uint64_t cfi_base_ = 0;

  // Cross-CPU containment protocol (see Contain).
  std::atomic<bool> stop_requested_{false};
  std::atomic<uint32_t> active_calls_{0};
  std::atomic<bool> containing_{false};
  std::mutex restart_lock_;

  resilience::RecoveryPolicy recovery_ =
      resilience::RecoveryPolicy::kQuarantine;
  resilience::BackoffPolicy backoff_;
  uint64_t watchdog_steps_ = 0;
  bool journaling_enabled_ = true;
  std::atomic<uint32_t> restart_attempts_{0};
  std::atomic<uint32_t> restarts_completed_{0};
  std::atomic<const char*> last_event_reason_{nullptr};
  std::atomic<uint64_t> last_event_tsc_{0};
  std::string restart_entry_;
  std::vector<uint64_t> restart_args_;
  HeapLedger heap_ledger_;
  std::vector<std::string> exported_symbols_;
};

class ModuleLoader {
 public:
  ModuleLoader(Kernel* kernel, signing::Keyring keyring)
      : kernel_(kernel), keyring_(std::move(keyring)) {}

  /// Load a signed module image. Fails without side effects on any
  /// validation/link error.
  Result<LoadedModule*> Insmod(const signing::SignedModule& image);

  /// Unload. Frees module-area allocations, reclaims the module's heap
  /// allocations, and unexports its symbols.
  Status Rmmod(const std::string& name);

  LoadedModule* Find(const std::string& name);
  std::vector<std::string> LoadedNames() const;

  /// Build per-CPU execution contexts for every loaded module (see
  /// LoadedModule::PrepareCpus). Modules Insmod'ed later start with one.
  Status PrepareCpus(uint32_t cpus);

  signing::Keyring& keyring() { return keyring_; }

  /// Engine future Insmod calls wire modules to (already-loaded modules
  /// keep the engine they were loaded with).
  ExecEngine engine() const { return engine_; }
  void set_engine(ExecEngine engine) { engine_ = engine; }

  /// How future Insmod calls establish guard completeness.
  VerifyMode verify_mode() const { return verify_mode_; }
  void set_verify_mode(VerifyMode mode) { verify_mode_ = mode; }

  /// Recovery defaults stamped onto future Insmod'ed modules.
  resilience::RecoveryPolicy recovery_policy() const { return recovery_; }
  void set_recovery_policy(resilience::RecoveryPolicy policy) {
    recovery_ = policy;
  }
  uint64_t watchdog_steps() const { return watchdog_steps_; }
  void set_watchdog_steps(uint64_t steps) { watchdog_steps_ = steps; }
  const resilience::BackoffPolicy& backoff() const { return backoff_; }
  void set_backoff(const resilience::BackoffPolicy& backoff) {
    backoff_ = backoff;
  }

 private:
  Kernel* kernel_;
  signing::Keyring keyring_;
  ExecEngine engine_ = DefaultExecEngine();
  VerifyMode verify_mode_ = DefaultVerifyMode();
  resilience::RecoveryPolicy recovery_ = resilience::DefaultRecoveryPolicy();
  uint64_t watchdog_steps_ = resilience::DefaultWatchdogSteps();
  resilience::BackoffPolicy backoff_;
  std::map<std::string, std::unique_ptr<LoadedModule>> modules_;
};

}  // namespace kop::kernel
