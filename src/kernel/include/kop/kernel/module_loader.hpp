// insmod/rmmod for signed KIR modules. The paper's load path (§3.2):
// "When a protected module is inserted into the kernel (after validating
// its signature), it is linked against the policy module's implementation
// of carat_guard."
//
// Insmod: verify signature + attestation (signing::ValidateSignedModule),
// resolve every external against the exported-symbol table (unknown
// symbol -> refuse, like real insmod), lay the module's globals and stack
// out in the module area, and wire an execution engine so the module can
// run. The default engine compiles the verified IR to bytecode and runs
// it on the register VM; KOP_ENGINE=interp selects the reference
// tree-walking interpreter instead.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kop/kernel/kernel.hpp"
#include "kop/kir/engine.hpp"
#include "kop/kir/interp.hpp"
#include "kop/kir/module.hpp"
#include "kop/kir/vm.hpp"
#include "kop/signing/signer.hpp"
#include "kop/signing/validator.hpp"
#include "kop/util/status.hpp"

namespace kop::kernel {

/// Which execution engine Insmod wires a module to.
enum class ExecEngine {
  kInterp,    // reference tree-walking interpreter (the oracle)
  kBytecode,  // register VM over load-time-compiled bytecode (default)
};

std::string_view ExecEngineName(ExecEngine engine);

/// Engine selected by the KOP_ENGINE environment variable ("interp" or
/// "bytecode"); kBytecode when unset or unrecognized.
ExecEngine DefaultExecEngine();

/// How Insmod establishes guard completeness before linking a module.
enum class VerifyMode {
  kAttest,  // trust the signed attestation's guard claims (paper baseline)
  kStatic,  // ignore attested guard claims; require a static proof
  kBoth,    // demand both: attested claims AND the static proof (default)
};

std::string_view VerifyModeName(VerifyMode mode);

/// Mode selected by the KOP_VERIFY environment variable ("attest",
/// "static" or "both"); kBoth when unset or unrecognized.
VerifyMode DefaultVerifyMode();

class LoadedModule {
 public:
  ~LoadedModule();
  LoadedModule(const LoadedModule&) = delete;
  LoadedModule& operator=(const LoadedModule&) = delete;

  const std::string& name() const { return name_; }
  const kir::Module& ir() const { return *ir_; }
  const transform::AttestationRecord& attestation() const {
    return attestation_;
  }

  /// Call an exported entry point of the module. Under the policy
  /// engine's kQuarantine action, a guard violation during the call
  /// quarantines this module: the call returns kPermissionDenied and
  /// every later Call refuses immediately. The module is NOT forcibly
  /// unloaded — the paper's §3.1 warning stands: any lock it held when
  /// the violating call unwound is still held.
  Result<uint64_t> Call(const std::string& function,
                        const std::vector<uint64_t>& args);

  bool quarantined() const { return quarantined_; }
  const std::string& quarantine_reason() const { return quarantine_reason_; }

  /// Simulated address of one of the module's globals.
  Result<uint64_t> GlobalAddress(const std::string& global) const;

  const kir::InterpStats& exec_stats() const { return engine_->stats(); }
  void ResetExecStats() { engine_->ResetStats(); }

  /// Name of the engine executing this module ("interp" or "bytecode").
  std::string_view engine_name() const { return engine_->engine_name(); }

  /// Guard-site tokens registered for this module at insmod, indexed by
  /// module-local site id (see trace::GlobalSites()).
  const std::vector<uint64_t>& site_tokens() const { return site_tokens_; }

 private:
  friend class ModuleLoader;
  LoadedModule() = default;

  std::string name_;
  bool quarantined_ = false;
  std::string quarantine_reason_;
  Kernel* kernel_ = nullptr;
  std::unique_ptr<kir::Module> ir_;
  transform::AttestationRecord attestation_;
  std::map<std::string, uint64_t> global_addresses_;
  std::vector<uint64_t> allocations_;  // module-area blocks to free
  std::vector<uint64_t> site_tokens_;  // guard-site tokens by site id
  std::unique_ptr<kir::MemoryInterface> memory_;
  std::unique_ptr<kir::ExternalResolver> resolver_;
  std::unique_ptr<kir::ExecutionEngine> engine_;
};

class ModuleLoader {
 public:
  ModuleLoader(Kernel* kernel, signing::Keyring keyring)
      : kernel_(kernel), keyring_(std::move(keyring)) {}

  /// Load a signed module image. Fails without side effects on any
  /// validation/link error.
  Result<LoadedModule*> Insmod(const signing::SignedModule& image);

  /// Unload. Frees module-area allocations.
  Status Rmmod(const std::string& name);

  LoadedModule* Find(const std::string& name);
  std::vector<std::string> LoadedNames() const;

  signing::Keyring& keyring() { return keyring_; }

  /// Engine future Insmod calls wire modules to (already-loaded modules
  /// keep the engine they were loaded with).
  ExecEngine engine() const { return engine_; }
  void set_engine(ExecEngine engine) { engine_ = engine; }

  /// How future Insmod calls establish guard completeness.
  VerifyMode verify_mode() const { return verify_mode_; }
  void set_verify_mode(VerifyMode mode) { verify_mode_ = mode; }

 private:
  Kernel* kernel_;
  signing::Keyring keyring_;
  ExecEngine engine_ = DefaultExecEngine();
  VerifyMode verify_mode_ = DefaultVerifyMode();
  std::map<std::string, std::unique_ptr<LoadedModule>> modules_;
};

}  // namespace kop::kernel
