// insmod/rmmod for signed KIR modules. The paper's load path (§3.2):
// "When a protected module is inserted into the kernel (after validating
// its signature), it is linked against the policy module's implementation
// of carat_guard."
//
// Insmod: verify signature + attestation (signing::ValidateSignedModule),
// resolve every external against the exported-symbol table (unknown
// symbol -> refuse, like real insmod), lay the module's globals and stack
// out in the module area, and wire an execution engine so the module can
// run. The default engine compiles the verified IR to bytecode and runs
// it on the register VM; KOP_ENGINE=interp selects the reference
// tree-walking interpreter instead.
//
// Every call into a loaded module is transactional (kop::resilience): a
// write journal opens at call entry, and on containment — guard
// violation, watchdog expiry, in-module panic — it is rolled back before
// the error propagates, leaving kernel memory byte-identical to call
// entry. What happens to the module afterwards is the recovery policy:
// panic, quarantine (default), or restart with bounded exponential
// backoff (KOP_RECOVERY).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kop/kernel/kernel.hpp"
#include "kop/kir/engine.hpp"
#include "kop/kir/interp.hpp"
#include "kop/kir/module.hpp"
#include "kop/kir/vm.hpp"
#include "kop/resilience/journal.hpp"
#include "kop/resilience/recovery.hpp"
#include "kop/signing/signer.hpp"
#include "kop/signing/validator.hpp"
#include "kop/util/status.hpp"

namespace kop::kernel {

/// Which execution engine Insmod wires a module to.
enum class ExecEngine {
  kInterp,    // reference tree-walking interpreter (the oracle)
  kBytecode,  // register VM over load-time-compiled bytecode (default)
};

std::string_view ExecEngineName(ExecEngine engine);

/// Engine selected by the KOP_ENGINE environment variable ("interp" or
/// "bytecode"); kBytecode when unset or unrecognized.
ExecEngine DefaultExecEngine();

/// How Insmod establishes guard completeness before linking a module.
enum class VerifyMode {
  kAttest,  // trust the signed attestation's guard claims (paper baseline)
  kStatic,  // ignore attested guard claims; require a static proof
  kBoth,    // demand both: attested claims AND the static proof (default)
};

std::string_view VerifyModeName(VerifyMode mode);

/// Mode selected by the KOP_VERIFY environment variable ("attest",
/// "static" or "both"); kBoth when unset or unrecognized.
VerifyMode DefaultVerifyMode();

/// Runtime heap allocations owned by one module (made through the
/// kernel's exported kmalloc). The resolver records them so quarantine /
/// restart / rmmod can reclaim what the module would otherwise leak.
struct HeapLedger {
  std::vector<uint64_t> live;      // currently-owned heap addresses
  std::vector<uint64_t> call_new;  // subset allocated by the open call

  void OnAlloc(uint64_t addr) {
    if (addr == 0) return;
    live.push_back(addr);
    call_new.push_back(addr);
  }
  void OnFree(uint64_t addr) {
    Erase(live, addr);
    Erase(call_new, addr);
  }

 private:
  static void Erase(std::vector<uint64_t>& v, uint64_t addr) {
    for (size_t i = 0; i < v.size(); ++i) {
      if (v[i] == addr) {
        v.erase(v.begin() + i);
        return;
      }
    }
  }
};

class LoadedModule {
 public:
  ~LoadedModule();
  LoadedModule(const LoadedModule&) = delete;
  LoadedModule& operator=(const LoadedModule&) = delete;

  const std::string& name() const { return name_; }
  const kir::Module& ir() const { return *ir_; }
  const transform::AttestationRecord& attestation() const {
    return attestation_;
  }

  /// Call an exported entry point of the module. The call runs inside a
  /// write-journal transaction: on guard violation, watchdog expiry or
  /// in-module panic the journal is rolled back (kernel memory restored
  /// to call entry) before the error propagates, and the recovery policy
  /// decides the module's fate — quarantine (every later Call refuses
  /// immediately; the module is NOT forcibly unloaded — the paper's §3.1
  /// warning stands: any lock it held when the violating call unwound is
  /// still held) or restart (teardown + re-init under bounded
  /// exponential backoff; exhausted -> permanent quarantine).
  Result<uint64_t> Call(const std::string& function,
                        const std::vector<uint64_t>& args);

  /// Recovery state machine position (procfs lsmod State column).
  resilience::ModuleState state() const { return state_; }
  bool quarantined() const {
    return state_ == resilience::ModuleState::kQuarantined;
  }
  const std::string& quarantine_reason() const { return quarantine_reason_; }

  /// Completed restarts / restart attempts consumed from the backoff
  /// budget (attempts include failed ones).
  uint32_t restart_count() const { return restarts_completed_; }
  uint32_t restart_attempts() const { return restart_attempts_; }

  /// Per-module recovery knobs (defaults come from the loader, which
  /// reads KOP_RECOVERY / KOP_WATCHDOG_STEPS).
  resilience::RecoveryPolicy recovery_policy() const { return recovery_; }
  void set_recovery_policy(resilience::RecoveryPolicy policy) {
    recovery_ = policy;
  }
  const resilience::BackoffPolicy& backoff() const { return backoff_; }
  void set_backoff(const resilience::BackoffPolicy& backoff) {
    backoff_ = backoff;
  }
  uint64_t watchdog_steps() const { return watchdog_steps_; }
  void set_watchdog_steps(uint64_t steps) {
    watchdog_steps_ = steps;
    engine_->set_watchdog_steps(steps);
  }

  /// Bench-only escape hatch: with journaling off, Call opens no write
  /// transaction (the pre-resilience configuration), so containment can
  /// no longer roll anything back. Ships enabled; nothing but the
  /// resilience overhead bench should ever turn it off.
  bool journaling_enabled() const { return journaling_enabled_; }
  void set_journaling_enabled(bool enabled) { journaling_enabled_ = enabled; }

  /// Entry point a restart re-runs after teardown (auto-detected as a
  /// zero-arg @init when present; override for modules whose init takes
  /// arguments, e.g. knic_init(mmio_base)).
  void set_restart_entry(std::string entry, std::vector<uint64_t> args) {
    restart_entry_ = std::move(entry);
    restart_args_ = std::move(args);
  }

  /// Simulated address of one of the module's globals.
  Result<uint64_t> GlobalAddress(const std::string& global) const;

  const kir::InterpStats& exec_stats() const { return engine_->stats(); }
  void ResetExecStats() { engine_->ResetStats(); }

  /// Name of the engine executing this module ("interp" or "bytecode").
  std::string_view engine_name() const { return engine_->engine_name(); }

  /// Guard-site tokens registered for this module at insmod, indexed by
  /// module-local site id (see trace::GlobalSites()).
  const std::vector<uint64_t>& site_tokens() const { return site_tokens_; }

  /// The journaling memory seam (also the fault-injection hook point).
  resilience::JournaledMemory& journaled_memory() { return *journaled_; }
  const resilience::JournaledMemory& journaled_memory() const {
    return *journaled_;
  }

  /// Heap allocations currently owned by the module (kernel kmalloc).
  const std::vector<uint64_t>& heap_allocations() const {
    return heap_ledger_.live;
  }
  /// Kernel symbols this module exported at insmod ("<module>.<fn>").
  const std::vector<std::string>& exported_symbols() const {
    return exported_symbols_;
  }

 private:
  friend class ModuleLoader;
  LoadedModule() = default;

  /// Containment: roll the journal back, reclaim call-local allocations,
  /// then apply the recovery policy. Returns the error the contained
  /// call reports. `violation` is non-null for guard violations.
  Result<uint64_t> Contain(resilience::RollbackReason reason,
                           const std::string& what,
                           const GuardViolation* violation);

  /// One restart attempt (backoff charge + teardown + re-init). Ok when
  /// the module is running again; error while it stays down (kTimeout /
  /// kPermissionDenied) or once the budget is exhausted (quarantined).
  Status TryRestart();

  size_t RollbackJournal(resilience::RollbackReason reason);
  void ReclaimCallAllocations();
  void ReclaimHeapAllocations();
  void UnexportSymbols();
  Status ResetGlobals();
  void Quarantine(const std::string& reason, const GuardViolation* violation);

  std::string name_;
  resilience::ModuleState state_ = resilience::ModuleState::kLive;
  std::string quarantine_reason_;
  Kernel* kernel_ = nullptr;
  std::unique_ptr<kir::Module> ir_;
  transform::AttestationRecord attestation_;
  std::map<std::string, uint64_t> global_addresses_;
  std::vector<uint64_t> allocations_;  // module-area blocks to free
  std::vector<uint64_t> site_tokens_;  // guard-site tokens by site id
  std::unique_ptr<kir::MemoryInterface> memory_;
  std::unique_ptr<resilience::JournaledMemory> journaled_;
  std::unique_ptr<kir::ExternalResolver> resolver_;
  std::unique_ptr<kir::ExecutionEngine> engine_;

  resilience::RecoveryPolicy recovery_ =
      resilience::RecoveryPolicy::kQuarantine;
  resilience::BackoffPolicy backoff_;
  uint64_t watchdog_steps_ = 0;
  bool journaling_enabled_ = true;
  uint32_t restart_attempts_ = 0;
  uint32_t restarts_completed_ = 0;
  std::string restart_entry_;
  std::vector<uint64_t> restart_args_;
  uint32_t call_depth_ = 0;  // re-entry via exported module symbols
  HeapLedger heap_ledger_;
  std::vector<std::string> exported_symbols_;
};

class ModuleLoader {
 public:
  ModuleLoader(Kernel* kernel, signing::Keyring keyring)
      : kernel_(kernel), keyring_(std::move(keyring)) {}

  /// Load a signed module image. Fails without side effects on any
  /// validation/link error.
  Result<LoadedModule*> Insmod(const signing::SignedModule& image);

  /// Unload. Frees module-area allocations, reclaims the module's heap
  /// allocations, and unexports its symbols.
  Status Rmmod(const std::string& name);

  LoadedModule* Find(const std::string& name);
  std::vector<std::string> LoadedNames() const;

  signing::Keyring& keyring() { return keyring_; }

  /// Engine future Insmod calls wire modules to (already-loaded modules
  /// keep the engine they were loaded with).
  ExecEngine engine() const { return engine_; }
  void set_engine(ExecEngine engine) { engine_ = engine; }

  /// How future Insmod calls establish guard completeness.
  VerifyMode verify_mode() const { return verify_mode_; }
  void set_verify_mode(VerifyMode mode) { verify_mode_ = mode; }

  /// Recovery defaults stamped onto future Insmod'ed modules.
  resilience::RecoveryPolicy recovery_policy() const { return recovery_; }
  void set_recovery_policy(resilience::RecoveryPolicy policy) {
    recovery_ = policy;
  }
  uint64_t watchdog_steps() const { return watchdog_steps_; }
  void set_watchdog_steps(uint64_t steps) { watchdog_steps_ = steps; }
  const resilience::BackoffPolicy& backoff() const { return backoff_; }
  void set_backoff(const resilience::BackoffPolicy& backoff) {
    backoff_ = backoff;
  }

 private:
  Kernel* kernel_;
  signing::Keyring keyring_;
  ExecEngine engine_ = DefaultExecEngine();
  VerifyMode verify_mode_ = DefaultVerifyMode();
  resilience::RecoveryPolicy recovery_ = resilience::DefaultRecoveryPolicy();
  uint64_t watchdog_steps_ = resilience::DefaultWatchdogSteps();
  resilience::BackoffPolicy backoff_;
  std::map<std::string, std::unique_ptr<LoadedModule>> modules_;
};

}  // namespace kop::kernel
