#include "kop/kernel/printk.hpp"

#include <cstdio>
#include <mutex>

#include "kop/trace/metrics.hpp"

namespace kop::kernel {
namespace {

const char* LevelName(KernLevel level) {
  switch (level) {
    case KernLevel::kEmerg: return "EMERG";
    case KernLevel::kAlert: return "ALERT";
    case KernLevel::kCrit: return "CRIT";
    case KernLevel::kErr: return "ERR";
    case KernLevel::kWarning: return "WARNING";
    case KernLevel::kNotice: return "NOTICE";
    case KernLevel::kInfo: return "INFO";
    case KernLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

void PrintkRing::Printk(KernLevel level, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  Emit(level, buf);
}

void PrintkRing::Emit(KernLevel level, std::string text) {
  std::lock_guard<Spinlock> guard(lock_);
  ring_.push(PrintkRecord{level, seq_++, std::move(text)});
  trace::GlobalMetrics()
      .GetGauge("printk.ring_occupancy")
      ->Set(static_cast<int64_t>(ring_.size()));
}

std::vector<PrintkRecord> PrintkRing::Dmesg() const {
  std::lock_guard<Spinlock> guard(lock_);
  return ring_.snapshot();
}

std::string PrintkRing::DmesgText() const {
  std::string out;
  for (const PrintkRecord& rec : Dmesg()) {
    out += LevelName(rec.level);
    out += ": ";
    out += rec.text;
    out += '\n';
  }
  return out;
}

bool PrintkRing::Contains(std::string_view needle) const {
  for (const PrintkRecord& rec : Dmesg()) {
    if (rec.text.find(needle) != std::string::npos) return true;
  }
  return false;
}

uint64_t PrintkRing::total_emitted() const {
  std::lock_guard<Spinlock> guard(lock_);
  return seq_;
}

void PrintkRing::Clear() {
  std::lock_guard<Spinlock> guard(lock_);
  ring_.clear();
}

}  // namespace kop::kernel
