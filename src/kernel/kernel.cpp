#include "kop/kernel/kernel.hpp"

#include <cassert>

#include "kop/trace/trace.hpp"

namespace kop::kernel {

Kernel::Kernel(const KernelConfig& config) : config_(config) {
  // Tracepoint timestamps come from this kernel's virtual clock. The
  // newest kernel wins when tests build several; records from a torn-down
  // kernel's epoch keep their old timestamps.
  trace::GlobalTracer().SetClock(&clock_);
  // Build the canonical memory map. These mappings cannot fail unless the
  // config is nonsensical (overlapping sizes), which is programmer error.
  Status status = mem_.MapRam("direct-map", kDirectMapBase, config_.ram_bytes);
  assert(status.ok());
  status = mem_.MapRam("kernel-text", kKernelTextBase,
                       config_.kernel_text_bytes, /*writable=*/false);
  assert(status.ok());
  status = mem_.MapRam("module-area", kModuleBase, config_.module_area_bytes);
  assert(status.ok());
  status = mem_.MapRam("user", config_.user_base, config_.user_bytes);
  assert(status.ok());
  (void)status;

  // The heap carves the direct map; the module area has its own arena.
  heap_ = std::make_unique<KmallocArena>(kDirectMapBase, config_.ram_bytes);
  module_area_ =
      std::make_unique<KmallocArena>(kModuleBase, config_.module_area_bytes);

  // Baseline kernel exports available to any module.
  status = symbols_.ExportFunction(
      "printk_str", [this](const std::vector<uint64_t>& args) -> uint64_t {
        if (args.empty()) return 0;
        // Read a NUL-terminated string (bounded) from simulated memory.
        std::string text;
        uint64_t addr = args[0];
        for (int i = 0; i < 512; ++i) {
          auto byte = mem_.Read8(addr + i);
          if (!byte.ok() || *byte == 0) break;
          text.push_back(static_cast<char>(*byte));
        }
        log_.Emit(KernLevel::kInfo, text);
        return 0;
      });
  assert(status.ok());
  status = symbols_.ExportFunction(
      "kmalloc", [this](const std::vector<uint64_t>& args) -> uint64_t {
        if (args.empty()) return 0;
        auto result = heap_->Kmalloc(args[0]);
        return result.ok() ? *result : 0;
      });
  assert(status.ok());
  status = symbols_.ExportFunction(
      "kfree", [this](const std::vector<uint64_t>& args) -> uint64_t {
        if (!args.empty()) (void)heap_->Kfree(args[0]);
        return 0;
      });
  assert(status.ok());
}

Kernel::~Kernel() {
  // Unhook the clock so later tracepoints (fired between kernels in
  // tests) don't read freed memory.
  if (trace::GlobalTracer().clock() == &clock_) {
    trace::GlobalTracer().SetClock(nullptr);
  }
}

void Kernel::Panic(const std::string& reason) {
  panicked_ = true;
  panic_reason_ = reason;
  KOP_TRACE(kPanic);
  log_.Emit(KernLevel::kEmerg, "Kernel panic - not syncing: " + reason);
  throw KernelPanic(reason);
}

}  // namespace kop::kernel
