#include "kop/kernel/module_loader.hpp"

#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "kop/trace/metrics.hpp"
#include "kop/trace/site.hpp"
#include "kop/trace/trace.hpp"
#include "kop/transform/guard_sites.hpp"
#include "kop/util/bits.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::kernel {
namespace {

/// Interpreter memory backed by the kernel address space, charging the
/// machine model's access costs. Guards are NOT implied here: in a
/// transformed module they are explicit call instructions in the IR.
class KernelMemory final : public kir::MemoryInterface {
 public:
  explicit KernelMemory(Kernel* kernel) : kernel_(kernel) {}

  Result<uint64_t> Load(uint64_t addr, uint32_t size) override {
    kernel_->clock().Advance(kernel_->machine().mem_read_cycles);
    switch (size) {
      case 1: {
        auto v = kernel_->mem().Read8(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      case 2: {
        auto v = kernel_->mem().Read16(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      case 4: {
        auto v = kernel_->mem().Read32(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      default:
        return kernel_->mem().Read64(addr);
    }
  }

  Status Store(uint64_t addr, uint64_t value, uint32_t size) override {
    kernel_->clock().Advance(kernel_->machine().mem_write_cycles);
    switch (size) {
      case 1: return kernel_->mem().Write8(addr, static_cast<uint8_t>(value));
      case 2: return kernel_->mem().Write16(addr,
                                            static_cast<uint16_t>(value));
      case 4: return kernel_->mem().Write32(addr,
                                            static_cast<uint32_t>(value));
      default: return kernel_->mem().Write64(addr, value);
    }
  }

 private:
  Kernel* kernel_;
};

/// Routes external calls to the exported-symbol table; provides benign
/// host fallbacks for the hardware intrinsics so un-wrapped intrinsics
/// still "execute" (the §5 wrap pass adds the permission check in front).
class KernelResolver final : public kir::ExternalResolver {
 public:
  /// `site_tokens` maps a module-wide call ordinal to the guard-site
  /// token registered for that ordinal's guard call (only guard calls
  /// appear in it).
  KernelResolver(Kernel* kernel,
                 std::unordered_map<uint64_t, uint64_t> site_tokens)
      : kernel_(kernel), site_tokens_(std::move(site_tokens)) {}

  Result<uint64_t> CallExternal(const std::string& name,
                                const std::vector<uint64_t>& args,
                                uint64_t call_ordinal) override {
    // Pin the guard-site context while a guard call is in flight — the
    // simulated analogue of the return address the guard runtime would
    // sample on real hardware.
    auto it = site_tokens_.find(call_ordinal);
    if (it != site_tokens_.end() &&
        (name == kCaratGuardSymbol || name == kCaratIntrinsicGuardSymbol)) {
      trace::ScopedGuardSite scope(it->second);
      return CallExternal(name, args);
    }
    return CallExternal(name, args);
  }

  Result<uint64_t> CallExternal(const std::string& name,
                                const std::vector<uint64_t>& args) override {
    if (kernel_->symbols().HasFunction(name)) {
      return kernel_->symbols().Call(name, args);
    }
    if (name.rfind("kir.", 0) == 0) {
      // Hardware intrinsics hit real (simulated) machine state, so a
      // permitted privileged operation has observable effects.
      if (name == "kir.rdmsr") {
        return kernel_->msrs().Read(args.empty() ? 0 : args[0]);
      }
      if (name == "kir.wrmsr") {
        if (args.size() >= 2) kernel_->msrs().Write(args[0], args[1]);
        return uint64_t{0};
      }
      if (name == "kir.inb") {
        return uint64_t{kernel_->ports().In(
            static_cast<uint16_t>(args.empty() ? 0 : args[0]))};
      }
      if (name == "kir.outb") {
        if (args.size() >= 2) {
          kernel_->ports().Out(static_cast<uint16_t>(args[0]),
                               static_cast<uint8_t>(args[1]));
        }
        return uint64_t{0};
      }
      if (name == "kir.cli") {
        kernel_->cpu().Cli();
        return uint64_t{0};
      }
      if (name == "kir.sti") {
        kernel_->cpu().Sti();
        return uint64_t{0};
      }
      if (name == "kir.hlt") {
        kernel_->cpu().Halt();
        return uint64_t{0};
      }
      return uint64_t{0};  // invlpg etc.: no modeled state
    }
    return NotFound("undefined kernel symbol: " + name);
  }

 private:
  Kernel* kernel_;
  std::unordered_map<uint64_t, uint64_t> site_tokens_;
};

}  // namespace

LoadedModule::~LoadedModule() {
  if (kernel_ == nullptr) return;
  for (uint64_t addr : allocations_) {
    (void)kernel_->module_area().Kfree(addr);
  }
}

Result<uint64_t> LoadedModule::Call(const std::string& function,
                                    const std::vector<uint64_t>& args) {
  if (quarantined_) {
    return PermissionDenied("module '" + name_ +
                            "' is quarantined: " + quarantine_reason_);
  }
  try {
    return interp_->Call(function, args);
  } catch (const GuardViolation& violation) {
    quarantined_ = true;
    KOP_TRACE(kModuleQuarantine, violation.addr, violation.size);
    trace::GlobalMetrics().GetCounter("loader.quarantines")->Add();
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "guard violation at 0x%llx (size %llu, flags %llu)",
                  static_cast<unsigned long long>(violation.addr),
                  static_cast<unsigned long long>(violation.size),
                  static_cast<unsigned long long>(violation.access_flags));
    quarantine_reason_ = buf;
    kernel_->log().Printk(
        KernLevel::kErr,
        "carat_kop: quarantined module '%s' after %s; the module was NOT "
        "ejected (it may hold locks)",
        name_.c_str(), buf);
    return PermissionDenied("module '" + name_ + "' quarantined: " + buf);
  }
}

Result<uint64_t> LoadedModule::GlobalAddress(const std::string& global) const {
  auto it = global_addresses_.find(global);
  if (it == global_addresses_.end()) {
    return NotFound("module " + name_ + " has no global @" + global);
  }
  return it->second;
}

Result<LoadedModule*> ModuleLoader::Insmod(const signing::SignedModule& image) {
  // 1. Signature + attestation + IR verification + guard re-check.
  auto validated = signing::ValidateSignedModule(image, keyring_);
  if (!validated.ok()) {
    kernel_->log().Printk(KernLevel::kErr, "insmod: rejected module: %s",
                          validated.status().ToString().c_str());
    return validated.status();
  }
  std::unique_ptr<kir::Module> ir = std::move(validated->module);
  const std::string name = ir->name();
  if (modules_.count(name)) {
    return AlreadyExists("module '" + name + "' already loaded");
  }

  // 2. Symbol resolution: every external must be exported by the kernel
  //    (the policy module's carat_guard chief among them) or be a known
  //    hardware intrinsic.
  for (const std::string& external : ir->ExternalFunctionNames()) {
    if (!kernel_->symbols().HasFunction(external) &&
        external.rfind("kir.", 0) != 0) {
      kernel_->log().Printk(KernLevel::kErr,
                            "insmod: %s: Unknown symbol %s", name.c_str(),
                            external.c_str());
      return BadModule("unknown symbol '" + external + "' needed by '" +
                       name + "'");
    }
  }

  auto loaded = std::unique_ptr<LoadedModule>(new LoadedModule());
  loaded->name_ = name;
  loaded->kernel_ = kernel_;
  loaded->attestation_ = validated->attestation;

  // 3. Lay out globals in the module area.
  for (const auto& global : ir->globals()) {
    auto addr = kernel_->module_area().Kmalloc(
        std::max<uint64_t>(global->size_bytes(), 8), 16);
    if (!addr.ok()) return addr.status();
    loaded->allocations_.push_back(*addr);
    loaded->global_addresses_[global->name()] = *addr;
    KOP_RETURN_IF_ERROR(
        kernel_->mem().Memset(*addr, 0, global->size_bytes()));
    if (!global->init_bytes().empty()) {
      KOP_RETURN_IF_ERROR(kernel_->mem().Write(*addr,
                                               global->init_bytes().data(),
                                               global->init_bytes().size()));
    }
  }

  // 4. Module text footprint + interpreter stack in the module area.
  //    (Text bytes are symbolic — the IR is the code — but the footprint
  //    is allocated so the memory map reflects a loaded module.)
  const uint64_t text_bytes =
      AlignUp(std::max<uint64_t>(ir->InstructionCount() * 8, 64), 64);
  auto text = kernel_->module_area().Kmalloc(text_bytes, 64);
  if (!text.ok()) return text.status();
  loaded->allocations_.push_back(*text);

  constexpr uint64_t kStackBytes = 64 * 1024;
  auto stack = kernel_->module_area().Kmalloc(kStackBytes, 64);
  if (!stack.ok()) return stack.status();
  loaded->allocations_.push_back(*stack);

  kir::InterpConfig config;
  config.stack_base = *stack;
  config.stack_size = kStackBytes;

  // 5. Register this module's guard sites for runtime attribution. The
  //    signed attestation carries the table; older records without one
  //    fall back to re-enumerating the (already verified) IR.
  std::vector<transform::GuardSite> sites = validated->attestation.sites;
  if (sites.empty()) sites = transform::EnumerateGuardSites(*ir);
  std::unordered_map<uint64_t, uint64_t> site_tokens;
  site_tokens.reserve(sites.size());
  loaded->site_tokens_.reserve(sites.size());
  for (const transform::GuardSite& site : sites) {
    trace::SiteInfo info;
    info.module_name = name;
    info.function = site.function;
    info.site_id = site.site_id;
    info.inst_index = site.inst_index;
    char detail[64];
    if (site.is_intrinsic) {
      std::snprintf(detail, sizeof(detail), "intrinsic id=%u",
                    site.access_flags);
    } else {
      std::snprintf(detail, sizeof(detail), "%s size=%u",
                    (site.access_flags & kGuardAccessWrite) ? "store" : "load",
                    site.access_size);
    }
    info.detail = detail;
    const uint64_t token = trace::GlobalSites().Register(std::move(info));
    site_tokens[site.call_ordinal] = token;
    loaded->site_tokens_.push_back(token);
  }

  loaded->memory_ = std::make_unique<KernelMemory>(kernel_);
  loaded->resolver_ =
      std::make_unique<KernelResolver>(kernel_, std::move(site_tokens));
  std::unordered_map<std::string, uint64_t> addresses(
      loaded->global_addresses_.begin(), loaded->global_addresses_.end());
  loaded->ir_ = std::move(ir);
  loaded->interp_ = std::make_unique<kir::Interpreter>(
      *loaded->ir_, *loaded->memory_, *loaded->resolver_,
      std::move(addresses), config);

  kernel_->log().Printk(
      KernLevel::kInfo,
      "insmod: loaded module '%s' (%zu instructions, %llu guards, key %s)",
      name.c_str(), loaded->ir_->InstructionCount(),
      static_cast<unsigned long long>(loaded->attestation_.guard_count),
      image.key_id.c_str());
  KOP_TRACE(kModuleLoad, loaded->ir_->InstructionCount(),
            loaded->attestation_.guard_count);
  trace::GlobalMetrics().GetCounter("loader.modules_loaded")->Add();

  LoadedModule* raw = loaded.get();
  modules_[name] = std::move(loaded);
  return raw;
}

Status ModuleLoader::Rmmod(const std::string& name) {
  auto it = modules_.find(name);
  if (it == modules_.end()) return NotFound("module '" + name + "' not loaded");
  modules_.erase(it);
  kernel_->log().Printk(KernLevel::kInfo, "rmmod: unloaded module '%s'",
                        name.c_str());
  return OkStatus();
}

LoadedModule* ModuleLoader::Find(const std::string& name) {
  auto it = modules_.find(name);
  return it == modules_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ModuleLoader::LoadedNames() const {
  std::vector<std::string> out;
  out.reserve(modules_.size());
  for (const auto& [name, module] : modules_) out.push_back(name);
  return out;
}

}  // namespace kop::kernel
