#include "kop/kernel/module_loader.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <thread>
#include <unordered_map>

#include "kop/analysis/static_verifier.hpp"
#include "kop/flight/postmortem.hpp"
#include "kop/kir/bytecode.hpp"
#include "kop/kir/intrinsics.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/trace/span.hpp"
#include "kop/trace/site.hpp"
#include "kop/trace/trace.hpp"
#include "kop/transform/guard_sites.hpp"
#include "kop/util/bits.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::kernel {
namespace {

/// Interpreter memory backed by the kernel address space, charging the
/// machine model's access costs. Guards are NOT implied here: in a
/// transformed module they are explicit call instructions in the IR.
class KernelMemory final : public kir::MemoryInterface {
 public:
  explicit KernelMemory(Kernel* kernel) : kernel_(kernel) {}

  Result<uint64_t> Load(uint64_t addr, uint32_t size) override {
    kernel_->clock().Advance(kernel_->machine().mem_read_cycles);
    switch (size) {
      case 1: {
        auto v = kernel_->mem().Read8(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      case 2: {
        auto v = kernel_->mem().Read16(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      case 4: {
        auto v = kernel_->mem().Read32(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      default:
        return kernel_->mem().Read64(addr);
    }
  }

  Status Store(uint64_t addr, uint64_t value, uint32_t size) override {
    kernel_->clock().Advance(kernel_->machine().mem_write_cycles);
    switch (size) {
      case 1: return kernel_->mem().Write8(addr, static_cast<uint8_t>(value));
      case 2: return kernel_->mem().Write16(addr,
                                            static_cast<uint16_t>(value));
      case 4: return kernel_->mem().Write32(addr,
                                            static_cast<uint32_t>(value));
      default: return kernel_->mem().Write64(addr, value);
    }
  }

 private:
  Kernel* kernel_;
};

/// Sentinel: a call ordinal with no registered guard-site token.
constexpr uint64_t kNoSiteToken = ~uint64_t{0};

/// Per-CPU interpreter/VM frame stack size (module area).
constexpr uint64_t kStackBytes = 64 * 1024;

/// Routes external calls to the exported-symbol table; provides benign
/// host fallbacks for the hardware intrinsics so un-wrapped intrinsics
/// still "execute" (the §5 wrap pass adds the permission check in front).
///
/// Two call paths exist. The name-keyed CallExternal path serves the
/// interpreter: per call, one guard-name compare (cheap; guard calls are
/// the only ones needing site attribution) and a symbol-table hash
/// lookup. The bound path serves the bytecode VM: BindExternal resolves a
/// name ONCE at engine construction — symbol-table closure pointer,
/// interned intrinsic id, or guard classification — and CallBound then
/// dispatches on an integer kind with no string in sight. Cached symbol
/// pointers revalidate against the symbol table's generation counter, so
/// unloading the policy module (which unexports carat_guard) is observed
/// exactly as on the name path.
///
/// The resolver also keeps the owning module's HeapLedger honest: calls
/// through the kernel's kmalloc/kfree exports are recorded so quarantine
/// and restart can reclaim whatever the module still owns.
class KernelResolver final : public kir::ExternalResolver {
 public:
  /// `site_tokens` maps a module-wide call ordinal to the guard-site
  /// token registered for that ordinal's guard call (only guard calls
  /// appear in it).
  /// `cfi_base` rebases the module's local CFI set ids into the policy
  /// engine's global table (RegisterCfiSets' return at insmod).
  KernelResolver(Kernel* kernel,
                 const std::unordered_map<uint64_t, uint64_t>& site_tokens,
                 HeapLedger* ledger, uint64_t cfi_base)
      : kernel_(kernel), ledger_(ledger), cfi_base_(cfi_base) {
    uint64_t max_ordinal = 0;
    for (const auto& [ordinal, token] : site_tokens) {
      max_ordinal = std::max(max_ordinal, ordinal);
    }
    if (!site_tokens.empty()) {
      site_token_by_ordinal_.assign(max_ordinal + 1, kNoSiteToken);
      for (const auto& [ordinal, token] : site_tokens) {
        site_token_by_ordinal_[ordinal] = token;
      }
    }
  }

  Result<uint64_t> CallExternal(const std::string& name,
                                const std::vector<uint64_t>& args,
                                uint64_t call_ordinal) override {
    // Only guard calls carry site attribution; check the (four) guard
    // names before touching the token table so every other external —
    // printk, netdev hooks, ... — pays nothing for this overload.
    if (name == kCaratCfiCheckSymbol && args.size() == 2) {
      // CFI checks additionally rebase their module-local set id into
      // the engine's global table before crossing the symbol boundary.
      const std::vector<uint64_t> rebased{args[0], args[1] + cfi_base_};
      const uint64_t token = TokenForOrdinal(call_ordinal);
      if (token != kNoSiteToken) {
        trace::ScopedGuardSite scope(token);
        return CallExternal(name, rebased);
      }
      return CallExternal(name, rebased);
    }
    if (name == kCaratGuardSymbol || name == kCaratGuardRangeSymbol ||
        name == kCaratIntrinsicGuardSymbol) {
      const uint64_t token = TokenForOrdinal(call_ordinal);
      if (token != kNoSiteToken) {
        // Pin the guard-site context while the guard call is in flight —
        // the simulated analogue of the return address the guard runtime
        // would sample on real hardware.
        trace::ScopedGuardSite scope(token);
        return CallExternal(name, args);
      }
    }
    return CallExternal(name, args);
  }

  Result<uint64_t> CallExternal(const std::string& name,
                                const std::vector<uint64_t>& args) override {
    if (const KernelFunction* fn = kernel_->symbols().FindFunction(name)) {
      const uint64_t ret = (*fn)(args);
      NoteHeapOp(name, args, ret);
      return ret;
    }
    if (kir::IsIntrinsicName(name)) {
      return CallIntrinsic(kir::IntrinsicFromName(name), args);
    }
    return NotFound("undefined kernel symbol: " + name);
  }

  std::optional<uint64_t> BindExternal(const std::string& name) override {
    Binding binding;
    binding.name = name;
    if (name == kCaratGuardSymbol || name == kCaratGuardRangeSymbol ||
        name == kCaratIntrinsicGuardSymbol) {
      binding.kind = Binding::Kind::kGuard;
    } else if (name == kCaratCfiCheckSymbol) {
      binding.kind = Binding::Kind::kCfi;
    } else if (kernel_->symbols().HasFunction(name)) {
      binding.kind = Binding::Kind::kSymbol;
      if (name == "kmalloc") binding.heap_op = Binding::HeapOp::kMalloc;
      if (name == "kfree") binding.heap_op = Binding::HeapOp::kFree;
    } else if (kir::IsIntrinsicName(name)) {
      binding.kind = Binding::Kind::kIntrinsic;
      binding.intrinsic = kir::IntrinsicFromName(name);
    } else {
      return std::nullopt;  // unknown symbol: name path reports NotFound
    }
    if (binding.kind != Binding::Kind::kIntrinsic) {
      binding.fn = kernel_->symbols().FindFunction(name);
      binding.generation = kernel_->symbols().generation();
    }
    bindings_.push_back(std::move(binding));
    return bindings_.size() - 1;
  }

  Result<uint64_t> CallBound(uint64_t handle,
                             const std::vector<uint64_t>& args,
                             uint64_t call_ordinal) override {
    Binding& binding = bindings_[handle];
    switch (binding.kind) {
      case Binding::Kind::kGuard: {
        KOP_ASSIGN_OR_RETURN(const KernelFunction* fn, Revalidate(binding));
        const uint64_t token = TokenForOrdinal(call_ordinal);
        if (token != kNoSiteToken) {
          trace::ScopedGuardSite scope(token);
          return (*fn)(args);
        }
        return (*fn)(args);
      }
      case Binding::Kind::kSymbol: {
        KOP_ASSIGN_OR_RETURN(const KernelFunction* fn, Revalidate(binding));
        const uint64_t ret = (*fn)(args);
        if (binding.heap_op != Binding::HeapOp::kNone && ledger_ != nullptr) {
          if (binding.heap_op == Binding::HeapOp::kMalloc) {
            ledger_->OnAlloc(ret);
          } else if (!args.empty()) {
            ledger_->OnFree(args[0]);
          }
        }
        return ret;
      }
      case Binding::Kind::kCfi: {
        KOP_ASSIGN_OR_RETURN(const KernelFunction* fn, Revalidate(binding));
        std::vector<uint64_t> rebased = args;
        if (rebased.size() >= 2) rebased[1] += cfi_base_;
        const uint64_t token = TokenForOrdinal(call_ordinal);
        if (token != kNoSiteToken) {
          trace::ScopedGuardSite scope(token);
          return (*fn)(rebased);
        }
        return (*fn)(rebased);
      }
      case Binding::Kind::kIntrinsic:
        return CallIntrinsic(binding.intrinsic, args);
    }
    return Internal("corrupt external binding");
  }

  // Inline-guard fast path: forward to whatever GuardFastOps the policy
  // module registered on the kernel. The provider is sampled once per
  // pin (calls on one resolver are single-threaded — the resolver is a
  // per-CPU slot), so a module removed mid-call cannot tear the pair.
  bool PinGuardFrame() override {
    if (pin_depth_ > 0) {
      ++pin_depth_;
      pinned_ops_->PinFrame();
      return true;
    }
    GuardFastOps* ops = kernel_->guard_fast_ops();
    if (ops == nullptr || !ops->PinFrame()) return false;
    pinned_ops_ = ops;
    pin_depth_ = 1;
    return true;
  }

  void UnpinGuardFrame() override {
    if (pin_depth_ == 0) return;
    pinned_ops_->UnpinFrame();
    if (--pin_depth_ == 0) pinned_ops_ = nullptr;
  }

  bool FastGuard(uint64_t addr, uint64_t size, uint64_t flags,
                 uint64_t call_ordinal) override {
    if (pinned_ops_ == nullptr) return false;
    const uint64_t token = TokenForOrdinal(call_ordinal);
    return pinned_ops_->FastGuard(addr, size, flags,
                                  token == kNoSiteToken ? 0 : token);
  }

  bool FastGuardRange(uint64_t addr, uint64_t size, uint64_t flags,
                      uint64_t elided, uint64_t call_ordinal) override {
    if (pinned_ops_ == nullptr) return false;
    const uint64_t token = TokenForOrdinal(call_ordinal);
    return pinned_ops_->FastGuardRange(addr, size, flags, elided,
                                       token == kNoSiteToken ? 0 : token);
  }

  bool FastCfiCheck(uint64_t target, uint64_t set_id,
                    uint64_t call_ordinal) override {
    if (pinned_ops_ == nullptr) return false;
    const uint64_t token = TokenForOrdinal(call_ordinal);
    return pinned_ops_->FastCfiCheck(target, set_id + cfi_base_,
                                     token == kNoSiteToken ? 0 : token);
  }

 private:
  struct Binding {
    enum class Kind : uint8_t { kSymbol, kGuard, kIntrinsic, kCfi };
    enum class HeapOp : uint8_t { kNone, kMalloc, kFree };
    Kind kind = Kind::kSymbol;
    HeapOp heap_op = HeapOp::kNone;
    kir::Intrinsic intrinsic = kir::Intrinsic::kNone;
    std::string name;
    const KernelFunction* fn = nullptr;
    uint64_t generation = 0;
  };

  void NoteHeapOp(const std::string& name, const std::vector<uint64_t>& args,
                  uint64_t ret) {
    if (ledger_ == nullptr) return;
    if (name == "kmalloc") {
      ledger_->OnAlloc(ret);
    } else if (name == "kfree" && !args.empty()) {
      ledger_->OnFree(args[0]);
    }
  }

  uint64_t TokenForOrdinal(uint64_t ordinal) const {
    return ordinal < site_token_by_ordinal_.size()
               ? site_token_by_ordinal_[ordinal]
               : kNoSiteToken;
  }

  /// The cached closure pointer, re-looked-up iff the export set changed
  /// since the bind (e.g. the policy module was unloaded).
  Result<const KernelFunction*> Revalidate(Binding& binding) {
    const uint64_t generation = kernel_->symbols().generation();
    if (binding.generation != generation) {
      binding.fn = kernel_->symbols().FindFunction(binding.name);
      binding.generation = generation;
    }
    if (binding.fn == nullptr) {
      return NotFound("undefined kernel symbol: " + binding.name);
    }
    return binding.fn;
  }

  /// Hardware intrinsics hit real (simulated) machine state, so a
  /// permitted privileged operation has observable effects.
  Result<uint64_t> CallIntrinsic(kir::Intrinsic intrinsic,
                                 const std::vector<uint64_t>& args) {
    switch (intrinsic) {
      case kir::Intrinsic::kRdmsr:
        return kernel_->msrs().Read(args.empty() ? 0 : args[0]);
      case kir::Intrinsic::kWrmsr:
        if (args.size() >= 2) kernel_->msrs().Write(args[0], args[1]);
        return uint64_t{0};
      case kir::Intrinsic::kInb:
        return uint64_t{kernel_->ports().In(
            static_cast<uint16_t>(args.empty() ? 0 : args[0]))};
      case kir::Intrinsic::kOutb:
        if (args.size() >= 2) {
          kernel_->ports().Out(static_cast<uint16_t>(args[0]),
                               static_cast<uint8_t>(args[1]));
        }
        return uint64_t{0};
      case kir::Intrinsic::kCli:
        kernel_->cpu().Cli();
        return uint64_t{0};
      case kir::Intrinsic::kSti:
        kernel_->cpu().Sti();
        return uint64_t{0};
      case kir::Intrinsic::kHlt:
        kernel_->cpu().Halt();
        return uint64_t{0};
      case kir::Intrinsic::kInvlpg:
      case kir::Intrinsic::kNone:
        return uint64_t{0};  // invlpg etc.: no modeled state
    }
    return uint64_t{0};
  }

  Kernel* kernel_;
  HeapLedger* ledger_;
  /// Module-local CFI set ids become engine-global by adding this.
  uint64_t cfi_base_;
  /// Guard-site token per module-wide call ordinal (kNoSiteToken for
  /// non-guard ordinals) — a flat array so the per-guard lookup on both
  /// call paths is one bounds check and one load.
  std::vector<uint64_t> site_token_by_ordinal_;
  std::vector<Binding> bindings_;
  /// Fast-path provider captured by the open pin (null when unpinned or
  /// no provider was registered), plus the pin's nesting depth.
  GuardFastOps* pinned_ops_ = nullptr;
  uint32_t pin_depth_ = 0;
};

}  // namespace

std::string_view ExecEngineName(ExecEngine engine) {
  switch (engine) {
    case ExecEngine::kInterp: return "interp";
    case ExecEngine::kBytecode: return "bytecode";
  }
  return "?";
}

ExecEngine DefaultExecEngine() {
  const char* env = std::getenv("KOP_ENGINE");
  if (env != nullptr && std::string_view(env) == "interp") {
    return ExecEngine::kInterp;
  }
  return ExecEngine::kBytecode;
}

std::string_view VerifyModeName(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::kAttest: return "attest";
    case VerifyMode::kStatic: return "static";
    case VerifyMode::kBoth: return "both";
  }
  return "?";
}

VerifyMode DefaultVerifyMode() {
  const char* env = std::getenv("KOP_VERIFY");
  if (env != nullptr) {
    const std::string_view mode(env);
    if (mode == "attest") return VerifyMode::kAttest;
    if (mode == "static") return VerifyMode::kStatic;
  }
  return VerifyMode::kBoth;
}

LoadedModule::~LoadedModule() {
  if (kernel_ == nullptr) return;
  UnexportSymbols();
  ReclaimHeapAllocations();
  for (uint64_t addr : allocations_) {
    (void)kernel_->module_area().Kfree(addr);
  }
}

Result<uint64_t> LoadedModule::Call(const std::string& function,
                                    const std::vector<uint64_t>& args) {
  CpuSlot& slot = MySlot();
  if (quarantined()) {
    return PermissionDenied("module '" + name_ +
                            "' is quarantined: " + quarantine_reason());
  }
  if (slot.call_depth == 0 && stop_requested_.load(std::memory_order_acquire)) {
    // Another CPU is draining in-flight calls to contain the module;
    // refuse to start a new one (a late starter would be aborted at its
    // first memory access anyway).
    return Interrupted("module '" + name_ +
                       "' call refused: containment in progress");
  }
  if (state() == resilience::ModuleState::kNeedsRestart &&
      slot.call_depth == 0) {
    // A prior containment left the module down; retry the restart (one
    // backoff-charged attempt) before letting this call through.
    KOP_RETURN_IF_ERROR(TryRestart());
  }

  if (slot.call_depth != 0) {
    // Re-entry via an exported module symbol: the outermost frame owns
    // the transaction; this frame just runs.
    ++slot.call_depth;
    try {
      auto result = slot.engine->Call(function, args);
      --slot.call_depth;
      return result;
    } catch (...) {
      --slot.call_depth;
      throw;
    }
  }

  // Outermost call: open the transaction and register as an occupant
  // (the containment drain counts occupants). The guard decrements on
  // every exit, including a KernelPanic thrown out of recovery.
  active_calls_.fetch_add(1, std::memory_order_acq_rel);
  struct ActiveGuard {
    std::atomic<uint32_t>* n;
    ~ActiveGuard() { n->fetch_sub(1, std::memory_order_acq_rel); }
  } active{&active_calls_};
  if (journaling_enabled_) slot.journaled->journal().Begin();
  heap_ledger_.BeginCall();
  // End-to-end latency of the outermost call, containment included (the
  // scope unwinds through every return and the KernelPanic rethrow).
  KOP_SPAN(kModuleCall);

  ++slot.call_depth;
  std::optional<Result<uint64_t>> outcome;
  std::optional<GuardViolation> violation;
  try {
    {
      KOP_SPAN(kEngineDispatch);
      outcome = slot.engine->Call(function, args);
    }
    --slot.call_depth;
  } catch (const GuardViolation& thrown) {
    --slot.call_depth;
    violation = thrown;  // contained below, outside the handler
  } catch (const KernelPanic& panic) {
    --slot.call_depth;
    // The machine is dead, but the transactional promise holds: the
    // half-finished call leaves no writes behind (post-mortem dumps of
    // kernel memory see call-entry state).
    RollbackJournal(slot, resilience::RollbackReason::kPanic);
    ReclaimCallAllocations();
    NoteEvent("panic");
    CapturePostmortem(slot, "panic", panic.what(), nullptr, "panic");
    throw;
  }

  if (violation.has_value()) {
    char buf[96];
    if (violation->is_cfi) {
      // CFI violations repurpose the fields: addr = rejected indirect-
      // call target, size = engine-global legal-target set id.
      std::snprintf(buf, sizeof(buf),
                    "cfi violation: indirect call to 0x%llx (set %llu)",
                    static_cast<unsigned long long>(violation->addr),
                    static_cast<unsigned long long>(violation->size));
    } else {
      std::snprintf(buf, sizeof(buf),
                    "guard violation at 0x%llx (size %llu, flags %llu)",
                    static_cast<unsigned long long>(violation->addr),
                    static_cast<unsigned long long>(violation->size),
                    static_cast<unsigned long long>(violation->access_flags));
    }
    std::string what = buf;
    if (violation->site != 0) {
      what += " from ";
      what += trace::GlobalSites().Label(violation->site);
    }
    return Contain(slot, resilience::RollbackReason::kGuardViolation, what,
                   &*violation);
  }
  Result<uint64_t> result = std::move(*outcome);
  if (!result.ok() && result.status().code() == ErrorCode::kTimeout) {
    // Watchdog expiry: the module lost its CPU mid-call. Unwind the
    // call's writes and hand the module to the recovery policy.
    KOP_TRACE(kModuleTimeout, slot.engine->stats().steps, watchdog_steps_);
    trace::GlobalMetrics().GetCounter("resilience.timeouts")->Add();
    return Contain(slot, resilience::RollbackReason::kTimeout,
                   result.status().message(), nullptr);
  }
  if (!result.ok() && result.status().code() == ErrorCode::kInterrupted) {
    // Aborted by a cross-CPU stop: another CPU owns the containment
    // incident. Unwind this CPU's transaction and report; the state
    // machine belongs to the winner.
    RollbackJournal(slot, resilience::RollbackReason::kFault);
    ReclaimCallAllocations();
    return Interrupted("module '" + name_ +
                       "' call aborted by cross-CPU containment");
  }
  // Success and plain oops-style errors both commit: a wild pointer is
  // a fault the module observes, not a containment event.
  if (journaling_enabled_) {
    KOP_SPAN(kJournalCommit);
    slot.journaled->journal().Commit();
  }
  return result;
}

Result<uint64_t> LoadedModule::Contain(CpuSlot& slot,
                                       resilience::RollbackReason reason,
                                       const std::string& what,
                                       const GuardViolation* violation) {
  // Every contained call unwinds its OWN transaction on its own CPU,
  // winner or loser — rollback is per-journal, never delegated.
  RollbackJournal(slot, reason);
  ReclaimCallAllocations();

  if (containing_.exchange(true, std::memory_order_acq_rel)) {
    // Another CPU already owns this incident's recovery; this call just
    // reports its containment. Exactly one winner per incident.
    return PermissionDenied("module '" + name_ + "' call contained (" + what +
                            "); recovery owned by another CPU");
  }

  // Winner: stop the module machine-wide. Every other in-flight call
  // aborts at its next memory access (kInterrupted through the journal
  // seam), rolls back on its own CPU, and drops out of active_calls_.
  // Recovery mutates shared state (heap, symbols, globals) only after
  // the drain, when this call is the module's sole occupant.
  struct ContainGuard {
    LoadedModule* m;
    ~ContainGuard() {
      m->stop_requested_.store(false, std::memory_order_release);
      m->containing_.store(false, std::memory_order_release);
    }
  } guard{this};
  stop_requested_.store(true, std::memory_order_release);
  while (active_calls_.load(std::memory_order_acquire) > 1) {
    std::this_thread::yield();
  }
  // stop_requested_ stays set through recovery — a call starting now
  // must refuse at the door until the state machine has settled (else a
  // second incident could elect a second winner mid-quarantine). The
  // restart path clears it itself: its re-init runs module code through
  // the stop-checking journal seam.

  // Sole occupant now: flight-record the incident before recovery
  // mutates anything, so the bundle sees the state the module died in.
  const char* incident =
      reason == resilience::RollbackReason::kTimeout ? "timeout"
      : (violation != nullptr && violation->is_cfi)  ? "cfi"
                                                     : "violation";
  const char* decision = "quarantine";
  switch (recovery_) {
    case resilience::RecoveryPolicy::kPanic: decision = "panic"; break;
    case resilience::RecoveryPolicy::kQuarantine: break;
    case resilience::RecoveryPolicy::kRestart: decision = "restart"; break;
  }
  NoteEvent(incident);
  CapturePostmortem(slot, incident, what, violation, decision);

  KOP_SPAN(kRecovery);
  switch (recovery_) {
    case resilience::RecoveryPolicy::kPanic:
      kernel_->Panic("carat_kop: module '" + name_ + "' contained after " +
                     what);  // throws KernelPanic
    case resilience::RecoveryPolicy::kQuarantine:
      Quarantine(what, violation);
      return PermissionDenied("module '" + name_ + "' quarantined: " + what);
    case resilience::RecoveryPolicy::kRestart: {
      {
        std::lock_guard<Spinlock> state_guard(state_lock_);
        quarantine_reason_ = what;
      }
      state_.store(resilience::ModuleState::kNeedsRestart,
                   std::memory_order_release);
      stop_requested_.store(false, std::memory_order_release);
      kernel_->log().Printk(
          KernLevel::kErr,
          "carat_kop: contained module '%s' after %s; scheduling restart",
          name_.c_str(), what.c_str());
      Status restarted = TryRestart();
      if (!restarted.ok()) return restarted;
      return PermissionDenied("module '" + name_ + "' call contained (" +
                              what + "); module restarted");
    }
  }
  return Internal("corrupt recovery policy");
}

Status LoadedModule::TryRestart() {
  CpuSlot& slot = MySlot();
  std::lock_guard<std::mutex> lock(restart_lock_);
  // Concurrent CPUs race here at call entry; whoever lost the lock may
  // find the module already back up (or quarantined meanwhile).
  const resilience::ModuleState current = state();
  if (current == resilience::ModuleState::kQuarantined) {
    return PermissionDenied("module '" + name_ +
                            "' is quarantined: " + quarantine_reason());
  }
  if (current != resilience::ModuleState::kNeedsRestart) return OkStatus();
  if (restart_attempts_.load(std::memory_order_acquire) >=
      backoff_.max_attempts) {
    const std::string what = "restart budget exhausted (" +
                             std::to_string(restart_attempts_.load()) +
                             " attempts); last containment: " +
                             quarantine_reason();
    CapturePostmortem(slot, "restart-exhausted", what, nullptr, "quarantine");
    Quarantine(what, nullptr);
    return PermissionDenied("module '" + name_ +
                            "' is quarantined: " + quarantine_reason());
  }
  const uint32_t attempt = ++restart_attempts_;
  // Simulated downtime: exponential backoff before the attempt runs.
  kernel_->clock().Advance(
      static_cast<double>(backoff_.CyclesFor(attempt)));

  // Teardown: reclaim runtime heap allocations and reset the globals to
  // their insmod-time image. The engine's counters restart with the
  // module (a restarted module gets a fresh lifetime step budget).
  ReclaimHeapAllocations();
  Status reset = ResetGlobals();
  if (!reset.ok()) {
    KOP_TRACE(kModuleRestart, attempt, 0);
    return reset;  // stays kNeedsRestart; next call retries
  }
  for (auto& s : slots_) s->engine->ResetStats();

  bool ok = true;
  std::string failure;
  if (!restart_entry_.empty()) {
    // Re-run init under its own journal transaction: a failing init must
    // not leave half-initialized state either.
    slot.journaled->journal().Begin();
    heap_ledger_.BeginCall();
    ++slot.call_depth;
    try {
      auto init = slot.engine->Call(restart_entry_, restart_args_);
      --slot.call_depth;
      if (init.ok()) {
        slot.journaled->journal().Commit();
      } else {
        ok = false;
        failure = init.status().ToString();
        RollbackJournal(slot, init.status().code() == ErrorCode::kTimeout
                                  ? resilience::RollbackReason::kTimeout
                                  : resilience::RollbackReason::kFault);
        ReclaimCallAllocations();
      }
    } catch (const GuardViolation& violation) {
      --slot.call_depth;
      ok = false;
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "guard violation at 0x%llx during init",
                    static_cast<unsigned long long>(violation.addr));
      failure = buf;
      RollbackJournal(slot, resilience::RollbackReason::kGuardViolation);
      ReclaimCallAllocations();
    } catch (const KernelPanic&) {
      --slot.call_depth;
      RollbackJournal(slot, resilience::RollbackReason::kPanic);
      ReclaimCallAllocations();
      throw;
    }
  }

  KOP_TRACE(kModuleRestart, attempt, ok ? 1 : 0);
  trace::GlobalMetrics()
      .GetCounter(ok ? "resilience.restarts" : "resilience.restart_failures")
      ->Add();
  NoteEvent(ok ? "restart" : "restart-failed");
  if (ok) {
    state_.store(resilience::ModuleState::kRestarted,
                 std::memory_order_release);
    ++restarts_completed_;
    kernel_->log().Printk(
        KernLevel::kInfo,
        "carat_kop: restarted module '%s' (attempt %u of %u)", name_.c_str(),
        attempt, backoff_.max_attempts);
    return OkStatus();
  }
  kernel_->log().Printk(
      KernLevel::kErr,
      "carat_kop: restart attempt %u of %u for module '%s' failed: %s",
      attempt, backoff_.max_attempts, name_.c_str(), failure.c_str());
  return PermissionDenied("module '" + name_ + "' restart attempt " +
                          std::to_string(attempt) + " failed: " + failure);
}

size_t LoadedModule::RollbackJournal(CpuSlot& slot,
                                     resilience::RollbackReason reason) {
  resilience::WriteJournal& journal = slot.journaled->journal();
  if (!journal.active()) return 0;
  const uint64_t bytes = journal.bytes();
  // Undo through the UN-journaled inner interface: the replay must not
  // journal itself or pass through fault hooks (and must not be aborted
  // by a pending cross-CPU stop — the inner interface has no stop flag).
  size_t undone = 0;
  {
    KOP_SPAN(kJournalRollback, bytes);
    undone = journal.Rollback(slot.journaled->inner());
  }
  KOP_TRACE(kModuleRollback, undone, bytes, static_cast<uint64_t>(reason));
  trace::GlobalMetrics().GetCounter("resilience.rollbacks")->Add();
  return undone;
}

void LoadedModule::ReclaimCallAllocations() {
  // Only the calling CPU's open-call allocations: a rollback on one CPU
  // must not free what a concurrent call on another CPU just allocated.
  std::vector<uint64_t> pending = heap_ledger_.TakeMyCallNew();
  for (uint64_t addr : pending) {
    (void)kernel_->heap().Kfree(addr);
    heap_ledger_.OnFree(addr);
  }
}

void LoadedModule::ReclaimHeapAllocations() {
  for (uint64_t addr : heap_ledger_.TakeAllLive()) {
    (void)kernel_->heap().Kfree(addr);
  }
}

void LoadedModule::UnexportSymbols() {
  for (const std::string& sym : exported_symbols_) {
    (void)kernel_->symbols().Unexport(sym);
  }
  exported_symbols_.clear();
}

Status LoadedModule::ResetGlobals() {
  for (const auto& global : ir_->globals()) {
    auto it = global_addresses_.find(global->name());
    if (it == global_addresses_.end()) continue;
    KOP_RETURN_IF_ERROR(
        kernel_->mem().Memset(it->second, 0, global->size_bytes()));
    if (!global->init_bytes().empty()) {
      KOP_RETURN_IF_ERROR(kernel_->mem().Write(it->second,
                                               global->init_bytes().data(),
                                               global->init_bytes().size()));
    }
  }
  return OkStatus();
}

void LoadedModule::NoteEvent(const char* reason) {
  last_event_tsc_.store(kernel_->clock().ReadTsc(),
                        std::memory_order_relaxed);
  last_event_reason_.store(reason, std::memory_order_release);
}

void LoadedModule::CapturePostmortem(CpuSlot& slot, const char* reason,
                                     const std::string& what,
                                     const GuardViolation* violation,
                                     const char* recovery) {
  flight::PostmortemBundle bundle;
  bundle.module = name_;
  bundle.engine = std::string(slot.engine->engine_name());
  bundle.reason = reason;
  bundle.what = what;
  bundle.recovery = recovery;
  bundle.cpu = smp::CurrentCpu();
  bundle.tsc = kernel_->clock().ReadTsc();
  if (violation != nullptr) {
    bundle.has_violation = true;
    bundle.violation_addr = violation->addr;
    bundle.violation_size = violation->size;
    bundle.violation_flags = static_cast<uint32_t>(violation->access_flags);
    bundle.site_token = violation->site;
    if (violation->site != 0) {
      bundle.site_label = trace::GlobalSites().Label(violation->site);
    }
  }
  bundle.vm = slot.engine->LastFaultState();
  const resilience::WriteJournal& journal = slot.journaled->journal();
  bundle.journal_rollbacks = journal.total_rollbacks();
  bundle.journal_entries_recorded = journal.total_entries_recorded();
  bundle.journal_entries_undone = journal.total_entries_undone();
  const std::vector<uint64_t> live = heap_ledger_.LiveSnapshot();
  bundle.heap_live_blocks = live.size();
  for (size_t i = 0; i < live.size() && i < 8; ++i) {
    bundle.heap_live_addrs.push_back(live[i]);
  }
  bundle.restart_attempts = restart_attempts_.load(std::memory_order_acquire);
  bundle.restarts_completed =
      restarts_completed_.load(std::memory_order_acquire);
  flight::FillEnvironment(&bundle);
  flight::GlobalPostmortems().Capture(std::move(bundle));
}

void LoadedModule::Quarantine(const std::string& reason,
                              const GuardViolation* violation) {
  NoteEvent("quarantine");
  {
    std::lock_guard<Spinlock> guard(state_lock_);
    quarantine_reason_ = reason;
  }
  state_.store(resilience::ModuleState::kQuarantined,
               std::memory_order_release);
  KOP_TRACE(kModuleQuarantine, violation != nullptr ? violation->addr : 0,
            violation != nullptr ? violation->size : 0,
            violation != nullptr ? violation->site : 0);
  trace::GlobalMetrics().GetCounter("loader.quarantines")->Add();
  // A quarantined module never runs again: reclaim what it would leak —
  // its runtime heap allocations and its exported symbols (a stale
  // symbol would let other code call into the quarantined module).
  ReclaimHeapAllocations();
  UnexportSymbols();
  kernel_->log().Printk(
      KernLevel::kErr,
      "carat_kop: quarantined module '%s' after %s; the module was NOT "
      "ejected (it may hold locks)",
      name_.c_str(), reason.c_str());
}

Status LoadedModule::PrepareCpus(uint32_t cpus) {
  if (cpus == 0) cpus = 1;
  if (cpus > smp::kMaxCpus) cpus = smp::kMaxCpus;
  while (slots_.size() < cpus) {
    auto slot = std::make_unique<CpuSlot>();
    slot->memory = std::make_unique<KernelMemory>(kernel_);
    Kernel* kernel = kernel_;
    slot->journaled = std::make_unique<resilience::JournaledMemory>(
        slot->memory.get(), [kernel](uint64_t addr, uint32_t size) {
          return kernel->mem().RawHostPointer(addr, size) != nullptr;
        });
    slot->journaled->SetStopFlag(&stop_requested_);
    slot->resolver = std::make_unique<KernelResolver>(kernel_, site_token_map_,
                                                      &heap_ledger_, cfi_base_);

    // Each CPU runs on its own frame stack; everything else the config
    // carries (watchdog budget) is shared policy.
    kir::InterpConfig config = base_config_;
    auto stack = kernel_->module_area().Kmalloc(kStackBytes, 64);
    if (!stack.ok()) return stack.status();
    allocations_.push_back(*stack);
    config.stack_base = *stack;
    config.stack_size = kStackBytes;
    config.watchdog_steps = watchdog_steps_;

    if (engine_kind_ == ExecEngine::kBytecode) {
      auto bytecode = kir::CompileToBytecode(*ir_);
      if (!bytecode.ok()) return bytecode.status();
      auto vm = kir::VM::Create(std::move(*bytecode), *slot->journaled,
                                *slot->resolver, address_map_, config);
      if (!vm.ok()) return vm.status();
      slot->engine = std::move(*vm);
    } else {
      slot->engine = std::make_unique<kir::Interpreter>(
          *ir_, *slot->journaled, *slot->resolver, address_map_, config);
    }
    slots_.push_back(std::move(slot));
  }
  return OkStatus();
}

Result<uint64_t> LoadedModule::GlobalAddress(const std::string& global) const {
  auto it = global_addresses_.find(global);
  if (it == global_addresses_.end()) {
    return NotFound("module " + name_ + " has no global @" + global);
  }
  return it->second;
}

Result<LoadedModule*> ModuleLoader::Insmod(const signing::SignedModule& image) {
  // 1. Signature + attestation + IR verification + guard re-check. Under
  //    KOP_VERIFY=static the attestation's guard claims are not trusted
  //    (nor required) — the static proof below is the sole authority.
  signing::ValidationOptions validation;
  validation.check_attested_guards = verify_mode_ != VerifyMode::kStatic;
  auto validated = signing::ValidateSignedModule(image, keyring_, validation);
  if (!validated.ok()) {
    kernel_->log().Printk(KernLevel::kErr, "insmod: rejected module: %s",
                          validated.status().ToString().c_str());
    return validated.status();
  }
  std::unique_ptr<kir::Module> ir = std::move(validated->module);
  const std::string name = ir->name();

  // 1b. Static guard-completeness proof over the IR actually received —
  //     a forged attestation cannot get an unguarded store past this.
  if (verify_mode_ != VerifyMode::kAttest) {
    const analysis::AnalysisReport report = analysis::AnalyzeModule(*ir);
    if (!report.ok()) {
      const auto first = std::find_if(
          report.diagnostics.begin(), report.diagnostics.end(),
          [](const analysis::Diagnostic& d) {
            return d.severity == analysis::Severity::kError;
          });
      KOP_TRACE(kModuleStaticReject, report.errors(), ir->InstructionCount());
      trace::GlobalMetrics().GetCounter("loader.static_reject")->Add();
      kernel_->log().Printk(
          KernLevel::kErr,
          "insmod: %s: static verifier rejected module (%zu error(s)); "
          "first: @%s block %s inst %u: %s",
          name.c_str(), report.errors(), first->function.c_str(),
          first->block.c_str(), first->inst_index, first->message.c_str());
      return PermissionDenied(
          "static verifier rejected module '" + name + "': @" +
          first->function + " block " + first->block + ": " + first->message);
    }
  }
  if (modules_.count(name)) {
    return AlreadyExists("module '" + name + "' already loaded");
  }

  // 2. Symbol resolution: every external must be exported by the kernel
  //    (the policy module's carat_guard chief among them) or be a known
  //    hardware intrinsic.
  for (const std::string& external : ir->ExternalFunctionNames()) {
    if (!kernel_->symbols().HasFunction(external) &&
        external.rfind("kir.", 0) != 0) {
      kernel_->log().Printk(KernLevel::kErr,
                            "insmod: %s: Unknown symbol %s", name.c_str(),
                            external.c_str());
      return BadModule("unknown symbol '" + external + "' needed by '" +
                       name + "'");
    }
  }

  auto loaded = std::unique_ptr<LoadedModule>(new LoadedModule());
  loaded->name_ = name;
  loaded->kernel_ = kernel_;
  loaded->attestation_ = validated->attestation;
  loaded->recovery_ = recovery_;
  loaded->backoff_ = backoff_;
  loaded->watchdog_steps_ = watchdog_steps_;

  // 3. Lay out globals in the module area.
  for (const auto& global : ir->globals()) {
    auto addr = kernel_->module_area().Kmalloc(
        std::max<uint64_t>(global->size_bytes(), 8), 16);
    if (!addr.ok()) return addr.status();
    loaded->allocations_.push_back(*addr);
    loaded->global_addresses_[global->name()] = *addr;
    KOP_RETURN_IF_ERROR(
        kernel_->mem().Memset(*addr, 0, global->size_bytes()));
    if (!global->init_bytes().empty()) {
      KOP_RETURN_IF_ERROR(kernel_->mem().Write(*addr,
                                               global->init_bytes().data(),
                                               global->init_bytes().size()));
    }
  }

  // 4. Module text footprint + interpreter stack in the module area.
  //    (Text bytes are symbolic — the IR is the code — but the footprint
  //    is allocated so the memory map reflects a loaded module.)
  const uint64_t text_bytes =
      AlignUp(std::max<uint64_t>(ir->InstructionCount() * 8, 64), 64);
  auto text = kernel_->module_area().Kmalloc(text_bytes, 64);
  if (!text.ok()) return text.status();
  loaded->allocations_.push_back(*text);

  auto stack = kernel_->module_area().Kmalloc(kStackBytes, 64);
  if (!stack.ok()) return stack.status();
  loaded->allocations_.push_back(*stack);

  kir::InterpConfig config;
  config.stack_base = *stack;
  config.stack_size = kStackBytes;
  config.watchdog_steps = watchdog_steps_;

  // 5. Register this module's guard sites for runtime attribution. The
  //    signed attestation carries the table; older records without one
  //    fall back to re-enumerating the (already verified) IR.
  std::vector<transform::GuardSite> sites = validated->attestation.sites;
  if (sites.empty()) sites = transform::EnumerateGuardSites(*ir);
  std::unordered_map<uint64_t, uint64_t> site_tokens;
  site_tokens.reserve(sites.size());
  loaded->site_tokens_.reserve(sites.size());
  for (const transform::GuardSite& site : sites) {
    trace::SiteInfo info;
    info.module_name = name;
    info.function = site.function;
    info.site_id = site.site_id;
    info.inst_index = site.inst_index;
    char detail[64];
    if (site.is_intrinsic) {
      std::snprintf(detail, sizeof(detail), "intrinsic id=%u",
                    site.access_flags);
    } else if (site.is_range) {
      std::snprintf(detail, sizeof(detail), "range %s span=%u elided=%u",
                    (site.access_flags & kGuardAccessWrite) ? "store" : "load",
                    site.access_size, site.elided);
    } else {
      std::snprintf(detail, sizeof(detail), "%s size=%u",
                    (site.access_flags & kGuardAccessWrite) ? "store" : "load",
                    site.access_size);
    }
    info.detail = detail;
    const uint64_t token = trace::GlobalSites().Register(std::move(info));
    site_tokens[site.call_ordinal] = token;
    loaded->site_tokens_.push_back(token);
  }

  // 5b. kop::cfi: register the attested legal-target sets with the policy
  //     engine's global table (through the same GuardFastOps seam the
  //     inline guards use) and a trace site per gated indirect-call site.
  //     Member names resolve to the simulated function addresses both
  //     engines compute for funcaddr — declaration index — so the runtime
  //     membership test and the static proof agree on values. Under
  //     KOP_VERIFY=static|both the validator has already re-derived this
  //     table from the shipped IR; a forged or widened one never gets
  //     here.
  uint64_t cfi_base = 0;
  if (validated->attestation.cfi_gated) {
    GuardFastOps* ops = kernel_->guard_fast_ops();
    if (ops != nullptr) {
      std::vector<std::vector<uint64_t>> sets;
      sets.reserve(validated->attestation.cfi_sets.size());
      for (const transform::CfiAttestedSet& set :
           validated->attestation.cfi_sets) {
        std::vector<uint64_t> addrs;
        addrs.reserve(set.members.size());
        for (const std::string& member : set.members) {
          const int index = ir->FunctionIndex(member);
          if (index < 0) {
            return BadModule("attested CFI target @" + member +
                             " is not a function of '" + name + "'");
          }
          addrs.push_back(
              kir::FunctionAddressForIndex(static_cast<size_t>(index)));
        }
        sets.push_back(std::move(addrs));
      }
      cfi_base = ops->RegisterCfiSets(sets);
    }
    for (size_t i = 0; i < validated->attestation.cfi_sites.size(); ++i) {
      const transform::CfiAttestedSite& site =
          validated->attestation.cfi_sites[i];
      if (site.check_ordinal < 0) continue;
      trace::SiteInfo info;
      info.module_name = name;
      info.function = site.function;
      info.site_id = static_cast<uint32_t>(i);
      info.inst_index = site.inst_index;
      char detail[64];
      std::snprintf(
          detail, sizeof(detail), "cfi set=%u targets=%zu", site.set_id,
          validated->attestation.cfi_sets[site.set_id].members.size());
      info.detail = detail;
      const uint64_t token = trace::GlobalSites().Register(std::move(info));
      site_tokens[static_cast<uint64_t>(site.check_ordinal)] = token;
    }
  }
  loaded->cfi_base_ = cfi_base;

  // 6. The memory stack both engines execute against: kernel-backed
  //    memory, wrapped in the resilience journal so every module call is
  //    a transaction (interpreter and VM journal identically — they
  //    share this seam). This becomes CPU slot 0 (the boot CPU);
  //    PrepareCpus stamps out more slots from the saved inputs.
  auto slot0 = std::make_unique<LoadedModule::CpuSlot>();
  slot0->memory = std::make_unique<KernelMemory>(kernel_);
  Kernel* kernel = kernel_;
  slot0->journaled = std::make_unique<resilience::JournaledMemory>(
      slot0->memory.get(), [kernel](uint64_t addr, uint32_t size) {
        return kernel->mem().RawHostPointer(addr, size) != nullptr;
      });
  slot0->journaled->SetStopFlag(&loaded->stop_requested_);
  slot0->resolver = std::make_unique<KernelResolver>(
      kernel_, site_tokens, &loaded->heap_ledger_, cfi_base);
  std::unordered_map<std::string, uint64_t> addresses(
      loaded->global_addresses_.begin(), loaded->global_addresses_.end());
  loaded->ir_ = std::move(ir);
  loaded->engine_kind_ = engine_;
  loaded->base_config_ = config;
  loaded->site_token_map_ = site_tokens;
  loaded->address_map_ = addresses;

  if (engine_ == ExecEngine::kBytecode) {
    auto bytecode = kir::CompileToBytecode(*loaded->ir_);
    if (!bytecode.ok()) {
      kernel_->log().Printk(KernLevel::kErr,
                            "insmod: %s: bytecode compile failed: %s",
                            name.c_str(),
                            bytecode.status().ToString().c_str());
      return bytecode.status();
    }
    // Lowering must preserve every guard site's attribution: the table
    // reconstructed from the bytecode has to equal the one enumerated
    // from the verified IR (which the attestation was checked against).
    const std::vector<transform::GuardSite> lowered =
        transform::EnumerateGuardSites(*bytecode);
    if (lowered != transform::EnumerateGuardSites(*loaded->ir_)) {
      return Internal("bytecode guard-site table diverges from IR for '" +
                      name + "'");
    }
    auto vm = kir::VM::Create(std::move(*bytecode), *slot0->journaled,
                              *slot0->resolver, addresses, config);
    if (!vm.ok()) return vm.status();
    slot0->engine = std::move(*vm);
  } else {
    slot0->engine = std::make_unique<kir::Interpreter>(
        *loaded->ir_, *slot0->journaled, *slot0->resolver,
        std::move(addresses), config);
  }
  loaded->slots_.push_back(std::move(slot0));

  // 7. Restart recovery re-runs @init after teardown when the module
  //    defines a zero-arg one (modules with parameterized inits register
  //    theirs through set_restart_entry).
  const kir::Function* init_fn = loaded->ir_->FindFunction("init");
  if (init_fn != nullptr && !init_fn->is_external() &&
      init_fn->arg_count() == 0) {
    loaded->restart_entry_ = "init";
  }

  // 8. EXPORT_SYMBOL: the module's entry points become kernel symbols
  //    ("<module>.<fn>") other subsystems and later modules can resolve.
  //    Quarantine (and rmmod) withdraws them — a stale export must not
  //    keep routing calls into a dead module.
  for (const auto& fn : loaded->ir_->functions()) {
    if (fn->is_external()) continue;
    const std::string sym = name + "." + fn->name();
    LoadedModule* raw_module = loaded.get();
    const std::string fn_name = fn->name();
    Status exported = kernel_->symbols().ExportFunction(
        sym,
        [raw_module, fn_name](const std::vector<uint64_t>& args) -> uint64_t {
          auto result = raw_module->Call(fn_name, args);
          return result.ok() ? *result : 0;
        });
    if (exported.ok()) loaded->exported_symbols_.push_back(sym);
  }

  kernel_->log().Printk(
      KernLevel::kInfo,
      "insmod: loaded module '%s' (%zu instructions, %llu guards, key %s, "
      "engine %s)",
      name.c_str(), loaded->ir_->InstructionCount(),
      static_cast<unsigned long long>(loaded->attestation_.guard_count),
      image.key_id.c_str(), ExecEngineName(engine_).data());
  KOP_TRACE(kModuleLoad, loaded->ir_->InstructionCount(),
            loaded->attestation_.guard_count);
  trace::GlobalMetrics().GetCounter("loader.modules_loaded")->Add();

  // CI smoke hook: KOP_SMP_CPUS=N stamps per-CPU execution contexts at
  // insmod so every existing test scenario runs with the SMP seam
  // active (calls still land on whatever CPU issues them; --cpus 1
  // determinism guarantees behavior is unchanged on CPU 0). A failure
  // here unwinds the module before it is registered.
  if (const char* env = std::getenv("KOP_SMP_CPUS")) {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    if (n > 1) {
      KOP_RETURN_IF_ERROR(loaded->PrepareCpus(
          static_cast<uint32_t>(n > smp::kMaxCpus ? smp::kMaxCpus : n)));
    }
  }

  LoadedModule* raw = loaded.get();
  modules_[name] = std::move(loaded);
  return raw;
}

Status ModuleLoader::Rmmod(const std::string& name) {
  auto it = modules_.find(name);
  if (it == modules_.end()) return NotFound("module '" + name + "' not loaded");
  modules_.erase(it);
  kernel_->log().Printk(KernLevel::kInfo, "rmmod: unloaded module '%s'",
                        name.c_str());
  return OkStatus();
}

Status ModuleLoader::PrepareCpus(uint32_t cpus) {
  for (auto& [name, module] : modules_) {
    KOP_RETURN_IF_ERROR(module->PrepareCpus(cpus));
  }
  return OkStatus();
}

LoadedModule* ModuleLoader::Find(const std::string& name) {
  auto it = modules_.find(name);
  return it == modules_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ModuleLoader::LoadedNames() const {
  std::vector<std::string> out;
  out.reserve(modules_.size());
  for (const auto& [name, module] : modules_) out.push_back(name);
  return out;
}

}  // namespace kop::kernel
