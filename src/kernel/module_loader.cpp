#include "kop/kernel/module_loader.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <unordered_map>

#include "kop/analysis/static_verifier.hpp"
#include "kop/kir/bytecode.hpp"
#include "kop/kir/intrinsics.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/trace/site.hpp"
#include "kop/trace/trace.hpp"
#include "kop/transform/guard_sites.hpp"
#include "kop/util/bits.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::kernel {
namespace {

/// Interpreter memory backed by the kernel address space, charging the
/// machine model's access costs. Guards are NOT implied here: in a
/// transformed module they are explicit call instructions in the IR.
class KernelMemory final : public kir::MemoryInterface {
 public:
  explicit KernelMemory(Kernel* kernel) : kernel_(kernel) {}

  Result<uint64_t> Load(uint64_t addr, uint32_t size) override {
    kernel_->clock().Advance(kernel_->machine().mem_read_cycles);
    switch (size) {
      case 1: {
        auto v = kernel_->mem().Read8(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      case 2: {
        auto v = kernel_->mem().Read16(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      case 4: {
        auto v = kernel_->mem().Read32(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      default:
        return kernel_->mem().Read64(addr);
    }
  }

  Status Store(uint64_t addr, uint64_t value, uint32_t size) override {
    kernel_->clock().Advance(kernel_->machine().mem_write_cycles);
    switch (size) {
      case 1: return kernel_->mem().Write8(addr, static_cast<uint8_t>(value));
      case 2: return kernel_->mem().Write16(addr,
                                            static_cast<uint16_t>(value));
      case 4: return kernel_->mem().Write32(addr,
                                            static_cast<uint32_t>(value));
      default: return kernel_->mem().Write64(addr, value);
    }
  }

 private:
  Kernel* kernel_;
};

/// Sentinel: a call ordinal with no registered guard-site token.
constexpr uint64_t kNoSiteToken = ~uint64_t{0};

/// Routes external calls to the exported-symbol table; provides benign
/// host fallbacks for the hardware intrinsics so un-wrapped intrinsics
/// still "execute" (the §5 wrap pass adds the permission check in front).
///
/// Two call paths exist. The name-keyed CallExternal path serves the
/// interpreter: per call, one guard-name compare (cheap; guard calls are
/// the only ones needing site attribution) and a symbol-table hash
/// lookup. The bound path serves the bytecode VM: BindExternal resolves a
/// name ONCE at engine construction — symbol-table closure pointer,
/// interned intrinsic id, or guard classification — and CallBound then
/// dispatches on an integer kind with no string in sight. Cached symbol
/// pointers revalidate against the symbol table's generation counter, so
/// unloading the policy module (which unexports carat_guard) is observed
/// exactly as on the name path.
///
/// The resolver also keeps the owning module's HeapLedger honest: calls
/// through the kernel's kmalloc/kfree exports are recorded so quarantine
/// and restart can reclaim whatever the module still owns.
class KernelResolver final : public kir::ExternalResolver {
 public:
  /// `site_tokens` maps a module-wide call ordinal to the guard-site
  /// token registered for that ordinal's guard call (only guard calls
  /// appear in it).
  KernelResolver(Kernel* kernel,
                 const std::unordered_map<uint64_t, uint64_t>& site_tokens,
                 HeapLedger* ledger)
      : kernel_(kernel), ledger_(ledger) {
    uint64_t max_ordinal = 0;
    for (const auto& [ordinal, token] : site_tokens) {
      max_ordinal = std::max(max_ordinal, ordinal);
    }
    if (!site_tokens.empty()) {
      site_token_by_ordinal_.assign(max_ordinal + 1, kNoSiteToken);
      for (const auto& [ordinal, token] : site_tokens) {
        site_token_by_ordinal_[ordinal] = token;
      }
    }
  }

  Result<uint64_t> CallExternal(const std::string& name,
                                const std::vector<uint64_t>& args,
                                uint64_t call_ordinal) override {
    // Only guard calls carry site attribution; check the (two) guard
    // names before touching the token table so every other external —
    // printk, netdev hooks, ... — pays nothing for this overload.
    if (name == kCaratGuardSymbol || name == kCaratIntrinsicGuardSymbol) {
      const uint64_t token = TokenForOrdinal(call_ordinal);
      if (token != kNoSiteToken) {
        // Pin the guard-site context while the guard call is in flight —
        // the simulated analogue of the return address the guard runtime
        // would sample on real hardware.
        trace::ScopedGuardSite scope(token);
        return CallExternal(name, args);
      }
    }
    return CallExternal(name, args);
  }

  Result<uint64_t> CallExternal(const std::string& name,
                                const std::vector<uint64_t>& args) override {
    if (const KernelFunction* fn = kernel_->symbols().FindFunction(name)) {
      const uint64_t ret = (*fn)(args);
      NoteHeapOp(name, args, ret);
      return ret;
    }
    if (kir::IsIntrinsicName(name)) {
      return CallIntrinsic(kir::IntrinsicFromName(name), args);
    }
    return NotFound("undefined kernel symbol: " + name);
  }

  std::optional<uint64_t> BindExternal(const std::string& name) override {
    Binding binding;
    binding.name = name;
    if (name == kCaratGuardSymbol || name == kCaratIntrinsicGuardSymbol) {
      binding.kind = Binding::Kind::kGuard;
    } else if (kernel_->symbols().HasFunction(name)) {
      binding.kind = Binding::Kind::kSymbol;
      if (name == "kmalloc") binding.heap_op = Binding::HeapOp::kMalloc;
      if (name == "kfree") binding.heap_op = Binding::HeapOp::kFree;
    } else if (kir::IsIntrinsicName(name)) {
      binding.kind = Binding::Kind::kIntrinsic;
      binding.intrinsic = kir::IntrinsicFromName(name);
    } else {
      return std::nullopt;  // unknown symbol: name path reports NotFound
    }
    if (binding.kind != Binding::Kind::kIntrinsic) {
      binding.fn = kernel_->symbols().FindFunction(name);
      binding.generation = kernel_->symbols().generation();
    }
    bindings_.push_back(std::move(binding));
    return bindings_.size() - 1;
  }

  Result<uint64_t> CallBound(uint64_t handle,
                             const std::vector<uint64_t>& args,
                             uint64_t call_ordinal) override {
    Binding& binding = bindings_[handle];
    switch (binding.kind) {
      case Binding::Kind::kGuard: {
        KOP_ASSIGN_OR_RETURN(const KernelFunction* fn, Revalidate(binding));
        const uint64_t token = TokenForOrdinal(call_ordinal);
        if (token != kNoSiteToken) {
          trace::ScopedGuardSite scope(token);
          return (*fn)(args);
        }
        return (*fn)(args);
      }
      case Binding::Kind::kSymbol: {
        KOP_ASSIGN_OR_RETURN(const KernelFunction* fn, Revalidate(binding));
        const uint64_t ret = (*fn)(args);
        if (binding.heap_op != Binding::HeapOp::kNone && ledger_ != nullptr) {
          if (binding.heap_op == Binding::HeapOp::kMalloc) {
            ledger_->OnAlloc(ret);
          } else if (!args.empty()) {
            ledger_->OnFree(args[0]);
          }
        }
        return ret;
      }
      case Binding::Kind::kIntrinsic:
        return CallIntrinsic(binding.intrinsic, args);
    }
    return Internal("corrupt external binding");
  }

 private:
  struct Binding {
    enum class Kind : uint8_t { kSymbol, kGuard, kIntrinsic };
    enum class HeapOp : uint8_t { kNone, kMalloc, kFree };
    Kind kind = Kind::kSymbol;
    HeapOp heap_op = HeapOp::kNone;
    kir::Intrinsic intrinsic = kir::Intrinsic::kNone;
    std::string name;
    const KernelFunction* fn = nullptr;
    uint64_t generation = 0;
  };

  void NoteHeapOp(const std::string& name, const std::vector<uint64_t>& args,
                  uint64_t ret) {
    if (ledger_ == nullptr) return;
    if (name == "kmalloc") {
      ledger_->OnAlloc(ret);
    } else if (name == "kfree" && !args.empty()) {
      ledger_->OnFree(args[0]);
    }
  }

  uint64_t TokenForOrdinal(uint64_t ordinal) const {
    return ordinal < site_token_by_ordinal_.size()
               ? site_token_by_ordinal_[ordinal]
               : kNoSiteToken;
  }

  /// The cached closure pointer, re-looked-up iff the export set changed
  /// since the bind (e.g. the policy module was unloaded).
  Result<const KernelFunction*> Revalidate(Binding& binding) {
    const uint64_t generation = kernel_->symbols().generation();
    if (binding.generation != generation) {
      binding.fn = kernel_->symbols().FindFunction(binding.name);
      binding.generation = generation;
    }
    if (binding.fn == nullptr) {
      return NotFound("undefined kernel symbol: " + binding.name);
    }
    return binding.fn;
  }

  /// Hardware intrinsics hit real (simulated) machine state, so a
  /// permitted privileged operation has observable effects.
  Result<uint64_t> CallIntrinsic(kir::Intrinsic intrinsic,
                                 const std::vector<uint64_t>& args) {
    switch (intrinsic) {
      case kir::Intrinsic::kRdmsr:
        return kernel_->msrs().Read(args.empty() ? 0 : args[0]);
      case kir::Intrinsic::kWrmsr:
        if (args.size() >= 2) kernel_->msrs().Write(args[0], args[1]);
        return uint64_t{0};
      case kir::Intrinsic::kInb:
        return uint64_t{kernel_->ports().In(
            static_cast<uint16_t>(args.empty() ? 0 : args[0]))};
      case kir::Intrinsic::kOutb:
        if (args.size() >= 2) {
          kernel_->ports().Out(static_cast<uint16_t>(args[0]),
                               static_cast<uint8_t>(args[1]));
        }
        return uint64_t{0};
      case kir::Intrinsic::kCli:
        kernel_->cpu().Cli();
        return uint64_t{0};
      case kir::Intrinsic::kSti:
        kernel_->cpu().Sti();
        return uint64_t{0};
      case kir::Intrinsic::kHlt:
        kernel_->cpu().Halt();
        return uint64_t{0};
      case kir::Intrinsic::kInvlpg:
      case kir::Intrinsic::kNone:
        return uint64_t{0};  // invlpg etc.: no modeled state
    }
    return uint64_t{0};
  }

  Kernel* kernel_;
  HeapLedger* ledger_;
  /// Guard-site token per module-wide call ordinal (kNoSiteToken for
  /// non-guard ordinals) — a flat array so the per-guard lookup on both
  /// call paths is one bounds check and one load.
  std::vector<uint64_t> site_token_by_ordinal_;
  std::vector<Binding> bindings_;
};

}  // namespace

std::string_view ExecEngineName(ExecEngine engine) {
  switch (engine) {
    case ExecEngine::kInterp: return "interp";
    case ExecEngine::kBytecode: return "bytecode";
  }
  return "?";
}

ExecEngine DefaultExecEngine() {
  const char* env = std::getenv("KOP_ENGINE");
  if (env != nullptr && std::string_view(env) == "interp") {
    return ExecEngine::kInterp;
  }
  return ExecEngine::kBytecode;
}

std::string_view VerifyModeName(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::kAttest: return "attest";
    case VerifyMode::kStatic: return "static";
    case VerifyMode::kBoth: return "both";
  }
  return "?";
}

VerifyMode DefaultVerifyMode() {
  const char* env = std::getenv("KOP_VERIFY");
  if (env != nullptr) {
    const std::string_view mode(env);
    if (mode == "attest") return VerifyMode::kAttest;
    if (mode == "static") return VerifyMode::kStatic;
  }
  return VerifyMode::kBoth;
}

LoadedModule::~LoadedModule() {
  if (kernel_ == nullptr) return;
  UnexportSymbols();
  ReclaimHeapAllocations();
  for (uint64_t addr : allocations_) {
    (void)kernel_->module_area().Kfree(addr);
  }
}

Result<uint64_t> LoadedModule::Call(const std::string& function,
                                    const std::vector<uint64_t>& args) {
  if (state_ == resilience::ModuleState::kQuarantined) {
    return PermissionDenied("module '" + name_ +
                            "' is quarantined: " + quarantine_reason_);
  }
  if (state_ == resilience::ModuleState::kNeedsRestart && call_depth_ == 0) {
    // A prior containment left the module down; retry the restart (one
    // backoff-charged attempt) before letting this call through.
    KOP_RETURN_IF_ERROR(TryRestart());
  }

  const bool outermost = call_depth_ == 0;
  if (outermost) {
    if (journaling_enabled_) journaled_->journal().Begin();
    heap_ledger_.call_new.clear();
  }
  ++call_depth_;
  try {
    auto result = engine_->Call(function, args);
    --call_depth_;
    if (!outermost) return result;
    if (!result.ok() && result.status().code() == ErrorCode::kTimeout) {
      // Watchdog expiry: the module lost its CPU mid-call. Unwind the
      // call's writes and hand the module to the recovery policy.
      KOP_TRACE(kModuleTimeout, engine_->stats().steps, watchdog_steps_);
      trace::GlobalMetrics().GetCounter("resilience.timeouts")->Add();
      return Contain(resilience::RollbackReason::kTimeout,
                     result.status().message(), nullptr);
    }
    // Success and plain oops-style errors both commit: a wild pointer is
    // a fault the module observes, not a containment event.
    if (journaling_enabled_) journaled_->journal().Commit();
    return result;
  } catch (const GuardViolation& violation) {
    --call_depth_;
    if (!outermost) throw;  // the outermost frame owns the transaction
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "guard violation at 0x%llx (size %llu, flags %llu)",
                  static_cast<unsigned long long>(violation.addr),
                  static_cast<unsigned long long>(violation.size),
                  static_cast<unsigned long long>(violation.access_flags));
    std::string what = buf;
    if (violation.site != 0) {
      what += " from ";
      what += trace::GlobalSites().Label(violation.site);
    }
    return Contain(resilience::RollbackReason::kGuardViolation, what,
                   &violation);
  } catch (const KernelPanic&) {
    --call_depth_;
    if (call_depth_ == 0) {
      // The machine is dead, but the transactional promise holds: the
      // half-finished call leaves no writes behind (post-mortem dumps of
      // kernel memory see call-entry state).
      RollbackJournal(resilience::RollbackReason::kPanic);
      ReclaimCallAllocations();
    }
    throw;
  }
}

Result<uint64_t> LoadedModule::Contain(resilience::RollbackReason reason,
                                       const std::string& what,
                                       const GuardViolation* violation) {
  RollbackJournal(reason);
  ReclaimCallAllocations();

  switch (recovery_) {
    case resilience::RecoveryPolicy::kPanic:
      kernel_->Panic("carat_kop: module '" + name_ + "' contained after " +
                     what);  // throws KernelPanic
    case resilience::RecoveryPolicy::kQuarantine:
      Quarantine(what, violation);
      return PermissionDenied("module '" + name_ + "' quarantined: " + what);
    case resilience::RecoveryPolicy::kRestart: {
      quarantine_reason_ = what;
      state_ = resilience::ModuleState::kNeedsRestart;
      kernel_->log().Printk(
          KernLevel::kErr,
          "carat_kop: contained module '%s' after %s; scheduling restart",
          name_.c_str(), what.c_str());
      Status restarted = TryRestart();
      if (!restarted.ok()) return restarted;
      return PermissionDenied("module '" + name_ + "' call contained (" +
                              what + "); module restarted");
    }
  }
  return Internal("corrupt recovery policy");
}

Status LoadedModule::TryRestart() {
  if (restart_attempts_ >= backoff_.max_attempts) {
    Quarantine("restart budget exhausted (" +
                   std::to_string(restart_attempts_) +
                   " attempts); last containment: " + quarantine_reason_,
               nullptr);
    return PermissionDenied("module '" + name_ +
                            "' is quarantined: " + quarantine_reason_);
  }
  const uint32_t attempt = ++restart_attempts_;
  // Simulated downtime: exponential backoff before the attempt runs.
  kernel_->clock().Advance(
      static_cast<double>(backoff_.CyclesFor(attempt)));

  // Teardown: reclaim runtime heap allocations and reset the globals to
  // their insmod-time image. The engine's counters restart with the
  // module (a restarted module gets a fresh lifetime step budget).
  ReclaimHeapAllocations();
  Status reset = ResetGlobals();
  if (!reset.ok()) {
    KOP_TRACE(kModuleRestart, attempt, 0);
    return reset;  // stays kNeedsRestart; next call retries
  }
  engine_->ResetStats();

  bool ok = true;
  std::string failure;
  if (!restart_entry_.empty()) {
    // Re-run init under its own journal transaction: a failing init must
    // not leave half-initialized state either.
    journaled_->journal().Begin();
    heap_ledger_.call_new.clear();
    ++call_depth_;
    try {
      auto init = engine_->Call(restart_entry_, restart_args_);
      --call_depth_;
      if (init.ok()) {
        journaled_->journal().Commit();
      } else {
        ok = false;
        failure = init.status().ToString();
        RollbackJournal(init.status().code() == ErrorCode::kTimeout
                            ? resilience::RollbackReason::kTimeout
                            : resilience::RollbackReason::kFault);
        ReclaimCallAllocations();
      }
    } catch (const GuardViolation& violation) {
      --call_depth_;
      ok = false;
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "guard violation at 0x%llx during init",
                    static_cast<unsigned long long>(violation.addr));
      failure = buf;
      RollbackJournal(resilience::RollbackReason::kGuardViolation);
      ReclaimCallAllocations();
    } catch (const KernelPanic&) {
      --call_depth_;
      RollbackJournal(resilience::RollbackReason::kPanic);
      ReclaimCallAllocations();
      throw;
    }
  }

  KOP_TRACE(kModuleRestart, attempt, ok ? 1 : 0);
  trace::GlobalMetrics()
      .GetCounter(ok ? "resilience.restarts" : "resilience.restart_failures")
      ->Add();
  if (ok) {
    state_ = resilience::ModuleState::kRestarted;
    ++restarts_completed_;
    kernel_->log().Printk(
        KernLevel::kInfo,
        "carat_kop: restarted module '%s' (attempt %u of %u)", name_.c_str(),
        attempt, backoff_.max_attempts);
    return OkStatus();
  }
  kernel_->log().Printk(
      KernLevel::kErr,
      "carat_kop: restart attempt %u of %u for module '%s' failed: %s",
      attempt, backoff_.max_attempts, name_.c_str(), failure.c_str());
  return PermissionDenied("module '" + name_ + "' restart attempt " +
                          std::to_string(attempt) + " failed: " + failure);
}

size_t LoadedModule::RollbackJournal(resilience::RollbackReason reason) {
  resilience::WriteJournal& journal = journaled_->journal();
  if (!journal.active()) return 0;
  const uint64_t bytes = journal.bytes();
  // Undo through the UN-journaled inner interface: the replay must not
  // journal itself or pass through fault hooks.
  const size_t undone = journal.Rollback(journaled_->inner());
  KOP_TRACE(kModuleRollback, undone, bytes, static_cast<uint64_t>(reason));
  trace::GlobalMetrics().GetCounter("resilience.rollbacks")->Add();
  return undone;
}

void LoadedModule::ReclaimCallAllocations() {
  std::vector<uint64_t> pending = std::move(heap_ledger_.call_new);
  heap_ledger_.call_new.clear();
  for (uint64_t addr : pending) {
    (void)kernel_->heap().Kfree(addr);
    heap_ledger_.OnFree(addr);
  }
}

void LoadedModule::ReclaimHeapAllocations() {
  for (uint64_t addr : heap_ledger_.live) {
    (void)kernel_->heap().Kfree(addr);
  }
  heap_ledger_.live.clear();
  heap_ledger_.call_new.clear();
}

void LoadedModule::UnexportSymbols() {
  for (const std::string& sym : exported_symbols_) {
    (void)kernel_->symbols().Unexport(sym);
  }
  exported_symbols_.clear();
}

Status LoadedModule::ResetGlobals() {
  for (const auto& global : ir_->globals()) {
    auto it = global_addresses_.find(global->name());
    if (it == global_addresses_.end()) continue;
    KOP_RETURN_IF_ERROR(
        kernel_->mem().Memset(it->second, 0, global->size_bytes()));
    if (!global->init_bytes().empty()) {
      KOP_RETURN_IF_ERROR(kernel_->mem().Write(it->second,
                                               global->init_bytes().data(),
                                               global->init_bytes().size()));
    }
  }
  return OkStatus();
}

void LoadedModule::Quarantine(const std::string& reason,
                              const GuardViolation* violation) {
  state_ = resilience::ModuleState::kQuarantined;
  quarantine_reason_ = reason;
  KOP_TRACE(kModuleQuarantine, violation != nullptr ? violation->addr : 0,
            violation != nullptr ? violation->size : 0,
            violation != nullptr ? violation->site : 0);
  trace::GlobalMetrics().GetCounter("loader.quarantines")->Add();
  // A quarantined module never runs again: reclaim what it would leak —
  // its runtime heap allocations and its exported symbols (a stale
  // symbol would let other code call into the quarantined module).
  ReclaimHeapAllocations();
  UnexportSymbols();
  kernel_->log().Printk(
      KernLevel::kErr,
      "carat_kop: quarantined module '%s' after %s; the module was NOT "
      "ejected (it may hold locks)",
      name_.c_str(), reason.c_str());
}

Result<uint64_t> LoadedModule::GlobalAddress(const std::string& global) const {
  auto it = global_addresses_.find(global);
  if (it == global_addresses_.end()) {
    return NotFound("module " + name_ + " has no global @" + global);
  }
  return it->second;
}

Result<LoadedModule*> ModuleLoader::Insmod(const signing::SignedModule& image) {
  // 1. Signature + attestation + IR verification + guard re-check. Under
  //    KOP_VERIFY=static the attestation's guard claims are not trusted
  //    (nor required) — the static proof below is the sole authority.
  signing::ValidationOptions validation;
  validation.check_attested_guards = verify_mode_ != VerifyMode::kStatic;
  auto validated = signing::ValidateSignedModule(image, keyring_, validation);
  if (!validated.ok()) {
    kernel_->log().Printk(KernLevel::kErr, "insmod: rejected module: %s",
                          validated.status().ToString().c_str());
    return validated.status();
  }
  std::unique_ptr<kir::Module> ir = std::move(validated->module);
  const std::string name = ir->name();

  // 1b. Static guard-completeness proof over the IR actually received —
  //     a forged attestation cannot get an unguarded store past this.
  if (verify_mode_ != VerifyMode::kAttest) {
    const analysis::AnalysisReport report = analysis::AnalyzeModule(*ir);
    if (!report.ok()) {
      const auto first = std::find_if(
          report.diagnostics.begin(), report.diagnostics.end(),
          [](const analysis::Diagnostic& d) {
            return d.severity == analysis::Severity::kError;
          });
      KOP_TRACE(kModuleStaticReject, report.errors(), ir->InstructionCount());
      trace::GlobalMetrics().GetCounter("loader.static_reject")->Add();
      kernel_->log().Printk(
          KernLevel::kErr,
          "insmod: %s: static verifier rejected module (%zu error(s)); "
          "first: @%s block %s inst %u: %s",
          name.c_str(), report.errors(), first->function.c_str(),
          first->block.c_str(), first->inst_index, first->message.c_str());
      return PermissionDenied(
          "static verifier rejected module '" + name + "': @" +
          first->function + " block " + first->block + ": " + first->message);
    }
  }
  if (modules_.count(name)) {
    return AlreadyExists("module '" + name + "' already loaded");
  }

  // 2. Symbol resolution: every external must be exported by the kernel
  //    (the policy module's carat_guard chief among them) or be a known
  //    hardware intrinsic.
  for (const std::string& external : ir->ExternalFunctionNames()) {
    if (!kernel_->symbols().HasFunction(external) &&
        external.rfind("kir.", 0) != 0) {
      kernel_->log().Printk(KernLevel::kErr,
                            "insmod: %s: Unknown symbol %s", name.c_str(),
                            external.c_str());
      return BadModule("unknown symbol '" + external + "' needed by '" +
                       name + "'");
    }
  }

  auto loaded = std::unique_ptr<LoadedModule>(new LoadedModule());
  loaded->name_ = name;
  loaded->kernel_ = kernel_;
  loaded->attestation_ = validated->attestation;
  loaded->recovery_ = recovery_;
  loaded->backoff_ = backoff_;
  loaded->watchdog_steps_ = watchdog_steps_;

  // 3. Lay out globals in the module area.
  for (const auto& global : ir->globals()) {
    auto addr = kernel_->module_area().Kmalloc(
        std::max<uint64_t>(global->size_bytes(), 8), 16);
    if (!addr.ok()) return addr.status();
    loaded->allocations_.push_back(*addr);
    loaded->global_addresses_[global->name()] = *addr;
    KOP_RETURN_IF_ERROR(
        kernel_->mem().Memset(*addr, 0, global->size_bytes()));
    if (!global->init_bytes().empty()) {
      KOP_RETURN_IF_ERROR(kernel_->mem().Write(*addr,
                                               global->init_bytes().data(),
                                               global->init_bytes().size()));
    }
  }

  // 4. Module text footprint + interpreter stack in the module area.
  //    (Text bytes are symbolic — the IR is the code — but the footprint
  //    is allocated so the memory map reflects a loaded module.)
  const uint64_t text_bytes =
      AlignUp(std::max<uint64_t>(ir->InstructionCount() * 8, 64), 64);
  auto text = kernel_->module_area().Kmalloc(text_bytes, 64);
  if (!text.ok()) return text.status();
  loaded->allocations_.push_back(*text);

  constexpr uint64_t kStackBytes = 64 * 1024;
  auto stack = kernel_->module_area().Kmalloc(kStackBytes, 64);
  if (!stack.ok()) return stack.status();
  loaded->allocations_.push_back(*stack);

  kir::InterpConfig config;
  config.stack_base = *stack;
  config.stack_size = kStackBytes;
  config.watchdog_steps = watchdog_steps_;

  // 5. Register this module's guard sites for runtime attribution. The
  //    signed attestation carries the table; older records without one
  //    fall back to re-enumerating the (already verified) IR.
  std::vector<transform::GuardSite> sites = validated->attestation.sites;
  if (sites.empty()) sites = transform::EnumerateGuardSites(*ir);
  std::unordered_map<uint64_t, uint64_t> site_tokens;
  site_tokens.reserve(sites.size());
  loaded->site_tokens_.reserve(sites.size());
  for (const transform::GuardSite& site : sites) {
    trace::SiteInfo info;
    info.module_name = name;
    info.function = site.function;
    info.site_id = site.site_id;
    info.inst_index = site.inst_index;
    char detail[64];
    if (site.is_intrinsic) {
      std::snprintf(detail, sizeof(detail), "intrinsic id=%u",
                    site.access_flags);
    } else {
      std::snprintf(detail, sizeof(detail), "%s size=%u",
                    (site.access_flags & kGuardAccessWrite) ? "store" : "load",
                    site.access_size);
    }
    info.detail = detail;
    const uint64_t token = trace::GlobalSites().Register(std::move(info));
    site_tokens[site.call_ordinal] = token;
    loaded->site_tokens_.push_back(token);
  }

  // 6. The memory stack both engines execute against: kernel-backed
  //    memory, wrapped in the resilience journal so every module call is
  //    a transaction (interpreter and VM journal identically — they
  //    share this seam).
  loaded->memory_ = std::make_unique<KernelMemory>(kernel_);
  Kernel* kernel = kernel_;
  loaded->journaled_ = std::make_unique<resilience::JournaledMemory>(
      loaded->memory_.get(), [kernel](uint64_t addr, uint32_t size) {
        return kernel->mem().RawHostPointer(addr, size) != nullptr;
      });
  loaded->resolver_ = std::make_unique<KernelResolver>(
      kernel_, site_tokens, &loaded->heap_ledger_);
  std::unordered_map<std::string, uint64_t> addresses(
      loaded->global_addresses_.begin(), loaded->global_addresses_.end());
  loaded->ir_ = std::move(ir);

  if (engine_ == ExecEngine::kBytecode) {
    auto bytecode = kir::CompileToBytecode(*loaded->ir_);
    if (!bytecode.ok()) {
      kernel_->log().Printk(KernLevel::kErr,
                            "insmod: %s: bytecode compile failed: %s",
                            name.c_str(),
                            bytecode.status().ToString().c_str());
      return bytecode.status();
    }
    // Lowering must preserve every guard site's attribution: the table
    // reconstructed from the bytecode has to equal the one enumerated
    // from the verified IR (which the attestation was checked against).
    const std::vector<transform::GuardSite> lowered =
        transform::EnumerateGuardSites(*bytecode);
    if (lowered != transform::EnumerateGuardSites(*loaded->ir_)) {
      return Internal("bytecode guard-site table diverges from IR for '" +
                      name + "'");
    }
    auto vm = kir::VM::Create(std::move(*bytecode), *loaded->journaled_,
                              *loaded->resolver_, addresses, config);
    if (!vm.ok()) return vm.status();
    loaded->engine_ = std::move(*vm);
  } else {
    loaded->engine_ = std::make_unique<kir::Interpreter>(
        *loaded->ir_, *loaded->journaled_, *loaded->resolver_,
        std::move(addresses), config);
  }

  // 7. Restart recovery re-runs @init after teardown when the module
  //    defines a zero-arg one (modules with parameterized inits register
  //    theirs through set_restart_entry).
  const kir::Function* init_fn = loaded->ir_->FindFunction("init");
  if (init_fn != nullptr && !init_fn->is_external() &&
      init_fn->arg_count() == 0) {
    loaded->restart_entry_ = "init";
  }

  // 8. EXPORT_SYMBOL: the module's entry points become kernel symbols
  //    ("<module>.<fn>") other subsystems and later modules can resolve.
  //    Quarantine (and rmmod) withdraws them — a stale export must not
  //    keep routing calls into a dead module.
  for (const auto& fn : loaded->ir_->functions()) {
    if (fn->is_external()) continue;
    const std::string sym = name + "." + fn->name();
    LoadedModule* raw_module = loaded.get();
    const std::string fn_name = fn->name();
    Status exported = kernel_->symbols().ExportFunction(
        sym,
        [raw_module, fn_name](const std::vector<uint64_t>& args) -> uint64_t {
          auto result = raw_module->Call(fn_name, args);
          return result.ok() ? *result : 0;
        });
    if (exported.ok()) loaded->exported_symbols_.push_back(sym);
  }

  kernel_->log().Printk(
      KernLevel::kInfo,
      "insmod: loaded module '%s' (%zu instructions, %llu guards, key %s, "
      "engine %s)",
      name.c_str(), loaded->ir_->InstructionCount(),
      static_cast<unsigned long long>(loaded->attestation_.guard_count),
      image.key_id.c_str(), ExecEngineName(engine_).data());
  KOP_TRACE(kModuleLoad, loaded->ir_->InstructionCount(),
            loaded->attestation_.guard_count);
  trace::GlobalMetrics().GetCounter("loader.modules_loaded")->Add();

  LoadedModule* raw = loaded.get();
  modules_[name] = std::move(loaded);
  return raw;
}

Status ModuleLoader::Rmmod(const std::string& name) {
  auto it = modules_.find(name);
  if (it == modules_.end()) return NotFound("module '" + name + "' not loaded");
  modules_.erase(it);
  kernel_->log().Printk(KernLevel::kInfo, "rmmod: unloaded module '%s'",
                        name.c_str());
  return OkStatus();
}

LoadedModule* ModuleLoader::Find(const std::string& name) {
  auto it = modules_.find(name);
  return it == modules_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ModuleLoader::LoadedNames() const {
  std::vector<std::string> out;
  out.reserve(modules_.size());
  for (const auto& [name, module] : modules_) out.push_back(name);
  return out;
}

}  // namespace kop::kernel
