#include "kop/kernel/module_loader.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <unordered_map>

#include "kop/analysis/static_verifier.hpp"
#include "kop/kir/bytecode.hpp"
#include "kop/kir/intrinsics.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/trace/site.hpp"
#include "kop/trace/trace.hpp"
#include "kop/transform/guard_sites.hpp"
#include "kop/util/bits.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::kernel {
namespace {

/// Interpreter memory backed by the kernel address space, charging the
/// machine model's access costs. Guards are NOT implied here: in a
/// transformed module they are explicit call instructions in the IR.
class KernelMemory final : public kir::MemoryInterface {
 public:
  explicit KernelMemory(Kernel* kernel) : kernel_(kernel) {}

  Result<uint64_t> Load(uint64_t addr, uint32_t size) override {
    kernel_->clock().Advance(kernel_->machine().mem_read_cycles);
    switch (size) {
      case 1: {
        auto v = kernel_->mem().Read8(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      case 2: {
        auto v = kernel_->mem().Read16(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      case 4: {
        auto v = kernel_->mem().Read32(addr);
        if (!v.ok()) return v.status();
        return uint64_t{*v};
      }
      default:
        return kernel_->mem().Read64(addr);
    }
  }

  Status Store(uint64_t addr, uint64_t value, uint32_t size) override {
    kernel_->clock().Advance(kernel_->machine().mem_write_cycles);
    switch (size) {
      case 1: return kernel_->mem().Write8(addr, static_cast<uint8_t>(value));
      case 2: return kernel_->mem().Write16(addr,
                                            static_cast<uint16_t>(value));
      case 4: return kernel_->mem().Write32(addr,
                                            static_cast<uint32_t>(value));
      default: return kernel_->mem().Write64(addr, value);
    }
  }

 private:
  Kernel* kernel_;
};

/// Sentinel: a call ordinal with no registered guard-site token.
constexpr uint64_t kNoSiteToken = ~uint64_t{0};

/// Routes external calls to the exported-symbol table; provides benign
/// host fallbacks for the hardware intrinsics so un-wrapped intrinsics
/// still "execute" (the §5 wrap pass adds the permission check in front).
///
/// Two call paths exist. The name-keyed CallExternal path serves the
/// interpreter: per call, one guard-name compare (cheap; guard calls are
/// the only ones needing site attribution) and a symbol-table hash
/// lookup. The bound path serves the bytecode VM: BindExternal resolves a
/// name ONCE at engine construction — symbol-table closure pointer,
/// interned intrinsic id, or guard classification — and CallBound then
/// dispatches on an integer kind with no string in sight. Cached symbol
/// pointers revalidate against the symbol table's generation counter, so
/// unloading the policy module (which unexports carat_guard) is observed
/// exactly as on the name path.
class KernelResolver final : public kir::ExternalResolver {
 public:
  /// `site_tokens` maps a module-wide call ordinal to the guard-site
  /// token registered for that ordinal's guard call (only guard calls
  /// appear in it).
  KernelResolver(Kernel* kernel,
                 const std::unordered_map<uint64_t, uint64_t>& site_tokens)
      : kernel_(kernel) {
    uint64_t max_ordinal = 0;
    for (const auto& [ordinal, token] : site_tokens) {
      max_ordinal = std::max(max_ordinal, ordinal);
    }
    if (!site_tokens.empty()) {
      site_token_by_ordinal_.assign(max_ordinal + 1, kNoSiteToken);
      for (const auto& [ordinal, token] : site_tokens) {
        site_token_by_ordinal_[ordinal] = token;
      }
    }
  }

  Result<uint64_t> CallExternal(const std::string& name,
                                const std::vector<uint64_t>& args,
                                uint64_t call_ordinal) override {
    // Only guard calls carry site attribution; check the (two) guard
    // names before touching the token table so every other external —
    // printk, netdev hooks, ... — pays nothing for this overload.
    if (name == kCaratGuardSymbol || name == kCaratIntrinsicGuardSymbol) {
      const uint64_t token = TokenForOrdinal(call_ordinal);
      if (token != kNoSiteToken) {
        // Pin the guard-site context while the guard call is in flight —
        // the simulated analogue of the return address the guard runtime
        // would sample on real hardware.
        trace::ScopedGuardSite scope(token);
        return CallExternal(name, args);
      }
    }
    return CallExternal(name, args);
  }

  Result<uint64_t> CallExternal(const std::string& name,
                                const std::vector<uint64_t>& args) override {
    if (const KernelFunction* fn = kernel_->symbols().FindFunction(name)) {
      return (*fn)(args);
    }
    if (kir::IsIntrinsicName(name)) {
      return CallIntrinsic(kir::IntrinsicFromName(name), args);
    }
    return NotFound("undefined kernel symbol: " + name);
  }

  std::optional<uint64_t> BindExternal(const std::string& name) override {
    Binding binding;
    binding.name = name;
    if (name == kCaratGuardSymbol || name == kCaratIntrinsicGuardSymbol) {
      binding.kind = Binding::Kind::kGuard;
    } else if (kernel_->symbols().HasFunction(name)) {
      binding.kind = Binding::Kind::kSymbol;
    } else if (kir::IsIntrinsicName(name)) {
      binding.kind = Binding::Kind::kIntrinsic;
      binding.intrinsic = kir::IntrinsicFromName(name);
    } else {
      return std::nullopt;  // unknown symbol: name path reports NotFound
    }
    if (binding.kind != Binding::Kind::kIntrinsic) {
      binding.fn = kernel_->symbols().FindFunction(name);
      binding.generation = kernel_->symbols().generation();
    }
    bindings_.push_back(std::move(binding));
    return bindings_.size() - 1;
  }

  Result<uint64_t> CallBound(uint64_t handle,
                             const std::vector<uint64_t>& args,
                             uint64_t call_ordinal) override {
    Binding& binding = bindings_[handle];
    switch (binding.kind) {
      case Binding::Kind::kGuard: {
        KOP_ASSIGN_OR_RETURN(const KernelFunction* fn, Revalidate(binding));
        const uint64_t token = TokenForOrdinal(call_ordinal);
        if (token != kNoSiteToken) {
          trace::ScopedGuardSite scope(token);
          return (*fn)(args);
        }
        return (*fn)(args);
      }
      case Binding::Kind::kSymbol: {
        KOP_ASSIGN_OR_RETURN(const KernelFunction* fn, Revalidate(binding));
        return (*fn)(args);
      }
      case Binding::Kind::kIntrinsic:
        return CallIntrinsic(binding.intrinsic, args);
    }
    return Internal("corrupt external binding");
  }

 private:
  struct Binding {
    enum class Kind : uint8_t { kSymbol, kGuard, kIntrinsic };
    Kind kind = Kind::kSymbol;
    kir::Intrinsic intrinsic = kir::Intrinsic::kNone;
    std::string name;
    const KernelFunction* fn = nullptr;
    uint64_t generation = 0;
  };

  uint64_t TokenForOrdinal(uint64_t ordinal) const {
    return ordinal < site_token_by_ordinal_.size()
               ? site_token_by_ordinal_[ordinal]
               : kNoSiteToken;
  }

  /// The cached closure pointer, re-looked-up iff the export set changed
  /// since the bind (e.g. the policy module was unloaded).
  Result<const KernelFunction*> Revalidate(Binding& binding) {
    const uint64_t generation = kernel_->symbols().generation();
    if (binding.generation != generation) {
      binding.fn = kernel_->symbols().FindFunction(binding.name);
      binding.generation = generation;
    }
    if (binding.fn == nullptr) {
      return NotFound("undefined kernel symbol: " + binding.name);
    }
    return binding.fn;
  }

  /// Hardware intrinsics hit real (simulated) machine state, so a
  /// permitted privileged operation has observable effects.
  Result<uint64_t> CallIntrinsic(kir::Intrinsic intrinsic,
                                 const std::vector<uint64_t>& args) {
    switch (intrinsic) {
      case kir::Intrinsic::kRdmsr:
        return kernel_->msrs().Read(args.empty() ? 0 : args[0]);
      case kir::Intrinsic::kWrmsr:
        if (args.size() >= 2) kernel_->msrs().Write(args[0], args[1]);
        return uint64_t{0};
      case kir::Intrinsic::kInb:
        return uint64_t{kernel_->ports().In(
            static_cast<uint16_t>(args.empty() ? 0 : args[0]))};
      case kir::Intrinsic::kOutb:
        if (args.size() >= 2) {
          kernel_->ports().Out(static_cast<uint16_t>(args[0]),
                               static_cast<uint8_t>(args[1]));
        }
        return uint64_t{0};
      case kir::Intrinsic::kCli:
        kernel_->cpu().Cli();
        return uint64_t{0};
      case kir::Intrinsic::kSti:
        kernel_->cpu().Sti();
        return uint64_t{0};
      case kir::Intrinsic::kHlt:
        kernel_->cpu().Halt();
        return uint64_t{0};
      case kir::Intrinsic::kInvlpg:
      case kir::Intrinsic::kNone:
        return uint64_t{0};  // invlpg etc.: no modeled state
    }
    return uint64_t{0};
  }

  Kernel* kernel_;
  /// Guard-site token per module-wide call ordinal (kNoSiteToken for
  /// non-guard ordinals) — a flat array so the per-guard lookup on both
  /// call paths is one bounds check and one load.
  std::vector<uint64_t> site_token_by_ordinal_;
  std::vector<Binding> bindings_;
};

}  // namespace

std::string_view ExecEngineName(ExecEngine engine) {
  switch (engine) {
    case ExecEngine::kInterp: return "interp";
    case ExecEngine::kBytecode: return "bytecode";
  }
  return "?";
}

ExecEngine DefaultExecEngine() {
  const char* env = std::getenv("KOP_ENGINE");
  if (env != nullptr && std::string_view(env) == "interp") {
    return ExecEngine::kInterp;
  }
  return ExecEngine::kBytecode;
}

std::string_view VerifyModeName(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::kAttest: return "attest";
    case VerifyMode::kStatic: return "static";
    case VerifyMode::kBoth: return "both";
  }
  return "?";
}

VerifyMode DefaultVerifyMode() {
  const char* env = std::getenv("KOP_VERIFY");
  if (env != nullptr) {
    const std::string_view mode(env);
    if (mode == "attest") return VerifyMode::kAttest;
    if (mode == "static") return VerifyMode::kStatic;
  }
  return VerifyMode::kBoth;
}

LoadedModule::~LoadedModule() {
  if (kernel_ == nullptr) return;
  for (uint64_t addr : allocations_) {
    (void)kernel_->module_area().Kfree(addr);
  }
}

Result<uint64_t> LoadedModule::Call(const std::string& function,
                                    const std::vector<uint64_t>& args) {
  if (quarantined_) {
    return PermissionDenied("module '" + name_ +
                            "' is quarantined: " + quarantine_reason_);
  }
  try {
    return engine_->Call(function, args);
  } catch (const GuardViolation& violation) {
    quarantined_ = true;
    KOP_TRACE(kModuleQuarantine, violation.addr, violation.size);
    trace::GlobalMetrics().GetCounter("loader.quarantines")->Add();
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "guard violation at 0x%llx (size %llu, flags %llu)",
                  static_cast<unsigned long long>(violation.addr),
                  static_cast<unsigned long long>(violation.size),
                  static_cast<unsigned long long>(violation.access_flags));
    quarantine_reason_ = buf;
    kernel_->log().Printk(
        KernLevel::kErr,
        "carat_kop: quarantined module '%s' after %s; the module was NOT "
        "ejected (it may hold locks)",
        name_.c_str(), buf);
    return PermissionDenied("module '" + name_ + "' quarantined: " + buf);
  }
}

Result<uint64_t> LoadedModule::GlobalAddress(const std::string& global) const {
  auto it = global_addresses_.find(global);
  if (it == global_addresses_.end()) {
    return NotFound("module " + name_ + " has no global @" + global);
  }
  return it->second;
}

Result<LoadedModule*> ModuleLoader::Insmod(const signing::SignedModule& image) {
  // 1. Signature + attestation + IR verification + guard re-check. Under
  //    KOP_VERIFY=static the attestation's guard claims are not trusted
  //    (nor required) — the static proof below is the sole authority.
  signing::ValidationOptions validation;
  validation.check_attested_guards = verify_mode_ != VerifyMode::kStatic;
  auto validated = signing::ValidateSignedModule(image, keyring_, validation);
  if (!validated.ok()) {
    kernel_->log().Printk(KernLevel::kErr, "insmod: rejected module: %s",
                          validated.status().ToString().c_str());
    return validated.status();
  }
  std::unique_ptr<kir::Module> ir = std::move(validated->module);
  const std::string name = ir->name();

  // 1b. Static guard-completeness proof over the IR actually received —
  //     a forged attestation cannot get an unguarded store past this.
  if (verify_mode_ != VerifyMode::kAttest) {
    const analysis::AnalysisReport report = analysis::AnalyzeModule(*ir);
    if (!report.ok()) {
      const auto first = std::find_if(
          report.diagnostics.begin(), report.diagnostics.end(),
          [](const analysis::Diagnostic& d) {
            return d.severity == analysis::Severity::kError;
          });
      KOP_TRACE(kModuleStaticReject, report.errors(), ir->InstructionCount());
      trace::GlobalMetrics().GetCounter("loader.static_reject")->Add();
      kernel_->log().Printk(
          KernLevel::kErr,
          "insmod: %s: static verifier rejected module (%zu error(s)); "
          "first: @%s block %s inst %u: %s",
          name.c_str(), report.errors(), first->function.c_str(),
          first->block.c_str(), first->inst_index, first->message.c_str());
      return PermissionDenied(
          "static verifier rejected module '" + name + "': @" +
          first->function + " block " + first->block + ": " + first->message);
    }
  }
  if (modules_.count(name)) {
    return AlreadyExists("module '" + name + "' already loaded");
  }

  // 2. Symbol resolution: every external must be exported by the kernel
  //    (the policy module's carat_guard chief among them) or be a known
  //    hardware intrinsic.
  for (const std::string& external : ir->ExternalFunctionNames()) {
    if (!kernel_->symbols().HasFunction(external) &&
        external.rfind("kir.", 0) != 0) {
      kernel_->log().Printk(KernLevel::kErr,
                            "insmod: %s: Unknown symbol %s", name.c_str(),
                            external.c_str());
      return BadModule("unknown symbol '" + external + "' needed by '" +
                       name + "'");
    }
  }

  auto loaded = std::unique_ptr<LoadedModule>(new LoadedModule());
  loaded->name_ = name;
  loaded->kernel_ = kernel_;
  loaded->attestation_ = validated->attestation;

  // 3. Lay out globals in the module area.
  for (const auto& global : ir->globals()) {
    auto addr = kernel_->module_area().Kmalloc(
        std::max<uint64_t>(global->size_bytes(), 8), 16);
    if (!addr.ok()) return addr.status();
    loaded->allocations_.push_back(*addr);
    loaded->global_addresses_[global->name()] = *addr;
    KOP_RETURN_IF_ERROR(
        kernel_->mem().Memset(*addr, 0, global->size_bytes()));
    if (!global->init_bytes().empty()) {
      KOP_RETURN_IF_ERROR(kernel_->mem().Write(*addr,
                                               global->init_bytes().data(),
                                               global->init_bytes().size()));
    }
  }

  // 4. Module text footprint + interpreter stack in the module area.
  //    (Text bytes are symbolic — the IR is the code — but the footprint
  //    is allocated so the memory map reflects a loaded module.)
  const uint64_t text_bytes =
      AlignUp(std::max<uint64_t>(ir->InstructionCount() * 8, 64), 64);
  auto text = kernel_->module_area().Kmalloc(text_bytes, 64);
  if (!text.ok()) return text.status();
  loaded->allocations_.push_back(*text);

  constexpr uint64_t kStackBytes = 64 * 1024;
  auto stack = kernel_->module_area().Kmalloc(kStackBytes, 64);
  if (!stack.ok()) return stack.status();
  loaded->allocations_.push_back(*stack);

  kir::InterpConfig config;
  config.stack_base = *stack;
  config.stack_size = kStackBytes;

  // 5. Register this module's guard sites for runtime attribution. The
  //    signed attestation carries the table; older records without one
  //    fall back to re-enumerating the (already verified) IR.
  std::vector<transform::GuardSite> sites = validated->attestation.sites;
  if (sites.empty()) sites = transform::EnumerateGuardSites(*ir);
  std::unordered_map<uint64_t, uint64_t> site_tokens;
  site_tokens.reserve(sites.size());
  loaded->site_tokens_.reserve(sites.size());
  for (const transform::GuardSite& site : sites) {
    trace::SiteInfo info;
    info.module_name = name;
    info.function = site.function;
    info.site_id = site.site_id;
    info.inst_index = site.inst_index;
    char detail[64];
    if (site.is_intrinsic) {
      std::snprintf(detail, sizeof(detail), "intrinsic id=%u",
                    site.access_flags);
    } else {
      std::snprintf(detail, sizeof(detail), "%s size=%u",
                    (site.access_flags & kGuardAccessWrite) ? "store" : "load",
                    site.access_size);
    }
    info.detail = detail;
    const uint64_t token = trace::GlobalSites().Register(std::move(info));
    site_tokens[site.call_ordinal] = token;
    loaded->site_tokens_.push_back(token);
  }

  loaded->memory_ = std::make_unique<KernelMemory>(kernel_);
  loaded->resolver_ = std::make_unique<KernelResolver>(kernel_, site_tokens);
  std::unordered_map<std::string, uint64_t> addresses(
      loaded->global_addresses_.begin(), loaded->global_addresses_.end());
  loaded->ir_ = std::move(ir);

  if (engine_ == ExecEngine::kBytecode) {
    auto bytecode = kir::CompileToBytecode(*loaded->ir_);
    if (!bytecode.ok()) {
      kernel_->log().Printk(KernLevel::kErr,
                            "insmod: %s: bytecode compile failed: %s",
                            name.c_str(),
                            bytecode.status().ToString().c_str());
      return bytecode.status();
    }
    // Lowering must preserve every guard site's attribution: the table
    // reconstructed from the bytecode has to equal the one enumerated
    // from the verified IR (which the attestation was checked against).
    const std::vector<transform::GuardSite> lowered =
        transform::EnumerateGuardSites(*bytecode);
    if (lowered != transform::EnumerateGuardSites(*loaded->ir_)) {
      return Internal("bytecode guard-site table diverges from IR for '" +
                      name + "'");
    }
    auto vm = kir::VM::Create(std::move(*bytecode), *loaded->memory_,
                              *loaded->resolver_, addresses, config);
    if (!vm.ok()) return vm.status();
    loaded->engine_ = std::move(*vm);
  } else {
    loaded->engine_ = std::make_unique<kir::Interpreter>(
        *loaded->ir_, *loaded->memory_, *loaded->resolver_,
        std::move(addresses), config);
  }

  kernel_->log().Printk(
      KernLevel::kInfo,
      "insmod: loaded module '%s' (%zu instructions, %llu guards, key %s, "
      "engine %s)",
      name.c_str(), loaded->ir_->InstructionCount(),
      static_cast<unsigned long long>(loaded->attestation_.guard_count),
      image.key_id.c_str(), ExecEngineName(engine_).data());
  KOP_TRACE(kModuleLoad, loaded->ir_->InstructionCount(),
            loaded->attestation_.guard_count);
  trace::GlobalMetrics().GetCounter("loader.modules_loaded")->Add();

  LoadedModule* raw = loaded.get();
  modules_[name] = std::move(loaded);
  return raw;
}

Status ModuleLoader::Rmmod(const std::string& name) {
  auto it = modules_.find(name);
  if (it == modules_.end()) return NotFound("module '" + name + "' not loaded");
  modules_.erase(it);
  kernel_->log().Printk(KernLevel::kInfo, "rmmod: unloaded module '%s'",
                        name.c_str());
  return OkStatus();
}

LoadedModule* ModuleLoader::Find(const std::string& name) {
  auto it = modules_.find(name);
  return it == modules_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ModuleLoader::LoadedNames() const {
  std::vector<std::string> out;
  out.reserve(modules_.size());
  for (const auto& [name, module] : modules_) out.push_back(name);
  return out;
}

}  // namespace kop::kernel
