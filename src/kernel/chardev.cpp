#include "kop/kernel/chardev.hpp"

#include <iterator>

#include "kop/trace/metrics.hpp"
#include "kop/trace/trace.hpp"

namespace kop::kernel {

Status CharDeviceRegistry::Register(const std::string& path,
                                    IoctlHandler handler) {
  if (!handler) return InvalidArgument("null ioctl handler for " + path);
  if (devices_.count(path)) {
    return AlreadyExists("device node exists: " + path);
  }
  devices_[path] = std::move(handler);
  return OkStatus();
}

Status CharDeviceRegistry::Unregister(const std::string& path) {
  if (devices_.erase(path) == 0) {
    return NotFound("no device node: " + path);
  }
  return OkStatus();
}

bool CharDeviceRegistry::Exists(const std::string& path) const {
  return devices_.count(path) > 0;
}

Status CharDeviceRegistry::Ioctl(const std::string& path, uint32_t cmd,
                                 std::vector<uint8_t>& arg) const {
  auto it = devices_.find(path);
  if (it == devices_.end()) return NotFound("no device node: " + path);
  KOP_TRACE(kIoctl, cmd,
            static_cast<uint64_t>(std::distance(devices_.begin(), it)));
  trace::GlobalMetrics().GetCounter("dev.ioctls")->Add();
  return it->second(cmd, arg);
}

std::vector<std::string> CharDeviceRegistry::Paths() const {
  std::vector<std::string> out;
  out.reserve(devices_.size());
  for (const auto& [path, handler] : devices_) out.push_back(path);
  return out;
}

}  // namespace kop::kernel
