#include "kop/kir/type.hpp"

namespace kop::kir {

std::optional<Type> ParseTypeName(std::string_view token) {
  if (token == "void") return Type::kVoid;
  if (token == "i1") return Type::kI1;
  if (token == "i8") return Type::kI8;
  if (token == "i16") return Type::kI16;
  if (token == "i32") return Type::kI32;
  if (token == "i64") return Type::kI64;
  if (token == "ptr") return Type::kPtr;
  return std::nullopt;
}

}  // namespace kop::kir
