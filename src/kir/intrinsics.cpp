#include "kop/kir/intrinsics.hpp"

#include <array>

namespace kop::kir {
namespace {

struct IntrinsicRow {
  std::string_view name;
  Intrinsic id;
};

// Small and scanned with string_view compares (no allocation, length
// checked first); a hash map buys nothing at 8 entries.
constexpr std::array<IntrinsicRow, 8> kIntrinsics = {{
    {"kir.cli", Intrinsic::kCli},
    {"kir.sti", Intrinsic::kSti},
    {"kir.rdmsr", Intrinsic::kRdmsr},
    {"kir.wrmsr", Intrinsic::kWrmsr},
    {"kir.inb", Intrinsic::kInb},
    {"kir.outb", Intrinsic::kOutb},
    {"kir.invlpg", Intrinsic::kInvlpg},
    {"kir.hlt", Intrinsic::kHlt},
}};

}  // namespace

bool IsIntrinsicName(std::string_view name) {
  return name.substr(0, 4) == "kir.";
}

Intrinsic IntrinsicFromName(std::string_view name) {
  if (!IsIntrinsicName(name)) return Intrinsic::kNone;
  for (const IntrinsicRow& row : kIntrinsics) {
    if (row.name == name) return row.id;
  }
  return Intrinsic::kNone;
}

std::string_view IntrinsicName(Intrinsic intrinsic) {
  for (const IntrinsicRow& row : kIntrinsics) {
    if (row.id == intrinsic) return row.name;
  }
  return "?";
}

}  // namespace kop::kir
