#include "kop/kir/parser.hpp"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <unordered_map>
#include <vector>

namespace kop::kir {
namespace {

// ---------------------------------------------------------------- lexer --

enum class TokKind {
  kEof,
  kIdent,    // keywords, type names, labels
  kLocal,    // %name
  kGlobal,   // @name
  kInt,      // 123, 0x7b, -5
  kString,   // "..."
  kPunct,    // single char: ( ) { } , : [ ] =
  kArrow,    // ->
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;   // ident/local/global name (without sigil), string body
  uint64_t int_value = 0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= text_.size()) break;
      const char c = text_[pos_];
      if (c == '%' || c == '@') {
        ++pos_;
        std::string name = LexIdentBody();
        if (name.empty()) return Error("empty name after sigil");
        out.push_back({c == '%' ? TokKind::kLocal : TokKind::kGlobal,
                       std::move(name), 0, line_});
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
                 c == '.') {
        out.push_back({TokKind::kIdent, LexIdentBody(), 0, line_});
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
        auto tok = LexNumber();
        if (!tok.ok()) return tok.status();
        out.push_back(*tok);
      } else if (c == '"') {
        auto tok = LexString();
        if (!tok.ok()) return tok.status();
        out.push_back(*tok);
      } else if (c == '-' ) {
        return Error("unexpected '-'");
      } else if (c == '(' || c == ')' || c == '{' || c == '}' || c == ',' ||
                 c == ':' || c == '[' || c == ']' || c == '=') {
        out.push_back({TokKind::kPunct, std::string(1, c), 0, line_});
        ++pos_;
      } else {
        return Error(std::string("unexpected character '") + c + "'");
      }
    }
    out.push_back({TokKind::kEof, "", 0, line_});
    return out;
  }

 private:
  Status Error(const std::string& msg) {
    return InvalidArgument("kir lex error at line " + std::to_string(line_) +
                           ": " + msg);
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == ';') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '-' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '>') {
        // handled by caller as arrow; but we lex it here for simplicity
        break;
      } else {
        break;
      }
    }
  }

  std::string LexIdentBody() {
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '$') {
        out.push_back(c);
        ++pos_;
      } else {
        break;
      }
    }
    return out;
  }

  Result<Token> LexNumber() {
    // '-' might start "->" (arrow) instead of a negative number.
    if (text_[pos_] == '-') {
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
        pos_ += 2;
        return Token{TokKind::kArrow, "->", 0, line_};
      }
    }
    bool negative = false;
    size_t start = pos_;
    if (text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    int base = 10;
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
      base = 16;
      pos_ += 2;
    }
    std::string digits;
    while (pos_ < text_.size() &&
           (std::isxdigit(static_cast<unsigned char>(text_[pos_])) ||
            (base == 16 && text_[pos_] == '_'))) {
      if (text_[pos_] != '_') digits.push_back(text_[pos_]);
      ++pos_;
    }
    if (digits.empty()) {
      pos_ = start;
      return Error("malformed number");
    }
    const uint64_t magnitude = std::strtoull(digits.c_str(), nullptr, base);
    const uint64_t value =
        negative ? static_cast<uint64_t>(-static_cast<int64_t>(magnitude))
                 : magnitude;
    return Token{TokKind::kInt, "", value, line_};
  }

  Result<Token> LexString() {
    ++pos_;  // opening quote
    std::string body;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\n') return Error("unterminated string");
      body.push_back(text_[pos_]);
      ++pos_;
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    ++pos_;  // closing quote
    return Token{TokKind::kString, std::move(body), 0, line_};
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

// --------------------------------------------------------------- parser --

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Module>> Run() {
    KOP_RETURN_IF_ERROR(ExpectIdent("module"));
    auto name = ExpectString();
    if (!name.ok()) return name.status();
    module_ = std::make_unique<Module>(*name);

    while (!AtEof()) {
      if (PeekIdent("global")) {
        KOP_RETURN_IF_ERROR(ParseGlobal());
      } else if (PeekIdent("extern")) {
        KOP_RETURN_IF_ERROR(ParseExtern());
      } else if (PeekIdent("func")) {
        KOP_RETURN_IF_ERROR(ParseFunction());
      } else {
        return Err("expected 'global', 'extern' or 'func'");
      }
    }
    return std::move(module_);
  }

 private:
  // --- token helpers ---
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtEof() const { return Peek().kind == TokKind::kEof; }

  Status Err(const std::string& msg) const {
    return InvalidArgument("kir parse error at line " +
                           std::to_string(Peek().line) + ": " + msg);
  }

  bool PeekIdent(std::string_view ident) const {
    return Peek().kind == TokKind::kIdent && Peek().text == ident;
  }
  bool PeekPunct(char c) const {
    return Peek().kind == TokKind::kPunct && Peek().text[0] == c;
  }

  Status ExpectIdent(std::string_view ident) {
    if (!PeekIdent(ident)) return Err("expected '" + std::string(ident) + "'");
    Take();
    return OkStatus();
  }
  Status ExpectPunct(char c) {
    if (!PeekPunct(c)) return Err(std::string("expected '") + c + "'");
    Take();
    return OkStatus();
  }
  Status ExpectArrow() {
    if (Peek().kind != TokKind::kArrow) return Err("expected '->'");
    Take();
    return OkStatus();
  }
  Result<std::string> ExpectString() {
    if (Peek().kind != TokKind::kString) return Err("expected string literal");
    return Take().text;
  }
  Result<uint64_t> ExpectInt() {
    if (Peek().kind != TokKind::kInt) return Err("expected integer");
    return Take().int_value;
  }
  Result<std::string> ExpectAnyIdent() {
    if (Peek().kind != TokKind::kIdent) return Err("expected identifier");
    return Take().text;
  }
  Result<std::string> ExpectLocal() {
    if (Peek().kind != TokKind::kLocal) return Err("expected %name");
    return Take().text;
  }
  Result<std::string> ExpectGlobalName() {
    if (Peek().kind != TokKind::kGlobal) return Err("expected @name");
    return Take().text;
  }
  Result<Type> ExpectType() {
    if (Peek().kind != TokKind::kIdent) return Err("expected a type");
    auto type = ParseTypeName(Peek().text);
    if (!type) return Err("unknown type '" + Peek().text + "'");
    Take();
    return *type;
  }

  // --- top-level items ---
  Status ParseGlobal() {
    Take();  // 'global'
    auto name = ExpectGlobalName();
    if (!name.ok()) return name.status();
    KOP_RETURN_IF_ERROR(ExpectIdent("size"));
    auto size = ExpectInt();
    if (!size.ok()) return size.status();
    bool writable;
    if (PeekIdent("rw")) {
      writable = true;
      Take();
    } else if (PeekIdent("ro")) {
      writable = false;
      Take();
    } else {
      return Err("expected 'rw' or 'ro'");
    }
    std::string init;
    if (PeekIdent("init")) {
      Take();
      // init x"<hex>"
      if (!PeekIdent("x")) return Err("expected x\"...\" after init");
      Take();
      auto hex = ExpectString();
      if (!hex.ok()) return hex.status();
      if (hex->size() % 2 != 0) return Err("odd-length hex init");
      for (size_t i = 0; i < hex->size(); i += 2) {
        auto nibble = [&](char c) -> int {
          if (c >= '0' && c <= '9') return c - '0';
          if (c >= 'a' && c <= 'f') return c - 'a' + 10;
          if (c >= 'A' && c <= 'F') return c - 'A' + 10;
          return -1;
        };
        const int hi = nibble((*hex)[i]);
        const int lo = nibble((*hex)[i + 1]);
        if (hi < 0 || lo < 0) return Err("bad hex digit in init");
        init.push_back(static_cast<char>((hi << 4) | lo));
      }
      if (init.size() > *size) return Err("init longer than global size");
    }
    if (module_->AddGlobal(*name, *size, writable, std::move(init)) ==
        nullptr) {
      return Err("duplicate global @" + *name);
    }
    return OkStatus();
  }

  Status ParseExtern() {
    Take();  // 'extern'
    KOP_RETURN_IF_ERROR(ExpectIdent("func"));
    auto name = ExpectGlobalName();
    if (!name.ok()) return name.status();
    KOP_RETURN_IF_ERROR(ExpectPunct('('));
    std::vector<std::pair<Type, std::string>> params;
    if (!PeekPunct(')')) {
      while (true) {
        auto type = ExpectType();
        if (!type.ok()) return type.status();
        params.emplace_back(*type, "a" + std::to_string(params.size()));
        if (PeekPunct(',')) {
          Take();
          continue;
        }
        break;
      }
    }
    KOP_RETURN_IF_ERROR(ExpectPunct(')'));
    KOP_RETURN_IF_ERROR(ExpectArrow());
    auto ret = ExpectType();
    if (!ret.ok()) return ret.status();
    if (module_->CreateFunction(*name, *ret, std::move(params),
                                /*is_external=*/true) == nullptr) {
      return Err("duplicate function @" + *name);
    }
    return OkStatus();
  }

  Status ParseFunction() {
    Take();  // 'func'
    auto name = ExpectGlobalName();
    if (!name.ok()) return name.status();
    KOP_RETURN_IF_ERROR(ExpectPunct('('));
    std::vector<std::pair<Type, std::string>> params;
    if (!PeekPunct(')')) {
      while (true) {
        auto type = ExpectType();
        if (!type.ok()) return type.status();
        auto param = ExpectLocal();
        if (!param.ok()) return param.status();
        params.emplace_back(*type, *param);
        if (PeekPunct(',')) {
          Take();
          continue;
        }
        break;
      }
    }
    KOP_RETURN_IF_ERROR(ExpectPunct(')'));
    KOP_RETURN_IF_ERROR(ExpectArrow());
    auto ret = ExpectType();
    if (!ret.ok()) return ret.status();

    Function* fn = module_->CreateFunction(*name, *ret, params,
                                           /*is_external=*/false);
    if (fn == nullptr) return Err("duplicate function @" + *name);
    KOP_RETURN_IF_ERROR(ExpectPunct('{'));

    // Pre-scan for labels (ident ':') so blocks exist in source order and
    // branch targets resolve forward.
    size_t scan = pos_;
    int depth = 1;
    while (scan < tokens_.size() && depth > 0) {
      const Token& tok = tokens_[scan];
      if (tok.kind == TokKind::kPunct && tok.text[0] == '{') ++depth;
      if (tok.kind == TokKind::kPunct && tok.text[0] == '}') --depth;
      if (depth > 0 && tok.kind == TokKind::kIdent && scan + 1 < tokens_.size() &&
          tokens_[scan + 1].kind == TokKind::kPunct &&
          tokens_[scan + 1].text[0] == ':') {
        if (fn->FindBlock(tok.text) != nullptr) {
          return Err("duplicate label '" + tok.text + "'");
        }
        fn->CreateBlock(tok.text);
      }
      ++scan;
    }
    if (fn->blocks().empty()) return Err("function has no blocks");

    // Value environment: arguments first.
    locals_.clear();
    pending_.clear();
    for (auto& arg : fn->args()) locals_[arg->name()] = arg.get();

    BasicBlock* current = nullptr;
    while (!PeekPunct('}')) {
      if (AtEof()) return Err("unexpected end of input inside function");
      if (Peek().kind == TokKind::kIdent && Peek(1).kind == TokKind::kPunct &&
          Peek(1).text[0] == ':') {
        std::string label = Take().text;
        Take();  // ':'
        current = fn->FindBlock(label);
        continue;
      }
      if (current == nullptr) return Err("instruction before first label");
      KOP_RETURN_IF_ERROR(ParseInstruction(fn, current));
    }
    Take();  // '}'

    // Patch forward references to locals (phis).
    for (auto& [inst, index, ref_name] : pending_) {
      auto it = locals_.find(ref_name);
      if (it == locals_.end()) {
        return InvalidArgument("kir parse error: undefined value %" +
                               ref_name + " in @" + fn->name());
      }
      inst->SetOperand(index, it->second);
    }
    return OkStatus();
  }

  // --- instruction parsing ---

  /// Parse an operand of known type. May leave a pending patch when the
  /// operand is a local defined later (legal only in phis, verified later).
  Status ParseOperand(Type type, Instruction* inst) {
    const Token& tok = Peek();
    if (tok.kind == TokKind::kInt) {
      Take();
      inst->AddOperand(module_->GetConstant(type, tok.int_value));
      return OkStatus();
    }
    if (tok.kind == TokKind::kLocal) {
      Take();
      auto it = locals_.find(tok.text);
      if (it != locals_.end()) {
        inst->AddOperand(it->second);
      } else {
        inst->AddOperand(nullptr);
        pending_.emplace_back(inst, inst->operand_count() - 1, tok.text);
      }
      return OkStatus();
    }
    if (tok.kind == TokKind::kGlobal) {
      Take();
      GlobalVariable* global = module_->FindGlobal(tok.text);
      if (global == nullptr) return Err("undefined global @" + tok.text);
      inst->AddOperand(global);
      return OkStatus();
    }
    return Err("expected operand");
  }

  Result<BasicBlock*> ParseLabelRef(Function* fn) {
    auto label = ExpectAnyIdent();
    if (!label.ok()) return label.status();
    BasicBlock* block = fn->FindBlock(*label);
    if (block == nullptr) return Err("unknown label '" + *label + "'");
    return block;
  }

  static std::optional<Opcode> BinOpFromName(const std::string& name) {
    static const std::unordered_map<std::string, Opcode> kMap = {
        {"add", Opcode::kAdd},   {"sub", Opcode::kSub},
        {"mul", Opcode::kMul},   {"udiv", Opcode::kUDiv},
        {"sdiv", Opcode::kSDiv}, {"urem", Opcode::kURem},
        {"srem", Opcode::kSRem}, {"and", Opcode::kAnd},
        {"or", Opcode::kOr},     {"xor", Opcode::kXor},
        {"shl", Opcode::kShl},   {"lshr", Opcode::kLShr},
        {"ashr", Opcode::kAShr},
    };
    auto it = kMap.find(name);
    return it == kMap.end() ? std::nullopt : std::make_optional(it->second);
  }

  static std::optional<ICmpPred> PredFromName(const std::string& name) {
    static const std::unordered_map<std::string, ICmpPred> kMap = {
        {"eq", ICmpPred::kEq},   {"ne", ICmpPred::kNe},
        {"ult", ICmpPred::kULt}, {"ule", ICmpPred::kULe},
        {"ugt", ICmpPred::kUGt}, {"uge", ICmpPred::kUGe},
        {"slt", ICmpPred::kSLt}, {"sle", ICmpPred::kSLe},
        {"sgt", ICmpPred::kSGt}, {"sge", ICmpPred::kSGe},
    };
    auto it = kMap.find(name);
    return it == kMap.end() ? std::nullopt : std::make_optional(it->second);
  }

  Status DefineLocal(const std::string& name, Instruction* inst) {
    if (locals_.count(name)) return Err("redefinition of %" + name);
    // Keep the function's temp-id counter ahead of explicit %tN names so
    // pass-inserted temporaries never collide with parsed ones.
    if (name.size() > 1 && name[0] == 't' &&
        name.find_first_not_of("0123456789", 1) == std::string::npos) {
      inst->parent()->parent()->ReserveTempId(
          static_cast<unsigned>(std::strtoul(name.c_str() + 1, nullptr, 10)));
    }
    inst->set_name(name);
    locals_[name] = inst;
    return OkStatus();
  }

  Status ParseInstruction(Function* fn, BasicBlock* block) {
    // Form 1: "%name = op ..."; Form 2: "op ..." (void ops).
    std::string def_name;
    if (Peek().kind == TokKind::kLocal) {
      def_name = Take().text;
      KOP_RETURN_IF_ERROR(ExpectPunct('='));
    }
    auto op_name = ExpectAnyIdent();
    if (!op_name.ok()) return op_name.status();
    const std::string& op = *op_name;

    auto finish = [&](std::unique_ptr<Instruction> inst) -> Status {
      Instruction* raw = block->Append(std::move(inst));
      if (!def_name.empty()) {
        if (raw->type() == Type::kVoid) {
          return Err("cannot name a void-valued instruction");
        }
        return DefineLocal(def_name, raw);
      }
      if (raw->type() != Type::kVoid) {
        if (raw->opcode() != Opcode::kCall &&
            raw->opcode() != Opcode::kCallIndirect) {
          return Err("value-producing instruction must be named");
        }
        // A call whose result is discarded still needs a printable name.
        std::string auto_name;
        do {
          auto_name = "t" + std::to_string(fn->TakeNextTempId());
        } while (locals_.count(auto_name));
        raw->set_name(auto_name);
        locals_[auto_name] = raw;
      }
      return OkStatus();
    };

    if (op == "alloca") {
      auto size = ExpectInt();
      if (!size.ok()) return size.status();
      auto inst = std::make_unique<Instruction>(Opcode::kAlloca, Type::kPtr, "");
      inst->set_alloca_size(*size);
      return finish(std::move(inst));
    }
    if (op == "load") {
      auto type = ExpectType();
      if (!type.ok()) return type.status();
      KOP_RETURN_IF_ERROR(ExpectPunct(','));
      auto inst = std::make_unique<Instruction>(Opcode::kLoad, *type, "");
      inst->set_memory_type(*type);
      KOP_RETURN_IF_ERROR(ParseOperand(Type::kPtr, inst.get()));
      return finish(std::move(inst));
    }
    if (op == "store") {
      auto type = ExpectType();
      if (!type.ok()) return type.status();
      auto inst = std::make_unique<Instruction>(Opcode::kStore, Type::kVoid, "");
      inst->set_memory_type(*type);
      KOP_RETURN_IF_ERROR(ParseOperand(*type, inst.get()));
      KOP_RETURN_IF_ERROR(ExpectPunct(','));
      KOP_RETURN_IF_ERROR(ParseOperand(Type::kPtr, inst.get()));
      return finish(std::move(inst));
    }
    if (op == "gep") {
      auto inst = std::make_unique<Instruction>(Opcode::kGep, Type::kPtr, "");
      KOP_RETURN_IF_ERROR(ParseOperand(Type::kPtr, inst.get()));
      KOP_RETURN_IF_ERROR(ExpectPunct(','));
      auto index_type = ExpectType();
      if (!index_type.ok()) return index_type.status();
      KOP_RETURN_IF_ERROR(ParseOperand(*index_type, inst.get()));
      KOP_RETURN_IF_ERROR(ExpectPunct(','));
      auto scale = ExpectInt();
      if (!scale.ok()) return scale.status();
      inst->set_gep_scale(*scale);
      KOP_RETURN_IF_ERROR(ExpectPunct(','));
      auto offset = ExpectInt();
      if (!offset.ok()) return offset.status();
      inst->set_gep_offset(*offset);
      return finish(std::move(inst));
    }
    if (auto binop = BinOpFromName(op)) {
      auto type = ExpectType();
      if (!type.ok()) return type.status();
      auto inst = std::make_unique<Instruction>(*binop, *type, "");
      KOP_RETURN_IF_ERROR(ParseOperand(*type, inst.get()));
      KOP_RETURN_IF_ERROR(ExpectPunct(','));
      KOP_RETURN_IF_ERROR(ParseOperand(*type, inst.get()));
      return finish(std::move(inst));
    }
    if (op == "icmp") {
      auto pred_name = ExpectAnyIdent();
      if (!pred_name.ok()) return pred_name.status();
      auto pred = PredFromName(*pred_name);
      if (!pred) return Err("unknown icmp predicate '" + *pred_name + "'");
      auto type = ExpectType();
      if (!type.ok()) return type.status();
      auto inst = std::make_unique<Instruction>(Opcode::kICmp, Type::kI1, "");
      inst->set_icmp_pred(*pred);
      KOP_RETURN_IF_ERROR(ParseOperand(*type, inst.get()));
      KOP_RETURN_IF_ERROR(ExpectPunct(','));
      KOP_RETURN_IF_ERROR(ParseOperand(*type, inst.get()));
      return finish(std::move(inst));
    }
    if (op == "zext" || op == "sext" || op == "trunc" ||
        op == "ptrtoint" || op == "inttoptr") {
      const Opcode opcode = op == "zext"       ? Opcode::kZExt
                            : op == "sext"     ? Opcode::kSExt
                            : op == "trunc"    ? Opcode::kTrunc
                            : op == "ptrtoint" ? Opcode::kPtrToInt
                                               : Opcode::kIntToPtr;
      auto from = ExpectType();
      if (!from.ok()) return from.status();
      // Parse operand into a temp holder, then 'to TYPE'.
      auto inst = std::make_unique<Instruction>(opcode, Type::kVoid, "");
      KOP_RETURN_IF_ERROR(ParseOperand(*from, inst.get()));
      KOP_RETURN_IF_ERROR(ExpectIdent("to"));
      auto to = ExpectType();
      if (!to.ok()) return to.status();
      // Rebuild with the right result type (type is immutable on Value).
      auto typed = std::make_unique<Instruction>(opcode, *to, "");
      typed->AddOperand(inst->operand(0));
      if (inst->operand(0) == nullptr && !pending_.empty() &&
          std::get<0>(pending_.back()) == inst.get()) {
        std::get<0>(pending_.back()) = typed.get();
      }
      return finish(std::move(typed));
    }
    if (op == "br") {
      auto inst = std::make_unique<Instruction>(Opcode::kBr, Type::kVoid, "");
      KOP_RETURN_IF_ERROR(ParseOperand(Type::kI1, inst.get()));
      KOP_RETURN_IF_ERROR(ExpectPunct(','));
      auto t = ParseLabelRef(fn);
      if (!t.ok()) return t.status();
      KOP_RETURN_IF_ERROR(ExpectPunct(','));
      auto f = ParseLabelRef(fn);
      if (!f.ok()) return f.status();
      inst->set_true_block(*t);
      inst->set_false_block(*f);
      return finish(std::move(inst));
    }
    if (op == "jmp") {
      auto target = ParseLabelRef(fn);
      if (!target.ok()) return target.status();
      auto inst = std::make_unique<Instruction>(Opcode::kJmp, Type::kVoid, "");
      inst->set_true_block(*target);
      return finish(std::move(inst));
    }
    if (op == "ret") {
      auto inst = std::make_unique<Instruction>(Opcode::kRet, Type::kVoid, "");
      if (PeekIdent("void")) {
        Take();
      } else {
        auto type = ExpectType();
        if (!type.ok()) return type.status();
        KOP_RETURN_IF_ERROR(ParseOperand(*type, inst.get()));
      }
      return finish(std::move(inst));
    }
    if (op == "phi") {
      auto type = ExpectType();
      if (!type.ok()) return type.status();
      auto inst = std::make_unique<Instruction>(Opcode::kPhi, *type, "");
      while (true) {
        KOP_RETURN_IF_ERROR(ExpectPunct('['));
        KOP_RETURN_IF_ERROR(ParseOperand(*type, inst.get()));
        KOP_RETURN_IF_ERROR(ExpectPunct(','));
        auto block = ParseLabelRef(fn);
        if (!block.ok()) return block.status();
        const_cast<std::vector<BasicBlock*>&>(inst->incoming_blocks())
            .push_back(*block);
        KOP_RETURN_IF_ERROR(ExpectPunct(']'));
        if (PeekPunct(',')) {
          Take();
          continue;
        }
        break;
      }
      return finish(std::move(inst));
    }
    if (op == "select") {
      auto inst = std::make_unique<Instruction>(Opcode::kSelect, Type::kVoid, "");
      KOP_RETURN_IF_ERROR(ParseOperand(Type::kI1, inst.get()));
      KOP_RETURN_IF_ERROR(ExpectPunct(','));
      auto type = ExpectType();
      if (!type.ok()) return type.status();
      auto typed =
          std::make_unique<Instruction>(Opcode::kSelect, *type, "");
      typed->AddOperand(inst->operand(0));
      if (inst->operand(0) == nullptr && !pending_.empty() &&
          std::get<0>(pending_.back()) == inst.get()) {
        std::get<0>(pending_.back()) = typed.get();
      }
      KOP_RETURN_IF_ERROR(ParseOperand(*type, typed.get()));
      KOP_RETURN_IF_ERROR(ExpectPunct(','));
      KOP_RETURN_IF_ERROR(ParseOperand(*type, typed.get()));
      return finish(std::move(typed));
    }
    if (op == "call") {
      auto type = ExpectType();
      if (!type.ok()) return type.status();
      auto callee = ExpectGlobalName();
      if (!callee.ok()) return callee.status();
      auto inst = std::make_unique<Instruction>(Opcode::kCall, *type, "");
      inst->set_callee(*callee);
      KOP_RETURN_IF_ERROR(ExpectPunct('('));
      if (!PeekPunct(')')) {
        while (true) {
          auto arg_type = ExpectType();
          if (!arg_type.ok()) return arg_type.status();
          KOP_RETURN_IF_ERROR(ParseOperand(*arg_type, inst.get()));
          if (PeekPunct(',')) {
            Take();
            continue;
          }
          break;
        }
      }
      KOP_RETURN_IF_ERROR(ExpectPunct(')'));
      return finish(std::move(inst));
    }
    if (op == "funcaddr") {
      auto callee = ExpectGlobalName();
      if (!callee.ok()) return callee.status();
      auto inst =
          std::make_unique<Instruction>(Opcode::kFuncAddr, Type::kPtr, "");
      inst->set_callee(*callee);
      return finish(std::move(inst));
    }
    if (op == "icall") {
      auto type = ExpectType();
      if (!type.ok()) return type.status();
      auto inst =
          std::make_unique<Instruction>(Opcode::kCallIndirect, *type, "");
      KOP_RETURN_IF_ERROR(ParseOperand(Type::kPtr, inst.get()));
      KOP_RETURN_IF_ERROR(ExpectPunct('('));
      if (!PeekPunct(')')) {
        while (true) {
          auto arg_type = ExpectType();
          if (!arg_type.ok()) return arg_type.status();
          KOP_RETURN_IF_ERROR(ParseOperand(*arg_type, inst.get()));
          if (PeekPunct(',')) {
            Take();
            continue;
          }
          break;
        }
      }
      KOP_RETURN_IF_ERROR(ExpectPunct(')'));
      return finish(std::move(inst));
    }
    if (op == "asm") {
      auto text = ExpectString();
      if (!text.ok()) return text.status();
      auto inst =
          std::make_unique<Instruction>(Opcode::kInlineAsm, Type::kVoid, "");
      inst->set_asm_text(*text);
      return finish(std::move(inst));
    }
    return Err("unknown instruction '" + op + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::unique_ptr<Module> module_;
  std::unordered_map<std::string, Value*> locals_;
  std::vector<std::tuple<Instruction*, size_t, std::string>> pending_;
};

}  // namespace

Result<std::unique_ptr<Module>> ParseModule(std::string_view text) {
  Lexer lexer(text);
  auto tokens = lexer.Run();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.Run();
}

}  // namespace kop::kir
