#include "kop/kir/vm.hpp"

#include <algorithm>
#include <cstring>

#include "kop/kir/coverage.hpp"

namespace kop::kir {
namespace {

constexpr uint64_t MaskOfBits(unsigned bits) {
  if (bits == 0) return 0;
  if (bits >= 64) return ~uint64_t{0};
  return (uint64_t{1} << bits) - 1;
}

inline int64_t SignExtendBits(uint64_t raw, unsigned bits) {
  if (bits == 0 || bits >= 64) return static_cast<int64_t>(raw);
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  raw &= mask;
  if (raw & (uint64_t{1} << (bits - 1))) raw |= ~mask;
  return static_cast<int64_t>(raw);
}

/// Parallel-copy semantics: all sources read before any destination is
/// written (a phi may feed another phi in the same block).
inline void ApplyMoves(uint64_t* regs, const std::vector<BcMove>& moves) {
  uint64_t stack_buf[16];
  std::vector<uint64_t> heap_buf;
  uint64_t* scratch = stack_buf;
  if (moves.size() > 16) {
    heap_buf.resize(moves.size());
    scratch = heap_buf.data();
  }
  for (size_t i = 0; i < moves.size(); ++i) scratch[i] = regs[moves[i].src];
  for (size_t i = 0; i < moves.size(); ++i) regs[moves[i].dst] = scratch[i];
}

}  // namespace

// Dispatch strategy for RunFrame. With GNU extensions available the VM
// uses direct threading: every handler ends in its own computed goto, so
// the branch predictor learns per-opcode successor patterns instead of
// funnelling every transition through one indirect jump. The portable
// fallback routes the same handler bodies through a switch. Step
// accounting is identical in both modes: the counter bumps once per
// instruction, before it executes.
#if defined(__GNUC__) || defined(__clang__)
#define KOP_VM_THREADED 1
#else
#define KOP_VM_THREADED 0
#endif

#if KOP_VM_THREADED
#define VM_CASE(name) lbl_##name
#define VM_DISPATCH()                                     \
  do {                                                    \
    if (++steps > max_steps) [[unlikely]]                 \
      goto budget_exhausted;                              \
    ip = code + pc;                                       \
    goto* kJump[static_cast<size_t>(ip->op)];             \
  } while (0)
#else
#define VM_CASE(name) case BcOp::name
#define VM_DISPATCH() goto dispatch
#endif
#define VM_NEXT()  \
  do {             \
    ++pc;          \
    VM_DISPATCH(); \
  } while (0)

VM::VM(BytecodeModule bytecode, MemoryInterface& memory,
       ExternalResolver& resolver, const InterpConfig& config)
    : bytecode_(std::move(bytecode)),
      memory_(memory),
      resolver_(resolver),
      config_(config) {
  arg_buffers_.resize(config_.max_call_depth + 2);
}

Result<std::unique_ptr<VM>> VM::Create(
    BytecodeModule bytecode, MemoryInterface& memory,
    ExternalResolver& resolver,
    const std::unordered_map<std::string, uint64_t>& global_addresses,
    const InterpConfig& config) {
  // Patch global addresses into the frame templates.
  for (BytecodeFunction& fn : bytecode.functions) {
    for (const BcGlobalFixup& fixup : fn.global_fixups) {
      const std::string& name = bytecode.global_names[fixup.global];
      auto it = global_addresses.find(name);
      if (it == global_addresses.end()) {
        return Internal("global @" + name + " has no assigned address");
      }
      fn.frame_template[fixup.reg] = it->second;
    }
  }
  auto vm = std::unique_ptr<VM>(
      new VM(std::move(bytecode), memory, resolver, config));
  vm->bindings_.reserve(vm->bytecode_.externs.size());
  for (const BcExtern& ext : vm->bytecode_.externs) {
    vm->bindings_.push_back(resolver.BindExternal(ext.name));
  }
  return vm;
}

Result<uint64_t> VM::Call(const std::string& fn_name,
                          const std::vector<uint64_t>& args) {
  auto it = bytecode_.function_index.find(fn_name);
  if (it == bytecode_.function_index.end()) {
    return NotFound("no defined function @" + fn_name + " in module " +
                    bytecode_.name);
  }
  const BytecodeFunction& fn = bytecode_.functions[it->second];
  if (args.size() != fn.num_args) {
    return InvalidArgument("argument count mismatch calling @" + fn_name);
  }
  if (entry_depth_ == 0) {
    step_limit_ = config_.max_steps;
    if (config_.watchdog_steps != 0 &&
        stats_.steps + config_.watchdog_steps < step_limit_) {
      step_limit_ = stats_.steps + config_.watchdog_steps;
    }
    fault_state_ = EngineSnapshot();
  }
  // Outermost entry pins the policy frame for the inline-guard fast
  // path; kGuardInline/kGuardRange decide against that pinned frame and
  // deopt to the bound slow path when anything moved. Nested entries
  // (module re-entry through an exported symbol) run under the
  // outermost pin.
  const bool pinned = entry_depth_ == 0 && resolver_.PinGuardFrame();
  // Guard faults and panics unwind as exceptions through the resolver;
  // restore the register watermark so the VM stays usable afterwards.
  const size_t saved_top = reg_top_;
  ++entry_depth_;
  try {
    auto result = ExecuteFunction(it->second, args, 0,
                                  config_.stack_base + config_.stack_size);
    --entry_depth_;
    if (pinned) resolver_.UnpinGuardFrame();
    return result;
  } catch (...) {
    --entry_depth_;
    if (pinned) resolver_.UnpinGuardFrame();
    reg_top_ = saved_top;
    throw;
  }
}

Result<uint64_t> VM::ExecuteFunction(uint32_t fn_index,
                                     const std::vector<uint64_t>& args,
                                     uint32_t depth, uint64_t stack_top) {
  const BytecodeFunction& fn = bytecode_.functions[fn_index];
  if (depth > config_.max_call_depth) {
    RecordFault(fn.name, args, depth);
    return Internal("call depth limit exceeded in @" + fn.name);
  }

  const size_t base = reg_top_;
  if (reg_stack_.size() < base + fn.num_regs) {
    reg_stack_.resize(std::max(reg_stack_.size() * 2,
                               base + static_cast<size_t>(fn.num_regs)));
  }
  reg_top_ = base + fn.num_regs;

  uint64_t* regs = reg_stack_.data() + base;
  std::memcpy(regs, fn.frame_template.data(),
              sizeof(uint64_t) * fn.num_regs);
  for (size_t i = 0; i < args.size(); ++i) {
    regs[i] = args[i] & fn.arg_masks[i];
  }

#if KOP_COVERAGE_ENABLED
  // Synthetic function-entry edge, so straight-line functions (and the
  // entry block ahead of the first branch) register in the map too.
  if (CoverageMap* cov = ThreadCoverage()) {
    cov->HitEdge(fn_index, 0xffffffffu, 0);
  }
#endif

  // Frame-granular fault capture: exceptions (guard violations, panics)
  // and error results both stamp this frame into the snapshot on their
  // way out; the innermost frame wins.
  try {
    Result<uint64_t> result = RunFrame(fn, fn_index, base, depth, stack_top);
    reg_top_ = base;
    if (!result.ok()) RecordFault(fn.name, args, depth);
    return result;
  } catch (...) {
    reg_top_ = base;
    RecordFault(fn.name, args, depth);
    throw;
  }
}

void VM::RecordFault(const std::string& fn_name,
                     const std::vector<uint64_t>& args, uint32_t depth) {
  if (fault_state_.valid) return;
  fault_state_.valid = true;
  fault_state_.function = fn_name;
  fault_state_.depth = depth;
  fault_state_.args.assign(
      args.begin(), args.begin() + std::min<size_t>(args.size(), 8));
  fault_state_.stats = stats_;
}

Result<uint64_t> VM::RunFrame(const BytecodeFunction& fn, uint32_t fn_index,
                              size_t base, uint32_t depth,
                              uint64_t stack_top) {
  uint64_t* regs = reg_stack_.data() + base;
  const BcInst* code = fn.code.data();
  const BcInst* ip = code;
  uint64_t sp = stack_top;
  size_t pc = 0;

#if KOP_COVERAGE_ENABLED
  // Fetched once per frame: the branch handlers pay one null check when
  // no sink is armed (the compiled-in-but-disabled cost ext6 gates).
  CoverageMap* const cov = ThreadCoverage();
#else
  (void)fn_index;
#endif

  // The step counter lives in a register for the ALU/branch fast path and
  // is flushed back to stats_ on every edge that leaves this frame or
  // calls out (memory, resolver, nested frames can throw, recurse, or be
  // observed) — so stats_.steps is exact whenever anyone can look.
  uint64_t steps = stats_.steps;
  const uint64_t max_steps = step_limit_;

#if KOP_VM_THREADED
  // Indexed by BcOp; order must match the enum declaration.
  static const void* const kJump[] = {
      &&lbl_kAlloca, &&lbl_kLoad,  &&lbl_kStore, &&lbl_kGep,
      &&lbl_kAdd,    &&lbl_kSub,   &&lbl_kMul,   &&lbl_kUDiv,
      &&lbl_kSDiv,   &&lbl_kURem,  &&lbl_kSRem,  &&lbl_kAnd,
      &&lbl_kOr,     &&lbl_kXor,   &&lbl_kShl,   &&lbl_kLShr,
      &&lbl_kAShr,   &&lbl_kICmp,  &&lbl_kMove,  &&lbl_kSExt,
      &&lbl_kSelect, &&lbl_kBr,    &&lbl_kJmp,   &&lbl_kRetVoid,
      &&lbl_kRet,    &&lbl_kCallInternal,        &&lbl_kCallExternal,
      &&lbl_kGuard,  &&lbl_kGuardInline,         &&lbl_kGuardRange,
      &&lbl_kCfiCheck,                           &&lbl_kFuncAddr,
      &&lbl_kCallIndirect,                       &&lbl_kTrap};
  static_assert(sizeof(kJump) / sizeof(kJump[0]) ==
                static_cast<size_t>(BcOp::kTrap) + 1);
#endif

  VM_DISPATCH();

#if !KOP_VM_THREADED
dispatch:
  if (++steps > max_steps) [[unlikely]]
    goto budget_exhausted;
  ip = code + pc;
  switch (ip->op) {
#endif

    VM_CASE(kAlloca) : {
      const uint64_t size = ip->imm;
      if (sp - size < config_.stack_base || sp < size) {
        stats_.steps = steps;
        return Internal("interpreter stack overflow in @" + fn.name);
      }
      sp -= size;
      regs[ip->dst] = sp;
      VM_NEXT();
    }
    VM_CASE(kLoad) : {
      stats_.steps = steps;
      auto value = memory_.Load(regs[ip->a], ip->width);
      if (!value.ok()) return value.status();
      ++stats_.loads;
      regs[ip->dst] = *value & ip->imm;
      VM_NEXT();
    }
    VM_CASE(kStore) : {
      stats_.steps = steps;
      KOP_RETURN_IF_ERROR(
          memory_.Store(regs[ip->b], regs[ip->a], ip->width));
      ++stats_.stores;
      VM_NEXT();
    }
    VM_CASE(kGep) : {
      const int64_t index = SignExtendBits(regs[ip->b], ip->width);
      regs[ip->dst] =
          regs[ip->a] + static_cast<uint64_t>(index) * ip->imm2 + ip->imm;
      VM_NEXT();
    }
    VM_CASE(kAdd) : {
      regs[ip->dst] = (regs[ip->a] + regs[ip->b]) & ip->imm;
      VM_NEXT();
    }
    VM_CASE(kSub) : {
      regs[ip->dst] = (regs[ip->a] - regs[ip->b]) & ip->imm;
      VM_NEXT();
    }
    VM_CASE(kMul) : {
      regs[ip->dst] = (regs[ip->a] * regs[ip->b]) & ip->imm;
      VM_NEXT();
    }
    VM_CASE(kUDiv) : {
      if (regs[ip->b] == 0) {
        stats_.steps = steps;
        return Internal("division by zero in @" + fn.name);
      }
      regs[ip->dst] = (regs[ip->a] / regs[ip->b]) & ip->imm;
      VM_NEXT();
    }
    VM_CASE(kSDiv) : {
      if (regs[ip->b] == 0) {
        stats_.steps = steps;
        return Internal("division by zero in @" + fn.name);
      }
      const int64_t sa = SignExtendBits(regs[ip->a], ip->width);
      const int64_t sb = SignExtendBits(regs[ip->b], ip->width);
      regs[ip->dst] = static_cast<uint64_t>(sa / sb) & ip->imm;
      VM_NEXT();
    }
    VM_CASE(kURem) : {
      if (regs[ip->b] == 0) {
        stats_.steps = steps;
        return Internal("division by zero in @" + fn.name);
      }
      regs[ip->dst] = (regs[ip->a] % regs[ip->b]) & ip->imm;
      VM_NEXT();
    }
    VM_CASE(kSRem) : {
      if (regs[ip->b] == 0) {
        stats_.steps = steps;
        return Internal("division by zero in @" + fn.name);
      }
      const int64_t sa = SignExtendBits(regs[ip->a], ip->width);
      const int64_t sb = SignExtendBits(regs[ip->b], ip->width);
      regs[ip->dst] = static_cast<uint64_t>(sa % sb) & ip->imm;
      VM_NEXT();
    }
    VM_CASE(kAnd) : {
      regs[ip->dst] = regs[ip->a] & regs[ip->b];
      VM_NEXT();
    }
    VM_CASE(kOr) : {
      regs[ip->dst] = regs[ip->a] | regs[ip->b];
      VM_NEXT();
    }
    VM_CASE(kXor) : {
      regs[ip->dst] = regs[ip->a] ^ regs[ip->b];
      VM_NEXT();
    }
    VM_CASE(kShl) : {
      const uint64_t shift = regs[ip->b];
      regs[ip->dst] =
          (shift >= ip->width) ? 0 : (regs[ip->a] << shift) & ip->imm;
      VM_NEXT();
    }
    VM_CASE(kLShr) : {
      const uint64_t shift = regs[ip->b];
      regs[ip->dst] = (shift >= ip->width) ? 0 : regs[ip->a] >> shift;
      VM_NEXT();
    }
    VM_CASE(kAShr) : {
      const int64_t sa = SignExtendBits(regs[ip->a], ip->width);
      const uint64_t shift =
          regs[ip->b] >= ip->width ? ip->width - 1u : regs[ip->b];
      regs[ip->dst] = static_cast<uint64_t>(sa >> shift) & ip->imm;
      VM_NEXT();
    }
    VM_CASE(kICmp) : {
      const uint64_t a = regs[ip->a] & ip->imm;
      const uint64_t b = regs[ip->b] & ip->imm;
      const int64_t sa = SignExtendBits(a, ip->width);
      const int64_t sb = SignExtendBits(b, ip->width);
      bool result = false;
      switch (static_cast<ICmpPred>(ip->aux)) {
        case ICmpPred::kEq: result = a == b; break;
        case ICmpPred::kNe: result = a != b; break;
        case ICmpPred::kULt: result = a < b; break;
        case ICmpPred::kULe: result = a <= b; break;
        case ICmpPred::kUGt: result = a > b; break;
        case ICmpPred::kUGe: result = a >= b; break;
        case ICmpPred::kSLt: result = sa < sb; break;
        case ICmpPred::kSLe: result = sa <= sb; break;
        case ICmpPred::kSGt: result = sa > sb; break;
        case ICmpPred::kSGe: result = sa >= sb; break;
      }
      regs[ip->dst] = result ? 1 : 0;
      VM_NEXT();
    }
    VM_CASE(kMove) : {
      regs[ip->dst] = regs[ip->a] & ip->imm;
      VM_NEXT();
    }
    VM_CASE(kSExt) : {
      regs[ip->dst] =
          static_cast<uint64_t>(SignExtendBits(regs[ip->a], ip->width)) &
          ip->imm;
      VM_NEXT();
    }
    VM_CASE(kSelect) : {
      regs[ip->dst] =
          (regs[ip->a] != 0 ? regs[ip->b] : regs[ip->aux]) & ip->imm;
      VM_NEXT();
    }
    VM_CASE(kBr) : {
      uint16_t moves;
      if (regs[ip->a] != 0) {
        moves = ip->dst;
        pc = ip->aux;
      } else {
        moves = ip->b;
        pc = static_cast<size_t>(ip->imm);
      }
#if KOP_COVERAGE_ENABLED
      if (cov != nullptr) [[unlikely]] {
        cov->HitEdge(fn_index, static_cast<uint32_t>(ip - code),
                     static_cast<uint32_t>(pc));
      }
#endif
      if (moves != kNoMoves) ApplyMoves(regs, fn.edge_moves[moves]);
      VM_DISPATCH();
    }
    VM_CASE(kJmp) : {
#if KOP_COVERAGE_ENABLED
      if (cov != nullptr) [[unlikely]] {
        cov->HitEdge(fn_index, static_cast<uint32_t>(ip - code),
                     static_cast<uint32_t>(ip->aux));
      }
#endif
      if (ip->dst != kNoMoves) ApplyMoves(regs, fn.edge_moves[ip->dst]);
      pc = ip->aux;
      VM_DISPATCH();
    }
    VM_CASE(kRetVoid) : {
      stats_.steps = steps;
      return uint64_t{0};
    }
    VM_CASE(kRet) : {
      stats_.steps = steps;
      return regs[ip->a] & ip->imm;
    }
    VM_CASE(kCallInternal) : {
      std::vector<uint64_t>& call_args = arg_buffers_[depth];
      call_args.resize(ip->b);
      const uint16_t* arg_regs = fn.call_args.data() + ip->imm;
      for (uint16_t i = 0; i < ip->b; ++i) {
        call_args[i] = regs[arg_regs[i]];
      }
      ++stats_.calls_internal;
      stats_.steps = steps;
      auto result = ExecuteFunction(ip->aux, call_args, depth + 1, sp);
      if (!result.ok()) return result.status();
      steps = stats_.steps;             // callee advanced the counter
      regs = reg_stack_.data() + base;  // nested frames grow the arena
      if (ip->width != 0) regs[ip->dst] = *result & ip->imm2;
      VM_NEXT();
    }
    VM_CASE(kGuardInline) : {
      // Pinned-frame fast path: argument registers read in place, no
      // vector build, no resolver dispatch. A true return means the
      // access was proven allowed AND fully accounted; anything else
      // deopts into the out-of-line call body below (same instruction,
      // so step/call accounting is identical either way).
      const uint16_t* arg_regs = fn.call_args.data() + ip->imm;
      stats_.steps = steps;
      if (resolver_.FastGuard(regs[arg_regs[0]], regs[arg_regs[1]],
                              regs[arg_regs[2]], ip->imm2)) [[likely]] {
        ++stats_.calls_external;
        if (ip->width != 0) {
          regs[ip->dst] = uint64_t{1} & MaskOfBits(ip->width);
        }
        VM_NEXT();
      }
      goto call_external_slow;
    }
    VM_CASE(kGuardRange) : {
      const uint16_t* arg_regs = fn.call_args.data() + ip->imm;
      stats_.steps = steps;
      if (resolver_.FastGuardRange(regs[arg_regs[0]], regs[arg_regs[1]],
                                   regs[arg_regs[2]], regs[arg_regs[3]],
                                   ip->imm2)) [[likely]] {
        ++stats_.calls_external;
        if (ip->width != 0) {
          regs[ip->dst] = uint64_t{1} & MaskOfBits(ip->width);
        }
        VM_NEXT();
      }
      goto call_external_slow;
    }
    VM_CASE(kCfiCheck) : {
      // Pinned-frame CFI fast path: membership test against the RCU-
      // pinned frame's target table. Deopt falls into the out-of-line
      // call body, which owns violation semantics — containment is
      // byte-identical whether the fast path fired or not.
      const uint16_t* arg_regs = fn.call_args.data() + ip->imm;
      stats_.steps = steps;
      if (resolver_.FastCfiCheck(regs[arg_regs[0]], regs[arg_regs[1]],
                                 ip->imm2)) [[likely]] {
        ++stats_.calls_external;
        if (ip->width != 0) {
          regs[ip->dst] = uint64_t{1} & MaskOfBits(ip->width);
        }
        VM_NEXT();
      }
      goto call_external_slow;
    }
    VM_CASE(kFuncAddr) : {
      regs[ip->dst] = ip->imm;
      VM_NEXT();
    }
    VM_CASE(kCallIndirect) : {
      const uint64_t target = regs[ip->a];
      const int fn_index =
          FunctionIndexForAddress(target, bytecode_.icall_targets.size());
      if (fn_index < 0) {
        stats_.steps = steps;
        return IndirectCallInvalidTarget(target, fn.name);
      }
      const BcIcallTarget& entry =
          bytecode_.icall_targets[static_cast<size_t>(fn_index)];
      std::vector<uint64_t>& call_args = arg_buffers_[depth];
      call_args.resize(ip->b);
      const uint16_t* arg_regs = fn.call_args.data() + ip->imm;
      for (uint16_t i = 0; i < ip->b; ++i) {
        call_args[i] = regs[arg_regs[i]];
      }
      if (entry.is_internal) {
        ++stats_.calls_internal;
        stats_.steps = steps;
        auto result = ExecuteFunction(entry.index, call_args, depth + 1, sp);
        if (!result.ok()) return result.status();
        steps = stats_.steps;
        regs = reg_stack_.data() + base;
        if (ip->width != 0) regs[ip->dst] = *result & MaskOfBits(ip->width);
        VM_NEXT();
      }
      ++stats_.calls_external;
      stats_.steps = steps;
      const std::optional<uint64_t>& handle = bindings_[entry.index];
      Result<uint64_t> result =
          handle.has_value()
              ? resolver_.CallBound(*handle, call_args, ip->imm2)
              : resolver_.CallExternal(bytecode_.externs[entry.index].name,
                                       call_args, ip->imm2);
      if (!result.ok()) return result.status();
      steps = stats_.steps;
      regs = reg_stack_.data() + base;
      if (ip->width != 0) {
        regs[ip->dst] = *result & MaskOfBits(ip->width);
      }
      VM_NEXT();
    }
    VM_CASE(kCallExternal) :
    VM_CASE(kGuard) : {
    call_external_slow:
      std::vector<uint64_t>& call_args = arg_buffers_[depth];
      call_args.resize(ip->b);
      const uint16_t* arg_regs = fn.call_args.data() + ip->imm;
      for (uint16_t i = 0; i < ip->b; ++i) {
        call_args[i] = regs[arg_regs[i]];
      }
      ++stats_.calls_external;
      stats_.steps = steps;
      const std::optional<uint64_t>& handle = bindings_[ip->aux];
      Result<uint64_t> result =
          handle.has_value()
              ? resolver_.CallBound(*handle, call_args, ip->imm2)
              : resolver_.CallExternal(bytecode_.externs[ip->aux].name,
                                       call_args, ip->imm2);
      if (!result.ok()) return result.status();
      steps = stats_.steps;             // ...and may have run more code
      regs = reg_stack_.data() + base;  // resolver may re-enter the VM
      if (ip->width != 0) {
        regs[ip->dst] = *result & MaskOfBits(ip->width);
      }
      VM_NEXT();
    }
    VM_CASE(kTrap) : {
      stats_.steps = steps;
      return PermissionDenied("inline asm executed in @" + fn.name + ": \"" +
                              fn.asm_texts[ip->aux] + "\"");
    }

#if !KOP_VM_THREADED
  }
#endif

budget_exhausted:
  stats_.steps = steps;
  return StepBudgetExceeded(config_, max_steps);
}

#undef VM_NEXT
#undef VM_DISPATCH
#undef VM_CASE
#undef KOP_VM_THREADED

}  // namespace kop::kir
