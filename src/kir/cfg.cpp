#include "kop/kir/cfg.hpp"

#include <algorithm>

namespace kop::kir {

Cfg::Cfg(const Function& fn) : fn_(fn) {
  blocks_.reserve(fn.blocks().size());
  for (const auto& block : fn.blocks()) {
    index_[block.get()] = blocks_.size();
    blocks_.push_back(block.get());
  }
  preds_.resize(blocks_.size());
  succs_.resize(blocks_.size());
  reachable_.assign(blocks_.size(), false);

  for (const BasicBlock* block : blocks_) {
    const Instruction* term = block->Terminator();
    if (term == nullptr) continue;
    const BasicBlock* targets[2] = {term->true_block(), term->false_block()};
    for (const BasicBlock* target : targets) {
      if (target == nullptr) continue;
      succs_[IndexOf(block)].push_back(target);
      preds_[IndexOf(target)].push_back(block);
    }
  }

  // Iterative DFS with an explicit post stack; postorder reversed at the
  // end gives reverse postorder over reachable blocks.
  if (blocks_.empty()) return;
  struct Frame {
    const BasicBlock* block;
    size_t next_succ;
  };
  std::vector<Frame> stack{{blocks_[0], 0}};
  reachable_[0] = true;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const auto& succs = succs_[IndexOf(frame.block)];
    bool descended = false;
    while (frame.next_succ < succs.size()) {
      const BasicBlock* succ = succs[frame.next_succ++];
      if (!reachable_[IndexOf(succ)]) {
        reachable_[IndexOf(succ)] = true;
        stack.push_back({succ, 0});
        descended = true;
        break;
      }
    }
    if (!descended && frame.next_succ >= succs.size()) {
      rpo_.push_back(frame.block);
      stack.pop_back();
    }
  }
  std::reverse(rpo_.begin(), rpo_.end());
}

DominatorTree::DominatorTree(const Cfg& cfg)
    : cfg_(cfg), idom_(cfg.size(), nullptr) {
  if (cfg.size() == 0) return;
  const auto& rpo = cfg.ReversePostorder();
  std::unordered_map<const BasicBlock*, size_t> rpo_pos;
  for (size_t i = 0; i < rpo.size(); ++i) rpo_pos[rpo[i]] = i;

  const BasicBlock* entry = cfg.blocks()[0];
  idom_[cfg.IndexOf(entry)] = entry;

  auto intersect = [&](const BasicBlock* a,
                       const BasicBlock* b) -> const BasicBlock* {
    while (a != b) {
      while (rpo_pos.at(a) > rpo_pos.at(b)) a = idom_[cfg_.IndexOf(a)];
      while (rpo_pos.at(b) > rpo_pos.at(a)) b = idom_[cfg_.IndexOf(b)];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const BasicBlock* block : rpo) {
      if (block == entry) continue;
      const BasicBlock* new_idom = nullptr;
      for (const BasicBlock* pred : cfg.preds(block)) {
        if (!rpo_pos.count(pred)) continue;  // unreachable predecessor
        if (idom_[cfg.IndexOf(pred)] == nullptr) continue;
        new_idom = new_idom == nullptr ? pred : intersect(new_idom, pred);
      }
      if (new_idom != nullptr && idom_[cfg.IndexOf(block)] != new_idom) {
        idom_[cfg.IndexOf(block)] = new_idom;
        changed = true;
      }
    }
  }
}

bool DominatorTree::Dominates(const BasicBlock* a, const BasicBlock* b) const {
  const BasicBlock* entry = cfg_.size() == 0 ? nullptr : cfg_.blocks()[0];
  const BasicBlock* walk = b;
  while (walk != nullptr) {
    if (walk == a) return true;
    if (walk == entry) return false;
    const BasicBlock* up = idom_[cfg_.IndexOf(walk)];
    if (up == walk) return false;  // detached/unreachable
    walk = up;
  }
  return false;
}

std::vector<const BasicBlock*> ComputeImmediateDominators(const Function& fn) {
  const Cfg cfg(fn);
  return DominatorTree(cfg).idoms();
}

bool BlockDominates(const Function& fn,
                    const std::vector<const BasicBlock*>& idom,
                    const BasicBlock* a, const BasicBlock* b) {
  std::unordered_map<const BasicBlock*, size_t> index;
  for (size_t i = 0; i < fn.blocks().size(); ++i) {
    index[fn.blocks()[i].get()] = i;
  }
  const BasicBlock* entry =
      fn.blocks().empty() ? nullptr : fn.blocks()[0].get();
  const BasicBlock* walk = b;
  while (walk != nullptr) {
    if (walk == a) return true;
    if (walk == entry) return false;
    const BasicBlock* up = idom[index.at(walk)];
    if (up == walk) return false;  // detached/unreachable
    walk = up;
  }
  return false;
}

}  // namespace kop::kir
