#include "kop/kir/verifier.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "kop/kir/cfg.hpp"
#include "kop/kir/printer.hpp"

namespace kop::kir {
namespace {

class FunctionVerifier {
 public:
  explicit FunctionVerifier(const Function& fn) : fn_(fn) {}

  Status Run() {
    if (fn_.is_external()) return OkStatus();
    if (fn_.blocks().empty()) {
      return Fail(nullptr, "function has no blocks");
    }
    KOP_RETURN_IF_ERROR(CheckBlocks());
    const Cfg cfg(fn_);
    KOP_RETURN_IF_ERROR(CheckInstructions(cfg));
    KOP_RETURN_IF_ERROR(CheckDominance(cfg));
    return OkStatus();
  }

 private:
  Status Fail(const Instruction* inst, const std::string& msg) const {
    std::string where = "@" + fn_.name();
    if (inst != nullptr && inst->parent() != nullptr) {
      where += ", block " + inst->parent()->label() + ", '" +
               PrintInstruction(*inst) + "'";
    }
    return BadModule("verifier: " + where + ": " + msg);
  }

  Status CheckBlocks() {
    std::unordered_set<std::string> labels;
    for (const auto& block : fn_.blocks()) {
      if (!labels.insert(block->label()).second) {
        return Fail(nullptr, "duplicate block label " + block->label());
      }
      if (block->Terminator() == nullptr) {
        return Fail(nullptr,
                    "block " + block->label() + " has no terminator");
      }
      size_t pos = 0;
      for (const auto& inst : *block) {
        if (inst->IsTerminator() && pos + 1 != block->size()) {
          return Fail(inst.get(), "terminator in middle of block");
        }
        if (inst->opcode() == Opcode::kPhi && pos != 0) {
          // Phis must be grouped at the top.
          auto it = block->begin();
          std::advance(it, pos - 1);
          if ((*it)->opcode() != Opcode::kPhi) {
            return Fail(inst.get(), "phi not at top of block");
          }
        }
        ++pos;
      }
    }
    return OkStatus();
  }

  Status CheckCall(const Instruction* inst) {
    const Module* module = fn_.parent();
    const Function* callee = module->FindFunction(inst->callee());
    if (callee == nullptr) {
      // Intrinsics ("kir.*") are resolved by the runtime; anything else
      // must be declared so the loader can link it.
      if (inst->callee().rfind("kir.", 0) == 0) return OkStatus();
      return Fail(inst, "call to undeclared function @" + inst->callee());
    }
    if (callee->arg_count() != inst->operand_count()) {
      return Fail(inst, "call argument count mismatch");
    }
    for (size_t i = 0; i < callee->arg_count(); ++i) {
      if (inst->operand(i)->type() != callee->args()[i]->type()) {
        return Fail(inst, "call argument " + std::to_string(i) +
                              " type mismatch");
      }
    }
    if (callee->return_type() != inst->type()) {
      return Fail(inst, "call result type mismatch");
    }
    return OkStatus();
  }

  Status CheckInstructions(const Cfg& cfg) {
    for (const auto& block : fn_.blocks()) {
      for (const auto& inst : *block) {
        for (size_t i = 0; i < inst->operand_count(); ++i) {
          if (inst->operand(i) == nullptr) {
            return Fail(inst.get(),
                        "null operand " + std::to_string(i) +
                            " (undefined forward reference?)");
          }
        }
        switch (inst->opcode()) {
          case Opcode::kLoad:
            if (inst->operand(0)->type() != Type::kPtr) {
              return Fail(inst.get(), "load pointer operand is not ptr");
            }
            if (!IsFirstClass(inst->memory_type())) {
              return Fail(inst.get(), "load of void");
            }
            break;
          case Opcode::kStore:
            if (inst->operand(1)->type() != Type::kPtr) {
              return Fail(inst.get(), "store pointer operand is not ptr");
            }
            if (inst->operand(0)->type() != inst->memory_type()) {
              return Fail(inst.get(), "stored value type mismatch");
            }
            break;
          case Opcode::kGep:
            if (inst->operand(0)->type() != Type::kPtr) {
              return Fail(inst.get(), "gep base is not ptr");
            }
            if (!IsInteger(inst->operand(1)->type())) {
              return Fail(inst.get(), "gep index is not an integer");
            }
            break;
          case Opcode::kAdd:
          case Opcode::kSub:
          case Opcode::kMul:
          case Opcode::kUDiv:
          case Opcode::kSDiv:
          case Opcode::kURem:
          case Opcode::kSRem:
          case Opcode::kAnd:
          case Opcode::kOr:
          case Opcode::kXor:
          case Opcode::kShl:
          case Opcode::kLShr:
          case Opcode::kAShr:
            if (!IsInteger(inst->type()) && inst->type() != Type::kPtr) {
              return Fail(inst.get(), "arithmetic on non-integer type");
            }
            if (inst->operand(0)->type() != inst->type() ||
                inst->operand(1)->type() != inst->type()) {
              return Fail(inst.get(), "binop operand type mismatch");
            }
            break;
          case Opcode::kICmp:
            if (inst->operand(0)->type() != inst->operand(1)->type()) {
              return Fail(inst.get(), "icmp operand type mismatch");
            }
            break;
          case Opcode::kZExt:
          case Opcode::kSExt: {
            const Type from = inst->operand(0)->type();
            if (!IsInteger(from) || !IsInteger(inst->type()) ||
                BitWidth(from) > BitWidth(inst->type())) {
              return Fail(inst.get(), "invalid extension");
            }
            break;
          }
          case Opcode::kTrunc: {
            const Type from = inst->operand(0)->type();
            if (!IsInteger(from) || !IsInteger(inst->type()) ||
                BitWidth(from) < BitWidth(inst->type())) {
              return Fail(inst.get(), "invalid truncation");
            }
            break;
          }
          case Opcode::kPtrToInt:
            if (inst->operand(0)->type() != Type::kPtr ||
                !IsInteger(inst->type())) {
              return Fail(inst.get(), "ptrtoint must be ptr -> integer");
            }
            break;
          case Opcode::kIntToPtr:
            if (!IsInteger(inst->operand(0)->type()) ||
                inst->type() != Type::kPtr) {
              return Fail(inst.get(), "inttoptr must be integer -> ptr");
            }
            break;
          case Opcode::kBr:
            if (inst->operand(0)->type() != Type::kI1) {
              return Fail(inst.get(), "branch condition is not i1");
            }
            if (inst->true_block() == nullptr ||
                inst->false_block() == nullptr) {
              return Fail(inst.get(), "branch with missing target");
            }
            break;
          case Opcode::kJmp:
            if (inst->true_block() == nullptr) {
              return Fail(inst.get(), "jmp with missing target");
            }
            break;
          case Opcode::kRet:
            if (fn_.return_type() == Type::kVoid) {
              if (inst->operand_count() != 0) {
                return Fail(inst.get(), "ret with value in void function");
              }
            } else {
              if (inst->operand_count() != 1 ||
                  inst->operand(0)->type() != fn_.return_type()) {
                return Fail(inst.get(), "ret type mismatch");
              }
            }
            break;
          case Opcode::kPhi: {
            // One incoming value per predecessor, from that predecessor.
            const auto& incoming = inst->incoming_blocks();
            if (incoming.size() != inst->operand_count()) {
              return Fail(inst.get(), "phi operand/block count mismatch");
            }
            const auto& block_preds = cfg.preds(block.get());
            if (incoming.size() != block_preds.size()) {
              return Fail(inst.get(),
                          "phi incoming count does not match predecessors");
            }
            for (const BasicBlock* in : incoming) {
              if (std::find(block_preds.begin(), block_preds.end(), in) ==
                  block_preds.end()) {
                return Fail(inst.get(), "phi incoming block " + in->label() +
                                            " is not a predecessor");
              }
            }
            for (size_t i = 0; i < inst->operand_count(); ++i) {
              if (inst->operand(i)->type() != inst->type()) {
                return Fail(inst.get(), "phi operand type mismatch");
              }
            }
            break;
          }
          case Opcode::kSelect:
            if (inst->operand(0)->type() != Type::kI1) {
              return Fail(inst.get(), "select condition is not i1");
            }
            if (inst->operand(1)->type() != inst->type() ||
                inst->operand(2)->type() != inst->type()) {
              return Fail(inst.get(), "select operand type mismatch");
            }
            break;
          case Opcode::kCall:
            KOP_RETURN_IF_ERROR(CheckCall(inst.get()));
            break;
          case Opcode::kFuncAddr: {
            if (inst->type() != Type::kPtr) {
              return Fail(inst.get(), "funcaddr result is not ptr");
            }
            const Function* taken = fn_.parent()->FindFunction(inst->callee());
            if (taken == nullptr) {
              return Fail(inst.get(),
                          "funcaddr of undeclared function @" + inst->callee());
            }
            break;
          }
          case Opcode::kCallIndirect:
            if (inst->operand_count() == 0 ||
                inst->operand(0)->type() != Type::kPtr) {
              return Fail(inst.get(), "icall target is not ptr");
            }
            for (size_t i = 1; i < inst->operand_count(); ++i) {
              if (!IsFirstClass(inst->operand(i)->type())) {
                return Fail(inst.get(), "icall argument of void type");
              }
            }
            break;
          case Opcode::kAlloca:
            if (inst->alloca_size() == 0) {
              return Fail(inst.get(), "alloca of zero bytes");
            }
            break;
          case Opcode::kInlineAsm:
            break;  // structurally fine; the attestation pass rejects it
        }
      }
    }
    return OkStatus();
  }

  Status CheckDominance(const Cfg& cfg) {
    const DominatorTree domtree(cfg);

    // Position of each instruction within its block for same-block checks.
    std::unordered_map<const Value*, size_t> position;
    for (const auto& block : fn_.blocks()) {
      size_t pos = 0;
      for (const auto& inst : *block) position[inst.get()] = pos++;
    }

    auto value_available = [&](const Value* def, const Instruction* user,
                               const BasicBlock* use_block,
                               size_t use_pos) -> bool {
      if (def->kind() != ValueKind::kInstruction) return true;  // const/arg/global
      const auto* def_inst = static_cast<const Instruction*>(def);
      const BasicBlock* def_block = def_inst->parent();
      if (def_block == use_block) {
        return position.at(def_inst) < use_pos ||
               user->opcode() == Opcode::kPhi;  // phi handled separately
      }
      return domtree.Dominates(def_block, use_block);
    };

    for (const auto& block : fn_.blocks()) {
      // Skip unreachable blocks (no idom computed).
      if (block.get() != fn_.blocks()[0].get() &&
          domtree.Idom(block.get()) == nullptr) {
        continue;
      }
      size_t pos = 0;
      for (const auto& inst : *block) {
        if (inst->opcode() == Opcode::kPhi) {
          // Each incoming value must dominate the end of its edge block.
          for (size_t i = 0; i < inst->operand_count(); ++i) {
            const Value* def = inst->operand(i);
            if (def->kind() != ValueKind::kInstruction) continue;
            const auto* def_inst = static_cast<const Instruction*>(def);
            const BasicBlock* in = inst->incoming_blocks()[i];
            if (def_inst->parent() != in &&
                !domtree.Dominates(def_inst->parent(), in)) {
              return Fail(inst.get(),
                          "phi incoming value does not dominate edge");
            }
          }
        } else {
          for (size_t i = 0; i < inst->operand_count(); ++i) {
            if (!value_available(inst->operand(i), inst.get(), block.get(),
                                 pos)) {
              return Fail(inst.get(), "use of value %" +
                                          inst->operand(i)->name() +
                                          " not dominated by its definition");
            }
          }
        }
        ++pos;
      }
    }
    return OkStatus();
  }

  const Function& fn_;
};

}  // namespace

Status VerifyFunction(const Function& fn) {
  return FunctionVerifier(fn).Run();
}

Status VerifyModule(const Module& module) {
  std::unordered_set<std::string> names;
  for (const auto& global : module.globals()) {
    if (!names.insert(global->name()).second) {
      return BadModule("verifier: duplicate global @" + global->name());
    }
  }
  for (const auto& fn : module.functions()) {
    if (!names.insert(fn->name()).second) {
      return BadModule("verifier: duplicate function @" + fn->name());
    }
    KOP_RETURN_IF_ERROR(VerifyFunction(*fn));
  }
  return OkStatus();
}

}  // namespace kop::kir
