#include "kop/kir/coverage.hpp"

#include <cstddef>

namespace kop::kir {
namespace {

thread_local CoverageMap* tls_coverage = nullptr;

}  // namespace

bool CoverageCompiledIn() {
#if KOP_COVERAGE_ENABLED
  return true;
#else
  return false;
#endif
}

size_t CoverageMap::CoveredSlots() const {
  size_t covered = 0;
  for (uint8_t slot : map_) covered += slot != 0;
  return covered;
}

std::vector<uint32_t> CoverageMap::Slots() const {
  std::vector<uint32_t> slots;
  for (size_t i = 0; i < kSlots; ++i) {
    if (map_[i] != 0) slots.push_back(static_cast<uint32_t>(i));
  }
  return slots;
}

size_t CoverageMap::MergeCountingNew(const CoverageMap& other) {
  size_t fresh = 0;
  for (size_t i = 0; i < kSlots; ++i) {
    if (other.map_[i] == 0) continue;
    if (map_[i] == 0) ++fresh;
    const unsigned sum = map_[i] + other.map_[i];
    map_[i] = sum > 0xff ? 0xff : static_cast<uint8_t>(sum);
  }
  return fresh;
}

uint64_t CoverageMap::Digest() const {
  // FNV-1a over covered slot indices: counts deliberately excluded so
  // the digest compares path sets, not trial-order-dependent heat.
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < kSlots; ++i) {
    if (map_[i] == 0) continue;
    hash ^= i;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

CoverageMap* ThreadCoverage() { return tls_coverage; }

ScopedCoverage::ScopedCoverage(CoverageMap* map) : prev_(tls_coverage) {
  tls_coverage = map;
}

ScopedCoverage::~ScopedCoverage() { tls_coverage = prev_; }

}  // namespace kop::kir
