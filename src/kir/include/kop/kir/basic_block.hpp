// Basic blocks: named, ordered instruction lists ending in a terminator.
// std::list ownership gives the guard-injection pass O(1) insert-before,
// which is all CARAT KOP's transform needs.
#pragma once

#include <list>
#include <memory>
#include <string>

#include "kop/kir/instruction.hpp"

namespace kop::kir {

class Function;

class BasicBlock {
 public:
  using InstList = std::list<std::unique_ptr<Instruction>>;
  using iterator = InstList::iterator;
  using const_iterator = InstList::const_iterator;

  BasicBlock(std::string label, Function* parent)
      : label_(std::move(label)), parent_(parent) {}
  BasicBlock(const BasicBlock&) = delete;
  BasicBlock& operator=(const BasicBlock&) = delete;

  const std::string& label() const { return label_; }
  Function* parent() const { return parent_; }

  iterator begin() { return insts_.begin(); }
  iterator end() { return insts_.end(); }
  const_iterator begin() const { return insts_.begin(); }
  const_iterator end() const { return insts_.end(); }
  bool empty() const { return insts_.empty(); }
  size_t size() const { return insts_.size(); }

  /// Append; returns the instruction for chaining.
  Instruction* Append(std::unique_ptr<Instruction> inst) {
    inst->set_parent(this);
    insts_.push_back(std::move(inst));
    return insts_.back().get();
  }

  /// Insert before `pos`; returns an iterator to the new instruction.
  iterator InsertBefore(iterator pos, std::unique_ptr<Instruction> inst) {
    inst->set_parent(this);
    return insts_.insert(pos, std::move(inst));
  }

  /// Remove and destroy the instruction at `pos`; returns the next one.
  iterator Erase(iterator pos) { return insts_.erase(pos); }

  /// The terminator, or nullptr if the block is unterminated (invalid IR).
  Instruction* Terminator() {
    if (insts_.empty() || !insts_.back()->IsTerminator()) return nullptr;
    return insts_.back().get();
  }
  const Instruction* Terminator() const {
    if (insts_.empty() || !insts_.back()->IsTerminator()) return nullptr;
    return insts_.back().get();
  }

 private:
  std::string label_;
  Function* parent_;
  InstList insts_;
};

}  // namespace kop::kir
