// Shared CFG utilities: dense block numbering, predecessor/successor
// edges, reverse postorder and the dominator tree. Lifted out of the
// verifier so every client that reasons about control flow — the SSA
// dominance check, the guard optimizer, the kop::analysis dataflow
// framework — computes these views exactly once and exactly the same
// way. A disagreement between the optimizer's and the verifier's idea of
// "reachable" or "dominates" would be a soundness hole; sharing the code
// removes the possibility.
#pragma once

#include <unordered_map>
#include <vector>

#include "kop/kir/function.hpp"

namespace kop::kir {

/// Control-flow views of one function, computed eagerly at construction.
/// Blocks are identified by their creation-order index within the
/// function (the same numbering Function::blocks() exposes).
class Cfg {
 public:
  explicit Cfg(const Function& fn);

  const Function& function() const { return fn_; }
  size_t size() const { return blocks_.size(); }

  /// Creation-order index of `block` within the function.
  size_t IndexOf(const BasicBlock* block) const { return index_.at(block); }

  const std::vector<const BasicBlock*>& blocks() const { return blocks_; }
  const std::vector<const BasicBlock*>& preds(const BasicBlock* block) const {
    return preds_[IndexOf(block)];
  }
  const std::vector<const BasicBlock*>& succs(const BasicBlock* block) const {
    return succs_[IndexOf(block)];
  }

  /// Reverse postorder over blocks reachable from the entry. The natural
  /// iteration order for forward dataflow; iterate it backwards for
  /// backward dataflow.
  const std::vector<const BasicBlock*>& ReversePostorder() const {
    return rpo_;
  }

  /// False for blocks no path from the entry reaches.
  bool IsReachable(const BasicBlock* block) const {
    return reachable_[IndexOf(block)];
  }

 private:
  const Function& fn_;
  std::vector<const BasicBlock*> blocks_;
  std::unordered_map<const BasicBlock*, size_t> index_;
  std::vector<std::vector<const BasicBlock*>> preds_;
  std::vector<std::vector<const BasicBlock*>> succs_;
  std::vector<const BasicBlock*> rpo_;
  std::vector<bool> reachable_;
};

/// Dominator tree over a Cfg (Cooper-Harvey-Kennedy iterative algorithm).
/// The entry block's idom is itself; unreachable blocks have none.
class DominatorTree {
 public:
  explicit DominatorTree(const Cfg& cfg);

  /// Immediate dominator of `block`; the entry maps to itself and
  /// unreachable blocks map to nullptr.
  const BasicBlock* Idom(const BasicBlock* block) const {
    return idom_[cfg_.IndexOf(block)];
  }

  /// True when every path from the entry to `b` passes through `a`
  /// (reflexive: a block dominates itself).
  bool Dominates(const BasicBlock* a, const BasicBlock* b) const;

  /// The raw idom array indexed by block creation order (the historical
  /// ComputeImmediateDominators output shape).
  const std::vector<const BasicBlock*>& idoms() const { return idom_; }

 private:
  const Cfg& cfg_;
  std::vector<const BasicBlock*> idom_;
};

/// Compute the immediate dominator of every block (entry maps to itself).
/// Convenience wrapper over Cfg + DominatorTree kept for callers that
/// need only the array once.
std::vector<const BasicBlock*> ComputeImmediateDominators(const Function& fn);

/// True when block `a` dominates block `b` under `idom` from
/// ComputeImmediateDominators (blocks identified by function block index).
bool BlockDominates(const Function& fn,
                    const std::vector<const BasicBlock*>& idom,
                    const BasicBlock* a, const BasicBlock* b);

}  // namespace kop::kir
