// Functions: a signature plus (for definitions) an ordered list of basic
// blocks. External declarations — e.g. `carat_guard`, resolved against
// the kernel's exported-symbol table at insmod — have no blocks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kop/kir/basic_block.hpp"
#include "kop/kir/value.hpp"

namespace kop::kir {

class Module;

class Function {
 public:
  Function(std::string name, Type return_type,
           std::vector<std::pair<Type, std::string>> params, bool is_external,
           Module* parent);
  Function(const Function&) = delete;
  Function& operator=(const Function&) = delete;

  const std::string& name() const { return name_; }
  Type return_type() const { return return_type_; }
  bool is_external() const { return is_external_; }
  Module* parent() const { return parent_; }

  const std::vector<std::unique_ptr<Argument>>& args() const { return args_; }
  Argument* arg(size_t i) { return args_[i].get(); }
  size_t arg_count() const { return args_.size(); }

  const std::vector<std::unique_ptr<BasicBlock>>& blocks() const {
    return blocks_;
  }
  BasicBlock* entry() { return blocks_.empty() ? nullptr : blocks_[0].get(); }

  /// Create and append a block with a unique label within the function.
  BasicBlock* CreateBlock(const std::string& label);

  /// Find a block by label; nullptr when absent.
  BasicBlock* FindBlock(const std::string& label);

  /// Total instruction count across all blocks.
  size_t InstructionCount() const;

  /// Next unique temp id for naming pass-created values (%t0, %t1, ...).
  unsigned TakeNextTempId() { return next_temp_id_++; }

  /// Ensure future temp ids are all > `id` (the parser calls this when it
  /// sees an explicit %tN name, so pass-inserted values never collide).
  void ReserveTempId(unsigned id) {
    if (id >= next_temp_id_) next_temp_id_ = id + 1;
  }

 private:
  std::string name_;
  Type return_type_;
  bool is_external_;
  Module* parent_;
  std::vector<std::unique_ptr<Argument>> args_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
  unsigned next_temp_id_ = 0;
};

}  // namespace kop::kir
