// KIR module verifier. Run after parsing and after every transform pass;
// the kernel's loader also runs it at insmod time — malformed IR must
// never reach the interpreter. Checks structural well-formedness, type
// consistency, call signatures against in-module declarations, and SSA
// dominance (computed from a real dominator tree).
#pragma once

#include <string>

// CFG + dominator utilities historically declared here live in cfg.hpp
// now; kept included so existing callers keep compiling.
#include "kop/kir/cfg.hpp"
#include "kop/kir/module.hpp"
#include "kop/util/status.hpp"

namespace kop::kir {

/// Verify the whole module. The status message of a failure names the
/// function, block and instruction at fault.
Status VerifyModule(const Module& module);

/// Verify one function (used by unit tests for targeted checks).
Status VerifyFunction(const Function& fn);

}  // namespace kop::kir
