// KIR module verifier. Run after parsing and after every transform pass;
// the kernel's loader also runs it at insmod time — malformed IR must
// never reach the interpreter. Checks structural well-formedness, type
// consistency, call signatures against in-module declarations, and SSA
// dominance (computed from a real dominator tree).
#pragma once

#include <string>
#include <vector>

#include "kop/kir/module.hpp"
#include "kop/util/status.hpp"

namespace kop::kir {

/// Verify the whole module. The status message of a failure names the
/// function, block and instruction at fault.
Status VerifyModule(const Module& module);

/// Verify one function (used by unit tests for targeted checks).
Status VerifyFunction(const Function& fn);

/// Compute the immediate dominator of every block (entry maps to itself).
/// Exposed for tests and for the guard-hoisting ablation pass.
std::vector<const BasicBlock*> ComputeImmediateDominators(const Function& fn);

/// True when block `a` dominates block `b` under `idom` from
/// ComputeImmediateDominators (blocks identified by function block index).
bool BlockDominates(const Function& fn,
                    const std::vector<const BasicBlock*>& idom,
                    const BasicBlock* a, const BasicBlock* b);

}  // namespace kop::kir
