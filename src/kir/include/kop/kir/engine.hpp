// Execution-engine interfaces shared by the two KIR engines: the
// tree-walking reference interpreter (interp.hpp) and the bytecode VM
// (vm.hpp). A loaded module runs against an abstract memory (the
// simulated kernel address space) and an external-call resolver (the
// kernel's exported-symbol table); which engine drives the IR is the
// module loader's choice and must be observationally invisible.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "kop/util/status.hpp"

namespace kop::kir {

/// Abstract memory the engines load from / store to. `size` is the
/// access width in bytes (1/2/4/8).
class MemoryInterface {
 public:
  virtual ~MemoryInterface() = default;
  virtual Result<uint64_t> Load(uint64_t addr, uint32_t size) = 0;
  virtual Status Store(uint64_t addr, uint64_t value, uint32_t size) = 0;
};

/// Resolves calls that leave the module (kernel exports and intrinsics).
class ExternalResolver {
 public:
  virtual ~ExternalResolver() = default;
  virtual Result<uint64_t> CallExternal(const std::string& name,
                                        const std::vector<uint64_t>& args) = 0;

  /// Variant carrying the call site's module-wide ordinal: the index of
  /// this kCall among all kCall instructions in the module, in function /
  /// block / instruction order. The loader uses it to attribute guard
  /// calls to the exact injected site (the simulated return address).
  /// Default forwards to the ordinal-less overload.
  virtual Result<uint64_t> CallExternal(const std::string& name,
                                        const std::vector<uint64_t>& args,
                                        uint64_t call_ordinal) {
    (void)call_ordinal;
    return CallExternal(name, args);
  }

  /// Compiled-engine fast path. A resolver that can pre-resolve `name`
  /// (symbol-table entry, intrinsic id, guard hook) returns an opaque
  /// handle here, bound ONCE when the engine is constructed; every later
  /// call at that callee goes through CallBound with the handle and never
  /// re-examines the name. nullopt means no binding is available and the
  /// engine must use the name-keyed CallExternal path.
  virtual std::optional<uint64_t> BindExternal(const std::string& name) {
    (void)name;
    return std::nullopt;
  }

  /// Invoke a callee previously bound with BindExternal. `call_ordinal`
  /// carries the same site-attribution channel as the name-keyed variant.
  virtual Result<uint64_t> CallBound(uint64_t handle,
                                     const std::vector<uint64_t>& args,
                                     uint64_t call_ordinal) {
    (void)handle;
    (void)args;
    (void)call_ordinal;
    return Internal("CallBound on a resolver without BindExternal");
  }

  // ------------------------------------------------------------------
  // Inline-guard fast path (DESIGN.md §15). The engines bracket every
  // top-level Call with PinGuardFrame/UnpinGuardFrame and execute
  // recognized guard calls (kGuardInline/kGuardRange in the VM, the
  // matching kCall pattern in the interpreter) through FastGuard /
  // FastGuardRange. A `true` return means the access was proven allowed
  // against the pinned policy frame AND fully accounted; `false` means
  // deopt — the engine must fall back to the ordinary CallExternal /
  // CallBound path, which re-decides with full violation attribution and
  // containment semantics. The defaults keep resolvers without a fast
  // path (tests, recording resolvers) on the slow path everywhere, which
  // preserves observational identity by construction.
  // ------------------------------------------------------------------

  /// Pin the policy frame for the calling CPU for the duration of one
  /// top-level call. False = no fast path available (skip Unpin).
  virtual bool PinGuardFrame() { return false; }
  virtual void UnpinGuardFrame() {}
  /// Inline carat_guard(addr, size, flags) at kCall ordinal
  /// `call_ordinal`. True = allowed and accounted.
  virtual bool FastGuard(uint64_t addr, uint64_t size, uint64_t flags,
                         uint64_t call_ordinal) {
    (void)addr;
    (void)size;
    (void)flags;
    (void)call_ordinal;
    return false;
  }
  /// Inline carat_guard_range(addr, size, flags, elided).
  virtual bool FastGuardRange(uint64_t addr, uint64_t size, uint64_t flags,
                              uint64_t elided, uint64_t call_ordinal) {
    (void)addr;
    (void)size;
    (void)flags;
    (void)elided;
    (void)call_ordinal;
    return false;
  }
  /// Inline carat_cfi_check(target, set_id) at kCall ordinal
  /// `call_ordinal` (DESIGN.md §16). True = the indirect-call target was
  /// proven a member of the pinned frame's target set AND accounted;
  /// false = deopt to the slow path, which owns violation semantics so
  /// containment is byte-identical whether the fast path fired or not.
  virtual bool FastCfiCheck(uint64_t target, uint64_t set_id,
                            uint64_t call_ordinal) {
    (void)target;
    (void)set_id;
    (void)call_ordinal;
    return false;
  }
};

struct InterpConfig {
  /// Stack arena in simulated memory for allocas (provided by the loader).
  uint64_t stack_base = 0;
  uint64_t stack_size = 64 * 1024;
  /// Engine-lifetime execution budget; exceeded -> error (kernel would
  /// watchdog).
  uint64_t max_steps = 50'000'000;
  /// Per-call watchdog: one top-level Call may run at most this many
  /// steps before it is cut off with kTimeout (0 = no watchdog). The
  /// module loader arms this so a module stuck in a loop loses its CPU
  /// instead of hanging the (simulated) machine.
  uint64_t watchdog_steps = 0;
  /// Intra-module call depth limit.
  uint32_t max_call_depth = 256;
};

struct InterpStats {
  uint64_t steps = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t calls_internal = 0;
  uint64_t calls_external = 0;
};

/// Fault-state snapshot for postmortem bundles: what the engine was
/// doing when the most recent top-level call failed (guard violation,
/// panic, watchdog expiry, or any error result). Deliberately
/// engine-NEUTRAL — the innermost faulting function, its call depth,
/// its incoming arguments, and the retired-operation counters at the
/// instant of the fault — every field the differential contract makes
/// identical between the interpreter and the VM, so a postmortem bundle
/// is byte-identical whichever engine produced it. (stats.steps doubles
/// as the virtual program counter: both engines retire the same
/// instruction sequence.)
struct EngineSnapshot {
  bool valid = false;
  std::string function;        // innermost frame at fault
  uint32_t depth = 0;          // intra-module call depth of that frame
  std::vector<uint64_t> args;  // the frame's incoming args (first 8)
  InterpStats stats;           // counters at the instant of the fault
};

/// What the module loader holds: call entry points, read counters. Both
/// engines implement this and must agree on every observable — results,
/// memory effects, external-call sequence with ordinals, and the counters
/// (engine_test.cpp enforces it differentially).
class ExecutionEngine {
 public:
  virtual ~ExecutionEngine() = default;

  /// Call a defined function by name with integer/pointer arguments.
  virtual Result<uint64_t> Call(const std::string& fn_name,
                                const std::vector<uint64_t>& args) = 0;

  virtual const InterpStats& stats() const = 0;
  virtual void ResetStats() = 0;

  /// Re-arm the per-call watchdog (0 disables). Takes effect at the next
  /// top-level Call; a call already in flight keeps its deadline.
  virtual void set_watchdog_steps(uint64_t steps) { (void)steps; }

  /// Fault state of the most recent top-level Call, valid only if that
  /// call failed (cleared at the next top-level entry). The containment
  /// path reads this into the postmortem bundle.
  virtual EngineSnapshot LastFaultState() const { return {}; }

  /// "interp" or "bytecode" — for logs and bench annotations.
  virtual std::string_view engine_name() const = 0;
};

/// The invalid-indirect-target fault both engines report, built in one
/// place so the text is bit-identical between them. A target that is not
/// the simulated address of any module function (forged pointer, flipped
/// bit, mid-function address) faults like a wild memory access: an
/// oops-style error, not containment — the CFI check that precedes every
/// gated indirect call owns containment semantics.
inline Status IndirectCallInvalidTarget(uint64_t target,
                                        const std::string& fn_name) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(target));
  return PermissionDenied("indirect call to invalid target " +
                          std::string(buf) + " in @" + fn_name);
}

/// The step-budget error both engines report, built in one place so the
/// text is bit-identical between them (engine_test.cpp pins observable
/// equality). `step_limit` is the deadline that actually fired: when the
/// armed watchdog cut the call short of the lifetime budget the error is
/// kTimeout, otherwise the lifetime-budget kInternal error.
inline Status StepBudgetExceeded(const InterpConfig& config,
                                 uint64_t step_limit) {
  if (config.watchdog_steps != 0 && step_limit < config.max_steps) {
    return Timeout("module call exceeded its watchdog step budget (" +
                   std::to_string(config.watchdog_steps) + " steps)");
  }
  return Internal("execution budget exceeded (" +
                  std::to_string(config.max_steps) + " steps)");
}

}  // namespace kop::kir
