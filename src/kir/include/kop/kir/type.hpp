// KIR type system. Deliberately small: CARAT KOP's transform operates on
// loads and stores of scalar values, so KIR has scalar integer types and
// an opaque 64-bit pointer. Aggregates are handled the way the LLVM
// middle-end ultimately handles them for memory purposes: as byte offsets
// computed by `gep`.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace kop::kir {

enum class Type : uint8_t {
  kVoid,
  kI1,
  kI8,
  kI16,
  kI32,
  kI64,
  kPtr,  // opaque pointer; 64-bit
};

/// Width in bits; void is 0, ptr is 64.
constexpr unsigned BitWidth(Type type) {
  switch (type) {
    case Type::kVoid: return 0;
    case Type::kI1: return 1;
    case Type::kI8: return 8;
    case Type::kI16: return 16;
    case Type::kI32: return 32;
    case Type::kI64: return 64;
    case Type::kPtr: return 64;
  }
  return 0;
}

/// Size in bytes as stored in memory (i1 occupies one byte).
constexpr unsigned StoreSize(Type type) {
  switch (type) {
    case Type::kVoid: return 0;
    case Type::kI1: return 1;
    case Type::kI8: return 1;
    case Type::kI16: return 2;
    case Type::kI32: return 4;
    case Type::kI64: return 8;
    case Type::kPtr: return 8;
  }
  return 0;
}

constexpr bool IsInteger(Type type) {
  return type == Type::kI1 || type == Type::kI8 || type == Type::kI16 ||
         type == Type::kI32 || type == Type::kI64;
}

constexpr bool IsFirstClass(Type type) {
  return type != Type::kVoid;
}

constexpr std::string_view TypeName(Type type) {
  switch (type) {
    case Type::kVoid: return "void";
    case Type::kI1: return "i1";
    case Type::kI8: return "i8";
    case Type::kI16: return "i16";
    case Type::kI32: return "i32";
    case Type::kI64: return "i64";
    case Type::kPtr: return "ptr";
  }
  return "?";
}

/// Parse a type name; nullopt when not a type token.
std::optional<Type> ParseTypeName(std::string_view token);

/// Truncate/extend `raw` to the value domain of `type` (e.g. i1 -> 0/1,
/// i8 -> low byte). Pointers and i64 pass through.
constexpr uint64_t ClampToType(uint64_t raw, Type type) {
  const unsigned bits = BitWidth(type);
  if (bits == 0) return 0;
  if (bits >= 64) return raw;
  return raw & ((uint64_t{1} << bits) - 1);
}

/// Sign-extend a value of `type` to a signed 64-bit integer.
constexpr int64_t SignExtend(uint64_t raw, Type type) {
  const unsigned bits = BitWidth(type);
  if (bits == 0 || bits >= 64) return static_cast<int64_t>(raw);
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  raw &= mask;
  const uint64_t sign_bit = uint64_t{1} << (bits - 1);
  if (raw & sign_bit) raw |= ~mask;
  return static_cast<int64_t>(raw);
}

}  // namespace kop::kir
