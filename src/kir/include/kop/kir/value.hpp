// KIR value hierarchy. Everything an instruction can use as an operand is
// a Value: integer constants, function arguments, globals, instruction
// results. Values are owned by their defining container (Module owns
// constants and globals, Function owns arguments, BasicBlock owns
// instructions); operands are non-owning Value*.
#pragma once

#include <cstdint>
#include <string>

#include "kop/kir/type.hpp"

namespace kop::kir {

enum class ValueKind : uint8_t {
  kConstant,
  kArgument,
  kGlobal,
  kInstruction,
};

class Value {
 public:
  Value(ValueKind kind, Type type, std::string name)
      : kind_(kind), type_(type), name_(std::move(name)) {}
  virtual ~Value() = default;
  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  ValueKind kind() const { return kind_; }
  Type type() const { return type_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  ValueKind kind_;
  Type type_;
  std::string name_;
};

/// An integer (or pointer) literal, uniqued per (type, bits) by the Module.
class Constant : public Value {
 public:
  Constant(Type type, uint64_t bits)
      : Value(ValueKind::kConstant, type, ""), bits_(ClampToType(bits, type)) {}

  uint64_t bits() const { return bits_; }
  int64_t signed_bits() const { return SignExtend(bits_, type()); }

  static bool classof(const Value* v) {
    return v->kind() == ValueKind::kConstant;
  }

 private:
  uint64_t bits_;
};

/// A formal parameter of a function.
class Argument : public Value {
 public:
  Argument(Type type, std::string name, unsigned index)
      : Value(ValueKind::kArgument, type, std::move(name)), index_(index) {}

  unsigned index() const { return index_; }

  static bool classof(const Value* v) {
    return v->kind() == ValueKind::kArgument;
  }

 private:
  unsigned index_;
};

/// A module-level global variable. Its Value is the *address* (ptr).
/// The concrete address is assigned at load time by the module loader;
/// within the IR a global is symbolic.
class GlobalVariable : public Value {
 public:
  GlobalVariable(std::string name, uint64_t size_bytes, bool writable,
                 std::string init_bytes = {})
      : Value(ValueKind::kGlobal, Type::kPtr, std::move(name)),
        size_bytes_(size_bytes),
        writable_(writable),
        init_bytes_(std::move(init_bytes)) {}

  uint64_t size_bytes() const { return size_bytes_; }
  bool writable() const { return writable_; }
  /// Initial contents (may be shorter than size; rest is zero).
  const std::string& init_bytes() const { return init_bytes_; }

  static bool classof(const Value* v) {
    return v->kind() == ValueKind::kGlobal;
  }

 private:
  uint64_t size_bytes_;
  bool writable_;
  std::string init_bytes_;
};

/// LLVM-style isa/cast helpers (minimal, assert-free dyn variant).
template <typename T>
bool isa(const Value* v) {
  return v != nullptr && T::classof(v);
}

template <typename T>
T* dyn_cast(Value* v) {
  return isa<T>(v) ? static_cast<T*>(v) : nullptr;
}

template <typename T>
const T* dyn_cast(const Value* v) {
  return isa<T>(v) ? static_cast<const T*>(v) : nullptr;
}

}  // namespace kop::kir
