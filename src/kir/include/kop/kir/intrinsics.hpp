// The "kir.*" hardware-intrinsic namespace, interned once. Three layers
// dispatch on these names — the transform's §5 wrap pass, the kernel
// resolver's runtime dispatch, and the bytecode compiler's extern
// interning — and they must agree on the id of each intrinsic because
// the id is what carat_intrinsic_guard receives and what the policy
// module's permission table is keyed by. This table is the single source
// of truth; transform::PrivilegedIntrinsic aliases these values.
#pragma once

#include <cstdint>
#include <string_view>

namespace kop::kir {

/// Stable ids for the privileged intrinsics KIR knows about. kNone means
/// "a kir.* callee this table does not model" — executed as a no-op, the
/// way the kernel resolver always treated e.g. an unknown fence.
enum class Intrinsic : uint64_t {
  kNone = 0,
  kCli = 1,     // disable interrupts
  kSti = 2,     // enable interrupts
  kRdmsr = 3,   // read model-specific register
  kWrmsr = 4,   // write model-specific register
  kInb = 5,     // port I/O read
  kOutb = 6,    // port I/O write
  kInvlpg = 7,  // TLB shootdown
  kHlt = 8,     // halt
};

/// True when `name` lives in the intrinsic namespace ("kir." prefix).
bool IsIntrinsicName(std::string_view name);

/// Map an intrinsic callee name ("kir.cli") to its id. kNone both for
/// names outside the namespace and for unmodeled "kir.*" names — pair
/// with IsIntrinsicName to tell them apart.
Intrinsic IntrinsicFromName(std::string_view name);

std::string_view IntrinsicName(Intrinsic intrinsic);

}  // namespace kop::kir
