// Textual form of KIR. PrintModule and the parser round-trip: the printed
// text is the canonical serialization that gets signed by the CARAT KOP
// compiler and re-validated by the kernel at insmod.
#pragma once

#include <string>

#include "kop/kir/module.hpp"

namespace kop::kir {

std::string PrintInstruction(const Instruction& inst);
std::string PrintFunction(const Function& fn);
std::string PrintModule(const Module& module);

}  // namespace kop::kir
