// A KIR module: the unit CARAT KOP compiles, signs, validates and loads —
// the analogue of one .ko. Owns globals, functions and the uniqued
// constant pool.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kop/kir/function.hpp"
#include "kop/kir/value.hpp"

namespace kop::kir {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Uniqued integer/pointer constant.
  Constant* GetConstant(Type type, uint64_t bits);
  Constant* GetI64(uint64_t bits) { return GetConstant(Type::kI64, bits); }

  /// Define a global variable. Fails (returns nullptr) on duplicate name.
  GlobalVariable* AddGlobal(const std::string& name, uint64_t size_bytes,
                            bool writable, std::string init_bytes = {});
  GlobalVariable* FindGlobal(const std::string& name);
  const std::vector<std::unique_ptr<GlobalVariable>>& globals() const {
    return globals_;
  }

  /// Create a function (definition or external declaration). Fails
  /// (nullptr) on duplicate name.
  Function* CreateFunction(const std::string& name, Type return_type,
                           std::vector<std::pair<Type, std::string>> params,
                           bool is_external = false);
  Function* FindFunction(const std::string& name);
  const Function* FindFunction(const std::string& name) const;
  const std::vector<std::unique_ptr<Function>>& functions() const {
    return functions_;
  }

  /// Names of external declarations (the module's import list).
  std::vector<std::string> ExternalFunctionNames() const;

  /// Total instruction count over all defined functions.
  size_t InstructionCount() const;

  /// Count of load + store instructions (the transform's work list).
  size_t MemoryAccessCount() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<GlobalVariable>> globals_;
  std::vector<std::unique_ptr<Function>> functions_;
  std::map<std::pair<Type, uint64_t>, std::unique_ptr<Constant>> constants_;
};

}  // namespace kop::kir
