// A KIR module: the unit CARAT KOP compiles, signs, validates and loads —
// the analogue of one .ko. Owns globals, functions and the uniqued
// constant pool.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kop/kir/function.hpp"
#include "kop/kir/value.hpp"

namespace kop::kir {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Uniqued integer/pointer constant.
  Constant* GetConstant(Type type, uint64_t bits);
  Constant* GetI64(uint64_t bits) { return GetConstant(Type::kI64, bits); }

  /// Define a global variable. Fails (returns nullptr) on duplicate name.
  GlobalVariable* AddGlobal(const std::string& name, uint64_t size_bytes,
                            bool writable, std::string init_bytes = {});
  GlobalVariable* FindGlobal(const std::string& name);
  const std::vector<std::unique_ptr<GlobalVariable>>& globals() const {
    return globals_;
  }

  /// Create a function (definition or external declaration). Fails
  /// (nullptr) on duplicate name.
  Function* CreateFunction(const std::string& name, Type return_type,
                           std::vector<std::pair<Type, std::string>> params,
                           bool is_external = false);
  Function* FindFunction(const std::string& name);
  const Function* FindFunction(const std::string& name) const;
  const std::vector<std::unique_ptr<Function>>& functions() const {
    return functions_;
  }

  /// Names of external declarations (the module's import list).
  std::vector<std::string> ExternalFunctionNames() const;

  /// Position of a function (defined or extern) in declaration order, or
  /// -1 if absent. The basis of the simulated function-address scheme.
  int FunctionIndex(const std::string& name) const;

  /// Total instruction count over all defined functions.
  size_t InstructionCount() const;

  /// Count of load + store instructions (the transform's work list).
  size_t MemoryAccessCount() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<GlobalVariable>> globals_;
  std::vector<std::unique_ptr<Function>> functions_;
  std::map<std::pair<Type, uint64_t>, std::unique_ptr<Constant>> constants_;
};

// ------------------------------------------------------------------------
// Simulated function addresses. funcaddr materializes one of these; the
// indirect-call dispatch in both engines and the CFI target-set tables
// registered at insmod map them back. Deterministic from declaration
// order alone, so the compiler, the static verifier's re-derivation, the
// loader and both engines agree without any side channel. The base sits
// far outside every simulated RAM region: a module that loads or stores
// through a function pointer faults like any other wild pointer.
inline constexpr uint64_t kFunctionAddrBase = 0xF0DE000000000000ull;
inline constexpr uint64_t kFunctionAddrStride = 16;

inline constexpr uint64_t FunctionAddressForIndex(size_t index) {
  return kFunctionAddrBase + static_cast<uint64_t>(index) * kFunctionAddrStride;
}

/// Index encoded by a simulated function address, or -1 when the address
/// is outside the function-address range, misaligned, or past `count`.
inline constexpr int FunctionIndexForAddress(uint64_t addr, size_t count) {
  if (addr < kFunctionAddrBase) return -1;
  const uint64_t delta = addr - kFunctionAddrBase;
  if (delta % kFunctionAddrStride != 0) return -1;
  const uint64_t index = delta / kFunctionAddrStride;
  if (index >= count) return -1;
  return static_cast<int>(index);
}

}  // namespace kop::kir
