// The KIR interpreter: executes a loaded module against an abstract
// memory (the simulated kernel address space) and an external-call
// resolver (the kernel's exported-symbol table). This is how a protected
// module "runs inside the kernel" in the simulation — its loads and
// stores really happen, and the guard calls the transform injected really
// reach the policy module.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "kop/kir/module.hpp"
#include "kop/util/status.hpp"

namespace kop::kir {

/// Abstract memory the interpreter loads from / stores to. `size` is the
/// access width in bytes (1/2/4/8).
class MemoryInterface {
 public:
  virtual ~MemoryInterface() = default;
  virtual Result<uint64_t> Load(uint64_t addr, uint32_t size) = 0;
  virtual Status Store(uint64_t addr, uint64_t value, uint32_t size) = 0;
};

/// Resolves calls that leave the module (kernel exports and intrinsics).
class ExternalResolver {
 public:
  virtual ~ExternalResolver() = default;
  virtual Result<uint64_t> CallExternal(const std::string& name,
                                        const std::vector<uint64_t>& args) = 0;

  /// Variant carrying the call site's module-wide ordinal: the index of
  /// this kCall among all kCall instructions in the module, in function /
  /// block / instruction order. The loader uses it to attribute guard
  /// calls to the exact injected site (the simulated return address).
  /// Default forwards to the ordinal-less overload.
  virtual Result<uint64_t> CallExternal(const std::string& name,
                                        const std::vector<uint64_t>& args,
                                        uint64_t call_ordinal) {
    (void)call_ordinal;
    return CallExternal(name, args);
  }
};

struct InterpConfig {
  /// Stack arena in simulated memory for allocas (provided by the loader).
  uint64_t stack_base = 0;
  uint64_t stack_size = 64 * 1024;
  /// Execution budget; exceeded -> error (kernel would watchdog).
  uint64_t max_steps = 50'000'000;
  /// Intra-module call depth limit.
  uint32_t max_call_depth = 256;
};

struct InterpStats {
  uint64_t steps = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t calls_internal = 0;
  uint64_t calls_external = 0;
};

class Interpreter {
 public:
  /// `global_addresses` maps each module global to its simulated address,
  /// as assigned by the module loader.
  Interpreter(const Module& module, MemoryInterface& memory,
              ExternalResolver& resolver,
              std::unordered_map<std::string, uint64_t> global_addresses,
              const InterpConfig& config = InterpConfig());

  /// Call a defined function by name with integer/pointer arguments.
  Result<uint64_t> Call(const std::string& fn_name,
                        const std::vector<uint64_t>& args);

  const InterpStats& stats() const { return stats_; }
  void ResetStats() { stats_ = InterpStats(); }

 private:
  Result<uint64_t> Execute(const Function& fn,
                           const std::vector<uint64_t>& args, uint32_t depth,
                           uint64_t stack_top);

  Result<uint64_t> GlobalAddress(const GlobalVariable* global) const;

  const Module& module_;
  MemoryInterface& memory_;
  ExternalResolver& resolver_;
  std::unordered_map<std::string, uint64_t> global_addresses_;
  InterpConfig config_;
  InterpStats stats_;
  /// Module-wide ordinal of each kCall instruction (function / block /
  /// instruction order), precomputed so the hot path is one hash lookup.
  std::unordered_map<const Instruction*, uint64_t> call_ordinals_;
};

}  // namespace kop::kir
