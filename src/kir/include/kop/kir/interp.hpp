// The KIR tree-walking interpreter: executes a loaded module against an
// abstract memory (the simulated kernel address space) and an external-
// call resolver (the kernel's exported-symbol table). This is how a
// protected module "runs inside the kernel" in the simulation — its loads
// and stores really happen, and the guard calls the transform injected
// really reach the policy module.
//
// Since the bytecode VM (vm.hpp) became the module loader's default
// engine, the interpreter's role is reference oracle: it walks the IR
// directly, which keeps it trivially auditable, and engine_test.cpp holds
// the VM to bit-identical observable behavior against it.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "kop/kir/engine.hpp"
#include "kop/kir/module.hpp"
#include "kop/util/status.hpp"

namespace kop::kir {

class Interpreter : public ExecutionEngine {
 public:
  /// `global_addresses` maps each module global to its simulated address,
  /// as assigned by the module loader.
  Interpreter(const Module& module, MemoryInterface& memory,
              ExternalResolver& resolver,
              std::unordered_map<std::string, uint64_t> global_addresses,
              const InterpConfig& config = InterpConfig());

  /// Call a defined function by name with integer/pointer arguments.
  Result<uint64_t> Call(const std::string& fn_name,
                        const std::vector<uint64_t>& args) override;

  const InterpStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = InterpStats(); }
  void set_watchdog_steps(uint64_t steps) override {
    config_.watchdog_steps = steps;
  }
  std::string_view engine_name() const override { return "interp"; }
  EngineSnapshot LastFaultState() const override { return fault_state_; }

 private:
  /// ExecuteFrame wrapped with frame-granular fault capture: error
  /// results and unwinding exceptions both stamp the frame into the
  /// snapshot (innermost frame wins), mirroring the VM exactly.
  Result<uint64_t> Execute(const Function& fn,
                           const std::vector<uint64_t>& args, uint32_t depth,
                           uint64_t stack_top);
  Result<uint64_t> ExecuteFrame(const Function& fn,
                                const std::vector<uint64_t>& args,
                                uint32_t depth, uint64_t stack_top);
  void RecordFault(const std::string& fn_name,
                   const std::vector<uint64_t>& args, uint32_t depth);

  Result<uint64_t> GlobalAddress(const GlobalVariable* global) const;

  const Module& module_;
  MemoryInterface& memory_;
  ExternalResolver& resolver_;
  std::unordered_map<std::string, uint64_t> global_addresses_;
  InterpConfig config_;
  InterpStats stats_;
  EngineSnapshot fault_state_;
  /// Step deadline for the call in flight: min(lifetime budget, steps at
  /// call entry + watchdog budget). Set at each top-level Call.
  uint64_t step_limit_ = InterpConfig().max_steps;
  /// Re-entry depth (a module calling back into itself through a kernel
  /// export) — only the outermost Call re-arms the watchdog deadline.
  uint32_t entry_depth_ = 0;
  /// Module-wide ordinal of each kCall instruction (function / block /
  /// instruction order), precomputed so the hot path is one hash lookup.
  std::unordered_map<const Instruction*, uint64_t> call_ordinals_;
};

}  // namespace kop::kir
