// Umbrella header for the KIR library.
#pragma once

#include "kop/kir/basic_block.hpp"   // IWYU pragma: export
#include "kop/kir/builder.hpp"       // IWYU pragma: export
#include "kop/kir/function.hpp"      // IWYU pragma: export
#include "kop/kir/instruction.hpp"   // IWYU pragma: export
#include "kop/kir/interp.hpp"        // IWYU pragma: export
#include "kop/kir/module.hpp"        // IWYU pragma: export
#include "kop/kir/parser.hpp"        // IWYU pragma: export
#include "kop/kir/printer.hpp"       // IWYU pragma: export
#include "kop/kir/type.hpp"          // IWYU pragma: export
#include "kop/kir/value.hpp"         // IWYU pragma: export
#include "kop/kir/verifier.hpp"      // IWYU pragma: export
