// The bytecode VM: the register-based execution engine the module loader
// uses by default. Construction binds the compiled module against its
// environment — global addresses patched into frame templates, external
// callees bound once through ExternalResolver::BindExternal — so the
// execute loop is a flat dispatch over pre-decoded instructions with no
// hash lookups, no string compares and no per-call allocation.
//
// The VM is observationally identical to the reference interpreter
// (interp.hpp): same results, same memory-effect order, same external
// calls with the same ordinals, same InterpStats, same error text.
// engine_test.cpp enforces this differentially over the module corpus.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "kop/kir/bytecode.hpp"
#include "kop/kir/engine.hpp"
#include "kop/util/status.hpp"

namespace kop::kir {

class VM : public ExecutionEngine {
 public:
  /// Bind `bytecode` to its runtime environment. Patches each global
  /// fixup with the loader-assigned address (fails like the interpreter
  /// does, but once, here, instead of on first use) and pre-binds every
  /// external callee the resolver offers a handle for.
  static Result<std::unique_ptr<VM>> Create(
      BytecodeModule bytecode, MemoryInterface& memory,
      ExternalResolver& resolver,
      const std::unordered_map<std::string, uint64_t>& global_addresses,
      const InterpConfig& config = InterpConfig());

  Result<uint64_t> Call(const std::string& fn_name,
                        const std::vector<uint64_t>& args) override;

  const InterpStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = InterpStats(); }
  void set_watchdog_steps(uint64_t steps) override {
    config_.watchdog_steps = steps;
  }
  std::string_view engine_name() const override { return "bytecode"; }
  EngineSnapshot LastFaultState() const override { return fault_state_; }

  const BytecodeModule& bytecode() const { return bytecode_; }

 private:
  VM(BytecodeModule bytecode, MemoryInterface& memory,
     ExternalResolver& resolver, const InterpConfig& config);

  Result<uint64_t> ExecuteFunction(uint32_t fn_index,
                                   const std::vector<uint64_t>& args,
                                   uint32_t depth, uint64_t stack_top);
  Result<uint64_t> RunFrame(const BytecodeFunction& fn, uint32_t fn_index,
                            size_t base, uint32_t depth, uint64_t stack_top);

  /// First (innermost) fault of the call in flight wins; later frames on
  /// the unwind path see `valid` already set and keep their hands off.
  void RecordFault(const std::string& fn_name,
                   const std::vector<uint64_t>& args, uint32_t depth);

  BytecodeModule bytecode_;
  MemoryInterface& memory_;
  ExternalResolver& resolver_;
  InterpConfig config_;
  InterpStats stats_;
  EngineSnapshot fault_state_;
  /// Step deadline for the call in flight: min(lifetime budget, steps at
  /// call entry + watchdog budget). Set at each top-level Call; nested
  /// frames read it through RunFrame (mirrors the interpreter exactly).
  uint64_t step_limit_ = InterpConfig().max_steps;
  /// Re-entry depth (resolver calling back into this VM) — only the
  /// outermost Call re-arms the watchdog deadline.
  uint32_t entry_depth_ = 0;

  /// Per-extern-id resolver handle from BindExternal; nullopt falls back
  /// to the name-keyed CallExternal path.
  std::vector<std::optional<uint64_t>> bindings_;

  /// Register arena: frames stack up at reg_top_; a frame re-fetches its
  /// base pointer after any call because growth reallocates.
  std::vector<uint64_t> reg_stack_;
  size_t reg_top_ = 0;

  /// Per-depth argument marshalling buffers (a frame builds at most one
  /// call at a time), so the hot path never allocates.
  std::vector<std::vector<uint64_t>> arg_buffers_;
};

}  // namespace kop::kir
