// KIR bytecode: the flat, pre-decoded form the register VM executes.
//
// The tree-walking interpreter pays for generality on every step: a
// hash-map SSA environment per frame, a phi scan per edge, string-keyed
// callee dispatch. The bytecode compiler pays all of that ONCE at load
// time instead:
//
//   - every SSA value gets a dense register number; the frame is a flat
//     uint64_t array, no hash lookups on the hot path,
//   - constants and (at VM-bind time) global addresses are folded into a
//     per-function frame template that frame setup memcpys,
//   - phi nodes are lowered to precomputed per-edge move lists with
//     parallel-copy semantics,
//   - branch targets are resolved to instruction indices,
//   - external callees are interned to symbol ids — guard calls and
//     kir.* intrinsics recognized at compile time — and bound once
//     against the resolver when the VM is constructed.
//
// Lowering is 1:1 for every non-phi instruction (phis become edge moves),
// which is what keeps the two engines' InterpStats identical: each
// executed BcInst is exactly one interpreter step. Bytecode is derived
// from the validated IR at insmod, after signature/attestation checks, so
// signing and attestation are unaffected by its existence.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "kop/kir/intrinsics.hpp"
#include "kop/kir/module.hpp"
#include "kop/util/status.hpp"

namespace kop::kir {

enum class BcOp : uint8_t {
  // Memory.
  kAlloca,  // dst = sp -= imm (imm pre-aligned to 16)
  kLoad,    // dst = mem[r(a)] & imm; width = access bytes
  kStore,   // mem[r(b)] = r(a); width = access bytes
  kGep,     // dst = r(a) + SignExtend(r(b), width bits) * imm2 + imm

  // Binary ALU: dst = (r(a) op r(b)) & imm; width = result bits.
  kAdd, kSub, kMul, kUDiv, kSDiv, kURem, kSRem,
  kAnd, kOr, kXor, kShl, kLShr, kAShr,

  kICmp,    // dst = pred(r(a), r(b)); aux = ICmpPred; width = operand bits

  // Conversions. kMove covers zext/trunc/ptrtoint/inttoptr: registers
  // hold values already clamped to their defining type, so only the
  // destination mask matters. kSExt re-extends from `width` source bits.
  kMove,    // dst = r(a) & imm
  kSExt,    // dst = SignExtend(r(a), width bits) & imm

  kSelect,  // dst = (r(a) != 0 ? r(b) : r(aux)) & imm

  // Control flow. Branch targets are instruction indices; dst/b hold
  // per-edge move-list ids (kNoMoves = the edge carries no phis).
  kBr,      // if r(a): moves[dst], pc = aux; else: moves[b], pc = imm
  kJmp,     // moves[dst], pc = aux
  kRetVoid,
  kRet,     // return r(a) & imm

  // Calls. Argument registers live in call_args[imm .. imm+b). width = 0
  // for void results, else result bits (dst written with mask of width).
  kCallInternal,  // aux = defined-function index; imm2 = result mask
  kCallExternal,  // aux = extern id; imm2 = module-wide call ordinal
  kGuard,         // kCallExternal whose callee the compiler recognized as
                  // carat_guard / carat_intrinsic_guard

  // Inline-guard fast path (DESIGN.md §15). Same operand layout as
  // kGuard (aux = extern id, imm = call_args offset, b = argc, imm2 =
  // call ordinal) — the VM reads the argument registers directly and
  // runs the resolver's pinned-frame range check; on deopt (no pin,
  // generation moved, fault injection, or check failure) it falls
  // through to the kGuard slow path, which re-decides with full
  // violation attribution and containment semantics.
  kGuardInline,  // carat_guard(addr, size, flags), exactly 3 args
  kGuardRange,   // carat_guard_range(addr, size, flags, elided), 4 args

  // CFI fast path (DESIGN.md §16). Operand layout of kGuardInline; the
  // VM reads (target, set_id) from the argument registers and runs the
  // resolver's pinned-frame target-set membership test; deopt falls
  // through to the kCallExternal slow path, which owns violation
  // attribution and containment semantics.
  kCfiCheck,  // carat_cfi_check(target, set_id), exactly 2 args

  // Indirect control flow. kFuncAddr folds the simulated function
  // address at compile time (it is deterministic from declaration
  // order); kCallIndirect reads the target from r(a) and dispatches
  // through the module's icall_targets table.
  kFuncAddr,      // dst = imm (simulated function address)
  kCallIndirect,  // a = target reg; args/ordinal laid out like kCallExternal

  kTrap,    // inline asm reached execution; aux = asm_texts index
};

std::string_view BcOpName(BcOp op);

/// One pre-decoded instruction. 32 bytes; field meaning is per-op (see
/// the BcOp comments). `src_index` is the original KIR instruction index
/// within the function (counting phis) — the stable coordinate guard-site
/// tables are keyed by, preserved so site attribution survives lowering.
struct BcInst {
  BcOp op = BcOp::kRetVoid;
  uint8_t width = 0;
  uint16_t dst = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  uint32_t aux = 0;
  uint32_t src_index = 0;
  uint64_t imm = 0;
  uint64_t imm2 = 0;
};

/// One phi move on a CFG edge: frame register src copied to dst. Lists
/// execute with parallel-copy semantics (all reads before any write).
struct BcMove {
  uint16_t src = 0;
  uint16_t dst = 0;
};

/// Sentinel move-list id: the edge has no phi moves.
inline constexpr uint16_t kNoMoves = 0xffff;

/// An interned external callee. Guard and intrinsic classification happen
/// here, at compile time, so the VM and the resolver's bound fast path
/// never examine the name again.
struct BcExtern {
  std::string name;
  Intrinsic intrinsic = Intrinsic::kNone;  // for "kir.*" callees
  bool is_guard = false;                   // carat_guard
  bool is_range_guard = false;             // carat_guard_range
  bool is_intrinsic_guard = false;         // carat_intrinsic_guard
  bool is_cfi_check = false;               // carat_cfi_check
};

/// Runtime dispatch entry for one IR function (defined or extern), in
/// declaration order — the bytecode image of the simulated function
/// address space. kCallIndirect decodes its target address to an index
/// into this table.
struct BcIcallTarget {
  bool is_internal = false;
  uint32_t index = 0;  // defined-function index, or extern id
};

/// A frame-template slot whose value is a global's address, known only at
/// load time: VM::Create patches template[reg] with the address assigned
/// to global_names[global].
struct BcGlobalFixup {
  uint16_t reg = 0;
  uint32_t global = 0;
};

struct BytecodeFunction {
  std::string name;
  Type return_type = Type::kVoid;
  uint16_t num_args = 0;
  uint16_t num_regs = 0;
  /// Per-argument clamp masks (ClampToType folded to an AND).
  std::vector<uint64_t> arg_masks;
  /// Registers [const_reg_begin, const_reg_end) hold compile-time values
  /// from the frame template (constants, or global addresses for regs
  /// named in global_fixups). Everything at const_reg_end and above is an
  /// instruction result. Guard-site reconstruction keys off this range.
  uint16_t const_reg_begin = 0;
  uint16_t const_reg_end = 0;
  /// Initial frame contents: constants pre-folded, global addresses
  /// patched at bind, everything else zero. Size num_regs.
  std::vector<uint64_t> frame_template;
  std::vector<BcGlobalFixup> global_fixups;
  std::vector<BcInst> code;
  std::vector<std::vector<BcMove>> edge_moves;
  std::vector<uint16_t> call_args;   // argument-register pool
  std::vector<std::string> asm_texts;  // kTrap payloads
};

struct BytecodeModule {
  std::string name;
  std::vector<BytecodeFunction> functions;  // defined functions, IR order
  std::unordered_map<std::string, uint32_t> function_index;
  std::vector<BcExtern> externs;
  std::vector<std::string> global_names;  // fixup targets, IR order
  std::vector<BcIcallTarget> icall_targets;  // all IR functions, decl order
};

/// Compile a (verified) module to bytecode. Fails on IR the verifier
/// would reject anyway (unterminated block, phi without an entry for a
/// predecessor edge) and on the >65535-registers-per-function limit.
Result<BytecodeModule> CompileToBytecode(const Module& module);

/// Human-readable listing of the whole module (kopcc inspect --bytecode).
std::string DisassembleBytecode(const BytecodeModule& bytecode);

}  // namespace kop::kir
