// Parser for the textual KIR form produced by PrintModule. The kernel's
// module loader parses the signed text at insmod time; the kirmods corpus
// is written directly in this syntax.
#pragma once

#include <memory>
#include <string_view>

#include "kop/kir/module.hpp"
#include "kop/util/status.hpp"

namespace kop::kir {

/// Parse a module from text. Errors carry a line number and what was
/// expected. The returned module has been name-resolved (all operand and
/// block references patched) but not verified — run the Verifier next.
Result<std::unique_ptr<Module>> ParseModule(std::string_view text);

}  // namespace kop::kir
