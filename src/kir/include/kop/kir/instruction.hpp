// KIR instructions. A single Instruction class parameterized by opcode
// keeps the parser, printer, verifier and interpreter in lockstep; the
// handful of opcode-specific fields (predicate, callee, targets, ...)
// live in the instruction and are validated by the verifier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kop/kir/value.hpp"

namespace kop::kir {

class BasicBlock;

enum class Opcode : uint8_t {
  // Memory.
  kAlloca,  // result=ptr; alloca_size_ bytes on the interpreter stack
  kLoad,    // result=type(); operand0=ptr
  kStore,   // operand0=value, operand1=ptr
  kGep,     // result=ptr; operand0=base ptr, operand1=index; ptr+idx*scale+off

  // Arithmetic / logic (operand0 op operand1, both of result type).
  kAdd, kSub, kMul, kUDiv, kSDiv, kURem, kSRem,
  kAnd, kOr, kXor, kShl, kLShr, kAShr,

  // Comparison -> i1.
  kICmp,

  // Conversions (operand0 -> result type).
  kZExt, kSExt, kTrunc, kPtrToInt, kIntToPtr,

  // Control flow.
  kBr,      // operand0=i1 cond; targets: true_block, false_block
  kJmp,     // unconditional; target: true_block
  kRet,     // optional operand0
  kPhi,     // operands parallel to incoming_blocks_
  kSelect,  // operand0=i1, operand1, operand2

  // Calls.
  kCall,    // callee by name (intra-module or external); operands=args

  // Indirect control flow. kFuncAddr materializes the simulated address
  // of a named function (defined or declared) as a ptr; kCallIndirect
  // dispatches through a ptr operand. The kop::cfi analysis derives the
  // legal-target set of every kCallIndirect and the CfiInjectionPass
  // gates each one with a carat_cfi_check call.
  kFuncAddr,      // result=ptr; callee_ names the function taken
  kCallIndirect,  // operand0=ptr target, operands 1.. = args

  // Inline assembly marker. Carries opaque text. The CARAT KOP
  // attestation pass refuses to certify modules containing one (§2, §5).
  kInlineAsm,
};

std::string_view OpcodeName(Opcode op);

enum class ICmpPred : uint8_t {
  kEq, kNe, kULt, kULe, kUGt, kUGe, kSLt, kSLe, kSGt, kSGe,
};

std::string_view ICmpPredName(ICmpPred pred);

class Instruction : public Value {
 public:
  Instruction(Opcode opcode, Type result_type, std::string name)
      : Value(ValueKind::kInstruction, result_type, std::move(name)),
        opcode_(opcode) {}

  Opcode opcode() const { return opcode_; }

  // --- operands ---
  const std::vector<Value*>& operands() const { return operands_; }
  Value* operand(size_t i) const { return operands_[i]; }
  size_t operand_count() const { return operands_.size(); }
  void AddOperand(Value* v) { operands_.push_back(v); }
  void SetOperand(size_t i, Value* v) { operands_[i] = v; }

  // --- opcode-specific fields ---
  uint64_t alloca_size() const { return alloca_size_; }
  void set_alloca_size(uint64_t size) { alloca_size_ = size; }

  /// Loaded/stored value type. For kLoad this equals type(); for kStore
  /// it is the type of operand 0.
  Type memory_type() const { return memory_type_; }
  void set_memory_type(Type type) { memory_type_ = type; }

  uint64_t gep_scale() const { return gep_scale_; }
  void set_gep_scale(uint64_t scale) { gep_scale_ = scale; }
  uint64_t gep_offset() const { return gep_offset_; }
  void set_gep_offset(uint64_t offset) { gep_offset_ = offset; }

  ICmpPred icmp_pred() const { return icmp_pred_; }
  void set_icmp_pred(ICmpPred pred) { icmp_pred_ = pred; }

  const std::string& callee() const { return callee_; }
  void set_callee(std::string callee) { callee_ = std::move(callee); }

  const std::string& asm_text() const { return asm_text_; }
  void set_asm_text(std::string text) { asm_text_ = std::move(text); }

  BasicBlock* true_block() const { return true_block_; }
  BasicBlock* false_block() const { return false_block_; }
  void set_true_block(BasicBlock* bb) { true_block_ = bb; }
  void set_false_block(BasicBlock* bb) { false_block_ = bb; }

  const std::vector<BasicBlock*>& incoming_blocks() const {
    return incoming_blocks_;
  }
  void AddIncoming(Value* value, BasicBlock* block) {
    AddOperand(value);
    incoming_blocks_.push_back(block);
  }

  /// The block this instruction currently lives in (maintained by
  /// BasicBlock insert/remove).
  BasicBlock* parent() const { return parent_; }
  void set_parent(BasicBlock* parent) { parent_ = parent; }

  bool IsTerminator() const {
    return opcode_ == Opcode::kBr || opcode_ == Opcode::kJmp ||
           opcode_ == Opcode::kRet;
  }
  bool IsMemoryAccess() const {
    return opcode_ == Opcode::kLoad || opcode_ == Opcode::kStore;
  }

  static bool classof(const Value* v) {
    return v->kind() == ValueKind::kInstruction;
  }

 private:
  Opcode opcode_;
  std::vector<Value*> operands_;
  uint64_t alloca_size_ = 0;
  Type memory_type_ = Type::kVoid;
  uint64_t gep_scale_ = 1;
  uint64_t gep_offset_ = 0;
  ICmpPred icmp_pred_ = ICmpPred::kEq;
  std::string callee_;
  std::string asm_text_;
  BasicBlock* true_block_ = nullptr;
  BasicBlock* false_block_ = nullptr;
  std::vector<BasicBlock*> incoming_blocks_;
  BasicBlock* parent_ = nullptr;
};

}  // namespace kop::kir
