// IRBuilder: the convenience layer used by the kirmods corpus and by the
// transform passes to materialize instructions. Mirrors llvm::IRBuilder's
// insertion-point model: either append to a block or insert before an
// existing instruction (how guards land in front of loads and stores).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kop/kir/module.hpp"

namespace kop::kir {

class IRBuilder {
 public:
  explicit IRBuilder(Module* module) : module_(module) {}

  /// Append new instructions at the end of `block`.
  void SetInsertPoint(BasicBlock* block) {
    block_ = block;
    has_pos_ = false;
  }

  /// Insert new instructions before `pos` in `block`.
  void SetInsertPoint(BasicBlock* block, BasicBlock::iterator pos) {
    block_ = block;
    pos_ = pos;
    has_pos_ = true;
  }

  BasicBlock* insert_block() const { return block_; }
  Module* module() const { return module_; }

  // --- constants ---
  Constant* Int(Type type, uint64_t bits) {
    return module_->GetConstant(type, bits);
  }
  Constant* I64(uint64_t bits) { return module_->GetConstant(Type::kI64, bits); }
  Constant* I32(uint64_t bits) { return module_->GetConstant(Type::kI32, bits); }
  Constant* I1(bool b) { return module_->GetConstant(Type::kI1, b ? 1 : 0); }
  Constant* NullPtr() { return module_->GetConstant(Type::kPtr, 0); }

  // --- memory ---
  Instruction* CreateAlloca(uint64_t size_bytes, const std::string& name = "");
  Instruction* CreateLoad(Type type, Value* ptr, const std::string& name = "");
  Instruction* CreateStore(Value* value, Value* ptr);
  /// ptr + index * scale + offset.
  Instruction* CreateGep(Value* base, Value* index, uint64_t scale,
                         uint64_t offset = 0, const std::string& name = "");

  // --- arithmetic ---
  Instruction* CreateBinOp(Opcode op, Value* lhs, Value* rhs,
                           const std::string& name = "");
  Instruction* CreateAdd(Value* l, Value* r, const std::string& n = "") {
    return CreateBinOp(Opcode::kAdd, l, r, n);
  }
  Instruction* CreateSub(Value* l, Value* r, const std::string& n = "") {
    return CreateBinOp(Opcode::kSub, l, r, n);
  }
  Instruction* CreateMul(Value* l, Value* r, const std::string& n = "") {
    return CreateBinOp(Opcode::kMul, l, r, n);
  }
  Instruction* CreateUDiv(Value* l, Value* r, const std::string& n = "") {
    return CreateBinOp(Opcode::kUDiv, l, r, n);
  }
  Instruction* CreateURem(Value* l, Value* r, const std::string& n = "") {
    return CreateBinOp(Opcode::kURem, l, r, n);
  }
  Instruction* CreateAnd(Value* l, Value* r, const std::string& n = "") {
    return CreateBinOp(Opcode::kAnd, l, r, n);
  }
  Instruction* CreateOr(Value* l, Value* r, const std::string& n = "") {
    return CreateBinOp(Opcode::kOr, l, r, n);
  }
  Instruction* CreateXor(Value* l, Value* r, const std::string& n = "") {
    return CreateBinOp(Opcode::kXor, l, r, n);
  }
  Instruction* CreateShl(Value* l, Value* r, const std::string& n = "") {
    return CreateBinOp(Opcode::kShl, l, r, n);
  }
  Instruction* CreateLShr(Value* l, Value* r, const std::string& n = "") {
    return CreateBinOp(Opcode::kLShr, l, r, n);
  }

  // --- comparisons / conversions / select ---
  Instruction* CreateICmp(ICmpPred pred, Value* lhs, Value* rhs,
                          const std::string& name = "");
  Instruction* CreateCast(Opcode op, Value* value, Type to,
                          const std::string& name = "");
  Instruction* CreateSelect(Value* cond, Value* if_true, Value* if_false,
                            const std::string& name = "");

  // --- control flow ---
  Instruction* CreateBr(Value* cond, BasicBlock* if_true,
                        BasicBlock* if_false);
  Instruction* CreateJmp(BasicBlock* target);
  Instruction* CreateRet(Value* value = nullptr);
  Instruction* CreatePhi(Type type, const std::string& name = "");

  // --- calls ---
  Instruction* CreateCall(const std::string& callee, Type result_type,
                          std::vector<Value*> args,
                          const std::string& name = "");
  Instruction* CreateInlineAsm(const std::string& asm_text);

 private:
  Instruction* Insert(std::unique_ptr<Instruction> inst,
                      const std::string& name);

  Module* module_;
  BasicBlock* block_ = nullptr;
  BasicBlock::iterator pos_{};
  bool has_pos_ = false;
};

}  // namespace kop::kir
