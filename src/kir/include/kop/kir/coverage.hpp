// Edge coverage for the bytecode VM — the feedback signal of the
// kop::forge fuzzing campaign. The VM's branch handlers (kBr/kJmp, plus
// one synthetic function-entry edge per frame) hash (function index,
// source pc, destination pc) into a fixed-size map of saturating 8-bit
// hit counters, AFL-style. Collection is opt-in per thread: the hooks
// write through a thread-local sink that is null by default, so code
// that never arms a CoverageMap pays one predictable not-taken branch
// per control-flow edge — and nothing at all when the hooks are
// compiled out (-DKOP_COVERAGE_ENABLED=OFF).
//
// Edge identities are stable for a given compiled module (function
// indices and bytecode pcs are deterministic), which is what the forge
// campaign's replay/merge determinism relies on. They are NOT stable
// across toolchain or compiler-pass changes, and the reference
// interpreter has no hooks: coverage is a bytecode-engine signal, and
// forge degrades to undirected mutation on the interpreter.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace kop::kir {

/// True when the tree was built with -DKOP_COVERAGE_ENABLED=ON; lets
/// tests and tools gate coverage-dependent assertions.
bool CoverageCompiledIn();

/// Fixed-size edge hitmap. 64 KiB of u8 counters — small enough to sit
/// in one per-trial object, big enough that the module corpus (a few
/// hundred edges) collides negligibly.
class CoverageMap {
 public:
  static constexpr size_t kSlots = 1u << 16;

  CoverageMap() { Reset(); }

  /// Record one control-flow edge. Hot-path shape: mix + index + one
  /// saturating increment, no branches besides the saturation check.
  void HitEdge(uint32_t fn, uint32_t from, uint32_t to) {
    uint64_t key = (static_cast<uint64_t>(fn) << 40) ^
                   (static_cast<uint64_t>(from) << 20) ^ to;
    key *= 0x9e3779b97f4a7c15ULL;
    uint8_t& slot = map_[(key >> 48) & (kSlots - 1)];
    if (slot != 0xff) ++slot;
  }

  void Reset() { map_.fill(0); }

  /// Number of distinct covered slots.
  size_t CoveredSlots() const;

  /// Indices of covered slots, ascending (the distillation set-cover
  /// input).
  std::vector<uint32_t> Slots() const;

  /// Slots covered by `other` that this map has never seen. The forge
  /// merge loop calls this serially in trial-index order, so "new" is
  /// well-defined regardless of how trials were scheduled.
  size_t MergeCountingNew(const CoverageMap& other);

  /// Order-independent digest of the covered-slot set (not the counts):
  /// the report's cheap cross-run comparison handle.
  uint64_t Digest() const;

 private:
  std::array<uint8_t, kSlots> map_;
};

/// The calling thread's active coverage sink (null when collection is
/// not armed — the default on every thread).
CoverageMap* ThreadCoverage();

/// RAII: arm `map` as this thread's coverage sink. Nests; the previous
/// sink is restored on destruction. Passing null collects nothing.
class ScopedCoverage {
 public:
  explicit ScopedCoverage(CoverageMap* map);
  ~ScopedCoverage();
  ScopedCoverage(const ScopedCoverage&) = delete;
  ScopedCoverage& operator=(const ScopedCoverage&) = delete;

 private:
  CoverageMap* prev_;
};

}  // namespace kop::kir
