#include "kop/kir/builder.hpp"

#include <cassert>

namespace kop::kir {

Instruction* IRBuilder::Insert(std::unique_ptr<Instruction> inst,
                               const std::string& name) {
  assert(block_ != nullptr && "no insertion point set");
  if (inst->type() != Type::kVoid) {
    if (!name.empty()) {
      inst->set_name(name);
    } else {
      inst->set_name("t" +
                     std::to_string(block_->parent()->TakeNextTempId()));
    }
  }
  if (has_pos_) {
    auto it = block_->InsertBefore(pos_, std::move(inst));
    return it->get();
  }
  return block_->Append(std::move(inst));
}

Instruction* IRBuilder::CreateAlloca(uint64_t size_bytes,
                                     const std::string& name) {
  auto inst =
      std::make_unique<Instruction>(Opcode::kAlloca, Type::kPtr, "");
  inst->set_alloca_size(size_bytes);
  return Insert(std::move(inst), name);
}

Instruction* IRBuilder::CreateLoad(Type type, Value* ptr,
                                   const std::string& name) {
  assert(IsFirstClass(type));
  auto inst = std::make_unique<Instruction>(Opcode::kLoad, type, "");
  inst->set_memory_type(type);
  inst->AddOperand(ptr);
  return Insert(std::move(inst), name);
}

Instruction* IRBuilder::CreateStore(Value* value, Value* ptr) {
  auto inst = std::make_unique<Instruction>(Opcode::kStore, Type::kVoid, "");
  inst->set_memory_type(value->type());
  inst->AddOperand(value);
  inst->AddOperand(ptr);
  return Insert(std::move(inst), "");
}

Instruction* IRBuilder::CreateGep(Value* base, Value* index, uint64_t scale,
                                  uint64_t offset, const std::string& name) {
  auto inst = std::make_unique<Instruction>(Opcode::kGep, Type::kPtr, "");
  inst->AddOperand(base);
  inst->AddOperand(index);
  inst->set_gep_scale(scale);
  inst->set_gep_offset(offset);
  return Insert(std::move(inst), name);
}

Instruction* IRBuilder::CreateBinOp(Opcode op, Value* lhs, Value* rhs,
                                    const std::string& name) {
  auto inst = std::make_unique<Instruction>(op, lhs->type(), "");
  inst->AddOperand(lhs);
  inst->AddOperand(rhs);
  return Insert(std::move(inst), name);
}

Instruction* IRBuilder::CreateICmp(ICmpPred pred, Value* lhs, Value* rhs,
                                   const std::string& name) {
  auto inst = std::make_unique<Instruction>(Opcode::kICmp, Type::kI1, "");
  inst->set_icmp_pred(pred);
  inst->AddOperand(lhs);
  inst->AddOperand(rhs);
  return Insert(std::move(inst), name);
}

Instruction* IRBuilder::CreateCast(Opcode op, Value* value, Type to,
                                   const std::string& name) {
  assert(op == Opcode::kZExt || op == Opcode::kSExt ||
         op == Opcode::kTrunc || op == Opcode::kPtrToInt ||
         op == Opcode::kIntToPtr);
  auto inst = std::make_unique<Instruction>(op, to, "");
  inst->AddOperand(value);
  return Insert(std::move(inst), name);
}

Instruction* IRBuilder::CreateSelect(Value* cond, Value* if_true,
                                     Value* if_false,
                                     const std::string& name) {
  auto inst =
      std::make_unique<Instruction>(Opcode::kSelect, if_true->type(), "");
  inst->AddOperand(cond);
  inst->AddOperand(if_true);
  inst->AddOperand(if_false);
  return Insert(std::move(inst), name);
}

Instruction* IRBuilder::CreateBr(Value* cond, BasicBlock* if_true,
                                 BasicBlock* if_false) {
  auto inst = std::make_unique<Instruction>(Opcode::kBr, Type::kVoid, "");
  inst->AddOperand(cond);
  inst->set_true_block(if_true);
  inst->set_false_block(if_false);
  return Insert(std::move(inst), "");
}

Instruction* IRBuilder::CreateJmp(BasicBlock* target) {
  auto inst = std::make_unique<Instruction>(Opcode::kJmp, Type::kVoid, "");
  inst->set_true_block(target);
  return Insert(std::move(inst), "");
}

Instruction* IRBuilder::CreateRet(Value* value) {
  auto inst = std::make_unique<Instruction>(Opcode::kRet, Type::kVoid, "");
  if (value != nullptr) inst->AddOperand(value);
  return Insert(std::move(inst), "");
}

Instruction* IRBuilder::CreatePhi(Type type, const std::string& name) {
  auto inst = std::make_unique<Instruction>(Opcode::kPhi, type, "");
  return Insert(std::move(inst), name);
}

Instruction* IRBuilder::CreateCall(const std::string& callee,
                                   Type result_type, std::vector<Value*> args,
                                   const std::string& name) {
  auto inst = std::make_unique<Instruction>(Opcode::kCall, result_type, "");
  inst->set_callee(callee);
  for (Value* arg : args) inst->AddOperand(arg);
  return Insert(std::move(inst), name);
}

Instruction* IRBuilder::CreateInlineAsm(const std::string& asm_text) {
  auto inst =
      std::make_unique<Instruction>(Opcode::kInlineAsm, Type::kVoid, "");
  inst->set_asm_text(asm_text);
  return Insert(std::move(inst), "");
}

}  // namespace kop::kir
