#include "kop/kir/interp.hpp"

#include <algorithm>
#include <unordered_map>

#include "kop/kir/printer.hpp"
#include "kop/util/bits.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::kir {

Interpreter::Interpreter(
    const Module& module, MemoryInterface& memory, ExternalResolver& resolver,
    std::unordered_map<std::string, uint64_t> global_addresses,
    const InterpConfig& config)
    : module_(module),
      memory_(memory),
      resolver_(resolver),
      global_addresses_(std::move(global_addresses)),
      config_(config) {
  uint64_t ordinal = 0;
  for (const auto& fn : module_.functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == Opcode::kCall ||
            inst->opcode() == Opcode::kCallIndirect) {
          call_ordinals_[inst.get()] = ordinal++;
        }
      }
    }
  }
}

Result<uint64_t> Interpreter::GlobalAddress(
    const GlobalVariable* global) const {
  auto it = global_addresses_.find(global->name());
  if (it == global_addresses_.end()) {
    return Internal("global @" + global->name() + " has no assigned address");
  }
  return it->second;
}

Result<uint64_t> Interpreter::Call(const std::string& fn_name,
                                   const std::vector<uint64_t>& args) {
  const Function* fn = module_.FindFunction(fn_name);
  if (fn == nullptr || fn->is_external()) {
    return NotFound("no defined function @" + fn_name + " in module " +
                    module_.name());
  }
  if (args.size() != fn->arg_count()) {
    return InvalidArgument("argument count mismatch calling @" + fn_name);
  }
  if (entry_depth_ == 0) {
    step_limit_ = config_.max_steps;
    if (config_.watchdog_steps != 0 &&
        stats_.steps + config_.watchdog_steps < step_limit_) {
      step_limit_ = stats_.steps + config_.watchdog_steps;
    }
    fault_state_ = EngineSnapshot();
  }
  // Outermost entry pins the policy frame for the inline-guard fast
  // path (the interpreter recognizes guard calls by name + arity at
  // kCall); nested entries run under the outermost pin.
  const bool pinned = entry_depth_ == 0 && resolver_.PinGuardFrame();
  ++entry_depth_;
  try {
    auto result =
        Execute(*fn, args, 0, config_.stack_base + config_.stack_size);
    --entry_depth_;
    if (pinned) resolver_.UnpinGuardFrame();
    return result;
  } catch (...) {
    --entry_depth_;
    if (pinned) resolver_.UnpinGuardFrame();
    throw;
  }
}

Result<uint64_t> Interpreter::Execute(const Function& fn,
                                      const std::vector<uint64_t>& args,
                                      uint32_t depth, uint64_t stack_top) {
  try {
    auto result = ExecuteFrame(fn, args, depth, stack_top);
    if (!result.ok()) RecordFault(fn.name(), args, depth);
    return result;
  } catch (...) {
    RecordFault(fn.name(), args, depth);
    throw;
  }
}

void Interpreter::RecordFault(const std::string& fn_name,
                              const std::vector<uint64_t>& args,
                              uint32_t depth) {
  if (fault_state_.valid) return;
  fault_state_.valid = true;
  fault_state_.function = fn_name;
  fault_state_.depth = depth;
  fault_state_.args.assign(
      args.begin(), args.begin() + std::min<size_t>(args.size(), 8));
  fault_state_.stats = stats_;
}

Result<uint64_t> Interpreter::ExecuteFrame(const Function& fn,
                                           const std::vector<uint64_t>& args,
                                           uint32_t depth, uint64_t stack_top) {
  if (depth > config_.max_call_depth) {
    return Internal("call depth limit exceeded in @" + fn.name());
  }

  // SSA environment for this frame.
  std::unordered_map<const Value*, uint64_t> env;
  env.reserve(fn.InstructionCount() + fn.arg_count());
  for (size_t i = 0; i < fn.arg_count(); ++i) {
    env[fn.args()[i].get()] = ClampToType(args[i], fn.args()[i]->type());
  }

  auto eval = [&](const Value* v) -> Result<uint64_t> {
    switch (v->kind()) {
      case ValueKind::kConstant:
        return static_cast<const Constant*>(v)->bits();
      case ValueKind::kGlobal:
        return GlobalAddress(static_cast<const GlobalVariable*>(v));
      case ValueKind::kArgument:
      case ValueKind::kInstruction: {
        auto it = env.find(v);
        if (it == env.end()) {
          return Internal("use of unevaluated value %" + v->name() + " in @" +
                          fn.name());
        }
        return it->second;
      }
    }
    return Internal("bad value kind");
  };

  // Frame-local stack pointer for allocas, growing down.
  uint64_t sp = stack_top;

  const BasicBlock* block = fn.blocks()[0].get();
  const BasicBlock* prev_block = nullptr;

  while (true) {
    // Phi nodes: evaluate all at once against the edge we arrived on.
    auto it = block->begin();
    if (it != block->end() && (*it)->opcode() == Opcode::kPhi) {
      std::vector<std::pair<const Instruction*, uint64_t>> phi_values;
      for (; it != block->end() && (*it)->opcode() == Opcode::kPhi; ++it) {
        const Instruction* phi = it->get();
        bool matched = false;
        for (size_t i = 0; i < phi->incoming_blocks().size(); ++i) {
          if (phi->incoming_blocks()[i] == prev_block) {
            auto value = eval(phi->operand(i));
            if (!value.ok()) return value.status();
            phi_values.emplace_back(phi, ClampToType(*value, phi->type()));
            matched = true;
            break;
          }
        }
        if (!matched) {
          return Internal("phi in " + block->label() +
                          " has no incoming entry for edge taken");
        }
      }
      for (auto& [phi, value] : phi_values) env[phi] = value;
    }

    for (; it != block->end(); ++it) {
      const Instruction& inst = **it;
      if (++stats_.steps > step_limit_) {
        return StepBudgetExceeded(config_, step_limit_);
      }

      switch (inst.opcode()) {
        case Opcode::kAlloca: {
          const uint64_t size = AlignUp(inst.alloca_size(), 16);
          if (sp - size < config_.stack_base || sp < size) {
            return Internal("interpreter stack overflow in @" + fn.name());
          }
          sp -= size;
          env[&inst] = sp;
          break;
        }
        case Opcode::kLoad: {
          auto addr = eval(inst.operand(0));
          if (!addr.ok()) return addr.status();
          auto value = memory_.Load(*addr, StoreSize(inst.memory_type()));
          if (!value.ok()) return value.status();
          ++stats_.loads;
          env[&inst] = ClampToType(*value, inst.type());
          break;
        }
        case Opcode::kStore: {
          auto value = eval(inst.operand(0));
          if (!value.ok()) return value.status();
          auto addr = eval(inst.operand(1));
          if (!addr.ok()) return addr.status();
          KOP_RETURN_IF_ERROR(
              memory_.Store(*addr, *value, StoreSize(inst.memory_type())));
          ++stats_.stores;
          break;
        }
        case Opcode::kGep: {
          auto base = eval(inst.operand(0));
          if (!base.ok()) return base.status();
          auto index = eval(inst.operand(1));
          if (!index.ok()) return index.status();
          const int64_t signed_index =
              SignExtend(*index, inst.operand(1)->type());
          env[&inst] = *base +
                       static_cast<uint64_t>(signed_index) * inst.gep_scale() +
                       inst.gep_offset();
          break;
        }
        case Opcode::kAdd:
        case Opcode::kSub:
        case Opcode::kMul:
        case Opcode::kUDiv:
        case Opcode::kSDiv:
        case Opcode::kURem:
        case Opcode::kSRem:
        case Opcode::kAnd:
        case Opcode::kOr:
        case Opcode::kXor:
        case Opcode::kShl:
        case Opcode::kLShr:
        case Opcode::kAShr: {
          auto lhs = eval(inst.operand(0));
          if (!lhs.ok()) return lhs.status();
          auto rhs = eval(inst.operand(1));
          if (!rhs.ok()) return rhs.status();
          const Type type = inst.type();
          const uint64_t a = *lhs;
          const uint64_t b = *rhs;
          const unsigned bits = BitWidth(type);
          uint64_t result = 0;
          switch (inst.opcode()) {
            case Opcode::kAdd: result = a + b; break;
            case Opcode::kSub: result = a - b; break;
            case Opcode::kMul: result = a * b; break;
            case Opcode::kUDiv:
              if (b == 0) return Internal("division by zero in @" + fn.name());
              result = a / b;
              break;
            case Opcode::kSDiv: {
              if (b == 0) return Internal("division by zero in @" + fn.name());
              const int64_t sa = SignExtend(a, type);
              const int64_t sb = SignExtend(b, type);
              result = static_cast<uint64_t>(sa / sb);
              break;
            }
            case Opcode::kURem:
              if (b == 0) return Internal("division by zero in @" + fn.name());
              result = a % b;
              break;
            case Opcode::kSRem: {
              if (b == 0) return Internal("division by zero in @" + fn.name());
              const int64_t sa = SignExtend(a, type);
              const int64_t sb = SignExtend(b, type);
              result = static_cast<uint64_t>(sa % sb);
              break;
            }
            case Opcode::kAnd: result = a & b; break;
            case Opcode::kOr: result = a | b; break;
            case Opcode::kXor: result = a ^ b; break;
            case Opcode::kShl:
              result = (b >= bits) ? 0 : a << b;
              break;
            case Opcode::kLShr:
              result = (b >= bits) ? 0 : ClampToType(a, type) >> b;
              break;
            case Opcode::kAShr: {
              const int64_t sa = SignExtend(a, type);
              const uint64_t shift = b >= bits ? bits - 1 : b;
              result = static_cast<uint64_t>(sa >> shift);
              break;
            }
            default: break;
          }
          env[&inst] = ClampToType(result, type);
          break;
        }
        case Opcode::kICmp: {
          auto lhs = eval(inst.operand(0));
          if (!lhs.ok()) return lhs.status();
          auto rhs = eval(inst.operand(1));
          if (!rhs.ok()) return rhs.status();
          const Type type = inst.operand(0)->type();
          const uint64_t a = ClampToType(*lhs, type);
          const uint64_t b = ClampToType(*rhs, type);
          const int64_t sa = SignExtend(a, type);
          const int64_t sb = SignExtend(b, type);
          bool result = false;
          switch (inst.icmp_pred()) {
            case ICmpPred::kEq: result = a == b; break;
            case ICmpPred::kNe: result = a != b; break;
            case ICmpPred::kULt: result = a < b; break;
            case ICmpPred::kULe: result = a <= b; break;
            case ICmpPred::kUGt: result = a > b; break;
            case ICmpPred::kUGe: result = a >= b; break;
            case ICmpPred::kSLt: result = sa < sb; break;
            case ICmpPred::kSLe: result = sa <= sb; break;
            case ICmpPred::kSGt: result = sa > sb; break;
            case ICmpPred::kSGe: result = sa >= sb; break;
          }
          env[&inst] = result ? 1 : 0;
          break;
        }
        case Opcode::kZExt: {
          auto value = eval(inst.operand(0));
          if (!value.ok()) return value.status();
          env[&inst] =
              ClampToType(ClampToType(*value, inst.operand(0)->type()),
                          inst.type());
          break;
        }
        case Opcode::kSExt: {
          auto value = eval(inst.operand(0));
          if (!value.ok()) return value.status();
          env[&inst] = ClampToType(
              static_cast<uint64_t>(
                  SignExtend(*value, inst.operand(0)->type())),
              inst.type());
          break;
        }
        case Opcode::kTrunc:
        case Opcode::kPtrToInt:
        case Opcode::kIntToPtr: {
          auto value = eval(inst.operand(0));
          if (!value.ok()) return value.status();
          env[&inst] = ClampToType(*value, inst.type());
          break;
        }
        case Opcode::kSelect: {
          auto cond = eval(inst.operand(0));
          if (!cond.ok()) return cond.status();
          auto picked = eval(inst.operand(*cond != 0 ? 1 : 2));
          if (!picked.ok()) return picked.status();
          env[&inst] = ClampToType(*picked, inst.type());
          break;
        }
        case Opcode::kBr: {
          auto cond = eval(inst.operand(0));
          if (!cond.ok()) return cond.status();
          prev_block = block;
          block = (*cond != 0) ? inst.true_block() : inst.false_block();
          goto next_block;
        }
        case Opcode::kJmp:
          prev_block = block;
          block = inst.true_block();
          goto next_block;
        case Opcode::kRet: {
          if (inst.operand_count() == 0) return uint64_t{0};
          auto value = eval(inst.operand(0));
          if (!value.ok()) return value.status();
          return ClampToType(*value, fn.return_type());
        }
        case Opcode::kCall: {
          std::vector<uint64_t> call_args;
          call_args.reserve(inst.operand_count());
          for (size_t i = 0; i < inst.operand_count(); ++i) {
            auto value = eval(inst.operand(i));
            if (!value.ok()) return value.status();
            call_args.push_back(*value);
          }
          const Function* callee = module_.FindFunction(inst.callee());
          Result<uint64_t> result = uint64_t{0};
          if (callee != nullptr && !callee->is_external()) {
            ++stats_.calls_internal;
            result = Execute(*callee, call_args, depth + 1, sp);
          } else {
            ++stats_.calls_external;
            auto ord = call_ordinals_.find(&inst);
            const uint64_t ordinal =
                ord == call_ordinals_.end() ? 0 : ord->second;
            // Inline-guard fast path, mirroring the VM's kGuardInline /
            // kGuardRange: recognized guard calls with the exact ABI
            // arity try the pinned-frame check first and fall back to
            // the ordinary external-call path on deopt. The external
            // call count advanced either way, so InterpStats parity
            // with the VM holds.
            if (call_args.size() == 3 &&
                inst.callee() == kCaratGuardSymbol &&
                resolver_.FastGuard(call_args[0], call_args[1], call_args[2],
                                    ordinal)) {
              result = uint64_t{1};
            } else if (call_args.size() == 4 &&
                       inst.callee() == kCaratGuardRangeSymbol &&
                       resolver_.FastGuardRange(call_args[0], call_args[1],
                                                call_args[2], call_args[3],
                                                ordinal)) {
              result = uint64_t{1};
            } else if (call_args.size() == 2 &&
                       inst.callee() == kCaratCfiCheckSymbol &&
                       resolver_.FastCfiCheck(call_args[0], call_args[1],
                                              ordinal)) {
              result = uint64_t{1};
            } else {
              result = resolver_.CallExternal(inst.callee(), call_args,
                                              ordinal);
            }
          }
          if (!result.ok()) return result.status();
          if (inst.type() != Type::kVoid) {
            env[&inst] = ClampToType(*result, inst.type());
          }
          break;
        }
        case Opcode::kFuncAddr: {
          const int index = module_.FunctionIndex(inst.callee());
          if (index < 0) {
            return Internal("funcaddr of unknown function @" + inst.callee());
          }
          env[&inst] = FunctionAddressForIndex(static_cast<size_t>(index));
          break;
        }
        case Opcode::kCallIndirect: {
          auto target = eval(inst.operand(0));
          if (!target.ok()) return target.status();
          std::vector<uint64_t> call_args;
          call_args.reserve(inst.operand_count() - 1);
          for (size_t i = 1; i < inst.operand_count(); ++i) {
            auto value = eval(inst.operand(i));
            if (!value.ok()) return value.status();
            call_args.push_back(*value);
          }
          const int index =
              FunctionIndexForAddress(*target, module_.functions().size());
          if (index < 0) {
            return IndirectCallInvalidTarget(*target, fn.name());
          }
          const Function* callee =
              module_.functions()[static_cast<size_t>(index)].get();
          Result<uint64_t> result = uint64_t{0};
          if (!callee->is_external()) {
            ++stats_.calls_internal;
            result = Execute(*callee, call_args, depth + 1, sp);
          } else {
            ++stats_.calls_external;
            auto ord = call_ordinals_.find(&inst);
            const uint64_t ordinal =
                ord == call_ordinals_.end() ? 0 : ord->second;
            result = resolver_.CallExternal(callee->name(), call_args, ordinal);
          }
          if (!result.ok()) return result.status();
          if (inst.type() != Type::kVoid) {
            env[&inst] = ClampToType(*result, inst.type());
          }
          break;
        }
        case Opcode::kPhi:
          return Internal("phi below the phi group in " + block->label());
        case Opcode::kInlineAsm:
          // Executing inline asm is outside the simulated ISA. A signed
          // module can never contain one (attestation rejects it); if an
          // unsigned test module executes one, treat it as a fault.
          return PermissionDenied("inline asm executed in @" + fn.name() +
                                  ": \"" + inst.asm_text() + "\"");
      }
    }
    return Internal("fell off end of block " + block->label());
  next_block:;
  }
}

}  // namespace kop::kir
