#include "kop/kir/bytecode.hpp"

#include <sstream>
#include <unordered_map>

#include "kop/util/bits.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::kir {
namespace {

constexpr uint64_t MaskOfBits(unsigned bits) {
  if (bits == 0) return 0;
  if (bits >= 64) return ~uint64_t{0};
  return (uint64_t{1} << bits) - 1;
}

/// Compiles one function. The register plan is the simplest dense one:
/// one register per SSA value, no reuse — frames are a few hundred words
/// at most and setup is a single memcpy of the template.
class FunctionCompiler {
 public:
  FunctionCompiler(const Module& module, const Function& fn,
                   BytecodeModule& out, uint64_t& call_ordinal)
      : module_(module), fn_(fn), out_(out), call_ordinal_(call_ordinal) {}

  Result<BytecodeFunction> Compile() {
    bf_.name = fn_.name();
    bf_.return_type = fn_.return_type();

    KOP_RETURN_IF_ERROR(PlanRegisters());
    KOP_RETURN_IF_ERROR(EmitBlocks());
    KOP_RETURN_IF_ERROR(ResolveBranchTargets());
    return std::move(bf_);
  }

 private:
  Status PlanRegisters() {
    // Arguments first.
    for (const auto& arg : fn_.args()) {
      regs_[arg.get()] = next_reg_;
      bf_.arg_masks.push_back(MaskOfBits(BitWidth(arg->type())));
      ++next_reg_;
    }
    bf_.num_args = static_cast<uint16_t>(fn_.arg_count());

    // Constants and globals next, in a contiguous range the frame
    // template pre-fills (globals patched with addresses at VM bind).
    bf_.const_reg_begin = next_reg_;
    for (const auto& block : fn_.blocks()) {
      for (const auto& inst : *block) {
        for (const Value* operand : inst->operands()) {
          if (const auto* c = dyn_cast<Constant>(operand)) {
            if (regs_.count(c)) continue;
            regs_[c] = next_reg_;
            template_values_.push_back(c->bits());
            KOP_RETURN_IF_ERROR(BumpReg());
          } else if (const auto* g = dyn_cast<GlobalVariable>(operand)) {
            if (regs_.count(g)) continue;
            bf_.global_fixups.push_back(
                {next_reg_, InternGlobalName(g->name())});
            regs_[g] = next_reg_;
            template_values_.push_back(0);
            KOP_RETURN_IF_ERROR(BumpReg());
          }
        }
      }
    }
    bf_.const_reg_end = next_reg_;

    // One result register per value-producing instruction (phis
    // included: edge moves write them).
    for (const auto& block : fn_.blocks()) {
      for (const auto& inst : *block) {
        if (inst->type() == Type::kVoid) continue;
        regs_[inst.get()] = next_reg_;
        KOP_RETURN_IF_ERROR(BumpReg());
      }
    }

    bf_.num_regs = next_reg_;
    bf_.frame_template.assign(bf_.num_regs, 0);
    for (size_t i = 0; i < template_values_.size(); ++i) {
      bf_.frame_template[bf_.const_reg_begin + i] = template_values_[i];
    }
    return OkStatus();
  }

  Status BumpReg() {
    if (next_reg_ == 0xffff) {
      return Internal("function @" + fn_.name() +
                      " exceeds the bytecode register limit (65535)");
    }
    ++next_reg_;
    return OkStatus();
  }

  uint32_t InternGlobalName(const std::string& name) {
    for (uint32_t i = 0; i < out_.global_names.size(); ++i) {
      if (out_.global_names[i] == name) return i;
    }
    out_.global_names.push_back(name);
    return static_cast<uint32_t>(out_.global_names.size() - 1);
  }

  Result<uint16_t> RegOf(const Value* v) {
    auto it = regs_.find(v);
    if (it == regs_.end()) {
      return Internal("use of unevaluated value %" + v->name() + " in @" +
                      fn_.name());
    }
    return it->second;
  }

  Status EmitBlocks() {
    for (size_t i = 0; i < fn_.blocks().size(); ++i) {
      block_index_[fn_.blocks()[i].get()] = static_cast<uint32_t>(i);
    }
    block_pc_.assign(fn_.blocks().size(), 0);

    uint32_t src_index = 0;
    for (size_t bi = 0; bi < fn_.blocks().size(); ++bi) {
      const BasicBlock& block = *fn_.blocks()[bi];
      block_pc_[bi] = static_cast<uint32_t>(bf_.code.size());
      bool first_non_phi_seen = false;
      for (const auto& inst : block) {
        if (inst->opcode() == Opcode::kPhi) {
          if (first_non_phi_seen) {
            return Internal("phi below the phi group in " + block.label());
          }
          ++src_index;
          continue;
        }
        first_non_phi_seen = true;
        auto emitted = EmitInstruction(*inst, block);
        if (!emitted.ok()) return emitted.status();
        BcInst out = *emitted;
        out.src_index = src_index++;
        bf_.code.push_back(out);
      }
      if (block.Terminator() == nullptr) {
        return Internal("block " + block.label() + " in @" + fn_.name() +
                        " has no terminator");
      }
    }
    return OkStatus();
  }

  /// Phi moves for the edge from `from` to `to`; kNoMoves when `to` has
  /// no phis.
  Result<uint16_t> EdgeMoves(const BasicBlock& from, const BasicBlock* to) {
    std::vector<BcMove> moves;
    for (const auto& inst : *to) {
      if (inst->opcode() != Opcode::kPhi) break;
      bool matched = false;
      for (size_t i = 0; i < inst->incoming_blocks().size(); ++i) {
        if (inst->incoming_blocks()[i] == &from) {
          KOP_ASSIGN_OR_RETURN(const uint16_t src, RegOf(inst->operand(i)));
          KOP_ASSIGN_OR_RETURN(const uint16_t dst, RegOf(inst.get()));
          moves.push_back({src, dst});
          matched = true;
          break;
        }
      }
      if (!matched) {
        return Internal("phi in " + to->label() +
                        " has no incoming entry for edge taken");
      }
    }
    if (moves.empty()) return kNoMoves;
    bf_.edge_moves.push_back(std::move(moves));
    return static_cast<uint16_t>(bf_.edge_moves.size() - 1);
  }

  uint32_t InternExtern(const std::string& name) {
    auto it = extern_index_.find(name);
    if (it != extern_index_.end()) return it->second;
    BcExtern ext;
    ext.name = name;
    ext.is_guard = name == kCaratGuardSymbol;
    ext.is_range_guard = name == kCaratGuardRangeSymbol;
    ext.is_intrinsic_guard = name == kCaratIntrinsicGuardSymbol;
    ext.is_cfi_check = name == kCaratCfiCheckSymbol;
    if (IsIntrinsicName(name)) ext.intrinsic = IntrinsicFromName(name);
    out_.externs.push_back(std::move(ext));
    const uint32_t id = static_cast<uint32_t>(out_.externs.size() - 1);
    extern_index_[name] = id;
    return id;
  }

  Result<BcInst> EmitInstruction(const Instruction& inst,
                                 const BasicBlock& block) {
    BcInst out;
    const Type type = inst.type();
    switch (inst.opcode()) {
      case Opcode::kAlloca: {
        out.op = BcOp::kAlloca;
        KOP_ASSIGN_OR_RETURN(out.dst, RegOf(&inst));
        out.imm = AlignUp(inst.alloca_size(), 16);
        return out;
      }
      case Opcode::kLoad: {
        out.op = BcOp::kLoad;
        KOP_ASSIGN_OR_RETURN(out.dst, RegOf(&inst));
        KOP_ASSIGN_OR_RETURN(out.a, RegOf(inst.operand(0)));
        out.width = static_cast<uint8_t>(StoreSize(inst.memory_type()));
        out.imm = MaskOfBits(BitWidth(type));
        return out;
      }
      case Opcode::kStore: {
        out.op = BcOp::kStore;
        KOP_ASSIGN_OR_RETURN(out.a, RegOf(inst.operand(0)));
        KOP_ASSIGN_OR_RETURN(out.b, RegOf(inst.operand(1)));
        out.width = static_cast<uint8_t>(StoreSize(inst.memory_type()));
        return out;
      }
      case Opcode::kGep: {
        out.op = BcOp::kGep;
        KOP_ASSIGN_OR_RETURN(out.dst, RegOf(&inst));
        KOP_ASSIGN_OR_RETURN(out.a, RegOf(inst.operand(0)));
        KOP_ASSIGN_OR_RETURN(out.b, RegOf(inst.operand(1)));
        out.width = static_cast<uint8_t>(BitWidth(inst.operand(1)->type()));
        out.imm = inst.gep_offset();
        out.imm2 = inst.gep_scale();
        return out;
      }
      case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
      case Opcode::kUDiv: case Opcode::kSDiv: case Opcode::kURem:
      case Opcode::kSRem: case Opcode::kAnd: case Opcode::kOr:
      case Opcode::kXor: case Opcode::kShl: case Opcode::kLShr:
      case Opcode::kAShr: {
        // The two opcode enums list the binary ALU block in the same
        // order; translate by offset.
        out.op = static_cast<BcOp>(
            static_cast<uint8_t>(BcOp::kAdd) +
            (static_cast<uint8_t>(inst.opcode()) -
             static_cast<uint8_t>(Opcode::kAdd)));
        KOP_ASSIGN_OR_RETURN(out.dst, RegOf(&inst));
        KOP_ASSIGN_OR_RETURN(out.a, RegOf(inst.operand(0)));
        KOP_ASSIGN_OR_RETURN(out.b, RegOf(inst.operand(1)));
        out.width = static_cast<uint8_t>(BitWidth(type));
        out.imm = MaskOfBits(BitWidth(type));
        return out;
      }
      case Opcode::kICmp: {
        out.op = BcOp::kICmp;
        KOP_ASSIGN_OR_RETURN(out.dst, RegOf(&inst));
        KOP_ASSIGN_OR_RETURN(out.a, RegOf(inst.operand(0)));
        KOP_ASSIGN_OR_RETURN(out.b, RegOf(inst.operand(1)));
        out.aux = static_cast<uint32_t>(inst.icmp_pred());
        out.width = static_cast<uint8_t>(BitWidth(inst.operand(0)->type()));
        out.imm = MaskOfBits(BitWidth(inst.operand(0)->type()));
        return out;
      }
      case Opcode::kZExt: case Opcode::kTrunc:
      case Opcode::kPtrToInt: case Opcode::kIntToPtr: {
        out.op = BcOp::kMove;
        KOP_ASSIGN_OR_RETURN(out.dst, RegOf(&inst));
        KOP_ASSIGN_OR_RETURN(out.a, RegOf(inst.operand(0)));
        out.imm = MaskOfBits(BitWidth(type));
        return out;
      }
      case Opcode::kSExt: {
        out.op = BcOp::kSExt;
        KOP_ASSIGN_OR_RETURN(out.dst, RegOf(&inst));
        KOP_ASSIGN_OR_RETURN(out.a, RegOf(inst.operand(0)));
        out.width = static_cast<uint8_t>(BitWidth(inst.operand(0)->type()));
        out.imm = MaskOfBits(BitWidth(type));
        return out;
      }
      case Opcode::kSelect: {
        out.op = BcOp::kSelect;
        KOP_ASSIGN_OR_RETURN(out.dst, RegOf(&inst));
        KOP_ASSIGN_OR_RETURN(out.a, RegOf(inst.operand(0)));
        KOP_ASSIGN_OR_RETURN(out.b, RegOf(inst.operand(1)));
        KOP_ASSIGN_OR_RETURN(const uint16_t other, RegOf(inst.operand(2)));
        out.aux = other;
        out.imm = MaskOfBits(BitWidth(type));
        return out;
      }
      case Opcode::kBr: {
        out.op = BcOp::kBr;
        KOP_ASSIGN_OR_RETURN(out.a, RegOf(inst.operand(0)));
        out.aux = block_index_.at(inst.true_block());
        out.imm = block_index_.at(inst.false_block());
        KOP_ASSIGN_OR_RETURN(out.dst, EdgeMoves(block, inst.true_block()));
        KOP_ASSIGN_OR_RETURN(out.b, EdgeMoves(block, inst.false_block()));
        return out;
      }
      case Opcode::kJmp: {
        out.op = BcOp::kJmp;
        out.aux = block_index_.at(inst.true_block());
        KOP_ASSIGN_OR_RETURN(out.dst, EdgeMoves(block, inst.true_block()));
        return out;
      }
      case Opcode::kRet: {
        if (inst.operand_count() == 0) {
          out.op = BcOp::kRetVoid;
          return out;
        }
        out.op = BcOp::kRet;
        KOP_ASSIGN_OR_RETURN(out.a, RegOf(inst.operand(0)));
        out.imm = MaskOfBits(BitWidth(fn_.return_type()));
        return out;
      }
      case Opcode::kCall: {
        const uint64_t ordinal = call_ordinal_++;
        const uint32_t arg_offset =
            static_cast<uint32_t>(bf_.call_args.size());
        for (size_t i = 0; i < inst.operand_count(); ++i) {
          KOP_ASSIGN_OR_RETURN(const uint16_t r, RegOf(inst.operand(i)));
          bf_.call_args.push_back(r);
        }
        out.b = static_cast<uint16_t>(inst.operand_count());
        out.imm = arg_offset;
        out.width = static_cast<uint8_t>(BitWidth(type));
        if (type != Type::kVoid) {
          KOP_ASSIGN_OR_RETURN(out.dst, RegOf(&inst));
        }
        const Function* callee = module_.FindFunction(inst.callee());
        if (callee != nullptr && !callee->is_external()) {
          out.op = BcOp::kCallInternal;
          out.aux = out_.function_index.at(inst.callee());
          out.imm2 = MaskOfBits(BitWidth(type));
        } else {
          out.aux = InternExtern(inst.callee());
          const BcExtern& ext = out_.externs[out.aux];
          // Memory guards with the exact ABI arity get the inline ops;
          // malformed guard calls (and intrinsic guards, whose check is
          // not a range test) stay on the out-of-line kGuard path.
          if (ext.is_guard && inst.operand_count() == 3) {
            out.op = BcOp::kGuardInline;
          } else if (ext.is_range_guard && inst.operand_count() == 4) {
            out.op = BcOp::kGuardRange;
          } else if (ext.is_guard || ext.is_range_guard ||
                     ext.is_intrinsic_guard) {
            out.op = BcOp::kGuard;
          } else if (ext.is_cfi_check && inst.operand_count() == 2) {
            out.op = BcOp::kCfiCheck;
          } else {
            out.op = BcOp::kCallExternal;
          }
          out.imm2 = ordinal;
        }
        return out;
      }
      case Opcode::kFuncAddr: {
        const int index = module_.FunctionIndex(inst.callee());
        if (index < 0) {
          return Internal("funcaddr of unknown function @" + inst.callee());
        }
        out.op = BcOp::kFuncAddr;
        KOP_ASSIGN_OR_RETURN(out.dst, RegOf(&inst));
        out.imm = FunctionAddressForIndex(static_cast<size_t>(index));
        return out;
      }
      case Opcode::kCallIndirect: {
        const uint64_t ordinal = call_ordinal_++;
        const uint32_t arg_offset =
            static_cast<uint32_t>(bf_.call_args.size());
        for (size_t i = 1; i < inst.operand_count(); ++i) {
          KOP_ASSIGN_OR_RETURN(const uint16_t r, RegOf(inst.operand(i)));
          bf_.call_args.push_back(r);
        }
        out.op = BcOp::kCallIndirect;
        KOP_ASSIGN_OR_RETURN(out.a, RegOf(inst.operand(0)));
        out.b = static_cast<uint16_t>(inst.operand_count() - 1);
        out.imm = arg_offset;
        out.imm2 = ordinal;
        out.width = static_cast<uint8_t>(BitWidth(type));
        if (type != Type::kVoid) {
          KOP_ASSIGN_OR_RETURN(out.dst, RegOf(&inst));
        }
        return out;
      }
      case Opcode::kInlineAsm:
        out.op = BcOp::kTrap;
        out.aux = static_cast<uint32_t>(bf_.asm_texts.size());
        bf_.asm_texts.push_back(inst.asm_text());
        return out;
      case Opcode::kPhi:
        break;  // handled by the caller; unreachable here
    }
    return Internal("unsupported opcode in bytecode lowering");
  }

  Status ResolveBranchTargets() {
    for (BcInst& inst : bf_.code) {
      if (inst.op == BcOp::kBr) {
        inst.aux = block_pc_[inst.aux];
        inst.imm = block_pc_[inst.imm];
      } else if (inst.op == BcOp::kJmp) {
        inst.aux = block_pc_[inst.aux];
      }
    }
    return OkStatus();
  }

  const Module& module_;
  const Function& fn_;
  BytecodeModule& out_;
  uint64_t& call_ordinal_;
  BytecodeFunction bf_;
  uint16_t next_reg_ = 0;
  std::unordered_map<const Value*, uint16_t> regs_;
  std::vector<uint64_t> template_values_;
  std::unordered_map<const BasicBlock*, uint32_t> block_index_;
  std::vector<uint32_t> block_pc_;
  std::unordered_map<std::string, uint32_t> extern_index_;
};

}  // namespace

std::string_view BcOpName(BcOp op) {
  switch (op) {
    case BcOp::kAlloca: return "alloca";
    case BcOp::kLoad: return "load";
    case BcOp::kStore: return "store";
    case BcOp::kGep: return "gep";
    case BcOp::kAdd: return "add";
    case BcOp::kSub: return "sub";
    case BcOp::kMul: return "mul";
    case BcOp::kUDiv: return "udiv";
    case BcOp::kSDiv: return "sdiv";
    case BcOp::kURem: return "urem";
    case BcOp::kSRem: return "srem";
    case BcOp::kAnd: return "and";
    case BcOp::kOr: return "or";
    case BcOp::kXor: return "xor";
    case BcOp::kShl: return "shl";
    case BcOp::kLShr: return "lshr";
    case BcOp::kAShr: return "ashr";
    case BcOp::kICmp: return "icmp";
    case BcOp::kMove: return "move";
    case BcOp::kSExt: return "sext";
    case BcOp::kSelect: return "select";
    case BcOp::kBr: return "br";
    case BcOp::kJmp: return "jmp";
    case BcOp::kRetVoid: return "ret.void";
    case BcOp::kRet: return "ret";
    case BcOp::kCallInternal: return "call.int";
    case BcOp::kCallExternal: return "call.ext";
    case BcOp::kGuard: return "guard";
    case BcOp::kGuardInline: return "guard.inline";
    case BcOp::kGuardRange: return "guard.range";
    case BcOp::kCfiCheck: return "cfi.check";
    case BcOp::kFuncAddr: return "funcaddr";
    case BcOp::kCallIndirect: return "call.ind";
    case BcOp::kTrap: return "trap";
  }
  return "?";
}

Result<BytecodeModule> CompileToBytecode(const Module& module) {
  BytecodeModule bc;
  bc.name = module.name();
  uint32_t defined = 0;
  for (const auto& fn : module.functions()) {
    if (fn->is_external()) continue;
    bc.function_index[fn->name()] = defined++;
  }
  uint64_t call_ordinal = 0;
  bool has_icalls = false;
  for (const auto& fn : module.functions()) {
    if (fn->is_external()) continue;
    FunctionCompiler compiler(module, *fn, bc, call_ordinal);
    auto compiled = compiler.Compile();
    if (!compiled.ok()) return compiled.status();
    for (const BcInst& inst : compiled->code) {
      if (inst.op == BcOp::kCallIndirect) has_icalls = true;
    }
    bc.functions.push_back(std::move(*compiled));
  }
  // Indirect-dispatch table: one entry per IR function in declaration
  // order, mirroring the simulated address space. Extern entries intern
  // their callee after compilation so extern numbering for icall-free
  // modules is untouched.
  if (has_icalls) {
    for (const auto& fn : module.functions()) {
      BcIcallTarget target;
      if (!fn->is_external()) {
        target.is_internal = true;
        target.index = bc.function_index.at(fn->name());
      } else {
        uint32_t id = static_cast<uint32_t>(bc.externs.size());
        for (uint32_t i = 0; i < bc.externs.size(); ++i) {
          if (bc.externs[i].name == fn->name()) {
            id = i;
            break;
          }
        }
        if (id == bc.externs.size()) {
          BcExtern ext;
          ext.name = fn->name();
          ext.is_guard = fn->name() == kCaratGuardSymbol;
          ext.is_range_guard = fn->name() == kCaratGuardRangeSymbol;
          ext.is_intrinsic_guard = fn->name() == kCaratIntrinsicGuardSymbol;
          ext.is_cfi_check = fn->name() == kCaratCfiCheckSymbol;
          if (IsIntrinsicName(fn->name())) {
            ext.intrinsic = IntrinsicFromName(fn->name());
          }
          bc.externs.push_back(std::move(ext));
        }
        target.index = id;
      }
      bc.icall_targets.push_back(target);
    }
  }
  return bc;
}

std::string DisassembleBytecode(const BytecodeModule& bytecode) {
  std::ostringstream out;
  out << "bytecode module \"" << bytecode.name << "\": "
      << bytecode.functions.size() << " functions, "
      << bytecode.externs.size() << " externs\n";
  for (size_t i = 0; i < bytecode.externs.size(); ++i) {
    const BcExtern& ext = bytecode.externs[i];
    out << "  extern " << i << ": @" << ext.name;
    if (ext.is_guard) out << " [guard]";
    if (ext.is_range_guard) out << " [range-guard]";
    if (ext.is_intrinsic_guard) out << " [intrinsic-guard]";
    if (ext.is_cfi_check) out << " [cfi-check]";
    if (ext.intrinsic != Intrinsic::kNone) {
      out << " [intrinsic " << static_cast<uint64_t>(ext.intrinsic) << "]";
    }
    out << "\n";
  }
  for (const BytecodeFunction& fn : bytecode.functions) {
    out << "\nfunc @" << fn.name << ": " << fn.num_regs << " regs ("
        << fn.num_args << " args, consts r" << fn.const_reg_begin << "..r"
        << (fn.const_reg_end == 0 ? 0 : fn.const_reg_end - 1) << "), "
        << fn.code.size() << " insts\n";
    for (uint16_t r = fn.const_reg_begin; r < fn.const_reg_end; ++r) {
      out << "  r" << r << " = " << fn.frame_template[r];
      for (const BcGlobalFixup& fix : fn.global_fixups) {
        if (fix.reg == r) out << "  ; @" << bytecode.global_names[fix.global];
      }
      out << "\n";
    }
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
      const BcInst& inst = fn.code[pc];
      out << "  " << pc << ": " << BcOpName(inst.op);
      switch (inst.op) {
        case BcOp::kAlloca:
          out << " r" << inst.dst << ", " << inst.imm << " bytes";
          break;
        case BcOp::kLoad:
          out << " r" << inst.dst << ", [r" << inst.a << "], "
              << unsigned{inst.width} << "B";
          break;
        case BcOp::kStore:
          out << " [r" << inst.b << "], r" << inst.a << ", "
              << unsigned{inst.width} << "B";
          break;
        case BcOp::kGep:
          out << " r" << inst.dst << ", r" << inst.a << " + sext(r" << inst.b
              << ")*" << inst.imm2 << " + " << inst.imm;
          break;
        case BcOp::kICmp:
          out << "." << ICmpPredName(static_cast<ICmpPred>(inst.aux)) << " r"
              << inst.dst << ", r" << inst.a << ", r" << inst.b;
          break;
        case BcOp::kSelect:
          out << " r" << inst.dst << ", r" << inst.a << " ? r" << inst.b
              << " : r" << inst.aux;
          break;
        case BcOp::kBr:
          out << " r" << inst.a << ", " << inst.aux << ", " << inst.imm;
          if (inst.dst != kNoMoves) out << " [moves " << inst.dst << "]";
          if (inst.b != kNoMoves) out << " [moves' " << inst.b << "]";
          break;
        case BcOp::kJmp:
          out << " " << inst.aux;
          if (inst.dst != kNoMoves) out << " [moves " << inst.dst << "]";
          break;
        case BcOp::kRetVoid:
          break;
        case BcOp::kRet:
          out << " r" << inst.a;
          break;
        case BcOp::kFuncAddr:
          out << " r" << inst.dst << ", 0x" << std::hex << inst.imm
              << std::dec;
          break;
        case BcOp::kCallIndirect: {
          out << " [r" << inst.a << "] ord " << inst.imm2 << " (";
          for (uint16_t i = 0; i < inst.b; ++i) {
            out << (i ? ", " : "") << "r" << fn.call_args[inst.imm + i];
          }
          out << ")";
          if (inst.width != 0) out << " -> r" << inst.dst;
          break;
        }
        case BcOp::kCallInternal:
        case BcOp::kCallExternal:
        case BcOp::kGuard:
        case BcOp::kGuardInline:
        case BcOp::kGuardRange:
        case BcOp::kCfiCheck: {
          if (inst.op == BcOp::kCallInternal) {
            out << " @" << bytecode.functions[inst.aux].name;
          } else {
            out << " @" << bytecode.externs[inst.aux].name << " ord "
                << inst.imm2;
          }
          out << " (";
          for (uint16_t i = 0; i < inst.b; ++i) {
            out << (i ? ", " : "") << "r" << fn.call_args[inst.imm + i];
          }
          out << ")";
          if (inst.width != 0) out << " -> r" << inst.dst;
          break;
        }
        case BcOp::kTrap:
          out << " \"" << fn.asm_texts[inst.aux] << "\"";
          break;
        default:
          out << " r" << inst.dst << ", r" << inst.a << ", r" << inst.b;
          break;
      }
      out << "\n";
    }
    for (size_t m = 0; m < fn.edge_moves.size(); ++m) {
      out << "  moves " << m << ":";
      for (const BcMove& move : fn.edge_moves[m]) {
        out << " r" << move.dst << "<-r" << move.src;
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace kop::kir
