#include "kop/kir/module.hpp"

namespace kop::kir {

Function::Function(std::string name, Type return_type,
                   std::vector<std::pair<Type, std::string>> params,
                   bool is_external, Module* parent)
    : name_(std::move(name)),
      return_type_(return_type),
      is_external_(is_external),
      parent_(parent) {
  args_.reserve(params.size());
  unsigned index = 0;
  for (auto& [type, param_name] : params) {
    args_.push_back(
        std::make_unique<Argument>(type, std::move(param_name), index++));
  }
}

BasicBlock* Function::CreateBlock(const std::string& label) {
  std::string unique = label;
  int suffix = 1;
  while (FindBlock(unique) != nullptr) {
    unique = label + "." + std::to_string(suffix++);
  }
  blocks_.push_back(std::make_unique<BasicBlock>(unique, this));
  return blocks_.back().get();
}

BasicBlock* Function::FindBlock(const std::string& label) {
  for (auto& block : blocks_) {
    if (block->label() == label) return block.get();
  }
  return nullptr;
}

size_t Function::InstructionCount() const {
  size_t count = 0;
  for (const auto& block : blocks_) count += block->size();
  return count;
}

Constant* Module::GetConstant(Type type, uint64_t bits) {
  bits = ClampToType(bits, type);
  auto key = std::make_pair(type, bits);
  auto it = constants_.find(key);
  if (it != constants_.end()) return it->second.get();
  auto constant = std::make_unique<Constant>(type, bits);
  Constant* raw = constant.get();
  constants_.emplace(key, std::move(constant));
  return raw;
}

GlobalVariable* Module::AddGlobal(const std::string& name, uint64_t size_bytes,
                                  bool writable, std::string init_bytes) {
  if (FindGlobal(name) != nullptr) return nullptr;
  globals_.push_back(std::make_unique<GlobalVariable>(
      name, size_bytes, writable, std::move(init_bytes)));
  return globals_.back().get();
}

GlobalVariable* Module::FindGlobal(const std::string& name) {
  for (auto& global : globals_) {
    if (global->name() == name) return global.get();
  }
  return nullptr;
}

Function* Module::CreateFunction(
    const std::string& name, Type return_type,
    std::vector<std::pair<Type, std::string>> params, bool is_external) {
  if (FindFunction(name) != nullptr) return nullptr;
  functions_.push_back(std::make_unique<Function>(
      name, return_type, std::move(params), is_external, this));
  return functions_.back().get();
}

Function* Module::FindFunction(const std::string& name) {
  for (auto& fn : functions_) {
    if (fn->name() == name) return fn.get();
  }
  return nullptr;
}

const Function* Module::FindFunction(const std::string& name) const {
  for (const auto& fn : functions_) {
    if (fn->name() == name) return fn.get();
  }
  return nullptr;
}

std::vector<std::string> Module::ExternalFunctionNames() const {
  std::vector<std::string> out;
  for (const auto& fn : functions_) {
    if (fn->is_external()) out.push_back(fn->name());
  }
  return out;
}

int Module::FunctionIndex(const std::string& name) const {
  for (size_t i = 0; i < functions_.size(); ++i) {
    if (functions_[i]->name() == name) return static_cast<int>(i);
  }
  return -1;
}

size_t Module::InstructionCount() const {
  size_t count = 0;
  for (const auto& fn : functions_) count += fn->InstructionCount();
  return count;
}

size_t Module::MemoryAccessCount() const {
  size_t count = 0;
  for (const auto& fn : functions_) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->IsMemoryAccess()) ++count;
      }
    }
  }
  return count;
}

}  // namespace kop::kir
