#include "kop/kir/printer.hpp"

#include <cassert>
#include <cstdio>

#include "kop/kir/type.hpp"

namespace kop::kir {

std::string_view OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kAlloca: return "alloca";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kGep: return "gep";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kUDiv: return "udiv";
    case Opcode::kSDiv: return "sdiv";
    case Opcode::kURem: return "urem";
    case Opcode::kSRem: return "srem";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kLShr: return "lshr";
    case Opcode::kAShr: return "ashr";
    case Opcode::kICmp: return "icmp";
    case Opcode::kZExt: return "zext";
    case Opcode::kSExt: return "sext";
    case Opcode::kTrunc: return "trunc";
    case Opcode::kPtrToInt: return "ptrtoint";
    case Opcode::kIntToPtr: return "inttoptr";
    case Opcode::kBr: return "br";
    case Opcode::kJmp: return "jmp";
    case Opcode::kRet: return "ret";
    case Opcode::kPhi: return "phi";
    case Opcode::kSelect: return "select";
    case Opcode::kCall: return "call";
    case Opcode::kFuncAddr: return "funcaddr";
    case Opcode::kCallIndirect: return "icall";
    case Opcode::kInlineAsm: return "asm";
  }
  return "?";
}

std::string_view ICmpPredName(ICmpPred pred) {
  switch (pred) {
    case ICmpPred::kEq: return "eq";
    case ICmpPred::kNe: return "ne";
    case ICmpPred::kULt: return "ult";
    case ICmpPred::kULe: return "ule";
    case ICmpPred::kUGt: return "ugt";
    case ICmpPred::kUGe: return "uge";
    case ICmpPred::kSLt: return "slt";
    case ICmpPred::kSLe: return "sle";
    case ICmpPred::kSGt: return "sgt";
    case ICmpPred::kSGe: return "sge";
  }
  return "?";
}

namespace {

std::string OperandRef(const Value* v) {
  switch (v->kind()) {
    case ValueKind::kConstant: {
      const auto* c = static_cast<const Constant*>(v);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(c->bits()));
      return buf;
    }
    case ValueKind::kArgument:
    case ValueKind::kInstruction:
      return "%" + v->name();
    case ValueKind::kGlobal:
      return "@" + v->name();
  }
  return "?";
}

std::string HexBytes(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char byte : bytes) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xf]);
  }
  return out;
}

}  // namespace

std::string PrintInstruction(const Instruction& inst) {
  std::string out;
  const auto def = [&]() { out = "%" + inst.name() + " = "; };
  const auto type_name = [](Type t) { return std::string(TypeName(t)); };

  switch (inst.opcode()) {
    case Opcode::kAlloca:
      def();
      out += "alloca " + std::to_string(inst.alloca_size());
      break;
    case Opcode::kLoad:
      def();
      out += "load " + type_name(inst.memory_type()) + ", " +
             OperandRef(inst.operand(0));
      break;
    case Opcode::kStore:
      out = "store " + type_name(inst.memory_type()) + " " +
            OperandRef(inst.operand(0)) + ", " + OperandRef(inst.operand(1));
      break;
    case Opcode::kGep:
      def();
      out += "gep " + OperandRef(inst.operand(0)) + ", i64 " +
             OperandRef(inst.operand(1)) + ", " +
             std::to_string(inst.gep_scale()) + ", " +
             std::to_string(inst.gep_offset());
      break;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kUDiv:
    case Opcode::kSDiv:
    case Opcode::kURem:
    case Opcode::kSRem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kLShr:
    case Opcode::kAShr:
      def();
      out += std::string(OpcodeName(inst.opcode())) + " " +
             type_name(inst.type()) + " " + OperandRef(inst.operand(0)) +
             ", " + OperandRef(inst.operand(1));
      break;
    case Opcode::kICmp:
      def();
      out += "icmp " + std::string(ICmpPredName(inst.icmp_pred())) + " " +
             type_name(inst.operand(0)->type()) + " " +
             OperandRef(inst.operand(0)) + ", " + OperandRef(inst.operand(1));
      break;
    case Opcode::kZExt:
    case Opcode::kSExt:
    case Opcode::kTrunc:
    case Opcode::kPtrToInt:
    case Opcode::kIntToPtr:
      def();
      out += std::string(OpcodeName(inst.opcode())) + " " +
             type_name(inst.operand(0)->type()) + " " +
             OperandRef(inst.operand(0)) + " to " + type_name(inst.type());
      break;
    case Opcode::kBr:
      out = "br " + OperandRef(inst.operand(0)) + ", " +
            inst.true_block()->label() + ", " + inst.false_block()->label();
      break;
    case Opcode::kJmp:
      out = "jmp " + inst.true_block()->label();
      break;
    case Opcode::kRet:
      if (inst.operand_count() == 0) {
        out = "ret void";
      } else {
        out = "ret " + type_name(inst.operand(0)->type()) + " " +
              OperandRef(inst.operand(0));
      }
      break;
    case Opcode::kPhi: {
      def();
      out += "phi " + type_name(inst.type());
      for (size_t i = 0; i < inst.operand_count(); ++i) {
        out += (i == 0 ? " [ " : ", [ ");
        out += OperandRef(inst.operand(i)) + ", " +
               inst.incoming_blocks()[i]->label() + " ]";
      }
      break;
    }
    case Opcode::kSelect:
      def();
      out += "select " + OperandRef(inst.operand(0)) + ", " +
             type_name(inst.type()) + " " + OperandRef(inst.operand(1)) +
             ", " + OperandRef(inst.operand(2));
      break;
    case Opcode::kCall: {
      if (inst.type() != Type::kVoid) def();
      out += "call " + type_name(inst.type()) + " @" + inst.callee() + "(";
      for (size_t i = 0; i < inst.operand_count(); ++i) {
        if (i > 0) out += ", ";
        out += type_name(inst.operand(i)->type()) + " " +
               OperandRef(inst.operand(i));
      }
      out += ")";
      break;
    }
    case Opcode::kFuncAddr:
      def();
      out += "funcaddr @" + inst.callee();
      break;
    case Opcode::kCallIndirect: {
      if (inst.type() != Type::kVoid) def();
      out += "icall " + type_name(inst.type()) + " " +
             OperandRef(inst.operand(0)) + "(";
      for (size_t i = 1; i < inst.operand_count(); ++i) {
        if (i > 1) out += ", ";
        out += type_name(inst.operand(i)->type()) + " " +
               OperandRef(inst.operand(i));
      }
      out += ")";
      break;
    }
    case Opcode::kInlineAsm:
      out = "asm \"" + inst.asm_text() + "\"";
      break;
  }
  return out;
}

std::string PrintFunction(const Function& fn) {
  std::string out;
  out += fn.is_external() ? "extern func @" : "func @";
  out += fn.name() + "(";
  for (size_t i = 0; i < fn.arg_count(); ++i) {
    const Argument* arg = fn.args()[i].get();
    if (i > 0) out += ", ";
    out += std::string(TypeName(arg->type()));
    if (!fn.is_external()) out += " %" + arg->name();
  }
  out += ") -> " + std::string(TypeName(fn.return_type()));
  if (fn.is_external()) {
    out += "\n";
    return out;
  }
  out += " {\n";
  for (const auto& block : fn.blocks()) {
    out += block->label() + ":\n";
    for (const auto& inst : *block) {
      out += "  " + PrintInstruction(*inst) + "\n";
    }
  }
  out += "}\n";
  return out;
}

std::string PrintModule(const Module& module) {
  std::string out = "module \"" + module.name() + "\"\n\n";
  for (const auto& global : module.globals()) {
    out += "global @" + global->name() + " size " +
           std::to_string(global->size_bytes()) +
           (global->writable() ? " rw" : " ro");
    if (!global->init_bytes().empty()) {
      out += " init x\"" + HexBytes(global->init_bytes()) + "\"";
    }
    out += "\n";
  }
  if (!module.globals().empty()) out += "\n";
  for (const auto& fn : module.functions()) {
    out += PrintFunction(*fn);
    out += "\n";
  }
  return out;
}

}  // namespace kop::kir
