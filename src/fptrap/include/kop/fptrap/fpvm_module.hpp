// The FPVM-style trap-handler module (paper §1, citing the authors'
// HPDC'22 FPVM paper): emulates the faulting floating-point instruction
// from the trap frame. One source, two builds — FpvmModule<RawMemOps> is
// the unprotected baseline, FpvmModule<GuardedMemOps> the CARAT KOP
// build — so the guard tax on a trap-delivery fast path is measurable
// (bench/ext2_fpvm).
#pragma once

#include <cstdint>

#include "kop/fptrap/trap_controller.hpp"
#include "kop/modrt/memops.hpp"

namespace kop::fptrap {

/// Module state-page layout (counters the module keeps).
namespace fpvm {
inline constexpr uint64_t kTrapsHandled = 0x00;  // u64
inline constexpr uint64_t kAddCount = 0x08;      // u64
inline constexpr uint64_t kDivCount = 0x10;      // u64
inline constexpr uint64_t kSize = 0x18;
}  // namespace fpvm

struct FpvmCounters {
  uint64_t traps_handled = 0;
  uint64_t adds = 0;
  uint64_t divs = 0;
};

template <typename Ops>
class FpvmModule {
 public:
  static Result<FpvmModule> Probe(Ops ops);
  Status Remove();

  /// The trap handler fast path: read the frame through guarded ops,
  /// emulate the op in software, patch the result back.
  Status HandleTrap(uint64_t frame_addr);

  Result<FpvmCounters> Counters();

  uint64_t state_addr() const { return state_; }

 private:
  explicit FpvmModule(Ops ops, uint64_t state) : ops_(ops), state_(state) {}

  Ops ops_;
  uint64_t state_ = 0;
};

extern template class FpvmModule<modrt::RawMemOps>;
extern template class FpvmModule<modrt::GuardedMemOps>;

using BaselineFpvm = FpvmModule<modrt::RawMemOps>;
using CaratFpvm = FpvmModule<modrt::GuardedMemOps>;

}  // namespace kop::fptrap
