// Floating-point trap delivery — the substrate for the paper's other §1
// motivating module: "Linux kernel modules for fast high-performance
// floating point trap delivery as part of FPVM". When an application
// instruction raises an FP exception the hardware cannot (or should not)
// resolve, the kernel builds a trap frame and hands it to the registered
// handler module, which emulates the instruction and patches the result
// back into the frame.
//
// The controller owns the frame page in simulated memory; the handler
// module reads and writes it through its (guarded, on carat builds)
// memory ops — exactly the accesses CARAT KOP would tax on the FPVM
// fast path.
#pragma once

#include <cstdint>
#include <functional>

#include "kop/kernel/kernel.hpp"
#include "kop/util/status.hpp"

namespace kop::fptrap {

/// Trap-frame layout within the controller's frame page (all u64).
namespace frame {
inline constexpr uint64_t kRip = 0x00;      // faulting instruction address
inline constexpr uint64_t kOpcode = 0x08;   // FpOp below
inline constexpr uint64_t kSrc1 = 0x10;     // IEEE-754 bits
inline constexpr uint64_t kSrc2 = 0x18;     // IEEE-754 bits
inline constexpr uint64_t kResult = 0x20;   // written by the handler
inline constexpr uint64_t kHandled = 0x28;  // 1 when the handler resolved it
inline constexpr uint64_t kSize = 0x30;
}  // namespace frame

enum class FpOp : uint64_t {
  kAdd = 0,
  kSub = 1,
  kMul = 2,
  kDiv = 3,
  kSqrt = 4,  // unary: src2 ignored
};

struct TrapStats {
  uint64_t delivered = 0;
  uint64_t handled = 0;
  uint64_t unhandled = 0;
};

class TrapController {
 public:
  /// Handler contract: given the simulated address of the trap frame,
  /// emulate the instruction and fill kResult/kHandled.
  using Handler = std::function<Status(uint64_t frame_addr)>;

  explicit TrapController(kernel::Kernel* kernel) : kernel_(kernel) {}

  /// Allocate the frame page. Call once before delivering traps.
  Status Init();

  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  /// Deliver one trap: stage the frame, invoke the handler, read the
  /// patched result back. Returns the result bits; kUnimplemented when
  /// no handler resolved it (the kernel would fall back to SIGFPE).
  Result<uint64_t> DeliverTrap(uint64_t rip, FpOp op, uint64_t src1_bits,
                               uint64_t src2_bits);

  uint64_t frame_addr() const { return frame_addr_; }
  const TrapStats& stats() const { return stats_; }

 private:
  kernel::Kernel* kernel_;
  Handler handler_;
  uint64_t frame_addr_ = 0;
  TrapStats stats_;
};

}  // namespace kop::fptrap
