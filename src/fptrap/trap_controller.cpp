#include "kop/fptrap/trap_controller.hpp"

namespace kop::fptrap {

Status TrapController::Init() {
  if (frame_addr_ != 0) return OkStatus();
  KOP_ASSIGN_OR_RETURN(frame_addr_,
                       kernel_->heap().Kmalloc(frame::kSize, 64));
  return OkStatus();
}

Result<uint64_t> TrapController::DeliverTrap(uint64_t rip, FpOp op,
                                             uint64_t src1_bits,
                                             uint64_t src2_bits) {
  if (frame_addr_ == 0) return Internal("trap controller not initialized");
  ++stats_.delivered;

  // The hardware exception round trip plus the core kernel's frame
  // staging (unguarded, but not free: ~8 kernel memory accesses).
  auto& clock = kernel_->clock();
  const auto& machine = kernel_->machine();
  clock.Advance(machine.trap_entry_cycles);
  clock.Advance(6 * machine.mem_write_cycles + 2 * machine.mem_read_cycles);
  auto& mem = kernel_->mem();
  KOP_RETURN_IF_ERROR(mem.Write64(frame_addr_ + frame::kRip, rip));
  KOP_RETURN_IF_ERROR(mem.Write64(frame_addr_ + frame::kOpcode,
                                  static_cast<uint64_t>(op)));
  KOP_RETURN_IF_ERROR(mem.Write64(frame_addr_ + frame::kSrc1, src1_bits));
  KOP_RETURN_IF_ERROR(mem.Write64(frame_addr_ + frame::kSrc2, src2_bits));
  KOP_RETURN_IF_ERROR(mem.Write64(frame_addr_ + frame::kResult, 0));
  KOP_RETURN_IF_ERROR(mem.Write64(frame_addr_ + frame::kHandled, 0));

  if (handler_) {
    KOP_RETURN_IF_ERROR(handler_(frame_addr_));
  }

  KOP_ASSIGN_OR_RETURN(uint64_t handled,
                       mem.Read64(frame_addr_ + frame::kHandled));
  if (handled == 0) {
    ++stats_.unhandled;
    return Unimplemented("FP trap not handled (would raise SIGFPE)");
  }
  ++stats_.handled;
  return mem.Read64(frame_addr_ + frame::kResult);
}

}  // namespace kop::fptrap
