#include "kop/fptrap/fpvm_module.hpp"

#include <cmath>
#include <cstring>

namespace kop::fptrap {
namespace {

double BitsToDouble(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

uint64_t DoubleToBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

}  // namespace

template <typename Ops>
Result<FpvmModule<Ops>> FpvmModule<Ops>::Probe(Ops ops) {
  kernel::Kernel* kernel = ops.kernel();
  KOP_ASSIGN_OR_RETURN(uint64_t state,
                       kernel->heap().Kmalloc(fpvm::kSize, 64));
  FpvmModule module(ops, state);
  Ops& o = module.ops_;
  KOP_RETURN_IF_ERROR(o.Store(state + fpvm::kTrapsHandled, 0, 8));
  KOP_RETURN_IF_ERROR(o.Store(state + fpvm::kAddCount, 0, 8));
  KOP_RETURN_IF_ERROR(o.Store(state + fpvm::kDivCount, 0, 8));
  return module;
}

template <typename Ops>
Status FpvmModule<Ops>::Remove() {
  KOP_RETURN_IF_ERROR(ops_.kernel()->heap().Kfree(state_));
  state_ = 0;
  return OkStatus();
}

template <typename Ops>
Status FpvmModule<Ops>::HandleTrap(uint64_t frame_addr) {
  // Read the faulting instruction's description (guarded loads).
  KOP_ASSIGN_OR_RETURN(uint64_t opcode,
                       ops_.Load(frame_addr + frame::kOpcode, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t src1_bits,
                       ops_.Load(frame_addr + frame::kSrc1, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t src2_bits,
                       ops_.Load(frame_addr + frame::kSrc2, 8));

  // Software emulation of the instruction (the FPVM idea: the trap
  // handler computes what the hardware refused to).
  const double a = BitsToDouble(src1_bits);
  const double b = BitsToDouble(src2_bits);
  double result = 0.0;
  switch (static_cast<FpOp>(opcode)) {
    case FpOp::kAdd: result = a + b; break;
    case FpOp::kSub: result = a - b; break;
    case FpOp::kMul: result = a * b; break;
    case FpOp::kDiv: result = a / b; break;
    case FpOp::kSqrt: result = std::sqrt(a); break;
    default:
      return OkStatus();  // unknown op: leave kHandled = 0 (SIGFPE path)
  }

  // Patch the frame and account (guarded stores).
  KOP_RETURN_IF_ERROR(
      ops_.Store(frame_addr + frame::kResult, DoubleToBits(result), 8));
  KOP_RETURN_IF_ERROR(ops_.Store(frame_addr + frame::kHandled, 1, 8));
  KOP_ASSIGN_OR_RETURN(uint64_t handled,
                       ops_.Load(state_ + fpvm::kTrapsHandled, 8));
  KOP_RETURN_IF_ERROR(
      ops_.Store(state_ + fpvm::kTrapsHandled, handled + 1, 8));
  if (static_cast<FpOp>(opcode) == FpOp::kAdd) {
    KOP_ASSIGN_OR_RETURN(uint64_t adds, ops_.Load(state_ + fpvm::kAddCount, 8));
    KOP_RETURN_IF_ERROR(ops_.Store(state_ + fpvm::kAddCount, adds + 1, 8));
  }
  if (static_cast<FpOp>(opcode) == FpOp::kDiv) {
    KOP_ASSIGN_OR_RETURN(uint64_t divs, ops_.Load(state_ + fpvm::kDivCount, 8));
    KOP_RETURN_IF_ERROR(ops_.Store(state_ + fpvm::kDivCount, divs + 1, 8));
  }
  return OkStatus();
}

template <typename Ops>
Result<FpvmCounters> FpvmModule<Ops>::Counters() {
  FpvmCounters out;
  KOP_ASSIGN_OR_RETURN(out.traps_handled,
                       ops_.Load(state_ + fpvm::kTrapsHandled, 8));
  KOP_ASSIGN_OR_RETURN(out.adds, ops_.Load(state_ + fpvm::kAddCount, 8));
  KOP_ASSIGN_OR_RETURN(out.divs, ops_.Load(state_ + fpvm::kDivCount, 8));
  return out;
}

template class FpvmModule<modrt::RawMemOps>;
template class FpvmModule<modrt::GuardedMemOps>;

}  // namespace kop::fptrap
