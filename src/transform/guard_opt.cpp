// Both passes are thin clients of the kop::analysis availability lattice:
// the same GuardSet / ApplyGuardStep the static verifier uses decides
// here whether a covering guard is available, so the optimizer can never
// delete a guard the verifier would later miss (and vice versa).
#include "kop/transform/guard_opt.hpp"

#include "kop/analysis/guard_lattice.hpp"
#include "kop/kir/cfg.hpp"

namespace kop::transform {
namespace {

using analysis::ApplyGuardStep;
using analysis::GuardFact;
using analysis::GuardSet;
using analysis::MatchGuardCall;

/// Walk one block from `state`, erasing guards already covered and
/// folding kept guards (and kills) into the state.
void OptimizeBlock(kir::BasicBlock& block, GuardSet state,
                   GuardOptStats& stats) {
  for (auto it = block.begin(); it != block.end();) {
    GuardFact fact;
    if (MatchGuardCall(**it, &fact)) {
      if (state.FindCovering(fact.addr, fact.size, fact.flags) != nullptr) {
        it = block.Erase(it);
        ++stats.guards_removed;
        continue;
      }
      ++stats.guards_kept;
    }
    ApplyGuardStep(**it, state);
    ++it;
  }
}

}  // namespace

Status GuardCoalescePass::Run(kir::Module& module) {
  stats_ = GuardOptStats();
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      OptimizeBlock(*block, GuardSet::MakeEmpty(), stats_);
    }
  }
  return OkStatus();
}

Status GuardDominationPass::Run(kir::Module& module) {
  stats_ = GuardOptStats();
  for (const auto& fn : module.functions()) {
    if (fn->is_external() || fn->blocks().empty()) continue;

    const kir::Cfg cfg(*fn);
    const auto availability = analysis::SolveGuardAvailability(cfg);

    // Erasing a covered guard never weakens any downstream in-state: the
    // covering fact was available at the erased guard and flows through
    // exactly the same kills, so everywhere the erased guard's fact
    // reached, a covering fact still does. The solved in-states therefore
    // stay valid as blocks are rewritten. Unreachable blocks are left
    // untouched (they never execute).
    for (const kir::BasicBlock* block : cfg.ReversePostorder()) {
      OptimizeBlock(*const_cast<kir::BasicBlock*>(block),
                    availability.in.at(block), stats_);
    }
  }
  return OkStatus();
}

}  // namespace kop::transform
