#include "kop/transform/guard_opt.hpp"

#include <map>
#include <unordered_map>
#include <vector>

#include "kop/kir/verifier.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::transform {
namespace {

struct GuardKey {
  const kir::Value* addr;
  uint64_t size;
  uint64_t flags;

  bool Covers(const GuardKey& other) const {
    return addr == other.addr && size >= other.size &&
           (flags & other.flags) == other.flags;
  }
};

bool IsGuardCall(const kir::Instruction& inst, GuardKey* key) {
  if (inst.opcode() != kir::Opcode::kCall ||
      inst.callee() != kCaratGuardSymbol || inst.operand_count() != 3) {
    return false;
  }
  const auto* size_const = kir::dyn_cast<kir::Constant>(inst.operand(1));
  const auto* flags_const = kir::dyn_cast<kir::Constant>(inst.operand(2));
  if (size_const == nullptr || flags_const == nullptr) return false;
  key->addr = inst.operand(0);
  key->size = size_const->bits();
  key->flags = flags_const->bits();
  return true;
}

/// Any call other than a guard may change the policy table (it could
/// reach the policy module's ioctl path), so available guards die there.
bool KillsAvailableGuards(const kir::Instruction& inst) {
  return inst.opcode() == kir::Opcode::kCall &&
         inst.callee() != kCaratGuardSymbol;
}

bool CoveredBy(const std::vector<GuardKey>& available, const GuardKey& key) {
  for (const GuardKey& have : available) {
    if (have.Covers(key)) return true;
  }
  return false;
}

}  // namespace

Status GuardCoalescePass::Run(kir::Module& module) {
  stats_ = GuardOptStats();
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      std::vector<GuardKey> available;
      for (auto it = block->begin(); it != block->end();) {
        GuardKey key;
        if (IsGuardCall(**it, &key)) {
          if (CoveredBy(available, key)) {
            it = block->Erase(it);
            ++stats_.guards_removed;
            continue;
          }
          available.push_back(key);
          ++stats_.guards_kept;
        } else if (KillsAvailableGuards(**it)) {
          available.clear();
        }
        ++it;
      }
    }
  }
  return OkStatus();
}

Status GuardDominationPass::Run(kir::Module& module) {
  stats_ = GuardOptStats();
  for (const auto& fn : module.functions()) {
    if (fn->is_external() || fn->blocks().empty()) continue;

    const auto idom = kir::ComputeImmediateDominators(*fn);
    std::unordered_map<const kir::BasicBlock*, size_t> index;
    for (size_t i = 0; i < fn->blocks().size(); ++i) {
      index[fn->blocks()[i].get()] = i;
    }

    // Guards still available at the *end* of each processed block. A block
    // inherits the out-set of its immediate dominator: everything on the
    // dominator-tree path to the entry has executed on every path here.
    std::unordered_map<const kir::BasicBlock*, std::vector<GuardKey>> out_sets;

    // Process blocks in an order where idom comes first. Blocks are stored
    // in creation order which need not be topological, so iterate until
    // every reachable block is done.
    std::vector<const kir::BasicBlock*> worklist;
    for (const auto& block : fn->blocks()) worklist.push_back(block.get());

    const kir::BasicBlock* entry = fn->blocks()[0].get();
    bool progressed = true;
    std::unordered_map<const kir::BasicBlock*, bool> done;
    while (progressed) {
      progressed = false;
      for (const kir::BasicBlock* block : worklist) {
        if (done[block]) continue;
        const kir::BasicBlock* dom =
            block == entry ? nullptr : idom[index.at(block)];
        if (block != entry) {
          if (dom == nullptr) {  // unreachable: leave untouched
            done[block] = true;
            progressed = true;
            continue;
          }
          if (!done[dom]) continue;
        }

        std::vector<GuardKey> available =
            dom == nullptr ? std::vector<GuardKey>{} : out_sets[dom];
        auto* mutable_block = const_cast<kir::BasicBlock*>(block);
        for (auto it = mutable_block->begin(); it != mutable_block->end();) {
          GuardKey key;
          if (IsGuardCall(**it, &key)) {
            if (CoveredBy(available, key)) {
              it = mutable_block->Erase(it);
              ++stats_.guards_removed;
              continue;
            }
            available.push_back(key);
            ++stats_.guards_kept;
          } else if (KillsAvailableGuards(**it)) {
            available.clear();
          }
          ++it;
        }
        out_sets[block] = std::move(available);
        done[block] = true;
        progressed = true;
      }
    }
  }
  return OkStatus();
}

}  // namespace kop::transform
