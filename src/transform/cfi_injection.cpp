#include "kop/transform/cfi_injection.hpp"

#include "kop/analysis/cfi.hpp"
#include "kop/kir/builder.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::transform {

Status CfiInjectionPass::Run(kir::Module& module) {
  stats_ = CfiInjectionStats();

  // Derive first: the sites table indexes icalls in program order, and
  // inserting plain calls does not disturb the pointer lattice, so the
  // pre-injection derivation stays valid afterwards.
  const analysis::CfiSummary summary = analysis::DeriveCfi(module);
  if (summary.sites.empty()) return OkStatus();
  stats_.target_sets = summary.sets.size();

  kir::Function* check = module.FindFunction(kCaratCfiCheckSymbol);
  if (check == nullptr) {
    check = module.CreateFunction(
        kCaratCfiCheckSymbol, kir::Type::kI32,
        {{kir::Type::kPtr, "target"}, {kir::Type::kI64, "set_id"}},
        /*is_external=*/true);
  } else if (!check->is_external() || check->arg_count() != 2) {
    return BadModule("module declares an incompatible @carat_cfi_check");
  }

  kir::IRBuilder builder(&module);
  size_t site_index = 0;
  for (const auto& fn : module.functions()) {
    if (fn->is_external() || fn->blocks().empty()) continue;
    for (const auto& block : fn->blocks()) {
      for (auto it = block->begin(); it != block->end(); ++it) {
        kir::Instruction* inst = it->get();
        if (inst->opcode() != kir::Opcode::kCallIndirect) continue;
        const analysis::CfiSite& site = summary.sites[site_index++];
        // Idempotent: a site already gated by a correct check (same
        // target value, same set id) is left alone.
        if (site.has_check && site.check_covers_target &&
            site.check_set_id == static_cast<int64_t>(site.set_id)) {
          ++stats_.sites_already_checked;
          continue;
        }
        builder.SetInsertPoint(block.get(), it);
        builder.CreateCall(kCaratCfiCheckSymbol, kir::Type::kI32,
                           {inst->operand(0), builder.I64(site.set_id)});
        // `it` still points at the icall; the check sits before it.
        ++stats_.checks_injected;
      }
    }
  }
  return OkStatus();
}

}  // namespace kop::transform
