#include "kop/transform/guard_injection.hpp"

#include "kop/kir/builder.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::transform {

// The core of CARAT KOP. Mirrors the paper's description exactly:
// "To ensure guards are inserted, it simply iterates over each load/store
//  operation and inserts a call to the guard function before."
Status GuardInjectionPass::Run(kir::Module& module) {
  stats_ = GuardInjectionStats();

  // Declare the guard if the module does not import it yet. The symbol is
  // resolved against the policy module's export at insmod time.
  kir::Function* guard = module.FindFunction(kCaratGuardSymbol);
  if (guard == nullptr) {
    guard = module.CreateFunction(
        kCaratGuardSymbol, kir::Type::kVoid,
        {{kir::Type::kPtr, "addr"},
         {kir::Type::kI64, "size"},
         {kir::Type::kI64, "access_flags"}},
        /*is_external=*/true);
  } else if (!guard->is_external() || guard->arg_count() != 3) {
    return BadModule("module declares an incompatible @carat_guard");
  }

  kir::IRBuilder builder(&module);

  for (const auto& fn : module.functions()) {
    if (fn->is_external()) continue;
    bool transformed = false;
    for (const auto& block : fn->blocks()) {
      for (auto it = block->begin(); it != block->end(); ++it) {
        kir::Instruction* inst = it->get();
        if (!inst->IsMemoryAccess()) continue;

        const bool is_store = inst->opcode() == kir::Opcode::kStore;
        kir::Value* addr = is_store ? inst->operand(1) : inst->operand(0);
        const uint64_t size = kir::StoreSize(inst->memory_type());
        const uint64_t flags =
            is_store ? kGuardAccessWrite : kGuardAccessRead;

        builder.SetInsertPoint(block.get(), it);
        builder.CreateCall(
            kCaratGuardSymbol, kir::Type::kVoid,
            {addr, builder.I64(size), builder.I64(flags)});
        // `it` still points at the load/store; the guard call sits before
        // it and the loop does not revisit the inserted call.
        if (is_store) {
          ++stats_.stores_guarded;
        } else {
          ++stats_.loads_guarded;
        }
        transformed = true;
      }
    }
    if (transformed) ++stats_.functions_transformed;
  }
  return OkStatus();
}

}  // namespace kop::transform
