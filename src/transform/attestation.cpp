#include "kop/transform/attestation.hpp"

#include <algorithm>
#include <sstream>

#include "kop/analysis/cfi.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::transform {

std::string AttestationRecord::Serialize() const {
  std::ostringstream out;
  out << "carat-kop-attestation v1\n"
      << "module: " << module_name << "\n"
      << "compiler: " << compiler << "\n"
      << "guards_complete: " << (guards_complete ? 1 : 0) << "\n"
      << "no_inline_asm: " << (no_inline_asm ? 1 : 0) << "\n"
      << "guards_optimized: " << (guards_optimized ? 1 : 0) << "\n"
      << "guard_count: " << guard_count << "\n"
      << "site_count: " << sites.size() << "\n";
  for (const GuardSite& site : sites) {
    const char* kind = site.is_intrinsic ? "i" : site.is_range ? "r" : "g";
    out << "site: " << site.site_id << " " << site.call_ordinal << " "
        << site.inst_index << " " << site.access_size << " "
        << site.access_flags << " " << kind << " @" << site.function;
    if (site.is_range) out << " " << site.elided;
    out << "\n";
  }
  if (!elisions.empty()) {
    out << "elision_count: " << elisions.size() << "\n";
    for (const ElisionRecord& rec : elisions) {
      out << "elide: " << rec.site_id << " " << rec.inst_index << " "
          << rec.kind << " " << rec.span << " " << rec.flags << " "
          << rec.members.size() << " @" << rec.function << "\n";
      for (const ElisionMember& member : rec.members) {
        out << "member: " << member.offset << " " << member.size << " "
            << member.flags << "\n";
      }
    }
  }
  if (cfi_gated) {
    out << "cfi_gated: 1\n"
        << "cfi_set_count: " << cfi_sets.size() << "\n";
    for (const CfiAttestedSet& set : cfi_sets) {
      out << "cfi_set: " << set.set_id << " " << set.members.size();
      for (const std::string& member : set.members) out << " @" << member;
      out << "\n";
    }
    out << "cfi_site_count: " << cfi_sites.size() << "\n";
    for (const CfiAttestedSite& site : cfi_sites) {
      out << "cfi_site: " << site.set_id << " " << site.inst_index << " "
          << site.icall_ordinal << " " << site.check_ordinal << " @"
          << site.function << "\n";
    }
  }
  return out.str();
}

Result<AttestationRecord> AttestationRecord::Deserialize(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "carat-kop-attestation v1") {
    return BadModule("attestation: bad header");
  }
  AttestationRecord record;
  auto field = [&](const char* key) -> Result<std::string> {
    if (!std::getline(in, line)) {
      return BadModule(std::string("attestation: missing field ") + key);
    }
    const std::string prefix = std::string(key) + ": ";
    if (line.rfind(prefix, 0) != 0) {
      return BadModule("attestation: expected field " + std::string(key) +
                       ", got '" + line + "'");
    }
    return line.substr(prefix.size());
  };
  auto bool_field = [&](const char* key) -> Result<bool> {
    auto value = field(key);
    if (!value.ok()) return value.status();
    return *value == "1";
  };
  KOP_ASSIGN_OR_RETURN(record.module_name, field("module"));
  KOP_ASSIGN_OR_RETURN(record.compiler, field("compiler"));
  KOP_ASSIGN_OR_RETURN(record.guards_complete, bool_field("guards_complete"));
  KOP_ASSIGN_OR_RETURN(record.no_inline_asm, bool_field("no_inline_asm"));
  KOP_ASSIGN_OR_RETURN(record.guards_optimized,
                       bool_field("guards_optimized"));
  const auto count = field("guard_count");
  if (!count.ok()) return count.status();
  record.guard_count = std::strtoull(count->c_str(), nullptr, 10);
  // site_count (and the sites after it) are absent from pre-observability
  // records; accept both.
  if (!std::getline(in, line)) return record;
  const std::string site_count_prefix = "site_count: ";
  if (line.rfind(site_count_prefix, 0) != 0) {
    return BadModule("attestation: expected field site_count, got '" + line +
                     "'");
  }
  const uint64_t site_count =
      std::strtoull(line.c_str() + site_count_prefix.size(), nullptr, 10);
  record.sites.reserve(site_count);
  for (uint64_t i = 0; i < site_count; ++i) {
    if (!std::getline(in, line) || line.rfind("site: ", 0) != 0) {
      return BadModule("attestation: truncated site table");
    }
    std::istringstream fields(line.substr(6));
    GuardSite site;
    std::string kind;
    std::string function;
    if (!(fields >> site.site_id >> site.call_ordinal >> site.inst_index >>
          site.access_size >> site.access_flags >> kind >> function) ||
        (kind != "g" && kind != "i" && kind != "r") || function.empty() ||
        function[0] != '@') {
      return BadModule("attestation: malformed site entry '" + line + "'");
    }
    site.is_intrinsic = kind == "i";
    site.is_range = kind == "r";
    if (site.is_range && !(fields >> site.elided)) {
      return BadModule("attestation: range site missing elided count '" +
                       line + "'");
    }
    site.function = function.substr(1);
    record.sites.push_back(std::move(site));
  }
  // The trailing sections are optional: elision_count (absent from
  // pre-elision attestations and modules compiled with elision off) and
  // the cfi table (absent from pre-CFI attestations and modules compiled
  // with KOP_CFI=off or without indirect calls). Accept any combination.
  if (!std::getline(in, line)) return record;
  const std::string elision_count_prefix = "elision_count: ";
  if (line.rfind(elision_count_prefix, 0) == 0) {
    const uint64_t elision_count =
        std::strtoull(line.c_str() + elision_count_prefix.size(), nullptr, 10);
    record.elisions.reserve(elision_count);
    for (uint64_t i = 0; i < elision_count; ++i) {
      if (!std::getline(in, line) || line.rfind("elide: ", 0) != 0) {
        return BadModule("attestation: truncated elision table");
      }
      std::istringstream fields(line.substr(7));
      ElisionRecord rec;
      uint64_t member_count = 0;
      std::string function;
      if (!(fields >> rec.site_id >> rec.inst_index >> rec.kind >> rec.span >>
            rec.flags >> member_count >> function) ||
          (rec.kind != "widen" && rec.kind != "hoist") || function.empty() ||
          function[0] != '@' || member_count == 0) {
        return BadModule("attestation: malformed elision entry '" + line +
                         "'");
      }
      rec.function = function.substr(1);
      rec.members.reserve(member_count);
      for (uint64_t m = 0; m < member_count; ++m) {
        if (!std::getline(in, line) || line.rfind("member: ", 0) != 0) {
          return BadModule("attestation: truncated elision member table");
        }
        std::istringstream mf(line.substr(8));
        ElisionMember member;
        if (!(mf >> member.offset >> member.size >> member.flags)) {
          return BadModule("attestation: malformed elision member '" + line +
                           "'");
        }
        rec.members.push_back(member);
      }
      record.elisions.push_back(std::move(rec));
    }
    if (!std::getline(in, line)) return record;
  }
  if (line != "cfi_gated: 1") {
    return BadModule("attestation: expected field elision_count or "
                     "cfi_gated, got '" + line + "'");
  }
  record.cfi_gated = true;
  auto count_field = [&](const char* key) -> Result<uint64_t> {
    auto value = field(key);
    if (!value.ok()) return value.status();
    return std::strtoull(value->c_str(), nullptr, 10);
  };
  const auto cfi_set_count = count_field("cfi_set_count");
  if (!cfi_set_count.ok()) return cfi_set_count.status();
  record.cfi_sets.reserve(*cfi_set_count);
  for (uint64_t i = 0; i < *cfi_set_count; ++i) {
    if (!std::getline(in, line) || line.rfind("cfi_set: ", 0) != 0) {
      return BadModule("attestation: truncated cfi set table");
    }
    std::istringstream fields(line.substr(9));
    CfiAttestedSet set;
    uint64_t member_count = 0;
    if (!(fields >> set.set_id >> member_count)) {
      return BadModule("attestation: malformed cfi set entry '" + line + "'");
    }
    set.members.reserve(member_count);
    for (uint64_t m = 0; m < member_count; ++m) {
      std::string member;
      if (!(fields >> member) || member.size() < 2 || member[0] != '@') {
        return BadModule("attestation: malformed cfi set member in '" + line +
                         "'");
      }
      set.members.push_back(member.substr(1));
    }
    record.cfi_sets.push_back(std::move(set));
  }
  const auto cfi_site_count = count_field("cfi_site_count");
  if (!cfi_site_count.ok()) return cfi_site_count.status();
  record.cfi_sites.reserve(*cfi_site_count);
  for (uint64_t i = 0; i < *cfi_site_count; ++i) {
    if (!std::getline(in, line) || line.rfind("cfi_site: ", 0) != 0) {
      return BadModule("attestation: truncated cfi site table");
    }
    std::istringstream fields(line.substr(10));
    CfiAttestedSite site;
    std::string function;
    if (!(fields >> site.set_id >> site.inst_index >> site.icall_ordinal >>
          site.check_ordinal >> function) ||
        function.size() < 2 || function[0] != '@') {
      return BadModule("attestation: malformed cfi site entry '" + line +
                       "'");
    }
    site.function = function.substr(1);
    record.cfi_sites.push_back(std::move(site));
  }
  return record;
}

Status AsmAttestationPass::Run(kir::Module& module) {
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kInlineAsm) {
          return BadModule("cannot certify module '" + module.name() +
                           "': inline assembly in @" + fn->name() +
                           " (\"" + inst->asm_text() + "\")");
        }
      }
    }
  }
  return OkStatus();
}

bool GuardsComplete(const kir::Module& module) {
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      const kir::Instruction* prev = nullptr;
      for (const auto& inst : *block) {
        if (inst->IsMemoryAccess()) {
          const bool is_store = inst->opcode() == kir::Opcode::kStore;
          const kir::Value* addr =
              is_store ? inst->operand(1) : inst->operand(0);
          const uint64_t size = kir::StoreSize(inst->memory_type());
          const uint64_t flags =
              is_store ? kGuardAccessWrite : kGuardAccessRead;

          if (prev == nullptr || prev->opcode() != kir::Opcode::kCall ||
              prev->callee() != kCaratGuardSymbol ||
              prev->operand_count() != 3) {
            return false;
          }
          // The guard must cover this exact access.
          if (prev->operand(0) != addr) return false;
          const auto* size_const =
              kir::dyn_cast<kir::Constant>(prev->operand(1));
          const auto* flags_const =
              kir::dyn_cast<kir::Constant>(prev->operand(2));
          if (size_const == nullptr || size_const->bits() < size) return false;
          if (flags_const == nullptr || (flags_const->bits() & flags) != flags) {
            return false;
          }
        }
        prev = inst.get();
      }
    }
  }
  return true;
}

AttestationRecord Attest(const kir::Module& module) {
  AttestationRecord record;
  record.module_name = module.name();
  bool has_asm = false;
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kInlineAsm) has_asm = true;
      }
    }
  }
  record.no_inline_asm = !has_asm;
  record.guards_complete = GuardsComplete(module);
  uint64_t guards = 0;
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kCall &&
            (inst->callee() == kCaratGuardSymbol ||
             inst->callee() == kCaratGuardRangeSymbol)) {
          ++guards;
        }
      }
    }
  }
  record.guard_count = guards;
  record.sites = EnumerateGuardSites(module);
  // The CFI table is a pure function of the shipped IR (which is what
  // lets the validator re-derive and compare it): attested exactly when
  // the module has indirect calls and imports the check symbol.
  const kir::Function* check = module.FindFunction(kCaratCfiCheckSymbol);
  if (check != nullptr && check->is_external()) {
    const analysis::CfiSummary cfi = analysis::DeriveCfi(module);
    if (!cfi.sites.empty()) {
      record.cfi_gated = true;
      for (size_t i = 0; i < cfi.sets.size(); ++i) {
        CfiAttestedSet set;
        set.set_id = static_cast<uint32_t>(i);
        set.members = cfi.sets[i].members;
        record.cfi_sets.push_back(std::move(set));
      }
      for (const analysis::CfiSite& site : cfi.sites) {
        CfiAttestedSite attested;
        attested.set_id = site.set_id;
        attested.function = site.function;
        attested.inst_index = site.inst_index;
        attested.icall_ordinal = site.call_ordinal;
        attested.check_ordinal = site.check_ordinal;
        record.cfi_sites.push_back(std::move(attested));
      }
    }
  }
  return record;
}

Status VerifyElisionProvenance(const AttestationRecord& record,
                               const std::vector<GuardSite>& sites) {
  std::vector<bool> claimed(sites.size(), false);
  for (const ElisionRecord& rec : record.elisions) {
    const std::string where =
        "elision record for site " + std::to_string(rec.site_id);
    if (rec.site_id >= sites.size()) {
      return BadModule(where + ": no such guard site in the shipped IR");
    }
    if (claimed[rec.site_id]) {
      return BadModule(where + ": duplicate provenance for one cover");
    }
    claimed[rec.site_id] = true;
    const GuardSite& site = sites[rec.site_id];
    if (!site.is_range) {
      return BadModule(where + ": site is not a carat_guard_range cover");
    }
    if (site.function != rec.function || site.inst_index != rec.inst_index) {
      return BadModule(where + ": cover position does not match the IR (@" +
                       site.function + " inst " +
                       std::to_string(site.inst_index) + ")");
    }
    if (site.access_size != rec.span || site.access_flags != rec.flags) {
      return BadModule(where + ": cover span/flags do not match the IR");
    }
    if (rec.members.empty() ||
        site.elided != static_cast<uint32_t>(rec.members.size() - 1)) {
      return BadModule(where + ": cover's elided count does not equal its "
                       "subsumed members");
    }
    // The members must tile [0, span): every byte the cover demands
    // permission for was demanded by some replaced guard, with flags the
    // cover also checks.
    std::vector<ElisionMember> members = rec.members;
    std::sort(members.begin(), members.end(),
              [](const ElisionMember& a, const ElisionMember& b) {
                return a.offset < b.offset;
              });
    uint64_t covered_end = 0;
    for (const ElisionMember& member : members) {
      if (member.size == 0 || member.offset > covered_end) {
        return BadModule(where + ": members leave a hole in the cover");
      }
      if ((rec.flags & member.flags) != member.flags) {
        return BadModule(where + ": member flags exceed the cover's");
      }
      covered_end = std::max(covered_end, member.offset + member.size);
    }
    if (covered_end != rec.span) {
      return BadModule(where + ": members do not tile the cover's span");
    }
  }
  return OkStatus();
}

Status VerifyCfiProvenance(const AttestationRecord& record,
                           const kir::Module& module) {
  const kir::Function* check = module.FindFunction(kCaratCfiCheckSymbol);
  const bool claims_cfi = check != nullptr && check->is_external();

  if (!record.cfi_gated) {
    if (!record.cfi_sets.empty() || !record.cfi_sites.empty()) {
      return BadModule("cfi attestation: table present but cfi_gated is 0");
    }
    // A module that imports the check symbol but attests no table would
    // deny every icall at runtime with no registered sets — and, worse,
    // would dodge the re-derivation entirely. Reject up front.
    if (claims_cfi) {
      return BadModule("cfi attestation: module imports carat_cfi_check but "
                       "its attestation carries no CFI table");
    }
    return OkStatus();
  }

  if (!claims_cfi) {
    return BadModule("cfi attestation: cfi_gated set but the shipped IR "
                     "does not import carat_cfi_check");
  }

  const analysis::CfiSummary derived = analysis::DeriveCfi(module);
  if (record.cfi_sets.size() != derived.sets.size()) {
    return BadModule("cfi attestation: claims " +
                     std::to_string(record.cfi_sets.size()) +
                     " target set(s) but the proof derives " +
                     std::to_string(derived.sets.size()));
  }
  for (size_t i = 0; i < derived.sets.size(); ++i) {
    const CfiAttestedSet& attested = record.cfi_sets[i];
    const std::string where = "cfi attestation: set " + std::to_string(i);
    if (attested.set_id != i) {
      return BadModule(where + ": non-canonical set numbering");
    }
    // Exact equality — one extra member is a widened gate, one missing
    // member a stale table; both mean the attestation was not produced
    // from this IR.
    if (attested.members != derived.sets[i].members) {
      return BadModule(where + ": attested members do not match the derived "
                       "legal target set (" +
                       std::to_string(attested.members.size()) +
                       " attested, " +
                       std::to_string(derived.sets[i].members.size()) +
                       " derived)");
    }
  }
  if (record.cfi_sites.size() != derived.sites.size()) {
    return BadModule("cfi attestation: claims " +
                     std::to_string(record.cfi_sites.size()) +
                     " indirect-call site(s) but the shipped IR has " +
                     std::to_string(derived.sites.size()));
  }
  for (size_t i = 0; i < derived.sites.size(); ++i) {
    const CfiAttestedSite& attested = record.cfi_sites[i];
    const analysis::CfiSite& site = derived.sites[i];
    const std::string where = "cfi attestation: site " + std::to_string(i);
    if (attested.function != site.function ||
        attested.inst_index != site.inst_index ||
        attested.icall_ordinal != site.call_ordinal) {
      return BadModule(where + ": position does not match the IR (@" +
                       site.function + " inst " +
                       std::to_string(site.inst_index) + ")");
    }
    if (attested.set_id != site.set_id) {
      return BadModule(where + ": claims set " +
                       std::to_string(attested.set_id) +
                       " but the proof derives set " +
                       std::to_string(site.set_id));
    }
    if (!site.has_check || attested.check_ordinal != site.check_ordinal) {
      return BadModule(where + ": check ordinal does not match the shipped "
                       "IR's adjacent carat_cfi_check");
    }
  }
  return OkStatus();
}

}  // namespace kop::transform
