#include "kop/transform/attestation.hpp"

#include <sstream>

#include "kop/util/carat_abi.hpp"

namespace kop::transform {

std::string AttestationRecord::Serialize() const {
  std::ostringstream out;
  out << "carat-kop-attestation v1\n"
      << "module: " << module_name << "\n"
      << "compiler: " << compiler << "\n"
      << "guards_complete: " << (guards_complete ? 1 : 0) << "\n"
      << "no_inline_asm: " << (no_inline_asm ? 1 : 0) << "\n"
      << "guards_optimized: " << (guards_optimized ? 1 : 0) << "\n"
      << "guard_count: " << guard_count << "\n";
  return out.str();
}

Result<AttestationRecord> AttestationRecord::Deserialize(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "carat-kop-attestation v1") {
    return BadModule("attestation: bad header");
  }
  AttestationRecord record;
  auto field = [&](const char* key) -> Result<std::string> {
    if (!std::getline(in, line)) {
      return BadModule(std::string("attestation: missing field ") + key);
    }
    const std::string prefix = std::string(key) + ": ";
    if (line.rfind(prefix, 0) != 0) {
      return BadModule("attestation: expected field " + std::string(key) +
                       ", got '" + line + "'");
    }
    return line.substr(prefix.size());
  };
  KOP_ASSIGN_OR_RETURN(record.module_name, field("module"));
  KOP_ASSIGN_OR_RETURN(record.compiler, field("compiler"));
  KOP_ASSIGN_OR_RETURN(std::string guards, field("guards_complete"));
  record.guards_complete = guards == "1";
  KOP_ASSIGN_OR_RETURN(std::string no_asm, field("no_inline_asm"));
  record.no_inline_asm = no_asm == "1";
  KOP_ASSIGN_OR_RETURN(std::string optimized, field("guards_optimized"));
  record.guards_optimized = optimized == "1";
  KOP_ASSIGN_OR_RETURN(std::string count, field("guard_count"));
  record.guard_count = std::strtoull(count.c_str(), nullptr, 10);
  return record;
}

Status AsmAttestationPass::Run(kir::Module& module) {
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kInlineAsm) {
          return BadModule("cannot certify module '" + module.name() +
                           "': inline assembly in @" + fn->name() +
                           " (\"" + inst->asm_text() + "\")");
        }
      }
    }
  }
  return OkStatus();
}

bool GuardsComplete(const kir::Module& module) {
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      const kir::Instruction* prev = nullptr;
      for (const auto& inst : *block) {
        if (inst->IsMemoryAccess()) {
          const bool is_store = inst->opcode() == kir::Opcode::kStore;
          const kir::Value* addr =
              is_store ? inst->operand(1) : inst->operand(0);
          const uint64_t size = kir::StoreSize(inst->memory_type());
          const uint64_t flags =
              is_store ? kGuardAccessWrite : kGuardAccessRead;

          if (prev == nullptr || prev->opcode() != kir::Opcode::kCall ||
              prev->callee() != kCaratGuardSymbol ||
              prev->operand_count() != 3) {
            return false;
          }
          // The guard must cover this exact access.
          if (prev->operand(0) != addr) return false;
          const auto* size_const =
              kir::dyn_cast<kir::Constant>(prev->operand(1));
          const auto* flags_const =
              kir::dyn_cast<kir::Constant>(prev->operand(2));
          if (size_const == nullptr || size_const->bits() < size) return false;
          if (flags_const == nullptr || (flags_const->bits() & flags) != flags) {
            return false;
          }
        }
        prev = inst.get();
      }
    }
  }
  return true;
}

AttestationRecord Attest(const kir::Module& module) {
  AttestationRecord record;
  record.module_name = module.name();
  bool has_asm = false;
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kInlineAsm) has_asm = true;
      }
    }
  }
  record.no_inline_asm = !has_asm;
  record.guards_complete = GuardsComplete(module);
  uint64_t guards = 0;
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kCall &&
            inst->callee() == kCaratGuardSymbol) {
          ++guards;
        }
      }
    }
  }
  record.guard_count = guards;
  return record;
}

}  // namespace kop::transform
