#include "kop/transform/attestation.hpp"

#include <sstream>

#include "kop/util/carat_abi.hpp"

namespace kop::transform {

std::string AttestationRecord::Serialize() const {
  std::ostringstream out;
  out << "carat-kop-attestation v1\n"
      << "module: " << module_name << "\n"
      << "compiler: " << compiler << "\n"
      << "guards_complete: " << (guards_complete ? 1 : 0) << "\n"
      << "no_inline_asm: " << (no_inline_asm ? 1 : 0) << "\n"
      << "guards_optimized: " << (guards_optimized ? 1 : 0) << "\n"
      << "guard_count: " << guard_count << "\n"
      << "site_count: " << sites.size() << "\n";
  for (const GuardSite& site : sites) {
    out << "site: " << site.site_id << " " << site.call_ordinal << " "
        << site.inst_index << " " << site.access_size << " "
        << site.access_flags << " " << (site.is_intrinsic ? "i" : "g") << " @"
        << site.function << "\n";
  }
  return out.str();
}

Result<AttestationRecord> AttestationRecord::Deserialize(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "carat-kop-attestation v1") {
    return BadModule("attestation: bad header");
  }
  AttestationRecord record;
  auto field = [&](const char* key) -> Result<std::string> {
    if (!std::getline(in, line)) {
      return BadModule(std::string("attestation: missing field ") + key);
    }
    const std::string prefix = std::string(key) + ": ";
    if (line.rfind(prefix, 0) != 0) {
      return BadModule("attestation: expected field " + std::string(key) +
                       ", got '" + line + "'");
    }
    return line.substr(prefix.size());
  };
  auto bool_field = [&](const char* key) -> Result<bool> {
    auto value = field(key);
    if (!value.ok()) return value.status();
    return *value == "1";
  };
  KOP_ASSIGN_OR_RETURN(record.module_name, field("module"));
  KOP_ASSIGN_OR_RETURN(record.compiler, field("compiler"));
  KOP_ASSIGN_OR_RETURN(record.guards_complete, bool_field("guards_complete"));
  KOP_ASSIGN_OR_RETURN(record.no_inline_asm, bool_field("no_inline_asm"));
  KOP_ASSIGN_OR_RETURN(record.guards_optimized,
                       bool_field("guards_optimized"));
  const auto count = field("guard_count");
  if (!count.ok()) return count.status();
  record.guard_count = std::strtoull(count->c_str(), nullptr, 10);
  // site_count (and the sites after it) are absent from pre-observability
  // records; accept both.
  if (!std::getline(in, line)) return record;
  const std::string site_count_prefix = "site_count: ";
  if (line.rfind(site_count_prefix, 0) != 0) {
    return BadModule("attestation: expected field site_count, got '" + line +
                     "'");
  }
  const uint64_t site_count =
      std::strtoull(line.c_str() + site_count_prefix.size(), nullptr, 10);
  record.sites.reserve(site_count);
  for (uint64_t i = 0; i < site_count; ++i) {
    if (!std::getline(in, line) || line.rfind("site: ", 0) != 0) {
      return BadModule("attestation: truncated site table");
    }
    std::istringstream fields(line.substr(6));
    GuardSite site;
    std::string kind;
    std::string function;
    if (!(fields >> site.site_id >> site.call_ordinal >> site.inst_index >>
          site.access_size >> site.access_flags >> kind >> function) ||
        (kind != "g" && kind != "i") || function.empty() ||
        function[0] != '@') {
      return BadModule("attestation: malformed site entry '" + line + "'");
    }
    site.is_intrinsic = kind == "i";
    site.function = function.substr(1);
    record.sites.push_back(std::move(site));
  }
  return record;
}

Status AsmAttestationPass::Run(kir::Module& module) {
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kInlineAsm) {
          return BadModule("cannot certify module '" + module.name() +
                           "': inline assembly in @" + fn->name() +
                           " (\"" + inst->asm_text() + "\")");
        }
      }
    }
  }
  return OkStatus();
}

bool GuardsComplete(const kir::Module& module) {
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      const kir::Instruction* prev = nullptr;
      for (const auto& inst : *block) {
        if (inst->IsMemoryAccess()) {
          const bool is_store = inst->opcode() == kir::Opcode::kStore;
          const kir::Value* addr =
              is_store ? inst->operand(1) : inst->operand(0);
          const uint64_t size = kir::StoreSize(inst->memory_type());
          const uint64_t flags =
              is_store ? kGuardAccessWrite : kGuardAccessRead;

          if (prev == nullptr || prev->opcode() != kir::Opcode::kCall ||
              prev->callee() != kCaratGuardSymbol ||
              prev->operand_count() != 3) {
            return false;
          }
          // The guard must cover this exact access.
          if (prev->operand(0) != addr) return false;
          const auto* size_const =
              kir::dyn_cast<kir::Constant>(prev->operand(1));
          const auto* flags_const =
              kir::dyn_cast<kir::Constant>(prev->operand(2));
          if (size_const == nullptr || size_const->bits() < size) return false;
          if (flags_const == nullptr || (flags_const->bits() & flags) != flags) {
            return false;
          }
        }
        prev = inst.get();
      }
    }
  }
  return true;
}

AttestationRecord Attest(const kir::Module& module) {
  AttestationRecord record;
  record.module_name = module.name();
  bool has_asm = false;
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kInlineAsm) has_asm = true;
      }
    }
  }
  record.no_inline_asm = !has_asm;
  record.guards_complete = GuardsComplete(module);
  uint64_t guards = 0;
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kCall &&
            inst->callee() == kCaratGuardSymbol) {
          ++guards;
        }
      }
    }
  }
  record.guard_count = guards;
  record.sites = EnumerateGuardSites(module);
  return record;
}

}  // namespace kop::transform
