#include "kop/transform/attestation.hpp"

#include <algorithm>
#include <sstream>

#include "kop/util/carat_abi.hpp"

namespace kop::transform {

std::string AttestationRecord::Serialize() const {
  std::ostringstream out;
  out << "carat-kop-attestation v1\n"
      << "module: " << module_name << "\n"
      << "compiler: " << compiler << "\n"
      << "guards_complete: " << (guards_complete ? 1 : 0) << "\n"
      << "no_inline_asm: " << (no_inline_asm ? 1 : 0) << "\n"
      << "guards_optimized: " << (guards_optimized ? 1 : 0) << "\n"
      << "guard_count: " << guard_count << "\n"
      << "site_count: " << sites.size() << "\n";
  for (const GuardSite& site : sites) {
    const char* kind = site.is_intrinsic ? "i" : site.is_range ? "r" : "g";
    out << "site: " << site.site_id << " " << site.call_ordinal << " "
        << site.inst_index << " " << site.access_size << " "
        << site.access_flags << " " << kind << " @" << site.function;
    if (site.is_range) out << " " << site.elided;
    out << "\n";
  }
  if (!elisions.empty()) {
    out << "elision_count: " << elisions.size() << "\n";
    for (const ElisionRecord& rec : elisions) {
      out << "elide: " << rec.site_id << " " << rec.inst_index << " "
          << rec.kind << " " << rec.span << " " << rec.flags << " "
          << rec.members.size() << " @" << rec.function << "\n";
      for (const ElisionMember& member : rec.members) {
        out << "member: " << member.offset << " " << member.size << " "
            << member.flags << "\n";
      }
    }
  }
  return out.str();
}

Result<AttestationRecord> AttestationRecord::Deserialize(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "carat-kop-attestation v1") {
    return BadModule("attestation: bad header");
  }
  AttestationRecord record;
  auto field = [&](const char* key) -> Result<std::string> {
    if (!std::getline(in, line)) {
      return BadModule(std::string("attestation: missing field ") + key);
    }
    const std::string prefix = std::string(key) + ": ";
    if (line.rfind(prefix, 0) != 0) {
      return BadModule("attestation: expected field " + std::string(key) +
                       ", got '" + line + "'");
    }
    return line.substr(prefix.size());
  };
  auto bool_field = [&](const char* key) -> Result<bool> {
    auto value = field(key);
    if (!value.ok()) return value.status();
    return *value == "1";
  };
  KOP_ASSIGN_OR_RETURN(record.module_name, field("module"));
  KOP_ASSIGN_OR_RETURN(record.compiler, field("compiler"));
  KOP_ASSIGN_OR_RETURN(record.guards_complete, bool_field("guards_complete"));
  KOP_ASSIGN_OR_RETURN(record.no_inline_asm, bool_field("no_inline_asm"));
  KOP_ASSIGN_OR_RETURN(record.guards_optimized,
                       bool_field("guards_optimized"));
  const auto count = field("guard_count");
  if (!count.ok()) return count.status();
  record.guard_count = std::strtoull(count->c_str(), nullptr, 10);
  // site_count (and the sites after it) are absent from pre-observability
  // records; accept both.
  if (!std::getline(in, line)) return record;
  const std::string site_count_prefix = "site_count: ";
  if (line.rfind(site_count_prefix, 0) != 0) {
    return BadModule("attestation: expected field site_count, got '" + line +
                     "'");
  }
  const uint64_t site_count =
      std::strtoull(line.c_str() + site_count_prefix.size(), nullptr, 10);
  record.sites.reserve(site_count);
  for (uint64_t i = 0; i < site_count; ++i) {
    if (!std::getline(in, line) || line.rfind("site: ", 0) != 0) {
      return BadModule("attestation: truncated site table");
    }
    std::istringstream fields(line.substr(6));
    GuardSite site;
    std::string kind;
    std::string function;
    if (!(fields >> site.site_id >> site.call_ordinal >> site.inst_index >>
          site.access_size >> site.access_flags >> kind >> function) ||
        (kind != "g" && kind != "i" && kind != "r") || function.empty() ||
        function[0] != '@') {
      return BadModule("attestation: malformed site entry '" + line + "'");
    }
    site.is_intrinsic = kind == "i";
    site.is_range = kind == "r";
    if (site.is_range && !(fields >> site.elided)) {
      return BadModule("attestation: range site missing elided count '" +
                       line + "'");
    }
    site.function = function.substr(1);
    record.sites.push_back(std::move(site));
  }
  // elision_count (and the records after it) are absent both from
  // pre-elision attestations and from modules compiled with elision off;
  // accept both.
  if (!std::getline(in, line)) return record;
  const std::string elision_count_prefix = "elision_count: ";
  if (line.rfind(elision_count_prefix, 0) != 0) {
    return BadModule("attestation: expected field elision_count, got '" +
                     line + "'");
  }
  const uint64_t elision_count =
      std::strtoull(line.c_str() + elision_count_prefix.size(), nullptr, 10);
  record.elisions.reserve(elision_count);
  for (uint64_t i = 0; i < elision_count; ++i) {
    if (!std::getline(in, line) || line.rfind("elide: ", 0) != 0) {
      return BadModule("attestation: truncated elision table");
    }
    std::istringstream fields(line.substr(7));
    ElisionRecord rec;
    uint64_t member_count = 0;
    std::string function;
    if (!(fields >> rec.site_id >> rec.inst_index >> rec.kind >> rec.span >>
          rec.flags >> member_count >> function) ||
        (rec.kind != "widen" && rec.kind != "hoist") || function.empty() ||
        function[0] != '@' || member_count == 0) {
      return BadModule("attestation: malformed elision entry '" + line + "'");
    }
    rec.function = function.substr(1);
    rec.members.reserve(member_count);
    for (uint64_t m = 0; m < member_count; ++m) {
      if (!std::getline(in, line) || line.rfind("member: ", 0) != 0) {
        return BadModule("attestation: truncated elision member table");
      }
      std::istringstream mf(line.substr(8));
      ElisionMember member;
      if (!(mf >> member.offset >> member.size >> member.flags)) {
        return BadModule("attestation: malformed elision member '" + line +
                         "'");
      }
      rec.members.push_back(member);
    }
    record.elisions.push_back(std::move(rec));
  }
  return record;
}

Status AsmAttestationPass::Run(kir::Module& module) {
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kInlineAsm) {
          return BadModule("cannot certify module '" + module.name() +
                           "': inline assembly in @" + fn->name() +
                           " (\"" + inst->asm_text() + "\")");
        }
      }
    }
  }
  return OkStatus();
}

bool GuardsComplete(const kir::Module& module) {
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      const kir::Instruction* prev = nullptr;
      for (const auto& inst : *block) {
        if (inst->IsMemoryAccess()) {
          const bool is_store = inst->opcode() == kir::Opcode::kStore;
          const kir::Value* addr =
              is_store ? inst->operand(1) : inst->operand(0);
          const uint64_t size = kir::StoreSize(inst->memory_type());
          const uint64_t flags =
              is_store ? kGuardAccessWrite : kGuardAccessRead;

          if (prev == nullptr || prev->opcode() != kir::Opcode::kCall ||
              prev->callee() != kCaratGuardSymbol ||
              prev->operand_count() != 3) {
            return false;
          }
          // The guard must cover this exact access.
          if (prev->operand(0) != addr) return false;
          const auto* size_const =
              kir::dyn_cast<kir::Constant>(prev->operand(1));
          const auto* flags_const =
              kir::dyn_cast<kir::Constant>(prev->operand(2));
          if (size_const == nullptr || size_const->bits() < size) return false;
          if (flags_const == nullptr || (flags_const->bits() & flags) != flags) {
            return false;
          }
        }
        prev = inst.get();
      }
    }
  }
  return true;
}

AttestationRecord Attest(const kir::Module& module) {
  AttestationRecord record;
  record.module_name = module.name();
  bool has_asm = false;
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kInlineAsm) has_asm = true;
      }
    }
  }
  record.no_inline_asm = !has_asm;
  record.guards_complete = GuardsComplete(module);
  uint64_t guards = 0;
  for (const auto& fn : module.functions()) {
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kCall &&
            (inst->callee() == kCaratGuardSymbol ||
             inst->callee() == kCaratGuardRangeSymbol)) {
          ++guards;
        }
      }
    }
  }
  record.guard_count = guards;
  record.sites = EnumerateGuardSites(module);
  return record;
}

Status VerifyElisionProvenance(const AttestationRecord& record,
                               const std::vector<GuardSite>& sites) {
  std::vector<bool> claimed(sites.size(), false);
  for (const ElisionRecord& rec : record.elisions) {
    const std::string where =
        "elision record for site " + std::to_string(rec.site_id);
    if (rec.site_id >= sites.size()) {
      return BadModule(where + ": no such guard site in the shipped IR");
    }
    if (claimed[rec.site_id]) {
      return BadModule(where + ": duplicate provenance for one cover");
    }
    claimed[rec.site_id] = true;
    const GuardSite& site = sites[rec.site_id];
    if (!site.is_range) {
      return BadModule(where + ": site is not a carat_guard_range cover");
    }
    if (site.function != rec.function || site.inst_index != rec.inst_index) {
      return BadModule(where + ": cover position does not match the IR (@" +
                       site.function + " inst " +
                       std::to_string(site.inst_index) + ")");
    }
    if (site.access_size != rec.span || site.access_flags != rec.flags) {
      return BadModule(where + ": cover span/flags do not match the IR");
    }
    if (rec.members.empty() ||
        site.elided != static_cast<uint32_t>(rec.members.size() - 1)) {
      return BadModule(where + ": cover's elided count does not equal its "
                       "subsumed members");
    }
    // The members must tile [0, span): every byte the cover demands
    // permission for was demanded by some replaced guard, with flags the
    // cover also checks.
    std::vector<ElisionMember> members = rec.members;
    std::sort(members.begin(), members.end(),
              [](const ElisionMember& a, const ElisionMember& b) {
                return a.offset < b.offset;
              });
    uint64_t covered_end = 0;
    for (const ElisionMember& member : members) {
      if (member.size == 0 || member.offset > covered_end) {
        return BadModule(where + ": members leave a hole in the cover");
      }
      if ((rec.flags & member.flags) != member.flags) {
        return BadModule(where + ": member flags exceed the cover's");
      }
      covered_end = std::max(covered_end, member.offset + member.size);
    }
    if (covered_end != rec.span) {
      return BadModule(where + ": members do not tile the cover's span");
    }
  }
  return OkStatus();
}

}  // namespace kop::transform
