#include "kop/transform/privileged.hpp"

#include "kop/kir/builder.hpp"
#include "kop/kir/intrinsics.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::transform {

// PrivilegedIntrinsic aliases the interned kir::Intrinsic ids — the
// attestation record and the policy module's permission table carry these
// values, so the two enums may never drift.
static_assert(static_cast<uint64_t>(PrivilegedIntrinsic::kCli) ==
              static_cast<uint64_t>(kir::Intrinsic::kCli));
static_assert(static_cast<uint64_t>(PrivilegedIntrinsic::kSti) ==
              static_cast<uint64_t>(kir::Intrinsic::kSti));
static_assert(static_cast<uint64_t>(PrivilegedIntrinsic::kRdmsr) ==
              static_cast<uint64_t>(kir::Intrinsic::kRdmsr));
static_assert(static_cast<uint64_t>(PrivilegedIntrinsic::kWrmsr) ==
              static_cast<uint64_t>(kir::Intrinsic::kWrmsr));
static_assert(static_cast<uint64_t>(PrivilegedIntrinsic::kInb) ==
              static_cast<uint64_t>(kir::Intrinsic::kInb));
static_assert(static_cast<uint64_t>(PrivilegedIntrinsic::kOutb) ==
              static_cast<uint64_t>(kir::Intrinsic::kOutb));
static_assert(static_cast<uint64_t>(PrivilegedIntrinsic::kInvlpg) ==
              static_cast<uint64_t>(kir::Intrinsic::kInvlpg));
static_assert(static_cast<uint64_t>(PrivilegedIntrinsic::kHlt) ==
              static_cast<uint64_t>(kir::Intrinsic::kHlt));

std::optional<PrivilegedIntrinsic> PrivilegedIntrinsicFromName(
    std::string_view callee) {
  const kir::Intrinsic id = kir::IntrinsicFromName(callee);
  if (id == kir::Intrinsic::kNone) return std::nullopt;
  return static_cast<PrivilegedIntrinsic>(id);
}

std::string_view PrivilegedIntrinsicName(PrivilegedIntrinsic intrinsic) {
  return kir::IntrinsicName(static_cast<kir::Intrinsic>(intrinsic));
}

Status PrivilegedIntrinsicWrapPass::Run(kir::Module& module) {
  stats_ = PrivilegedWrapStats();

  kir::Function* guard = module.FindFunction(kCaratIntrinsicGuardSymbol);
  if (guard == nullptr) {
    guard = module.CreateFunction(kCaratIntrinsicGuardSymbol, kir::Type::kVoid,
                                  {{kir::Type::kI64, "intrinsic_id"}},
                                  /*is_external=*/true);
  } else if (!guard->is_external() || guard->arg_count() != 1) {
    return BadModule("module declares an incompatible @" +
                     std::string(kCaratIntrinsicGuardSymbol));
  }

  kir::IRBuilder builder(&module);
  for (const auto& fn : module.functions()) {
    if (fn->is_external()) continue;
    for (const auto& block : fn->blocks()) {
      for (auto it = block->begin(); it != block->end(); ++it) {
        const kir::Instruction* inst = it->get();
        if (inst->opcode() != kir::Opcode::kCall) continue;
        auto intrinsic = PrivilegedIntrinsicFromName(inst->callee());
        if (!intrinsic) continue;
        builder.SetInsertPoint(block.get(), it);
        builder.CreateCall(
            kCaratIntrinsicGuardSymbol, kir::Type::kVoid,
            {builder.I64(static_cast<uint64_t>(*intrinsic))});
        ++stats_.intrinsics_wrapped;
      }
    }
  }
  return OkStatus();
}

}  // namespace kop::transform
