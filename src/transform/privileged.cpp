#include "kop/transform/privileged.hpp"

#include "kop/kir/builder.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::transform {

std::optional<PrivilegedIntrinsic> PrivilegedIntrinsicFromName(
    std::string_view callee) {
  if (callee == "kir.cli") return PrivilegedIntrinsic::kCli;
  if (callee == "kir.sti") return PrivilegedIntrinsic::kSti;
  if (callee == "kir.rdmsr") return PrivilegedIntrinsic::kRdmsr;
  if (callee == "kir.wrmsr") return PrivilegedIntrinsic::kWrmsr;
  if (callee == "kir.inb") return PrivilegedIntrinsic::kInb;
  if (callee == "kir.outb") return PrivilegedIntrinsic::kOutb;
  if (callee == "kir.invlpg") return PrivilegedIntrinsic::kInvlpg;
  if (callee == "kir.hlt") return PrivilegedIntrinsic::kHlt;
  return std::nullopt;
}

std::string_view PrivilegedIntrinsicName(PrivilegedIntrinsic intrinsic) {
  switch (intrinsic) {
    case PrivilegedIntrinsic::kCli: return "kir.cli";
    case PrivilegedIntrinsic::kSti: return "kir.sti";
    case PrivilegedIntrinsic::kRdmsr: return "kir.rdmsr";
    case PrivilegedIntrinsic::kWrmsr: return "kir.wrmsr";
    case PrivilegedIntrinsic::kInb: return "kir.inb";
    case PrivilegedIntrinsic::kOutb: return "kir.outb";
    case PrivilegedIntrinsic::kInvlpg: return "kir.invlpg";
    case PrivilegedIntrinsic::kHlt: return "kir.hlt";
  }
  return "?";
}

Status PrivilegedIntrinsicWrapPass::Run(kir::Module& module) {
  stats_ = PrivilegedWrapStats();

  kir::Function* guard = module.FindFunction(kCaratIntrinsicGuardSymbol);
  if (guard == nullptr) {
    guard = module.CreateFunction(kCaratIntrinsicGuardSymbol, kir::Type::kVoid,
                                  {{kir::Type::kI64, "intrinsic_id"}},
                                  /*is_external=*/true);
  } else if (!guard->is_external() || guard->arg_count() != 1) {
    return BadModule("module declares an incompatible @" +
                     std::string(kCaratIntrinsicGuardSymbol));
  }

  kir::IRBuilder builder(&module);
  for (const auto& fn : module.functions()) {
    if (fn->is_external()) continue;
    for (const auto& block : fn->blocks()) {
      for (auto it = block->begin(); it != block->end(); ++it) {
        const kir::Instruction* inst = it->get();
        if (inst->opcode() != kir::Opcode::kCall) continue;
        auto intrinsic = PrivilegedIntrinsicFromName(inst->callee());
        if (!intrinsic) continue;
        builder.SetInsertPoint(block.get(), it);
        builder.CreateCall(
            kCaratIntrinsicGuardSymbol, kir::Type::kVoid,
            {builder.I64(static_cast<uint64_t>(*intrinsic))});
        ++stats_.intrinsics_wrapped;
      }
    }
  }
  return OkStatus();
}

}  // namespace kop::transform
