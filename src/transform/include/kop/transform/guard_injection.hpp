// The CARAT KOP guard-injection transform (paper §3.3): iterate over
// every load and store and insert a call to carat_guard(addr, size,
// access_flags) immediately before it. Deliberately unoptimized — every
// memory access gets a guard, even redundant ones — matching the paper's
// engineering choice ("we do not optimize guards"; the whole transform is
// ~200 lines of C++ there, and about that here).
#pragma once

#include <cstdint>

#include "kop/transform/pass.hpp"

namespace kop::transform {

struct GuardInjectionStats {
  uint64_t loads_guarded = 0;
  uint64_t stores_guarded = 0;
  uint64_t functions_transformed = 0;
  uint64_t guards_inserted() const { return loads_guarded + stores_guarded; }
};

class GuardInjectionPass : public ModulePass {
 public:
  std::string_view name() const override { return "carat-kop-guard-inject"; }

  Status Run(kir::Module& module) override;

  const GuardInjectionStats& stats() const { return stats_; }

 private:
  GuardInjectionStats stats_;
};

}  // namespace kop::transform
