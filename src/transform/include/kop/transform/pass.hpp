// Pass framework: the CARAT KOP "compiler" is a sequence of module passes
// run by a PassManager over KIR, exactly as the paper's transform is an
// LLVM middle-end pass invoked by a wrapper script around clang (§3.3).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kop/kir/module.hpp"
#include "kop/util/status.hpp"

namespace kop::transform {

class ModulePass {
 public:
  virtual ~ModulePass() = default;
  virtual std::string_view name() const = 0;
  virtual Status Run(kir::Module& module) = 0;
};

struct PassRunRecord {
  std::string pass_name;
  bool ok = false;
  std::string error;
};

class PassManager {
 public:
  /// When true (default), VerifyModule runs after every pass; a pass that
  /// breaks the IR fails the pipeline immediately.
  explicit PassManager(bool verify_each = true) : verify_each_(verify_each) {}

  void Add(std::unique_ptr<ModulePass> pass) {
    passes_.push_back(std::move(pass));
  }

  /// Run all passes in order. Stops at the first failure.
  Status Run(kir::Module& module);

  const std::vector<PassRunRecord>& records() const { return records_; }

 private:
  bool verify_each_;
  std::vector<std::unique_ptr<ModulePass>> passes_;
  std::vector<PassRunRecord> records_;
};

}  // namespace kop::transform
