// Proof-driven guard elision (the perf half of the guard story): instead
// of one out-of-line policy check per access, clusters of guards over the
// same object collapse into a single covering carat_guard_range and
// loop-header guards on invariant addresses hoist into the preheader.
// Every rewrite is justified on the same availability lattice the static
// verifier solves, and every rewrite is recorded as elision provenance in
// the attestation so the verifier can re-prove the elided form at insmod:
// the covering fact it establishes subsumes the facts of every guard it
// replaced.
//
// Both rewrites only ever *strengthen* checking: a cover demands that the
// whole interval be permitted where the members demanded their slices, so
// elision can never admit an access the per-member guards would have
// denied. The runtime counts the subsumed members (the cover's constant
// `elided` argument) so per-site accounting does not silently lose them.
#pragma once

#include <cstdint>
#include <vector>

#include "kop/transform/attestation.hpp"
#include "kop/transform/pass.hpp"

namespace kop::transform {

struct GuardElideStats {
  uint64_t clusters_widened = 0;  // same-block clusters -> one cover each
  uint64_t guards_hoisted = 0;    // loop-header guards moved to preheaders
  uint64_t guards_elided = 0;     // member guards subsumed beyond covers
  uint64_t covers_emitted = 0;    // carat_guard_range calls created
};

/// Widen same-block clusters of carat_guard calls over one root object
/// into a single covering carat_guard_range, and hoist loop-invariant
/// loop-header guards into the unique preheader. Run LAST in the pipeline:
/// it consumes the guard placement every earlier pass settled on.
class GuardElidePass : public ModulePass {
 public:
  std::string_view name() const override { return "carat-guard-elide"; }
  Status Run(kir::Module& module) override;

  const GuardElideStats& stats() const { return stats_; }
  /// One record per emitted cover, with final site ids / instruction
  /// indices (resolved after all rewrites). Feed into the attestation.
  const std::vector<ElisionRecord>& provenance() const { return provenance_; }

 private:
  GuardElideStats stats_;
  std::vector<ElisionRecord> provenance_;
};

}  // namespace kop::transform
