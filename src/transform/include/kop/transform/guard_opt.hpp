// CARAT-CAKE-style guard optimizations, built as *ablations*: the paper
// deliberately ships without them (§3.3) and speculates they are
// unnecessary for kernel modules. These passes let bench/abl2_guard_opt
// quantify that choice.
//
// Both passes assume the policy is stable while the module runs (the same
// assumption CARAT CAKE's hoisting makes); they only ever *remove* guards
// that a covering guard provably dominates, so they can never cause a
// spurious allow beyond that assumption and never a spurious panic.
#pragma once

#include <cstdint>

#include "kop/transform/pass.hpp"

namespace kop::transform {

struct GuardOptStats {
  uint64_t guards_removed = 0;
  uint64_t guards_kept = 0;
};

/// Removes a guard when an identical guard (same pointer SSA value, size
/// >= and flags superset) appears earlier in the same basic block with no
/// intervening external call (which could change the policy).
class GuardCoalescePass : public ModulePass {
 public:
  std::string_view name() const override { return "carat-guard-coalesce"; }
  Status Run(kir::Module& module) override;
  const GuardOptStats& stats() const { return stats_; }

 private:
  GuardOptStats stats_;
};

/// Removes a guard when an identical covering guard exists in a strictly
/// dominating position (dominator-tree walk carrying available guards).
/// Subsumes coalescing; closer to CARAT CAKE's NOELLE-based hoisting in
/// effect, without speculation (guards are never moved, only deduped).
class GuardDominationPass : public ModulePass {
 public:
  std::string_view name() const override { return "carat-guard-dominate"; }
  Status Run(kir::Module& module) override;
  const GuardOptStats& stats() const { return stats_; }

 private:
  GuardOptStats stats_;
};

}  // namespace kop::transform
