// Guard-site enumeration — the compile-time half of per-site profiling
// ("perf annotate" for injected guards). Each guard call in a module gets
// a stable module-local id derived purely from IR order, so the same
// module always yields the same table, and the kernel can rebuild it from
// the signed IR at insmod and cross-check it against the attestation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kop/kir/bytecode.hpp"
#include "kop/kir/module.hpp"

namespace kop::transform {

/// One injected guard call site.
struct GuardSite {
  uint32_t site_id = 0;       // ordinal among guard calls, module-wide
  uint64_t call_ordinal = 0;  // ordinal among ALL kCall insts, module-wide —
                              // matches the interpreter's call-site channel
  std::string function;       // defining function name (no "@")
  uint32_t inst_index = 0;    // instruction index within the function
  uint32_t access_size = 0;   // guarded access width (covering span for
                              // range guards); 0 if non-constant
  uint32_t access_flags = 0;  // kGuardAccessRead/Write; intrinsic id for
                              // intrinsic guards
  bool is_intrinsic = false;  // carat_intrinsic_guard vs carat_guard
  bool is_range = false;      // carat_guard_range (elision-pass cover)
  uint32_t elided = 0;        // range guards: member accesses subsumed
                              // beyond the cover (the constant 4th arg)

  bool operator==(const GuardSite& other) const = default;
};

/// Walk the module in function / block / instruction order and list every
/// carat_guard / carat_intrinsic_guard call. Deterministic for a given IR.
std::vector<GuardSite> EnumerateGuardSites(const kir::Module& module);

/// Reconstruct the same table from compiled bytecode: kGuard instructions
/// carry the source instruction index and call ordinal, and constant
/// guard arguments are read back out of the frame template. For bytecode
/// compiled from a module, this returns exactly EnumerateGuardSites(ir) —
/// the module loader cross-checks the two at insmod, proving lowering
/// preserved every site's attribution.
std::vector<GuardSite> EnumerateGuardSites(const kir::BytecodeModule& bytecode);

}  // namespace kop::transform
