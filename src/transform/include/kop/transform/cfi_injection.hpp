// The kop::cfi injection transform (DESIGN.md §16): derive the legal
// target set of every indirect call (analysis/cfi.hpp) and insert a call
// to carat_cfi_check(target, set_id) immediately before it — the
// control-flow analogue of guard injection. The derived sets are
// deduplicated into a compact per-module table the attestation carries
// and the loader registers with the policy engine; the static verifier
// re-derives the table at insmod and rejects any attestation that
// disagrees, so a forged or widened table never reaches enforcement.
#pragma once

#include <cstdint>

#include "kop/transform/pass.hpp"

namespace kop::transform {

struct CfiInjectionStats {
  uint64_t checks_injected = 0;
  uint64_t sites_already_checked = 0;  // idempotent re-runs insert nothing
  uint64_t target_sets = 0;            // deduped set-table size
};

class CfiInjectionPass : public ModulePass {
 public:
  std::string_view name() const override { return "carat-kop-cfi-inject"; }

  Status Run(kir::Module& module) override;

  const CfiInjectionStats& stats() const { return stats_; }

 private:
  CfiInjectionStats stats_;
};

}  // namespace kop::transform
