// SimplifyPass: constant folding, algebraic identities and dead-code
// elimination. CARAT CAKE runs whole-program optimization over guarded
// code before linking (§2); this is the KIR-scale equivalent, available
// to the compiler driver so the ablations can measure guard behaviour on
// optimized bodies. Never touches loads, stores, calls or control flow —
// memory behaviour (and therefore guard behaviour) is preserved exactly.
#pragma once

#include <cstdint>

#include "kop/transform/pass.hpp"

namespace kop::transform {

struct SimplifyStats {
  uint64_t constants_folded = 0;
  uint64_t identities_applied = 0;
  uint64_t dead_removed = 0;
  uint64_t iterations = 0;
};

class SimplifyPass : public ModulePass {
 public:
  std::string_view name() const override { return "kir-simplify"; }
  Status Run(kir::Module& module) override;
  const SimplifyStats& stats() const { return stats_; }

 private:
  SimplifyStats stats_;
};

}  // namespace kop::transform
