// Compiler attestation (paper §2): the compilation process certifies that
// guards were injected and that the code "does not include any
// problematic elements such as inline or separate assembly". The record
// produced here is folded into the signed module image; the kernel
// re-checks both claims independently at insmod (signing/validator).
#pragma once

#include <string>
#include <vector>

#include "kop/transform/guard_sites.hpp"
#include "kop/transform/pass.hpp"

namespace kop::transform {

/// What the CARAT KOP compiler asserts about a module it processed.
struct AttestationRecord {
  std::string module_name;
  std::string compiler = "carat-kop-kir 1.0 (clang-14-analogue)";
  bool guards_complete = false;  // every load/store is guard-preceded
  bool no_inline_asm = false;
  /// True when guard redundancy elimination ran: adjacency can no longer
  /// be re-proven mechanically, completeness rests on the signed
  /// compiler's soundness (the CARAT CAKE trust model).
  bool guards_optimized = false;
  uint64_t guard_count = 0;
  /// Per-guard-site table (function + instruction index per injected
  /// guard), covered by the signature; the validator rebuilds it from the
  /// shipped IR and the loader registers it for runtime attribution.
  std::vector<GuardSite> sites;

  /// Canonical serialization (covered by the signature).
  std::string Serialize() const;
  static Result<AttestationRecord> Deserialize(const std::string& text);
};

/// Refuses to certify modules containing inline assembly. Run before
/// guard injection; a failure aborts the compilation pipeline.
class AsmAttestationPass : public ModulePass {
 public:
  std::string_view name() const override { return "carat-kop-attest-no-asm"; }
  Status Run(kir::Module& module) override;
};

/// Post-transform audit: true when every load/store in the module is
/// immediately preceded by a carat_guard call covering it (same pointer,
/// correct size and flags). This is the property the compiler attests and
/// the kernel-side validator re-checks.
bool GuardsComplete(const kir::Module& module);

/// Build the attestation record for a transformed module.
AttestationRecord Attest(const kir::Module& module);

}  // namespace kop::transform
