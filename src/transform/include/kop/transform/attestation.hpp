// Compiler attestation (paper §2): the compilation process certifies that
// guards were injected and that the code "does not include any
// problematic elements such as inline or separate assembly". The record
// produced here is folded into the signed module image; the kernel
// re-checks both claims independently at insmod (signing/validator).
#pragma once

#include <string>
#include <vector>

#include "kop/transform/guard_sites.hpp"
#include "kop/transform/pass.hpp"

namespace kop::transform {

/// One original guarded access subsumed by a covering range guard. Offsets
/// are relative to the cover's base address.
struct ElisionMember {
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t flags = 0;

  bool operator==(const ElisionMember& other) const = default;
};

/// Per-site elision provenance: which original guards a covering
/// carat_guard_range call replaced, and how. The static verifier re-proves
/// the elided form at insmod from this record: the named site must exist as
/// a range guard with the claimed span/flags, the members must tile
/// [0, span) without holes, every member's flags must be a subset of the
/// cover's, and the cover's constant elided argument must equal
/// members.size() - 1 (the cover itself stands in for the first member).
struct ElisionRecord {
  uint32_t site_id = 0;    // cover site's id in the sites table
  std::string function;    // defining function (no "@")
  uint32_t inst_index = 0; // cover's instruction index within the function
  std::string kind;        // "widen" (same-block cluster) | "hoist" (loop)
  uint64_t span = 0;       // covering interval length in bytes
  uint64_t flags = 0;      // union of member access flags
  std::vector<ElisionMember> members;  // all k original accesses

  bool operator==(const ElisionRecord& other) const = default;
};

/// One attested CFI legal-target set (DESIGN.md §16): the functions an
/// indirect call wearing this set id may dispatch to, by name. The loader
/// resolves names to simulated function addresses and registers the table
/// with the policy engine; the static verifier re-derives every set from
/// the shipped IR and rejects any difference — wider, narrower, or
/// renumbered.
struct CfiAttestedSet {
  uint32_t set_id = 0;
  std::vector<std::string> members;  // sorted, unique function names

  bool operator==(const CfiAttestedSet& other) const = default;
};

/// One attested indirect-call site: where the icall lives and which call
/// ordinals its carat_cfi_check and the icall itself occupy (the loader
/// keys runtime attribution off the check's ordinal, exactly like guard
/// sites). check_ordinal is -1 when the shipped IR carries no adjacent
/// check — a state the static verifier rejects for CFI-gated modules.
struct CfiAttestedSite {
  uint32_t set_id = 0;
  std::string function;
  uint32_t inst_index = 0;     // the icall's index within the function
  uint64_t icall_ordinal = 0;  // module-wide call ordinal of the icall
  int64_t check_ordinal = -1;  // module-wide call ordinal of the check

  bool operator==(const CfiAttestedSite& other) const = default;
};

/// What the CARAT KOP compiler asserts about a module it processed.
struct AttestationRecord {
  std::string module_name;
  std::string compiler = "carat-kop-kir 1.0 (clang-14-analogue)";
  bool guards_complete = false;  // every load/store is guard-preceded
  bool no_inline_asm = false;
  /// True when guard redundancy elimination ran: adjacency can no longer
  /// be re-proven mechanically, completeness rests on the signed
  /// compiler's soundness (the CARAT CAKE trust model).
  bool guards_optimized = false;
  uint64_t guard_count = 0;
  /// Per-guard-site table (function + instruction index per injected
  /// guard), covered by the signature; the validator rebuilds it from the
  /// shipped IR and the loader registers it for runtime attribution.
  std::vector<GuardSite> sites;
  /// Elision provenance: one record per covering range guard the elision
  /// pass emitted, covered by the signature. Empty when elision did not
  /// run. The validator cross-checks each record against the shipped IR
  /// (see ElisionRecord) so a forged table cannot smuggle unguarded
  /// accesses past KOP_VERIFY=static.
  std::vector<ElisionRecord> elisions;
  /// True when the module's indirect calls are gated by carat_cfi_check
  /// (KOP_CFI on at compile time and the module has icalls). The CFI
  /// table below is present exactly when this is set.
  bool cfi_gated = false;
  std::vector<CfiAttestedSet> cfi_sets;
  std::vector<CfiAttestedSite> cfi_sites;

  /// Canonical serialization (covered by the signature).
  std::string Serialize() const;
  static Result<AttestationRecord> Deserialize(const std::string& text);
};

/// Refuses to certify modules containing inline assembly. Run before
/// guard injection; a failure aborts the compilation pipeline.
class AsmAttestationPass : public ModulePass {
 public:
  std::string_view name() const override { return "carat-kop-attest-no-asm"; }
  Status Run(kir::Module& module) override;
};

/// Post-transform audit: true when every load/store in the module is
/// immediately preceded by a carat_guard call covering it (same pointer,
/// correct size and flags). This is the property the compiler attests and
/// the kernel-side validator re-checks.
bool GuardsComplete(const kir::Module& module);

/// Build the attestation record for a transformed module.
AttestationRecord Attest(const kir::Module& module);

/// Re-prove the record's elision provenance against `sites`, the guard
/// site table rebuilt from the IR actually received (never the attested
/// copy). Each record must name an existing carat_guard_range site whose
/// span, flags, position and constant elided argument match the claim, and
/// the claimed members must tile the cover's [0, span) interval without
/// holes using only covered flags. A forged or stale table fails here
/// before the module ever runs.
Status VerifyElisionProvenance(const AttestationRecord& record,
                               const std::vector<GuardSite>& sites);

/// Re-prove the record's CFI table against the IR actually received: the
/// attested sets and sites must equal, member for member and ordinal for
/// ordinal, the sets the kop::cfi derivation computes from `module`. A
/// forged, stale, renumbered, or wider-than-proof table fails here before
/// the module ever runs; a module that imports carat_cfi_check while its
/// attestation carries no table fails too (the gate cannot be attested
/// away).
Status VerifyCfiProvenance(const AttestationRecord& record,
                           const kir::Module& module);

}  // namespace kop::transform
