// §5 future-work extension, implemented: "Instrumentation and wrappers to
// these builtins could be added during compilation, such that a guard is
// injected and a different policy table could be consulted to determine
// if a given kernel module has access to a privileged intrinsic."
//
// KIR models privileged operations as intrinsic calls ("kir.cli",
// "kir.wrmsr", ...). This pass inserts a call to
// carat_intrinsic_guard(intrinsic_id) before each one; the policy module
// consults its intrinsic permission table and panics on a forbidden use.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "kop/transform/pass.hpp"

namespace kop::transform {

/// Stable ids for the privileged intrinsics KIR knows about.
enum class PrivilegedIntrinsic : uint64_t {
  kCli = 1,     // disable interrupts
  kSti = 2,     // enable interrupts
  kRdmsr = 3,   // read model-specific register
  kWrmsr = 4,   // write model-specific register
  kInb = 5,     // port I/O read
  kOutb = 6,    // port I/O write
  kInvlpg = 7,  // TLB shootdown
  kHlt = 8,     // halt
};

/// Map an intrinsic callee name ("kir.cli") to its id; nullopt when the
/// callee is not a known privileged intrinsic.
std::optional<PrivilegedIntrinsic> PrivilegedIntrinsicFromName(
    std::string_view callee);

std::string_view PrivilegedIntrinsicName(PrivilegedIntrinsic intrinsic);

struct PrivilegedWrapStats {
  uint64_t intrinsics_wrapped = 0;
};

class PrivilegedIntrinsicWrapPass : public ModulePass {
 public:
  std::string_view name() const override { return "carat-kop-priv-wrap"; }
  Status Run(kir::Module& module) override;
  const PrivilegedWrapStats& stats() const { return stats_; }

 private:
  PrivilegedWrapStats stats_;
};

}  // namespace kop::transform
