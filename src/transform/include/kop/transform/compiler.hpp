// The CARAT KOP compiler driver — the analogue of the paper's wrapper
// script around clang (§3.3): parse the module, refuse inline assembly,
// inject guards (optionally wrap privileged intrinsics, optionally run
// the ablation-only guard optimizations), verify, and emit canonical
// text plus the compiler's attestation record.
#pragma once

#include <memory>
#include <string>

#include "kop/kir/module.hpp"
#include "kop/transform/attestation.hpp"
#include "kop/transform/guard_injection.hpp"
#include "kop/util/status.hpp"

namespace kop::transform {

struct CompileOptions {
  /// Run constant folding / DCE before guard injection (the CAKE-style
  /// optimization position: simplify first, then instrument).
  bool simplify = false;
  /// Insert carat_guard calls (the whole point; off = "baseline build").
  bool inject_guards = true;
  /// §5 extension: also wrap privileged intrinsics.
  bool wrap_privileged_intrinsics = false;
  /// Ablation-only CAKE-style guard redundancy elimination.
  bool coalesce_guards = false;
  bool dominate_guards = false;
};

struct CompileOutput {
  std::unique_ptr<kir::Module> module;
  std::string text;  // canonical serialization (what gets signed)
  AttestationRecord attestation;
  GuardInjectionStats guard_stats;
  uint64_t guards_removed_by_opt = 0;
};

/// Compile module source text. Fails on parse/verify errors or when the
/// module cannot be attested (inline assembly).
Result<CompileOutput> CompileModuleText(std::string_view source,
                                        const CompileOptions& options = {});

/// Same pipeline over an already-built module (takes ownership).
Result<CompileOutput> CompileModule(std::unique_ptr<kir::Module> module,
                                    const CompileOptions& options = {});

}  // namespace kop::transform
