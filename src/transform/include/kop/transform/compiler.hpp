// The CARAT KOP compiler driver — the analogue of the paper's wrapper
// script around clang (§3.3): parse the module, refuse inline assembly,
// inject guards (optionally wrap privileged intrinsics, optionally run
// the ablation-only guard optimizations), verify, and emit canonical
// text plus the compiler's attestation record.
#pragma once

#include <memory>
#include <string>

#include "kop/kir/module.hpp"
#include "kop/transform/attestation.hpp"
#include "kop/transform/cfi_injection.hpp"
#include "kop/transform/guard_elide.hpp"
#include "kop/transform/guard_injection.hpp"
#include "kop/util/status.hpp"

namespace kop::transform {

/// Elision default from the KOP_ELIDE environment variable: unset or any
/// value other than "off"/"0" enables it. The benchmark matrix's
/// KOP_ELIDE=off leg compiles the identical module without covers.
bool DefaultElideGuards();

/// CFI default from the KOP_CFI environment variable, same convention:
/// unset or any value other than "off"/"0" enables indirect-call gating.
/// The matrix's KOP_CFI=off leg compiles the identical module without
/// checks (and without a CFI table in the attestation).
bool DefaultCfiChecks();

struct CompileOptions {
  /// Run constant folding / DCE before guard injection (the CAKE-style
  /// optimization position: simplify first, then instrument).
  bool simplify = false;
  /// Insert carat_guard calls (the whole point; off = "baseline build").
  bool inject_guards = true;
  /// §5 extension: also wrap privileged intrinsics.
  bool wrap_privileged_intrinsics = false;
  /// Ablation-only CAKE-style guard redundancy elimination.
  bool coalesce_guards = false;
  bool dominate_guards = false;
  /// Proof-driven guard elision (guard_elide.hpp): widen same-object guard
  /// clusters into one covering carat_guard_range and hoist loop-header
  /// guards into preheaders, with provenance in the attestation. Runs
  /// last; on by default (KOP_ELIDE=off disables).
  bool elide_guards = DefaultElideGuards();
  /// kop::cfi indirect-call gating (cfi_injection.hpp): derive legal
  /// target sets and insert carat_cfi_check before every icall, with the
  /// set table in the attestation. Runs after elision so covers never see
  /// the checks; on by default (KOP_CFI=off disables).
  bool inject_cfi_checks = DefaultCfiChecks();
};

struct CompileOutput {
  std::unique_ptr<kir::Module> module;
  std::string text;  // canonical serialization (what gets signed)
  AttestationRecord attestation;
  GuardInjectionStats guard_stats;
  uint64_t guards_removed_by_opt = 0;
  GuardElideStats elide_stats;
  CfiInjectionStats cfi_stats;
};

/// Compile module source text. Fails on parse/verify errors or when the
/// module cannot be attested (inline assembly).
Result<CompileOutput> CompileModuleText(std::string_view source,
                                        const CompileOptions& options = {});

/// Same pipeline over an already-built module (takes ownership).
Result<CompileOutput> CompileModule(std::unique_ptr<kir::Module> module,
                                    const CompileOptions& options = {});

}  // namespace kop::transform
