#include "kop/transform/simplify.hpp"

#include <optional>
#include <unordered_map>
#include <unordered_set>

namespace kop::transform {
namespace {

using kir::ClampToType;
using kir::Constant;
using kir::Instruction;
using kir::Opcode;
using kir::SignExtend;
using kir::Type;
using kir::Value;

std::optional<uint64_t> FoldBinOp(Opcode op, Type type, uint64_t a,
                                  uint64_t b) {
  const unsigned bits = kir::BitWidth(type);
  switch (op) {
    case Opcode::kAdd: return ClampToType(a + b, type);
    case Opcode::kSub: return ClampToType(a - b, type);
    case Opcode::kMul: return ClampToType(a * b, type);
    case Opcode::kAnd: return a & b;
    case Opcode::kOr: return a | b;
    case Opcode::kXor: return a ^ b;
    case Opcode::kShl: return b >= bits ? 0 : ClampToType(a << b, type);
    case Opcode::kLShr: return b >= bits ? 0 : ClampToType(a, type) >> b;
    case Opcode::kAShr: {
      const uint64_t shift = b >= bits ? bits - 1 : b;
      return ClampToType(
          static_cast<uint64_t>(SignExtend(a, type) >> shift), type);
    }
    // Division by a constant zero is a trap; leave it for the runtime.
    case Opcode::kUDiv: return b == 0 ? std::nullopt
                                      : std::make_optional(a / b);
    case Opcode::kURem: return b == 0 ? std::nullopt
                                      : std::make_optional(a % b);
    case Opcode::kSDiv:
      return b == 0 ? std::nullopt
                    : std::make_optional(ClampToType(
                          static_cast<uint64_t>(SignExtend(a, type) /
                                                SignExtend(b, type)),
                          type));
    case Opcode::kSRem:
      return b == 0 ? std::nullopt
                    : std::make_optional(ClampToType(
                          static_cast<uint64_t>(SignExtend(a, type) %
                                                SignExtend(b, type)),
                          type));
    default: return std::nullopt;
  }
}

bool FoldICmp(kir::ICmpPred pred, Type type, uint64_t a, uint64_t b) {
  a = ClampToType(a, type);
  b = ClampToType(b, type);
  const int64_t sa = SignExtend(a, type);
  const int64_t sb = SignExtend(b, type);
  switch (pred) {
    case kir::ICmpPred::kEq: return a == b;
    case kir::ICmpPred::kNe: return a != b;
    case kir::ICmpPred::kULt: return a < b;
    case kir::ICmpPred::kULe: return a <= b;
    case kir::ICmpPred::kUGt: return a > b;
    case kir::ICmpPred::kUGe: return a >= b;
    case kir::ICmpPred::kSLt: return sa < sb;
    case kir::ICmpPred::kSLe: return sa <= sb;
    case kir::ICmpPred::kSGt: return sa > sb;
    case kir::ICmpPred::kSGe: return sa >= sb;
  }
  return false;
}

/// Has no side effects and produces a value: safe to delete when unused.
/// Loads stay: removing one would remove a (guardable, faultable) memory
/// access and change observable behaviour under CARAT KOP.
bool IsDeletableWhenUnused(const Instruction& inst) {
  switch (inst.opcode()) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
    case Opcode::kUDiv: case Opcode::kSDiv: case Opcode::kURem:
    case Opcode::kSRem: case Opcode::kAnd: case Opcode::kOr:
    case Opcode::kXor: case Opcode::kShl: case Opcode::kLShr:
    case Opcode::kAShr: case Opcode::kICmp: case Opcode::kZExt:
    case Opcode::kSExt: case Opcode::kTrunc: case Opcode::kPtrToInt:
    case Opcode::kIntToPtr: case Opcode::kGep: case Opcode::kSelect:
    case Opcode::kPhi:
      return true;
    // udiv/srem by constant zero would have been left unfolded; deleting
    // an unused trapping division is still legal (no memory effect), but
    // keep it conservative and let it execute.
    default:
      return false;
  }
}

class FunctionSimplifier {
 public:
  FunctionSimplifier(kir::Module& module, kir::Function& fn,
                     SimplifyStats& stats)
      : module_(module), fn_(fn), stats_(stats) {}

  bool RunOnce() {
    bool changed = false;
    changed |= FoldConstants();
    changed |= RemoveDeadCode();
    return changed;
  }

 private:
  /// Replace every use of `from` with `to` across the function.
  void ReplaceAllUses(Value* from, Value* to) {
    for (auto& block : fn_.blocks()) {
      for (auto& inst : *block) {
        for (size_t i = 0; i < inst->operand_count(); ++i) {
          if (inst->operand(i) == from) inst->SetOperand(i, to);
        }
      }
    }
  }

  bool FoldConstants() {
    bool changed = false;
    for (auto& block : fn_.blocks()) {
      for (auto it = block->begin(); it != block->end();) {
        Instruction* inst = it->get();
        Value* replacement = Fold(inst);
        if (replacement != nullptr) {
          ReplaceAllUses(inst, replacement);
          it = block->Erase(it);
          changed = true;
          continue;
        }
        ++it;
      }
    }
    return changed;
  }

  /// The folded replacement value, or nullptr when not foldable.
  Value* Fold(Instruction* inst) {
    auto constant_of = [&](size_t i) -> const Constant* {
      return kir::dyn_cast<Constant>(inst->operand(i));
    };
    switch (inst->opcode()) {
      case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
      case Opcode::kUDiv: case Opcode::kSDiv: case Opcode::kURem:
      case Opcode::kSRem: case Opcode::kAnd: case Opcode::kOr:
      case Opcode::kXor: case Opcode::kShl: case Opcode::kLShr:
      case Opcode::kAShr: {
        const Constant* lhs = constant_of(0);
        const Constant* rhs = constant_of(1);
        if (lhs != nullptr && rhs != nullptr) {
          auto folded = FoldBinOp(inst->opcode(), inst->type(), lhs->bits(),
                                  rhs->bits());
          if (folded) {
            ++stats_.constants_folded;
            return module_.GetConstant(inst->type(), *folded);
          }
          return nullptr;
        }
        // Algebraic identities with one constant operand.
        if (rhs != nullptr) {
          const uint64_t b = rhs->bits();
          if ((inst->opcode() == Opcode::kAdd ||
               inst->opcode() == Opcode::kSub ||
               inst->opcode() == Opcode::kOr ||
               inst->opcode() == Opcode::kXor ||
               inst->opcode() == Opcode::kShl ||
               inst->opcode() == Opcode::kLShr ||
               inst->opcode() == Opcode::kAShr) &&
              b == 0) {
            ++stats_.identities_applied;
            return inst->operand(0);  // x op 0 == x
          }
          if (inst->opcode() == Opcode::kMul && b == 1) {
            ++stats_.identities_applied;
            return inst->operand(0);
          }
          if ((inst->opcode() == Opcode::kMul ||
               inst->opcode() == Opcode::kAnd) &&
              b == 0) {
            ++stats_.identities_applied;
            return module_.GetConstant(inst->type(), 0);  // x*0, x&0
          }
          if (inst->opcode() == Opcode::kUDiv && b == 1) {
            ++stats_.identities_applied;
            return inst->operand(0);
          }
        }
        if (lhs != nullptr && lhs->bits() == 0 &&
            (inst->opcode() == Opcode::kAdd ||
             inst->opcode() == Opcode::kOr ||
             inst->opcode() == Opcode::kXor)) {
          ++stats_.identities_applied;
          return inst->operand(1);  // 0 op x == x (commutative cases)
        }
        return nullptr;
      }
      case Opcode::kICmp: {
        const Constant* lhs = constant_of(0);
        const Constant* rhs = constant_of(1);
        if (lhs != nullptr && rhs != nullptr) {
          ++stats_.constants_folded;
          return module_.GetConstant(
              Type::kI1,
              FoldICmp(inst->icmp_pred(), inst->operand(0)->type(),
                       lhs->bits(), rhs->bits())
                  ? 1
                  : 0);
        }
        return nullptr;
      }
      case Opcode::kZExt:
      case Opcode::kTrunc:
      case Opcode::kPtrToInt:
      case Opcode::kIntToPtr: {
        const Constant* value = constant_of(0);
        if (value != nullptr) {
          ++stats_.constants_folded;
          return module_.GetConstant(inst->type(), value->bits());
        }
        return nullptr;
      }
      case Opcode::kSExt: {
        const Constant* value = constant_of(0);
        if (value != nullptr) {
          ++stats_.constants_folded;
          return module_.GetConstant(
              inst->type(),
              static_cast<uint64_t>(
                  SignExtend(value->bits(), inst->operand(0)->type())));
        }
        return nullptr;
      }
      case Opcode::kSelect: {
        const Constant* cond = constant_of(0);
        if (cond != nullptr) {
          ++stats_.constants_folded;
          return inst->operand(cond->bits() != 0 ? 1 : 2);
        }
        if (inst->operand(1) == inst->operand(2)) {
          ++stats_.identities_applied;
          return inst->operand(1);  // select c, x, x == x
        }
        return nullptr;
      }
      case Opcode::kPhi: {
        // All incoming values identical -> that value.
        Value* first = inst->operand(0);
        for (size_t i = 1; i < inst->operand_count(); ++i) {
          if (inst->operand(i) != first) return nullptr;
        }
        ++stats_.identities_applied;
        return first;
      }
      default:
        return nullptr;
    }
  }

  bool RemoveDeadCode() {
    // Collect used values, then erase unused pure instructions. Iterate
    // within the caller's fixpoint loop so chains die one layer per pass.
    std::unordered_set<const Value*> used;
    for (const auto& block : fn_.blocks()) {
      for (const auto& inst : *block) {
        for (size_t i = 0; i < inst->operand_count(); ++i) {
          used.insert(inst->operand(i));
        }
      }
    }
    bool changed = false;
    for (auto& block : fn_.blocks()) {
      for (auto it = block->begin(); it != block->end();) {
        Instruction* inst = it->get();
        if (!used.count(inst) && IsDeletableWhenUnused(*inst)) {
          it = block->Erase(it);
          ++stats_.dead_removed;
          changed = true;
          continue;
        }
        ++it;
      }
    }
    return changed;
  }

  kir::Module& module_;
  kir::Function& fn_;
  SimplifyStats& stats_;
};

}  // namespace

Status SimplifyPass::Run(kir::Module& module) {
  stats_ = SimplifyStats();
  for (const auto& fn : module.functions()) {
    if (fn->is_external()) continue;
    FunctionSimplifier simplifier(module, *fn, stats_);
    // Fixpoint with a generous bound (chains fold one layer per pass).
    for (int i = 0; i < 64; ++i) {
      ++stats_.iterations;
      if (!simplifier.RunOnce()) break;
    }
  }
  return OkStatus();
}

}  // namespace kop::transform
