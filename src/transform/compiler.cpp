#include "kop/transform/compiler.hpp"

#include <cstdlib>
#include <string_view>

#include "kop/kir/parser.hpp"
#include "kop/kir/printer.hpp"
#include "kop/kir/verifier.hpp"
#include "kop/transform/guard_elide.hpp"
#include "kop/transform/guard_injection.hpp"
#include "kop/transform/guard_opt.hpp"
#include "kop/transform/pass.hpp"
#include "kop/transform/privileged.hpp"
#include "kop/transform/simplify.hpp"

namespace kop::transform {

bool DefaultElideGuards() {
  const char* env = std::getenv("KOP_ELIDE");
  if (env != nullptr) {
    const std::string_view value(env);
    if (value == "off" || value == "0") return false;
  }
  return true;
}

bool DefaultCfiChecks() {
  const char* env = std::getenv("KOP_CFI");
  if (env != nullptr) {
    const std::string_view value(env);
    if (value == "off" || value == "0") return false;
  }
  return true;
}

Result<CompileOutput> CompileModule(std::unique_ptr<kir::Module> module,
                                    const CompileOptions& options) {
  KOP_RETURN_IF_ERROR(kir::VerifyModule(*module));

  // Attestation must run before transformation: a module with inline
  // assembly is rejected outright, never signed.
  PassManager pm(/*verify_each=*/true);
  pm.Add(std::make_unique<AsmAttestationPass>());

  if (options.simplify) pm.Add(std::make_unique<SimplifyPass>());

  auto inject = std::make_unique<GuardInjectionPass>();
  GuardInjectionPass* inject_raw = inject.get();
  if (options.inject_guards) pm.Add(std::move(inject));

  auto priv = std::make_unique<PrivilegedIntrinsicWrapPass>();
  if (options.wrap_privileged_intrinsics) pm.Add(std::move(priv));

  auto coalesce = std::make_unique<GuardCoalescePass>();
  GuardCoalescePass* coalesce_raw = coalesce.get();
  if (options.coalesce_guards) pm.Add(std::move(coalesce));

  auto dominate = std::make_unique<GuardDominationPass>();
  GuardDominationPass* dominate_raw = dominate.get();
  if (options.dominate_guards) pm.Add(std::move(dominate));

  KOP_RETURN_IF_ERROR(pm.Run(*module));

  // The elision pass runs LAST, outside the main manager, so pre-elision
  // guard completeness can be snapshot first: a widened/hoisted module is
  // complete exactly when its unelided form was.
  const bool complete_before_elide =
      options.elide_guards ? GuardsComplete(*module) : false;
  auto elide = std::make_unique<GuardElidePass>();
  GuardElidePass* elide_raw = elide.get();
  PassManager elide_pm(/*verify_each=*/true);
  elide_pm.Add(std::move(elide));
  if (options.elide_guards) {
    KOP_RETURN_IF_ERROR(elide_pm.Run(*module));
  }

  // CFI injection runs after elision: covers never see the checks, and
  // the checks (which read but never mutate the policy tables) never
  // perturb the guard-availability lattice elision proved against.
  auto cfi = std::make_unique<CfiInjectionPass>();
  CfiInjectionPass* cfi_raw = cfi.get();
  PassManager cfi_pm(/*verify_each=*/true);
  cfi_pm.Add(std::move(cfi));
  if (options.inject_cfi_checks) {
    KOP_RETURN_IF_ERROR(cfi_pm.Run(*module));
  }

  CompileOutput out;
  if (options.inject_guards) out.guard_stats = inject_raw->stats();
  if (options.coalesce_guards) {
    out.guards_removed_by_opt += coalesce_raw->stats().guards_removed;
  }
  if (options.dominate_guards) {
    out.guards_removed_by_opt += dominate_raw->stats().guards_removed;
  }
  out.attestation = Attest(*module);
  // Guard optimizations legitimately break strict guard-adjacency (a
  // dominating guard covers later accesses); the attestation still
  // certifies completeness when no accesses were left baremetal *without*
  // optimization. With optimization on, completeness is the optimizer's
  // soundness argument, so we keep the compiler's word for it.
  if ((options.coalesce_guards || options.dominate_guards) &&
      options.inject_guards) {
    out.attestation.guards_complete = true;
    out.attestation.guards_optimized = true;
  }
  if (options.elide_guards) out.elide_stats = elide_raw->stats();
  if (options.inject_cfi_checks) out.cfi_stats = cfi_raw->stats();
  if (options.elide_guards && !elide_raw->provenance().empty()) {
    out.attestation.elisions = elide_raw->provenance();
    out.attestation.guards_optimized = true;
    // Covers break strict adjacency but subsume the guards they replaced,
    // so completeness carries over from the pre-elision form.
    if (complete_before_elide) out.attestation.guards_complete = true;
  }
  out.text = kir::PrintModule(*module);
  out.module = std::move(module);
  return out;
}

Result<CompileOutput> CompileModuleText(std::string_view source,
                                        const CompileOptions& options) {
  auto module = kir::ParseModule(source);
  if (!module.ok()) return module.status();
  return CompileModule(std::move(*module), options);
}

}  // namespace kop::transform
