// Widening and hoisting are both "replace guards with a covering range
// guard" rewrites; the cover's availability fact (same lattice as the
// static verifier) subsumes every replaced guard's fact, which is exactly
// why the verifier can re-prove the elided module. Covers carry the
// number of subsumed members as their constant 4th argument so runtime
// accounting (`guard_calls + elided`) is invariant under widening.
#include "kop/transform/guard_elide.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "kop/analysis/guard_lattice.hpp"
#include "kop/kir/builder.hpp"
#include "kop/kir/cfg.hpp"
#include "kop/kir/intrinsics.hpp"
#include "kop/util/carat_abi.hpp"

namespace kop::transform {
namespace {

using analysis::GuardFact;
using analysis::MatchGuardCall;

/// Same classification as analysis::ApplyGuardStep: a call that could
/// transitively reach the policy table kills availability, guards and
/// kir.* intrinsics do not.
bool IsKillingCall(const kir::Instruction& inst) {
  if (inst.opcode() != kir::Opcode::kCall) return false;
  const std::string& callee = inst.callee();
  if (callee == kCaratGuardSymbol || callee == kCaratGuardRangeSymbol ||
      callee == kCaratIntrinsicGuardSymbol) {
    return false;
  }
  return !kir::IsIntrinsicName(callee);
}

/// A guard call collected while scanning one block, with its position.
struct Member {
  kir::BasicBlock::iterator pos;
  GuardFact fact;
};

/// A rewrite awaiting final site-id resolution (ids shift as covers are
/// inserted and members erased, so provenance is resolved in one walk
/// after all rewrites).
struct PendingElision {
  const kir::Instruction* cover = nullptr;
  std::string kind;
  uint64_t span = 0;
  uint64_t flags = 0;
  std::vector<ElisionMember> members;
};

/// Declare carat_guard_range if this module does not import it yet.
Status DeclareRangeGuard(kir::Module& module) {
  kir::Function* fn = module.FindFunction(kCaratGuardRangeSymbol);
  if (fn == nullptr) {
    module.CreateFunction(kCaratGuardRangeSymbol, kir::Type::kVoid,
                          {{kir::Type::kPtr, "addr"},
                           {kir::Type::kI64, "size"},
                           {kir::Type::kI64, "access_flags"},
                           {kir::Type::kI64, "elided"}},
                          /*is_external=*/true);
    return OkStatus();
  }
  if (!fn->is_external() || fn->arg_count() != 4) {
    return BadModule("module declares an incompatible @carat_guard_range");
  }
  return OkStatus();
}

/// Widen one flushed run: group members by (root, flags), and inside each
/// group replace every maximal contiguous-coverage segment of >= 2 guards
/// with one carat_guard_range over the segment's interval.
Status WidenRun(kir::Module& module, kir::BasicBlock& block,
                std::vector<Member>& run, GuardElideStats& stats,
                std::vector<PendingElision>& pending) {
  if (run.size() < 2) {
    run.clear();
    return OkStatus();
  }

  // Group in first-appearance order so output is deterministic. Flags must
  // match exactly: a union cover would demand (say) write permission over
  // a read-only member's bytes and could deny what per-member checks
  // allow.
  struct Group {
    const kir::Value* root;
    uint64_t flags;
    std::vector<size_t> members;  // indexes into `run`, program order
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < run.size(); ++i) {
    const GuardFact& fact = run[i].fact;
    Group* group = nullptr;
    for (Group& have : groups) {
      if (have.root == fact.root && have.flags == fact.flags) {
        group = &have;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(Group{fact.root, fact.flags, {}});
      group = &groups.back();
    }
    group->members.push_back(i);
  }

  kir::IRBuilder builder(&module);
  for (Group& group : groups) {
    if (group.members.size() < 2) continue;
    // Sort by interval start; program order breaks ties so the walk below
    // is deterministic.
    std::vector<size_t> by_offset = group.members;
    std::sort(by_offset.begin(), by_offset.end(), [&](size_t a, size_t b) {
      if (run[a].fact.root_offset != run[b].fact.root_offset) {
        return run[a].fact.root_offset < run[b].fact.root_offset;
      }
      return a < b;
    });

    // Split at coverage holes: a cover may only span bytes some member
    // actually guarded, else the range check could demand permissions the
    // module never proved it needed.
    size_t begin = 0;
    while (begin < by_offset.size()) {
      size_t end = begin + 1;
      uint64_t covered_end = run[by_offset[begin]].fact.root_offset +
                             run[by_offset[begin]].fact.size;
      while (end < by_offset.size() &&
             run[by_offset[end]].fact.root_offset <= covered_end) {
        covered_end = std::max(covered_end, run[by_offset[end]].fact.root_offset +
                                                run[by_offset[end]].fact.size);
        ++end;
      }
      const size_t count = end - begin;
      if (count >= 2) {
        const uint64_t lo = run[by_offset[begin]].fact.root_offset;
        const uint64_t span = covered_end - lo;

        // The cover replaces the segment's first guard in program order;
        // everything the members' address chains derive from is already
        // defined there.
        size_t first = by_offset[begin];
        for (size_t i = begin + 1; i < end; ++i) {
          first = std::min(first, by_offset[i]);
        }
        Member& anchor = run[first];

        KOP_RETURN_IF_ERROR(DeclareRangeGuard(module));
        builder.SetInsertPoint(&block, anchor.pos);
        kir::Value* addr;
        if (anchor.fact.root_offset == lo) {
          addr = const_cast<kir::Value*>(anchor.fact.addr);
        } else {
          addr = builder.CreateGep(const_cast<kir::Value*>(anchor.fact.root),
                                   builder.I64(0), 1, lo);
        }
        const kir::Instruction* cover = builder.CreateCall(
            kCaratGuardRangeSymbol, kir::Type::kVoid,
            {addr, builder.I64(span), builder.I64(group.flags),
             builder.I64(count - 1)});

        PendingElision record;
        record.cover = cover;
        record.kind = "widen";
        record.span = span;
        record.flags = group.flags;
        for (size_t i = begin; i < end; ++i) {
          const GuardFact& fact = run[by_offset[i]].fact;
          record.members.push_back(
              ElisionMember{fact.root_offset - lo, fact.size, fact.flags});
        }
        pending.push_back(std::move(record));

        for (size_t i = begin; i < end; ++i) {
          block.Erase(run[by_offset[i]].pos);
        }
        ++stats.clusters_widened;
        ++stats.covers_emitted;
        stats.guards_elided += count - 1;
      }
      begin = end;
    }
  }
  run.clear();
  return OkStatus();
}

/// Scan one block, flushing guard runs at killing calls and at the end.
Status WidenBlock(kir::Module& module, kir::BasicBlock& block,
                  GuardElideStats& stats,
                  std::vector<PendingElision>& pending) {
  std::vector<Member> run;
  for (auto it = block.begin(); it != block.end(); ++it) {
    GuardFact fact;
    if (MatchGuardCall(**it, &fact)) {
      run.push_back(Member{it, fact});
      continue;
    }
    if (IsKillingCall(**it)) {
      KOP_RETURN_IF_ERROR(WidenRun(module, block, run, stats, pending));
    }
    // Loads, stores and arithmetic between guards do not end a run: guard
    // calls are pure checks, and a member check moved before an earlier
    // store only moves a potential violation earlier — the journal
    // rollback restores identical memory either way.
  }
  return WidenRun(module, block, run, stats, pending);
}

bool DefinedOutside(const kir::Value* value,
                    const std::unordered_set<const kir::BasicBlock*>& body) {
  const auto* inst = kir::dyn_cast<kir::Instruction>(value);
  if (inst == nullptr) return true;  // argument / constant / global
  return body.count(inst->parent()) == 0;
}

/// Hoist loop-header guards with loop-invariant operands into the unique
/// preheader, as a carat_guard_range cover of the single access (elided =
/// 0: nothing is subsumed, the check just runs once instead of per
/// iteration).
Status HoistLoops(kir::Module& module, kir::Function& fn,
                  GuardElideStats& stats,
                  std::vector<PendingElision>& pending) {
  const kir::Cfg cfg(fn);
  const kir::DominatorTree dt(cfg);

  // Natural loops: back edge latch->header where the header dominates the
  // latch. Bodies with the same header are merged.
  struct Loop {
    const kir::BasicBlock* header;
    std::unordered_set<const kir::BasicBlock*> body;
  };
  std::vector<Loop> loops;
  for (const kir::BasicBlock* block : cfg.ReversePostorder()) {
    for (const kir::BasicBlock* succ : cfg.succs(block)) {
      if (!dt.Dominates(succ, block)) continue;
      Loop* loop = nullptr;
      for (Loop& have : loops) {
        if (have.header == succ) {
          loop = &have;
          break;
        }
      }
      if (loop == nullptr) {
        loops.push_back(Loop{succ, {succ}});
        loop = &loops.back();
      }
      // Everything that reaches the latch without passing the header.
      std::vector<const kir::BasicBlock*> worklist{block};
      while (!worklist.empty()) {
        const kir::BasicBlock* b = worklist.back();
        worklist.pop_back();
        if (!loop->body.insert(b).second) continue;
        for (const kir::BasicBlock* pred : cfg.preds(b)) {
          worklist.push_back(pred);
        }
      }
    }
  }

  kir::IRBuilder builder(&module);
  for (Loop& loop : loops) {
    // A unique preheader whose only successor is the header: the hoisted
    // check runs exactly when the loop is entered, never on bypass paths.
    const kir::BasicBlock* preheader = nullptr;
    bool unique = true;
    for (const kir::BasicBlock* pred : cfg.preds(loop.header)) {
      if (loop.body.count(pred) != 0) continue;
      if (preheader != nullptr && preheader != pred) unique = false;
      preheader = pred;
    }
    if (preheader == nullptr || !unique) continue;
    if (cfg.succs(preheader).size() != 1) continue;

    // The guard's verdict must be iteration-invariant: no call in the
    // loop may mutate the policy between iterations.
    bool killed = false;
    for (const kir::BasicBlock* block : loop.body) {
      for (const auto& inst : *block) {
        if (IsKillingCall(*inst)) {
          killed = true;
          break;
        }
      }
      if (killed) break;
    }
    if (killed) continue;

    // Hoistable guards are a prefix of the header: every one before the
    // first store, non-guard call, or non-invariant guard. The prefix rule
    // keeps the deny path byte-identical — nothing is journaled before
    // the check in either placement, and violation order among remaining
    // guards is preserved.
    auto* header = const_cast<kir::BasicBlock*>(loop.header);
    std::vector<Member> candidates;
    for (auto it = header->begin(); it != header->end(); ++it) {
      GuardFact fact;
      if (MatchGuardCall(**it, &fact)) {
        if (!DefinedOutside(fact.addr, loop.body)) break;
        candidates.push_back(Member{it, fact});
        continue;
      }
      const kir::Opcode op = (*it)->opcode();
      if (op == kir::Opcode::kStore || op == kir::Opcode::kCall) break;
    }

    for (Member& candidate : candidates) {
      KOP_RETURN_IF_ERROR(DeclareRangeGuard(module));
      auto* entry = const_cast<kir::BasicBlock*>(preheader);
      auto term = entry->end();
      --term;  // verified IR: every block ends in a terminator
      builder.SetInsertPoint(entry, term);
      const kir::Instruction* cover = builder.CreateCall(
          kCaratGuardRangeSymbol, kir::Type::kVoid,
          {const_cast<kir::Value*>(candidate.fact.addr),
           builder.I64(candidate.fact.size), builder.I64(candidate.fact.flags),
           builder.I64(0)});
      header->Erase(candidate.pos);

      PendingElision record;
      record.cover = cover;
      record.kind = "hoist";
      record.span = candidate.fact.size;
      record.flags = candidate.fact.flags;
      record.members.push_back(
          ElisionMember{0, candidate.fact.size, candidate.fact.flags});
      pending.push_back(std::move(record));
      ++stats.guards_hoisted;
      ++stats.covers_emitted;
    }
  }
  return OkStatus();
}

}  // namespace

Status GuardElidePass::Run(kir::Module& module) {
  stats_ = GuardElideStats();
  provenance_.clear();
  std::vector<PendingElision> pending;

  // Snapshot the function list: emitting the first cover declares
  // @carat_guard_range, which appends to module.functions() and would
  // invalidate a live iterator. The declaration is external (no blocks),
  // so skipping it is correct.
  std::vector<kir::Function*> defined;
  for (const auto& fn : module.functions()) {
    if (!fn->is_external() && !fn->blocks().empty()) {
      defined.push_back(fn.get());
    }
  }

  for (kir::Function* fn : defined) {
    for (const auto& block : fn->blocks()) {
      KOP_RETURN_IF_ERROR(WidenBlock(module, *block, stats_, pending));
    }
  }
  for (kir::Function* fn : defined) {
    KOP_RETURN_IF_ERROR(HoistLoops(module, *fn, stats_, pending));
  }
  if (pending.empty()) return OkStatus();

  // Resolve provenance against the final IR with the same numbering
  // EnumerateGuardSites uses: site ids count guard calls module-wide,
  // instruction indexes count all instructions function-wide.
  struct SiteRef {
    uint32_t site_id;
    uint32_t inst_index;
    const std::string* function;
  };
  std::unordered_map<const kir::Instruction*, SiteRef> site_of;
  uint32_t site_id = 0;
  for (const auto& fn : module.functions()) {
    uint32_t inst_index = 0;
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kCall &&
            (inst->callee() == kCaratGuardSymbol ||
             inst->callee() == kCaratGuardRangeSymbol ||
             inst->callee() == kCaratIntrinsicGuardSymbol)) {
          site_of[inst.get()] = SiteRef{site_id, inst_index, &fn->name()};
          ++site_id;
        }
        ++inst_index;
      }
    }
  }
  for (PendingElision& rewrite : pending) {
    const auto it = site_of.find(rewrite.cover);
    if (it == site_of.end()) {
      return Internal("guard-elide: emitted cover vanished from the module");
    }
    ElisionRecord record;
    record.site_id = it->second.site_id;
    record.function = *it->second.function;
    record.inst_index = it->second.inst_index;
    record.kind = std::move(rewrite.kind);
    record.span = rewrite.span;
    record.flags = rewrite.flags;
    record.members = std::move(rewrite.members);
    provenance_.push_back(std::move(record));
  }
  return OkStatus();
}

}  // namespace kop::transform
