#include "kop/transform/pass.hpp"

#include "kop/kir/verifier.hpp"

namespace kop::transform {

Status PassManager::Run(kir::Module& module) {
  records_.clear();
  for (auto& pass : passes_) {
    PassRunRecord record;
    record.pass_name = std::string(pass->name());
    Status status = pass->Run(module);
    if (status.ok() && verify_each_) {
      Status verify = kir::VerifyModule(module);
      if (!verify.ok()) {
        status = Internal("pass '" + record.pass_name +
                          "' produced invalid IR: " + verify.ToString());
      }
    }
    record.ok = status.ok();
    record.error = status.ok() ? "" : status.ToString();
    records_.push_back(record);
    if (!status.ok()) return status;
  }
  return OkStatus();
}

}  // namespace kop::transform
