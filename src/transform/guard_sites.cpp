#include "kop/transform/guard_sites.hpp"

#include <optional>

#include "kop/util/carat_abi.hpp"

namespace kop::transform {

std::vector<GuardSite> EnumerateGuardSites(const kir::Module& module) {
  std::vector<GuardSite> sites;
  uint64_t call_ordinal = 0;
  for (const auto& fn : module.functions()) {
    uint32_t inst_index = 0;
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kCall) {
          const bool is_guard = inst->callee() == kCaratGuardSymbol;
          const bool is_range = inst->callee() == kCaratGuardRangeSymbol;
          const bool is_intrinsic =
              inst->callee() == kCaratIntrinsicGuardSymbol;
          if (is_guard || is_range || is_intrinsic) {
            GuardSite site;
            site.site_id = static_cast<uint32_t>(sites.size());
            site.call_ordinal = call_ordinal;
            site.function = fn->name();
            site.inst_index = inst_index;
            site.is_intrinsic = is_intrinsic;
            site.is_range = is_range;
            if ((is_guard && inst->operand_count() == 3) ||
                (is_range && inst->operand_count() == 4)) {
              if (const auto* size =
                      kir::dyn_cast<kir::Constant>(inst->operand(1))) {
                site.access_size = static_cast<uint32_t>(size->bits());
              }
              if (const auto* flags =
                      kir::dyn_cast<kir::Constant>(inst->operand(2))) {
                site.access_flags = static_cast<uint32_t>(flags->bits());
              }
              if (is_range) {
                if (const auto* elided =
                        kir::dyn_cast<kir::Constant>(inst->operand(3))) {
                  site.elided = static_cast<uint32_t>(elided->bits());
                }
              }
            } else if (is_intrinsic && inst->operand_count() == 1) {
              if (const auto* id =
                      kir::dyn_cast<kir::Constant>(inst->operand(0))) {
                site.access_flags = static_cast<uint32_t>(id->bits());
              }
            }
            sites.push_back(std::move(site));
          }
          ++call_ordinal;
        } else if (inst->opcode() == kir::Opcode::kCallIndirect) {
          // Indirect calls share the module-wide ordinal numbering with
          // kCall in both engines; skipping them here would misalign
          // every later guard site's token.
          ++call_ordinal;
        }
        ++inst_index;
      }
    }
  }
  return sites;
}

std::vector<GuardSite> EnumerateGuardSites(
    const kir::BytecodeModule& bytecode) {
  std::vector<GuardSite> sites;
  for (const kir::BytecodeFunction& fn : bytecode.functions) {
    // A register in the constant range holds a compile-time value, except
    // when it is a global-address fixup slot (patched at bind time).
    std::vector<bool> is_global_slot(fn.num_regs, false);
    for (const kir::BcGlobalFixup& fixup : fn.global_fixups) {
      is_global_slot[fixup.reg] = true;
    }
    auto constant_of = [&](uint16_t reg) -> std::optional<uint64_t> {
      if (reg < fn.const_reg_begin || reg >= fn.const_reg_end) {
        return std::nullopt;
      }
      if (is_global_slot[reg]) return std::nullopt;
      return fn.frame_template[reg];
    };

    for (const kir::BcInst& inst : fn.code) {
      if (inst.op != kir::BcOp::kGuard &&
          inst.op != kir::BcOp::kGuardInline &&
          inst.op != kir::BcOp::kGuardRange) {
        continue;
      }
      const kir::BcExtern& ext = bytecode.externs[inst.aux];
      GuardSite site;
      site.site_id = static_cast<uint32_t>(sites.size());
      site.call_ordinal = inst.imm2;
      site.function = fn.name;
      site.inst_index = inst.src_index;
      site.is_intrinsic = ext.is_intrinsic_guard;
      site.is_range = ext.is_range_guard;
      const uint16_t* args = fn.call_args.data() + inst.imm;
      if ((ext.is_guard && inst.b == 3) ||
          (ext.is_range_guard && inst.b == 4)) {
        if (auto size = constant_of(args[1])) {
          site.access_size = static_cast<uint32_t>(*size);
        }
        if (auto flags = constant_of(args[2])) {
          site.access_flags = static_cast<uint32_t>(*flags);
        }
        if (ext.is_range_guard) {
          if (auto elided = constant_of(args[3])) {
            site.elided = static_cast<uint32_t>(*elided);
          }
        }
      } else if (ext.is_intrinsic_guard && inst.b == 1) {
        if (auto id = constant_of(args[0])) {
          site.access_flags = static_cast<uint32_t>(*id);
        }
      }
      sites.push_back(std::move(site));
    }
  }
  return sites;
}

}  // namespace kop::transform
