#include "kop/transform/guard_sites.hpp"

#include "kop/util/carat_abi.hpp"

namespace kop::transform {

std::vector<GuardSite> EnumerateGuardSites(const kir::Module& module) {
  std::vector<GuardSite> sites;
  uint64_t call_ordinal = 0;
  for (const auto& fn : module.functions()) {
    uint32_t inst_index = 0;
    for (const auto& block : fn->blocks()) {
      for (const auto& inst : *block) {
        if (inst->opcode() == kir::Opcode::kCall) {
          const bool is_guard = inst->callee() == kCaratGuardSymbol;
          const bool is_intrinsic =
              inst->callee() == kCaratIntrinsicGuardSymbol;
          if (is_guard || is_intrinsic) {
            GuardSite site;
            site.site_id = static_cast<uint32_t>(sites.size());
            site.call_ordinal = call_ordinal;
            site.function = fn->name();
            site.inst_index = inst_index;
            site.is_intrinsic = is_intrinsic;
            if (is_guard && inst->operand_count() == 3) {
              if (const auto* size =
                      kir::dyn_cast<kir::Constant>(inst->operand(1))) {
                site.access_size = static_cast<uint32_t>(size->bits());
              }
              if (const auto* flags =
                      kir::dyn_cast<kir::Constant>(inst->operand(2))) {
                site.access_flags = static_cast<uint32_t>(flags->bits());
              }
            } else if (is_intrinsic && inst->operand_count() == 1) {
              if (const auto* id =
                      kir::dyn_cast<kir::Constant>(inst->operand(0))) {
                site.access_flags = static_cast<uint32_t>(id->bits());
              }
            }
            sites.push_back(std::move(site));
          }
          ++call_ordinal;
        }
        ++inst_index;
      }
    }
  }
  return sites;
}

}  // namespace kop::transform
