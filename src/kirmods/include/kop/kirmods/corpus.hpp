// The KIR kernel-module corpus: module sources used by the end-to-end
// compile -> sign -> validate -> insmod -> run pipeline in tests,
// examples and benches. Each returns the module's textual IR.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kop::kirmods {

/// "hello world" module: prints a greeting via the kernel's printk_str
/// export from its init function.
std::string HelloSource();

/// A ring-buffer driver: head/tail/count state plus a 64-slot buffer,
/// with init/push/pop/size entry points. The workhorse for guard tests.
std::string RingbufSource();

/// A buggy-or-malicious module: scribbles over / reads from arbitrary
/// addresses handed to it. The rogue module of the violation demos.
std::string ScribblerSource();

/// Loop-heavy copy/checksum module with deliberately redundant counter
/// accesses — the subject of the guard-optimization ablation (Abl 2).
std::string MemcopySource();

/// Uses privileged intrinsics (cli / wrmsr); the subject of the §5
/// privileged-intrinsic extension demo (Abl 3).
std::string PrivuserSource();

/// A miniature NIC driver written entirely in KIR: programs the 82574L
/// TX ring through MMIO and launches frames from its own buffer. The
/// end-to-end demonstration that the *compiler path* can protect a real
/// device driver — every MMIO register write it performs is a guarded
/// store.
std::string KnicSource();

/// The multi-queue sibling of @knic: four TX queues at the 0x100
/// register stride with per-queue tails/counters in module globals, a
/// per-frame send, and a batched send that stages a descriptor loop
/// behind one TDT doorbell — the KIR rendering of the native driver's
/// XmitBatch, used by the datapath differential battery.
std::string KnicMqSource();

/// A module containing inline assembly, which the CARAT KOP compiler
/// must refuse to certify (§2: attestation asserts its absence).
std::string InlineAsmSource();

/// An ops-table driver: a vtable global of handler addresses populated
/// by `vt_init`, dispatched through `vt_call` (loaded pointer, ⊤ set)
/// and `vt_pick` (select of two funcaddrs, finite set). The workhorse
/// for kop::cfi tests and the faultcamp control-flow trials. `@h_spare`
/// is deliberately never address-taken: a forged jump to it is exactly
/// the hijack CFI must refuse.
std::string IcallSource();

/// Synthetic module with `functions` functions of `accesses_per_fn`
/// loads+stores each over a shared global — scales the static guard
/// count for Table E and stress tests.
std::string SyntheticModuleSource(uint32_t functions,
                                  uint32_t accesses_per_fn);

struct CorpusEntry {
  std::string name;
  std::string source;
};

/// The whole corpus (excluding the synthetic generator), for sweeps.
std::vector<CorpusEntry> AllCorpusModules();

// --- Adversarial corpus -------------------------------------------------
//
// Modules that ship with guards already placed in the IR — as a compiler
// would emit — but placed WRONG, the way a malicious or buggy toolchain
// would. Paired with a forged guards-complete attestation they pass
// attestation-only validation; the static verifier must reject each one
// with a diagnostic naming the offending instruction.

/// Guards one access, leaves a second store entirely unguarded.
std::string AdversarialUnguardedSource();

/// Guards the right address with too small a size for the 8-byte store.
std::string AdversarialUndersizedSource();

/// Places the guard on only one branch; the access in the merge block is
/// not dominated by it.
std::string AdversarialWrongBranchSource();

/// Claims CFI (imports carat_cfi_check) and checks one indirect call,
/// but leaves a second icall through an inttoptr'd pointer unchecked.
std::string AdversarialIcallUncheckedSource();

/// The carat_cfi_check guards a different SSA value than the one the
/// adjacent indirect call actually jumps through.
std::string AdversarialCfiWrongValueSource();

/// Takes the address of a declared external symbol that is not an
/// exported kernel entry point — an indirect gate into arbitrary
/// kernel code the attestation never vouched for.
std::string AdversarialFuncaddrExternSource();

/// All adversarial modules, for sweeps and the kopcc --corpus self-check.
std::vector<CorpusEntry> AdversarialCorpusModules();

}  // namespace kop::kirmods
