#include "kop/kirmods/corpus.hpp"

#include <sstream>

namespace kop::kirmods {

std::string HelloSource() {
  // "hello from CARAT KOP module" + NUL, hex-encoded.
  return R"(module "kop_hello"

global @greeting size 32 ro init x"68656c6c6f2066726f6d204341524154204b4f50206d6f64756c6500"

extern func @printk_str(ptr) -> i64

func @init() -> i64 {
entry:
  %r = call i64 @printk_str(ptr @greeting)
  ret i64 0
}
)";
}

std::string RingbufSource() {
  return R"(module "kop_ringbuf"

global @buf size 512 rw
global @head size 8 rw
global @tail size 8 rw
global @count size 8 rw

func @rb_init() -> void {
entry:
  store i64 0, @head
  store i64 0, @tail
  store i64 0, @count
  ret void
}

func @rb_push(i64 %val) -> i64 {
entry:
  %cnt = load i64, @count
  %full = icmp uge i64 %cnt, 64
  br %full, fail, doit
doit:
  %t = load i64, @tail
  %slot = gep @buf, i64 %t, 8, 0
  store i64 %val, %slot
  %t1 = add i64 %t, 1
  %t2 = urem i64 %t1, 64
  store i64 %t2, @tail
  %c1 = add i64 %cnt, 1
  store i64 %c1, @count
  ret i64 1
fail:
  ret i64 0
}

func @rb_pop() -> i64 {
entry:
  %cnt = load i64, @count
  %empty = icmp eq i64 %cnt, 0
  br %empty, fail, doit
doit:
  %h = load i64, @head
  %slot = gep @buf, i64 %h, 8, 0
  %val = load i64, %slot
  %h1 = add i64 %h, 1
  %h2 = urem i64 %h1, 64
  store i64 %h2, @head
  %c1 = sub i64 %cnt, 1
  store i64 %c1, @count
  ret i64 %val
fail:
  ret i64 0
}

func @rb_size() -> i64 {
entry:
  %cnt = load i64, @count
  ret i64 %cnt
}
)";
}

std::string ScribblerSource() {
  return R"(module "kop_scribbler"

func @scribble(ptr %addr, i64 %value) -> i64 {
entry:
  store i64 %value, %addr
  ret i64 1
}

func @peek(ptr %addr) -> i64 {
entry:
  %v = load i64, %addr
  ret i64 %v
}

func @scribble_range(ptr %base, i64 %words, i64 %value) -> i64 {
entry:
  jmp loop
loop:
  %i = phi i64 [ 0, entry ], [ %i1, body ]
  %done = icmp uge i64 %i, %words
  br %done, out, body
body:
  %p = gep %base, i64 %i, 8, 0
  store i64 %value, %p
  %i1 = add i64 %i, 1
  jmp loop
out:
  ret i64 %words
}
)";
}

std::string MemcopySource() {
  return R"(module "kop_memcopy"

global @src size 4096 rw
global @dst size 4096 rw
global @copied size 8 rw

func @fill(i64 %n, i64 %seed) -> void {
entry:
  jmp loop
loop:
  %i = phi i64 [ 0, entry ], [ %i1, body ]
  %done = icmp uge i64 %i, %n
  br %done, out, body
body:
  %p = gep @src, i64 %i, 8, 0
  %v = add i64 %i, %seed
  store i64 %v, %p
  %i1 = add i64 %i, 1
  jmp loop
out:
  ret void
}

func @copy(i64 %n) -> i64 {
entry:
  %z = load i64, @copied
  jmp loop
loop:
  %i = phi i64 [ %z, entry ], [ %i1, body ]
  %done = icmp uge i64 %i, %n
  br %done, out, body
body:
  %sp = gep @src, i64 %i, 8, 0
  %v = load i64, %sp
  %dp = gep @dst, i64 %i, 8, 0
  store i64 %v, %dp
  %c = load i64, @copied
  %c1 = add i64 %c, 1
  store i64 %c1, @copied
  %w = load i64, @copied
  %i1 = add i64 %i, 1
  jmp loop
out:
  %total = load i64, @copied
  ret i64 %total
}

func @checksum(i64 %n) -> i64 {
entry:
  jmp loop
loop:
  %i = phi i64 [ 0, entry ], [ %i1, body ]
  %s = phi i64 [ 0, entry ], [ %s1, body ]
  %done = icmp uge i64 %i, %n
  br %done, out, body
body:
  %p = gep @dst, i64 %i, 8, 0
  %v = load i64, %p
  %v2 = load i64, %p
  %vs = add i64 %v, %v2
  %s1 = add i64 %s, %vs
  %i1 = add i64 %i, 1
  jmp loop
out:
  ret i64 %s
}
)";
}

std::string PrivuserSource() {
  return R"(module "kop_privuser"

global @scratch size 8 rw

func @disable_interrupts() -> i64 {
entry:
  call void @kir.cli()
  store i64 1, @scratch
  call void @kir.sti()
  ret i64 1
}

func @write_msr(i64 %msr, i64 %value) -> i64 {
entry:
  call void @kir.wrmsr(i64 %msr, i64 %value)
  ret i64 1
}

func @halt() -> void {
entry:
  call void @kir.hlt()
  ret void
}
)";
}

std::string InlineAsmSource() {
  return R"(module "kop_sneaky"

global @data size 8 rw

func @backdoor() -> i64 {
entry:
  asm "mov cr3, rax"
  %v = load i64, @data
  ret i64 %v
}
)";
}

std::string KnicSource() {
  // Register offsets (decimal): CTRL=0, TCTL=1024 (0x400), TDBAL=14336
  // (0x3800), TDBAH=14340, TDLEN=14344, TDH=14352, TDT=14360,
  // GPTC=16512 (0x4080). CTRL_SLU=64, TCTL EN|PSP=10, cmd EOP|IFCS|RS=11.
  return R"(module "kop_knic"

global @txring size 128 rw
global @txbuf size 256 rw
global @tail size 8 rw
global @sent size 8 rw

func @knic_init(ptr %mmio) -> i64 {
entry:
  %ctrl = gep %mmio, i64 0, 1, 0
  store i32 64, %ctrl
  %ringint = ptrtoint ptr @txring to i64
  %lo64 = and i64 %ringint, 0xffffffff
  %lo = trunc i64 %lo64 to i32
  %hi64 = lshr i64 %ringint, 32
  %hi = trunc i64 %hi64 to i32
  %tdbal = gep %mmio, i64 0, 1, 14336
  store i32 %lo, %tdbal
  %tdbah = gep %mmio, i64 0, 1, 14340
  store i32 %hi, %tdbah
  %tdlen = gep %mmio, i64 0, 1, 14344
  store i32 128, %tdlen
  %tdh = gep %mmio, i64 0, 1, 14352
  store i32 0, %tdh
  %tdt = gep %mmio, i64 0, 1, 14360
  store i32 0, %tdt
  %tctl = gep %mmio, i64 0, 1, 1024
  store i32 10, %tctl
  store i64 0, @tail
  store i64 0, @sent
  ret i64 1
}

func @knic_fill(i64 %len, i64 %seed) -> void {
entry:
  jmp loop
loop:
  %i = phi i64 [ 0, entry ], [ %i1, body ]
  %done = icmp uge i64 %i, %len
  br %done, out, body
body:
  %p = gep @txbuf, i64 %i, 1, 0
  %v0 = add i64 %i, %seed
  %v = trunc i64 %v0 to i8
  store i8 %v, %p
  %i1 = add i64 %i, 1
  jmp loop
out:
  ret void
}

func @knic_send(ptr %mmio, i64 %len) -> i64 {
entry:
  %t = load i64, @tail
  %slot = urem i64 %t, 8
  %desc = gep @txring, i64 %slot, 16, 0
  %bufint = ptrtoint ptr @txbuf to i64
  store i64 %bufint, %desc
  %cmd = shl i64 11, 24
  %w2 = or i64 %len, %cmd
  %d2 = gep %desc, i64 0, 1, 8
  store i64 %w2, %d2
  %t1 = add i64 %t, 1
  store i64 %t1, @tail
  %newtail = urem i64 %t1, 8
  %nt32 = trunc i64 %newtail to i32
  %tdt = gep %mmio, i64 0, 1, 14360
  store i32 %nt32, %tdt
  %s = load i64, @sent
  %s1 = add i64 %s, 1
  store i64 %s1, @sent
  ret i64 %s1
}

func @knic_sent_hw(ptr %mmio) -> i64 {
entry:
  %gptc = gep %mmio, i64 0, 1, 16512
  %v = load i32, %gptc
  %z = zext i32 %v to i64
  ret i64 %z
}
)";
}

std::string KnicMqSource() {
  // The multi-queue sibling of @knic: four TX queues at the device's
  // 0x100 (256) register stride, one 8-slot ring per queue carved out of
  // @txrings, and a batch send that stages descriptors in a loop behind
  // a single TDT doorbell — the KIR rendering of the native driver's
  // XmitBatch. Offsets: TDBAL(q)=14336+256q, TDBAH +4, TDLEN +8,
  // TDH +16, TDT +24; GPTC=16512 reads the device's folded total.
  return R"(module "kop_knic_mq"

global @txrings size 512 rw
global @txbuf size 256 rw
global @tails size 32 rw
global @sents size 32 rw

func @mq_init(ptr %mmio, i64 %nq) -> i64 {
entry:
  %ctrl = gep %mmio, i64 0, 1, 0
  store i32 64, %ctrl
  %tctl = gep %mmio, i64 0, 1, 1024
  store i32 10, %tctl
  jmp loop
loop:
  %q = phi i64 [ 0, entry ], [ %q1, body ]
  %done = icmp uge i64 %q, %nq
  br %done, out, body
body:
  %ringp = gep @txrings, i64 %q, 128, 0
  %ringint = ptrtoint ptr %ringp to i64
  %lo64 = and i64 %ringint, 0xffffffff
  %lo = trunc i64 %lo64 to i32
  %hi64 = lshr i64 %ringint, 32
  %hi = trunc i64 %hi64 to i32
  %regq = mul i64 %q, 256
  %tdbaloff = add i64 %regq, 14336
  %tdbal = gep %mmio, i64 %tdbaloff, 1, 0
  store i32 %lo, %tdbal
  %tdbahoff = add i64 %regq, 14340
  %tdbah = gep %mmio, i64 %tdbahoff, 1, 0
  store i32 %hi, %tdbah
  %tdlenoff = add i64 %regq, 14344
  %tdlen = gep %mmio, i64 %tdlenoff, 1, 0
  store i32 128, %tdlen
  %tdhoff = add i64 %regq, 14352
  %tdh = gep %mmio, i64 %tdhoff, 1, 0
  store i32 0, %tdh
  %tdtoff = add i64 %regq, 14360
  %tdt = gep %mmio, i64 %tdtoff, 1, 0
  store i32 0, %tdt
  %tailp = gep @tails, i64 %q, 8, 0
  store i64 0, %tailp
  %sentp = gep @sents, i64 %q, 8, 0
  store i64 0, %sentp
  %q1 = add i64 %q, 1
  jmp loop
out:
  ret i64 %nq
}

func @mq_fill(i64 %len, i64 %seed) -> void {
entry:
  jmp loop
loop:
  %i = phi i64 [ 0, entry ], [ %i1, body ]
  %done = icmp uge i64 %i, %len
  br %done, out, body
body:
  %p = gep @txbuf, i64 %i, 1, 0
  %v0 = add i64 %i, %seed
  %v = trunc i64 %v0 to i8
  store i8 %v, %p
  %i1 = add i64 %i, 1
  jmp loop
out:
  ret void
}

func @mq_send(ptr %mmio, i64 %q, i64 %len) -> i64 {
entry:
  %tailp = gep @tails, i64 %q, 8, 0
  %t = load i64, %tailp
  %slot = urem i64 %t, 8
  %qring = gep @txrings, i64 %q, 128, 0
  %desc = gep %qring, i64 %slot, 16, 0
  %bufint = ptrtoint ptr @txbuf to i64
  store i64 %bufint, %desc
  %cmd = shl i64 11, 24
  %w2 = or i64 %len, %cmd
  %d2 = gep %desc, i64 0, 1, 8
  store i64 %w2, %d2
  %t1 = add i64 %t, 1
  store i64 %t1, %tailp
  %newtail = urem i64 %t1, 8
  %nt32 = trunc i64 %newtail to i32
  %regq = mul i64 %q, 256
  %tdtoff = add i64 %regq, 14360
  %tdt = gep %mmio, i64 %tdtoff, 1, 0
  store i32 %nt32, %tdt
  %sentp = gep @sents, i64 %q, 8, 0
  %s = load i64, %sentp
  %s1 = add i64 %s, 1
  store i64 %s1, %sentp
  ret i64 %s1
}

func @mq_send_batch(ptr %mmio, i64 %q, i64 %len, i64 %n) -> i64 {
entry:
  %tailp = gep @tails, i64 %q, 8, 0
  %t0 = load i64, %tailp
  %qring = gep @txrings, i64 %q, 128, 0
  %bufint = ptrtoint ptr @txbuf to i64
  %cmd = shl i64 11, 24
  %w2 = or i64 %len, %cmd
  jmp loop
loop:
  %i = phi i64 [ 0, entry ], [ %i1, body ]
  %t = phi i64 [ %t0, entry ], [ %t1, body ]
  %done = icmp uge i64 %i, %n
  br %done, kick, body
body:
  %slot = urem i64 %t, 8
  %desc = gep %qring, i64 %slot, 16, 0
  store i64 %bufint, %desc
  %d2 = gep %desc, i64 0, 1, 8
  store i64 %w2, %d2
  %t1 = add i64 %t, 1
  %i1 = add i64 %i, 1
  jmp loop
kick:
  store i64 %t, %tailp
  %newtail = urem i64 %t, 8
  %nt32 = trunc i64 %newtail to i32
  %regq = mul i64 %q, 256
  %tdtoff = add i64 %regq, 14360
  %tdt = gep %mmio, i64 %tdtoff, 1, 0
  store i32 %nt32, %tdt
  %sentp = gep @sents, i64 %q, 8, 0
  %s = load i64, %sentp
  %s1 = add i64 %s, %n
  store i64 %s1, %sentp
  ret i64 %s1
}

func @mq_sent(i64 %q) -> i64 {
entry:
  %sentp = gep @sents, i64 %q, 8, 0
  %s = load i64, %sentp
  ret i64 %s
}

func @mq_sent_hw(ptr %mmio) -> i64 {
entry:
  %gptc = gep %mmio, i64 0, 1, 16512
  %v = load i32, %gptc
  %z = zext i32 %v to i64
  ret i64 %z
}
)";
}

std::string IcallSource() {
  // Handlers share the (i64, i64) -> i64 signature, so the ⊤ fallback at
  // @vt_call's loaded-pointer dispatch resolves to exactly the three
  // address-taken handlers; @h_spare never appears under funcaddr and so
  // stays outside every legal-target set.
  return R"(module "kop_icall"

global @vtable size 32 rw
global @acc size 8 rw

func @h_add(i64 %a, i64 %b) -> i64 {
entry:
  %r = add i64 %a, %b
  ret i64 %r
}

func @h_sub(i64 %a, i64 %b) -> i64 {
entry:
  %r = sub i64 %a, %b
  ret i64 %r
}

func @h_xor(i64 %a, i64 %b) -> i64 {
entry:
  %r = xor i64 %a, %b
  ret i64 %r
}

func @h_spare(i64 %a, i64 %b) -> i64 {
entry:
  store i64 %a, @acc
  ret i64 %b
}

func @vt_init() -> i64 {
entry:
  %f0 = funcaddr @h_add
  %i0 = ptrtoint ptr %f0 to i64
  %p0 = gep @vtable, i64 0, 8, 0
  store i64 %i0, %p0
  %f1 = funcaddr @h_sub
  %i1 = ptrtoint ptr %f1 to i64
  %p1 = gep @vtable, i64 1, 8, 0
  store i64 %i1, %p1
  %f2 = funcaddr @h_xor
  %i2 = ptrtoint ptr %f2 to i64
  %p2 = gep @vtable, i64 2, 8, 0
  store i64 %i2, %p2
  store i64 0, @acc
  ret i64 3
}

func @vt_call(i64 %op, i64 %a, i64 %b) -> i64 {
entry:
  %slot = gep @vtable, i64 %op, 8, 0
  %raw = load i64, %slot
  %f = inttoptr i64 %raw to ptr
  %r = icall i64 %f(i64 %a, i64 %b)
  %acc = load i64, @acc
  %acc1 = add i64 %acc, %r
  store i64 %acc1, @acc
  ret i64 %r
}

func @vt_pick(i64 %flag, i64 %a, i64 %b) -> i64 {
entry:
  %fa = funcaddr @h_add
  %fs = funcaddr @h_sub
  %c = icmp ne i64 %flag, 0
  %f = select %c, ptr %fa, %fs
  %r = icall i64 %f(i64 %a, i64 %b)
  ret i64 %r
}

func @vt_acc() -> i64 {
entry:
  %v = load i64, @acc
  ret i64 %v
}
)";
}

std::string SyntheticModuleSource(uint32_t functions,
                                  uint32_t accesses_per_fn) {
  std::ostringstream out;
  out << "module \"kop_synth\"\n\n";
  out << "global @state size " << (accesses_per_fn * 8 + 8) << " rw\n\n";
  for (uint32_t f = 0; f < functions; ++f) {
    out << "func @work" << f << "(i64 %x) -> i64 {\nentry:\n";
    out << "  %acc0 = add i64 %x, " << f << "\n";
    for (uint32_t a = 0; a < accesses_per_fn; ++a) {
      out << "  %p" << a << " = gep @state, i64 " << a << ", 8, 0\n";
      if (a % 2 == 0) {
        out << "  %v" << a << " = load i64, %p" << a << "\n";
        out << "  %acc" << (a + 1) << " = add i64 %acc" << a << ", %v" << a
            << "\n";
      } else {
        out << "  store i64 %acc" << a << ", %p" << a << "\n";
        out << "  %acc" << (a + 1) << " = add i64 %acc" << a << ", 1\n";
      }
    }
    out << "  ret i64 %acc" << accesses_per_fn << "\n}\n\n";
  }
  return out.str();
}

std::vector<CorpusEntry> AllCorpusModules() {
  return {
      {"kop_hello", HelloSource()},
      {"kop_ringbuf", RingbufSource()},
      {"kop_scribbler", ScribblerSource()},
      {"kop_memcopy", MemcopySource()},
      {"kop_privuser", PrivuserSource()},
      {"kop_knic", KnicSource()},
      {"kop_knic_mq", KnicMqSource()},
      {"kop_icall", IcallSource()},
  };
}

std::string AdversarialUnguardedSource() {
  // The guard covers the load of @state; the store through %p (one slot
  // past the guarded word) has no guard at all.
  return R"(module "kop_adv_unguarded"

global @state size 16 rw

extern func @carat_guard(ptr, i64, i64) -> void

func @poke(i64 %val) -> i64 {
entry:
  call void @carat_guard(ptr @state, i64 8, i64 1)
  %old = load i64, @state
  %p = gep @state, i64 1, 8, 0
  store i64 %val, %p
  ret i64 %old
}
)";
}

std::string AdversarialUndersizedSource() {
  // Right address, write flag — but the guard certifies 4 bytes and the
  // store writes 8.
  return R"(module "kop_adv_undersized"

global @state size 8 rw

extern func @carat_guard(ptr, i64, i64) -> void

func @poke(i64 %val) -> i64 {
entry:
  call void @carat_guard(ptr @state, i64 4, i64 2)
  store i64 %val, @state
  ret i64 0
}
)";
}

std::string AdversarialWrongBranchSource() {
  // The guard sits on the `guarded` branch only; along `skip` the store
  // in `merge` executes with no guard having run.
  return R"(module "kop_adv_wrongbranch"

global @state size 8 rw

extern func @carat_guard(ptr, i64, i64) -> void

func @poke(i64 %val, i64 %flag) -> i64 {
entry:
  %cond = icmp ne i64 %flag, 0
  br %cond, guarded, skip
guarded:
  call void @carat_guard(ptr @state, i64 8, i64 2)
  jmp merge
skip:
  jmp merge
merge:
  store i64 %val, @state
  ret i64 0
}
)";
}

std::string AdversarialIcallUncheckedSource() {
  // The first icall is properly gated; the second jumps through a
  // pointer laundered via inttoptr with no check anywhere near it — the
  // control-flow twin of AdversarialUnguardedSource.
  return R"(module "kop_adv_icall_unchecked"

global @slot size 8 rw

extern func @carat_cfi_check(ptr, i64) -> i64

func @h_a(i64 %x) -> i64 {
entry:
  %r = add i64 %x, 1
  ret i64 %r
}

func @run(i64 %x) -> i64 {
entry:
  %fa = funcaddr @h_a
  %chk = call i64 @carat_cfi_check(ptr %fa, i64 0)
  %r1 = icall i64 %fa(i64 %x)
  %raw = load i64, @slot
  %f = inttoptr i64 %raw to ptr
  %r2 = icall i64 %f(i64 %r1)
  ret i64 %r2
}
)";
}

std::string AdversarialCfiWrongValueSource() {
  // The check is adjacent and its set id even matches the derivation —
  // but it vouches for %fa while the icall jumps through %f.
  return R"(module "kop_adv_cfi_wrongvalue"

extern func @carat_cfi_check(ptr, i64) -> i64

func @h_a(i64 %x) -> i64 {
entry:
  %r = add i64 %x, 1
  ret i64 %r
}

func @h_b(i64 %x) -> i64 {
entry:
  %r = add i64 %x, 2
  ret i64 %r
}

func @run(i64 %flag, i64 %x) -> i64 {
entry:
  %fa = funcaddr @h_a
  %fb = funcaddr @h_b
  %c = icmp ne i64 %flag, 0
  %f = select %c, ptr %fa, %fb
  %chk = call i64 @carat_cfi_check(ptr %fa, i64 0)
  %r = icall i64 %f(i64 %x)
  ret i64 %r
}
)";
}

std::string AdversarialFuncaddrExternSource() {
  // `ioremap` is a declared external that is NOT an exported kernel
  // entry point; taking its address would arm the icall gate with a
  // jump into arbitrary kernel code.
  return R"(module "kop_adv_funcaddr_extern"

extern func @carat_cfi_check(ptr, i64) -> i64
extern func @ioremap(i64) -> i64

func @run(i64 %x) -> i64 {
entry:
  %f = funcaddr @ioremap
  %chk = call i64 @carat_cfi_check(ptr %f, i64 0)
  %r = icall i64 %f(i64 %x)
  ret i64 %r
}
)";
}

std::vector<CorpusEntry> AdversarialCorpusModules() {
  return {
      {"kop_adv_unguarded", AdversarialUnguardedSource()},
      {"kop_adv_undersized", AdversarialUndersizedSource()},
      {"kop_adv_wrongbranch", AdversarialWrongBranchSource()},
      {"kop_adv_icall_unchecked", AdversarialIcallUncheckedSource()},
      {"kop_adv_cfi_wrongvalue", AdversarialCfiWrongValueSource()},
      {"kop_adv_funcaddr_extern", AdversarialFuncaddrExternSource()},
  };
}

}  // namespace kop::kirmods
