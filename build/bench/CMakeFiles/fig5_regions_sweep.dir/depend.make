# Empty dependencies file for fig5_regions_sweep.
# This may be replaced when dependencies are built.
