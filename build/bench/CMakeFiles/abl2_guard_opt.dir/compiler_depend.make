# Empty compiler generated dependencies file for abl2_guard_opt.
# This may be replaced when dependencies are built.
