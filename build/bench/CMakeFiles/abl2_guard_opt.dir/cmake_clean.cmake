file(REMOVE_RECURSE
  "CMakeFiles/abl2_guard_opt.dir/abl2_guard_opt.cpp.o"
  "CMakeFiles/abl2_guard_opt.dir/abl2_guard_opt.cpp.o.d"
  "abl2_guard_opt"
  "abl2_guard_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl2_guard_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
