file(REMOVE_RECURSE
  "CMakeFiles/ext2_fpvm.dir/ext2_fpvm.cpp.o"
  "CMakeFiles/ext2_fpvm.dir/ext2_fpvm.cpp.o.d"
  "ext2_fpvm"
  "ext2_fpvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext2_fpvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
