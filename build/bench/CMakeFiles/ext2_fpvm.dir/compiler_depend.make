# Empty compiler generated dependencies file for ext2_fpvm.
# This may be replaced when dependencies are built.
