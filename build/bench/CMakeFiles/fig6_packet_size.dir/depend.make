# Empty dependencies file for fig6_packet_size.
# This may be replaced when dependencies are built.
