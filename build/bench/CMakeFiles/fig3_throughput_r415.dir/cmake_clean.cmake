file(REMOVE_RECURSE
  "CMakeFiles/fig3_throughput_r415.dir/fig3_throughput_r415.cpp.o"
  "CMakeFiles/fig3_throughput_r415.dir/fig3_throughput_r415.cpp.o.d"
  "fig3_throughput_r415"
  "fig3_throughput_r415.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_throughput_r415.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
