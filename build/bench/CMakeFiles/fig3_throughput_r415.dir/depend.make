# Empty dependencies file for fig3_throughput_r415.
# This may be replaced when dependencies are built.
