# Empty compiler generated dependencies file for tblE_engineering.
# This may be replaced when dependencies are built.
