file(REMOVE_RECURSE
  "CMakeFiles/tblE_engineering.dir/tblE_engineering.cpp.o"
  "CMakeFiles/tblE_engineering.dir/tblE_engineering.cpp.o.d"
  "tblE_engineering"
  "tblE_engineering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tblE_engineering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
