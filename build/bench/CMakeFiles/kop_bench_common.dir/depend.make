# Empty dependencies file for kop_bench_common.
# This may be replaced when dependencies are built.
