file(REMOVE_RECURSE
  "CMakeFiles/kop_bench_common.dir/common/experiment.cpp.o"
  "CMakeFiles/kop_bench_common.dir/common/experiment.cpp.o.d"
  "CMakeFiles/kop_bench_common.dir/common/figures.cpp.o"
  "CMakeFiles/kop_bench_common.dir/common/figures.cpp.o.d"
  "libkop_bench_common.a"
  "libkop_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
