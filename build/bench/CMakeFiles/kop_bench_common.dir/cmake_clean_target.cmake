file(REMOVE_RECURSE
  "libkop_bench_common.a"
)
