# Empty compiler generated dependencies file for fig7_latency_hist.
# This may be replaced when dependencies are built.
