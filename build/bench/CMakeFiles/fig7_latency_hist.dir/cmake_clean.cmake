file(REMOVE_RECURSE
  "CMakeFiles/fig7_latency_hist.dir/fig7_latency_hist.cpp.o"
  "CMakeFiles/fig7_latency_hist.dir/fig7_latency_hist.cpp.o.d"
  "fig7_latency_hist"
  "fig7_latency_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_latency_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
