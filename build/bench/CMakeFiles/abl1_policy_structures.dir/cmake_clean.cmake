file(REMOVE_RECURSE
  "CMakeFiles/abl1_policy_structures.dir/abl1_policy_structures.cpp.o"
  "CMakeFiles/abl1_policy_structures.dir/abl1_policy_structures.cpp.o.d"
  "abl1_policy_structures"
  "abl1_policy_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl1_policy_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
