# Empty dependencies file for abl1_policy_structures.
# This may be replaced when dependencies are built.
