file(REMOVE_RECURSE
  "CMakeFiles/fig4_throughput_r350.dir/fig4_throughput_r350.cpp.o"
  "CMakeFiles/fig4_throughput_r350.dir/fig4_throughput_r350.cpp.o.d"
  "fig4_throughput_r350"
  "fig4_throughput_r350.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_throughput_r350.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
