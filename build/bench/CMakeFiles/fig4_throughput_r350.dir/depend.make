# Empty dependencies file for fig4_throughput_r350.
# This may be replaced when dependencies are built.
