# Empty compiler generated dependencies file for abl3_extensions.
# This may be replaced when dependencies are built.
