file(REMOVE_RECURSE
  "CMakeFiles/abl3_extensions.dir/abl3_extensions.cpp.o"
  "CMakeFiles/abl3_extensions.dir/abl3_extensions.cpp.o.d"
  "abl3_extensions"
  "abl3_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl3_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
