file(REMOVE_RECURSE
  "CMakeFiles/ext1_heartbeat.dir/ext1_heartbeat.cpp.o"
  "CMakeFiles/ext1_heartbeat.dir/ext1_heartbeat.cpp.o.d"
  "ext1_heartbeat"
  "ext1_heartbeat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext1_heartbeat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
