# Empty dependencies file for ext1_heartbeat.
# This may be replaced when dependencies are built.
