# Empty dependencies file for kopcc.
# This may be replaced when dependencies are built.
