file(REMOVE_RECURSE
  "CMakeFiles/kopcc.dir/kopcc.cpp.o"
  "CMakeFiles/kopcc.dir/kopcc.cpp.o.d"
  "kopcc"
  "kopcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kopcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
