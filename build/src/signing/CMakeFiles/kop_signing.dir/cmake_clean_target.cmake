file(REMOVE_RECURSE
  "libkop_signing.a"
)
