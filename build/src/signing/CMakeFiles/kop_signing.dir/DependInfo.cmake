
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signing/hmac.cpp" "src/signing/CMakeFiles/kop_signing.dir/hmac.cpp.o" "gcc" "src/signing/CMakeFiles/kop_signing.dir/hmac.cpp.o.d"
  "/root/repo/src/signing/sha256.cpp" "src/signing/CMakeFiles/kop_signing.dir/sha256.cpp.o" "gcc" "src/signing/CMakeFiles/kop_signing.dir/sha256.cpp.o.d"
  "/root/repo/src/signing/signer.cpp" "src/signing/CMakeFiles/kop_signing.dir/signer.cpp.o" "gcc" "src/signing/CMakeFiles/kop_signing.dir/signer.cpp.o.d"
  "/root/repo/src/signing/validator.cpp" "src/signing/CMakeFiles/kop_signing.dir/validator.cpp.o" "gcc" "src/signing/CMakeFiles/kop_signing.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kir/CMakeFiles/kop_kir.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/kop_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
