# Empty dependencies file for kop_signing.
# This may be replaced when dependencies are built.
