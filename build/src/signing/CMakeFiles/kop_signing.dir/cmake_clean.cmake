file(REMOVE_RECURSE
  "CMakeFiles/kop_signing.dir/hmac.cpp.o"
  "CMakeFiles/kop_signing.dir/hmac.cpp.o.d"
  "CMakeFiles/kop_signing.dir/sha256.cpp.o"
  "CMakeFiles/kop_signing.dir/sha256.cpp.o.d"
  "CMakeFiles/kop_signing.dir/signer.cpp.o"
  "CMakeFiles/kop_signing.dir/signer.cpp.o.d"
  "CMakeFiles/kop_signing.dir/validator.cpp.o"
  "CMakeFiles/kop_signing.dir/validator.cpp.o.d"
  "libkop_signing.a"
  "libkop_signing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_signing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
