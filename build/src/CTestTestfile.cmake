# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("kir")
subdirs("transform")
subdirs("signing")
subdirs("kernel")
subdirs("policy")
subdirs("modrt")
subdirs("nic")
subdirs("e1000e")
subdirs("hpet")
subdirs("fptrap")
subdirs("net")
subdirs("kirmods")
