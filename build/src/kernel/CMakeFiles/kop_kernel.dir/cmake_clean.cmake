file(REMOVE_RECURSE
  "CMakeFiles/kop_kernel.dir/address_space.cpp.o"
  "CMakeFiles/kop_kernel.dir/address_space.cpp.o.d"
  "CMakeFiles/kop_kernel.dir/chardev.cpp.o"
  "CMakeFiles/kop_kernel.dir/chardev.cpp.o.d"
  "CMakeFiles/kop_kernel.dir/kernel.cpp.o"
  "CMakeFiles/kop_kernel.dir/kernel.cpp.o.d"
  "CMakeFiles/kop_kernel.dir/kmalloc.cpp.o"
  "CMakeFiles/kop_kernel.dir/kmalloc.cpp.o.d"
  "CMakeFiles/kop_kernel.dir/machine_state.cpp.o"
  "CMakeFiles/kop_kernel.dir/machine_state.cpp.o.d"
  "CMakeFiles/kop_kernel.dir/module_loader.cpp.o"
  "CMakeFiles/kop_kernel.dir/module_loader.cpp.o.d"
  "CMakeFiles/kop_kernel.dir/printk.cpp.o"
  "CMakeFiles/kop_kernel.dir/printk.cpp.o.d"
  "CMakeFiles/kop_kernel.dir/procfs.cpp.o"
  "CMakeFiles/kop_kernel.dir/procfs.cpp.o.d"
  "CMakeFiles/kop_kernel.dir/symbols.cpp.o"
  "CMakeFiles/kop_kernel.dir/symbols.cpp.o.d"
  "libkop_kernel.a"
  "libkop_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
