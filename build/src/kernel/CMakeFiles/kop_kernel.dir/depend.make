# Empty dependencies file for kop_kernel.
# This may be replaced when dependencies are built.
