file(REMOVE_RECURSE
  "libkop_kernel.a"
)
