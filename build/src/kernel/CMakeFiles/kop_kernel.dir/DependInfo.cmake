
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/address_space.cpp" "src/kernel/CMakeFiles/kop_kernel.dir/address_space.cpp.o" "gcc" "src/kernel/CMakeFiles/kop_kernel.dir/address_space.cpp.o.d"
  "/root/repo/src/kernel/chardev.cpp" "src/kernel/CMakeFiles/kop_kernel.dir/chardev.cpp.o" "gcc" "src/kernel/CMakeFiles/kop_kernel.dir/chardev.cpp.o.d"
  "/root/repo/src/kernel/kernel.cpp" "src/kernel/CMakeFiles/kop_kernel.dir/kernel.cpp.o" "gcc" "src/kernel/CMakeFiles/kop_kernel.dir/kernel.cpp.o.d"
  "/root/repo/src/kernel/kmalloc.cpp" "src/kernel/CMakeFiles/kop_kernel.dir/kmalloc.cpp.o" "gcc" "src/kernel/CMakeFiles/kop_kernel.dir/kmalloc.cpp.o.d"
  "/root/repo/src/kernel/machine_state.cpp" "src/kernel/CMakeFiles/kop_kernel.dir/machine_state.cpp.o" "gcc" "src/kernel/CMakeFiles/kop_kernel.dir/machine_state.cpp.o.d"
  "/root/repo/src/kernel/module_loader.cpp" "src/kernel/CMakeFiles/kop_kernel.dir/module_loader.cpp.o" "gcc" "src/kernel/CMakeFiles/kop_kernel.dir/module_loader.cpp.o.d"
  "/root/repo/src/kernel/printk.cpp" "src/kernel/CMakeFiles/kop_kernel.dir/printk.cpp.o" "gcc" "src/kernel/CMakeFiles/kop_kernel.dir/printk.cpp.o.d"
  "/root/repo/src/kernel/procfs.cpp" "src/kernel/CMakeFiles/kop_kernel.dir/procfs.cpp.o" "gcc" "src/kernel/CMakeFiles/kop_kernel.dir/procfs.cpp.o.d"
  "/root/repo/src/kernel/symbols.cpp" "src/kernel/CMakeFiles/kop_kernel.dir/symbols.cpp.o" "gcc" "src/kernel/CMakeFiles/kop_kernel.dir/symbols.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/kop_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kir/CMakeFiles/kop_kir.dir/DependInfo.cmake"
  "/root/repo/build/src/signing/CMakeFiles/kop_signing.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/kop_transform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
