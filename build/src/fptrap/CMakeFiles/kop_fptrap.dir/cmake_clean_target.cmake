file(REMOVE_RECURSE
  "libkop_fptrap.a"
)
