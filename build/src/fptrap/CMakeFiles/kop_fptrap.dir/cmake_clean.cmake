file(REMOVE_RECURSE
  "CMakeFiles/kop_fptrap.dir/fpvm_module.cpp.o"
  "CMakeFiles/kop_fptrap.dir/fpvm_module.cpp.o.d"
  "CMakeFiles/kop_fptrap.dir/trap_controller.cpp.o"
  "CMakeFiles/kop_fptrap.dir/trap_controller.cpp.o.d"
  "libkop_fptrap.a"
  "libkop_fptrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_fptrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
