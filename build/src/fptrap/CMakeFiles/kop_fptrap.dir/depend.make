# Empty dependencies file for kop_fptrap.
# This may be replaced when dependencies are built.
