# CMake generated Testfile for 
# Source directory: /root/repo/src/e1000e
# Build directory: /root/repo/build/src/e1000e
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
