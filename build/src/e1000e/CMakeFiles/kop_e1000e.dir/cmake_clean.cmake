file(REMOVE_RECURSE
  "CMakeFiles/kop_e1000e.dir/driver.cpp.o"
  "CMakeFiles/kop_e1000e.dir/driver.cpp.o.d"
  "libkop_e1000e.a"
  "libkop_e1000e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_e1000e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
