# Empty dependencies file for kop_e1000e.
# This may be replaced when dependencies are built.
