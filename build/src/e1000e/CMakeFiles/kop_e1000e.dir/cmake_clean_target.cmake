file(REMOVE_RECURSE
  "libkop_e1000e.a"
)
