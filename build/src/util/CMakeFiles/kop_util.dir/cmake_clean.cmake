file(REMOVE_RECURSE
  "CMakeFiles/kop_util.dir/hexdump.cpp.o"
  "CMakeFiles/kop_util.dir/hexdump.cpp.o.d"
  "CMakeFiles/kop_util.dir/log.cpp.o"
  "CMakeFiles/kop_util.dir/log.cpp.o.d"
  "CMakeFiles/kop_util.dir/status.cpp.o"
  "CMakeFiles/kop_util.dir/status.cpp.o.d"
  "libkop_util.a"
  "libkop_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
