# Empty compiler generated dependencies file for kop_util.
# This may be replaced when dependencies are built.
