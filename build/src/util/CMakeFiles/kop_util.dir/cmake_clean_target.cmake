file(REMOVE_RECURSE
  "libkop_util.a"
)
