file(REMOVE_RECURSE
  "libkop_nic.a"
)
