# Empty compiler generated dependencies file for kop_nic.
# This may be replaced when dependencies are built.
