file(REMOVE_RECURSE
  "CMakeFiles/kop_nic.dir/e1000_device.cpp.o"
  "CMakeFiles/kop_nic.dir/e1000_device.cpp.o.d"
  "libkop_nic.a"
  "libkop_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
