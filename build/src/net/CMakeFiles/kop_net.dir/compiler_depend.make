# Empty compiler generated dependencies file for kop_net.
# This may be replaced when dependencies are built.
