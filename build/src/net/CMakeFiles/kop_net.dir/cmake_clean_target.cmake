file(REMOVE_RECURSE
  "libkop_net.a"
)
