
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/frame.cpp" "src/net/CMakeFiles/kop_net.dir/frame.cpp.o" "gcc" "src/net/CMakeFiles/kop_net.dir/frame.cpp.o.d"
  "/root/repo/src/net/packet_gun.cpp" "src/net/CMakeFiles/kop_net.dir/packet_gun.cpp.o" "gcc" "src/net/CMakeFiles/kop_net.dir/packet_gun.cpp.o.d"
  "/root/repo/src/net/socket.cpp" "src/net/CMakeFiles/kop_net.dir/socket.cpp.o" "gcc" "src/net/CMakeFiles/kop_net.dir/socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/kop_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kop_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/signing/CMakeFiles/kop_signing.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/kop_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/kir/CMakeFiles/kop_kir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
