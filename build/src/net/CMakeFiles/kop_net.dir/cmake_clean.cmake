file(REMOVE_RECURSE
  "CMakeFiles/kop_net.dir/frame.cpp.o"
  "CMakeFiles/kop_net.dir/frame.cpp.o.d"
  "CMakeFiles/kop_net.dir/packet_gun.cpp.o"
  "CMakeFiles/kop_net.dir/packet_gun.cpp.o.d"
  "CMakeFiles/kop_net.dir/socket.cpp.o"
  "CMakeFiles/kop_net.dir/socket.cpp.o.d"
  "libkop_net.a"
  "libkop_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
