
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/amq.cpp" "src/policy/CMakeFiles/kop_policy.dir/amq.cpp.o" "gcc" "src/policy/CMakeFiles/kop_policy.dir/amq.cpp.o.d"
  "/root/repo/src/policy/cuckoo.cpp" "src/policy/CMakeFiles/kop_policy.dir/cuckoo.cpp.o" "gcc" "src/policy/CMakeFiles/kop_policy.dir/cuckoo.cpp.o.d"
  "/root/repo/src/policy/engine.cpp" "src/policy/CMakeFiles/kop_policy.dir/engine.cpp.o" "gcc" "src/policy/CMakeFiles/kop_policy.dir/engine.cpp.o.d"
  "/root/repo/src/policy/lsh_store.cpp" "src/policy/CMakeFiles/kop_policy.dir/lsh_store.cpp.o" "gcc" "src/policy/CMakeFiles/kop_policy.dir/lsh_store.cpp.o.d"
  "/root/repo/src/policy/policy_module.cpp" "src/policy/CMakeFiles/kop_policy.dir/policy_module.cpp.o" "gcc" "src/policy/CMakeFiles/kop_policy.dir/policy_module.cpp.o.d"
  "/root/repo/src/policy/rbtree_store.cpp" "src/policy/CMakeFiles/kop_policy.dir/rbtree_store.cpp.o" "gcc" "src/policy/CMakeFiles/kop_policy.dir/rbtree_store.cpp.o.d"
  "/root/repo/src/policy/region_table.cpp" "src/policy/CMakeFiles/kop_policy.dir/region_table.cpp.o" "gcc" "src/policy/CMakeFiles/kop_policy.dir/region_table.cpp.o.d"
  "/root/repo/src/policy/rules.cpp" "src/policy/CMakeFiles/kop_policy.dir/rules.cpp.o" "gcc" "src/policy/CMakeFiles/kop_policy.dir/rules.cpp.o.d"
  "/root/repo/src/policy/sorted_table.cpp" "src/policy/CMakeFiles/kop_policy.dir/sorted_table.cpp.o" "gcc" "src/policy/CMakeFiles/kop_policy.dir/sorted_table.cpp.o.d"
  "/root/repo/src/policy/splay_store.cpp" "src/policy/CMakeFiles/kop_policy.dir/splay_store.cpp.o" "gcc" "src/policy/CMakeFiles/kop_policy.dir/splay_store.cpp.o.d"
  "/root/repo/src/policy/wrappers.cpp" "src/policy/CMakeFiles/kop_policy.dir/wrappers.cpp.o" "gcc" "src/policy/CMakeFiles/kop_policy.dir/wrappers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/kop_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/kop_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kop_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/signing/CMakeFiles/kop_signing.dir/DependInfo.cmake"
  "/root/repo/build/src/kir/CMakeFiles/kop_kir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
