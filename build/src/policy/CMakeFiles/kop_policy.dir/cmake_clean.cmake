file(REMOVE_RECURSE
  "CMakeFiles/kop_policy.dir/amq.cpp.o"
  "CMakeFiles/kop_policy.dir/amq.cpp.o.d"
  "CMakeFiles/kop_policy.dir/cuckoo.cpp.o"
  "CMakeFiles/kop_policy.dir/cuckoo.cpp.o.d"
  "CMakeFiles/kop_policy.dir/engine.cpp.o"
  "CMakeFiles/kop_policy.dir/engine.cpp.o.d"
  "CMakeFiles/kop_policy.dir/lsh_store.cpp.o"
  "CMakeFiles/kop_policy.dir/lsh_store.cpp.o.d"
  "CMakeFiles/kop_policy.dir/policy_module.cpp.o"
  "CMakeFiles/kop_policy.dir/policy_module.cpp.o.d"
  "CMakeFiles/kop_policy.dir/rbtree_store.cpp.o"
  "CMakeFiles/kop_policy.dir/rbtree_store.cpp.o.d"
  "CMakeFiles/kop_policy.dir/region_table.cpp.o"
  "CMakeFiles/kop_policy.dir/region_table.cpp.o.d"
  "CMakeFiles/kop_policy.dir/rules.cpp.o"
  "CMakeFiles/kop_policy.dir/rules.cpp.o.d"
  "CMakeFiles/kop_policy.dir/sorted_table.cpp.o"
  "CMakeFiles/kop_policy.dir/sorted_table.cpp.o.d"
  "CMakeFiles/kop_policy.dir/splay_store.cpp.o"
  "CMakeFiles/kop_policy.dir/splay_store.cpp.o.d"
  "CMakeFiles/kop_policy.dir/wrappers.cpp.o"
  "CMakeFiles/kop_policy.dir/wrappers.cpp.o.d"
  "libkop_policy.a"
  "libkop_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
