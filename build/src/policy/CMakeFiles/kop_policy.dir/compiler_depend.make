# Empty compiler generated dependencies file for kop_policy.
# This may be replaced when dependencies are built.
