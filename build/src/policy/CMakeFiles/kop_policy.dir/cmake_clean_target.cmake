file(REMOVE_RECURSE
  "libkop_policy.a"
)
