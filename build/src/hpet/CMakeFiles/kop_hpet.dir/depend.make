# Empty dependencies file for kop_hpet.
# This may be replaced when dependencies are built.
