file(REMOVE_RECURSE
  "libkop_hpet.a"
)
