file(REMOVE_RECURSE
  "CMakeFiles/kop_hpet.dir/heartbeat.cpp.o"
  "CMakeFiles/kop_hpet.dir/heartbeat.cpp.o.d"
  "CMakeFiles/kop_hpet.dir/timer_device.cpp.o"
  "CMakeFiles/kop_hpet.dir/timer_device.cpp.o.d"
  "libkop_hpet.a"
  "libkop_hpet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_hpet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
