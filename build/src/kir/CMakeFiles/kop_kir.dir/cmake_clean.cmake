file(REMOVE_RECURSE
  "CMakeFiles/kop_kir.dir/builder.cpp.o"
  "CMakeFiles/kop_kir.dir/builder.cpp.o.d"
  "CMakeFiles/kop_kir.dir/interp.cpp.o"
  "CMakeFiles/kop_kir.dir/interp.cpp.o.d"
  "CMakeFiles/kop_kir.dir/module.cpp.o"
  "CMakeFiles/kop_kir.dir/module.cpp.o.d"
  "CMakeFiles/kop_kir.dir/parser.cpp.o"
  "CMakeFiles/kop_kir.dir/parser.cpp.o.d"
  "CMakeFiles/kop_kir.dir/printer.cpp.o"
  "CMakeFiles/kop_kir.dir/printer.cpp.o.d"
  "CMakeFiles/kop_kir.dir/type.cpp.o"
  "CMakeFiles/kop_kir.dir/type.cpp.o.d"
  "CMakeFiles/kop_kir.dir/verifier.cpp.o"
  "CMakeFiles/kop_kir.dir/verifier.cpp.o.d"
  "libkop_kir.a"
  "libkop_kir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_kir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
