# Empty dependencies file for kop_kir.
# This may be replaced when dependencies are built.
