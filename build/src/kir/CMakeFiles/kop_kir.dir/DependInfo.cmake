
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kir/builder.cpp" "src/kir/CMakeFiles/kop_kir.dir/builder.cpp.o" "gcc" "src/kir/CMakeFiles/kop_kir.dir/builder.cpp.o.d"
  "/root/repo/src/kir/interp.cpp" "src/kir/CMakeFiles/kop_kir.dir/interp.cpp.o" "gcc" "src/kir/CMakeFiles/kop_kir.dir/interp.cpp.o.d"
  "/root/repo/src/kir/module.cpp" "src/kir/CMakeFiles/kop_kir.dir/module.cpp.o" "gcc" "src/kir/CMakeFiles/kop_kir.dir/module.cpp.o.d"
  "/root/repo/src/kir/parser.cpp" "src/kir/CMakeFiles/kop_kir.dir/parser.cpp.o" "gcc" "src/kir/CMakeFiles/kop_kir.dir/parser.cpp.o.d"
  "/root/repo/src/kir/printer.cpp" "src/kir/CMakeFiles/kop_kir.dir/printer.cpp.o" "gcc" "src/kir/CMakeFiles/kop_kir.dir/printer.cpp.o.d"
  "/root/repo/src/kir/type.cpp" "src/kir/CMakeFiles/kop_kir.dir/type.cpp.o" "gcc" "src/kir/CMakeFiles/kop_kir.dir/type.cpp.o.d"
  "/root/repo/src/kir/verifier.cpp" "src/kir/CMakeFiles/kop_kir.dir/verifier.cpp.o" "gcc" "src/kir/CMakeFiles/kop_kir.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/kop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
