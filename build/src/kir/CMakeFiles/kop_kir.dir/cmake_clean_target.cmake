file(REMOVE_RECURSE
  "libkop_kir.a"
)
