file(REMOVE_RECURSE
  "libkop_transform.a"
)
