# Empty dependencies file for kop_transform.
# This may be replaced when dependencies are built.
