
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/attestation.cpp" "src/transform/CMakeFiles/kop_transform.dir/attestation.cpp.o" "gcc" "src/transform/CMakeFiles/kop_transform.dir/attestation.cpp.o.d"
  "/root/repo/src/transform/compiler.cpp" "src/transform/CMakeFiles/kop_transform.dir/compiler.cpp.o" "gcc" "src/transform/CMakeFiles/kop_transform.dir/compiler.cpp.o.d"
  "/root/repo/src/transform/guard_injection.cpp" "src/transform/CMakeFiles/kop_transform.dir/guard_injection.cpp.o" "gcc" "src/transform/CMakeFiles/kop_transform.dir/guard_injection.cpp.o.d"
  "/root/repo/src/transform/guard_opt.cpp" "src/transform/CMakeFiles/kop_transform.dir/guard_opt.cpp.o" "gcc" "src/transform/CMakeFiles/kop_transform.dir/guard_opt.cpp.o.d"
  "/root/repo/src/transform/pass.cpp" "src/transform/CMakeFiles/kop_transform.dir/pass.cpp.o" "gcc" "src/transform/CMakeFiles/kop_transform.dir/pass.cpp.o.d"
  "/root/repo/src/transform/privileged.cpp" "src/transform/CMakeFiles/kop_transform.dir/privileged.cpp.o" "gcc" "src/transform/CMakeFiles/kop_transform.dir/privileged.cpp.o.d"
  "/root/repo/src/transform/simplify.cpp" "src/transform/CMakeFiles/kop_transform.dir/simplify.cpp.o" "gcc" "src/transform/CMakeFiles/kop_transform.dir/simplify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kir/CMakeFiles/kop_kir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
