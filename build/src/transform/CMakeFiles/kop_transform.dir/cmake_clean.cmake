file(REMOVE_RECURSE
  "CMakeFiles/kop_transform.dir/attestation.cpp.o"
  "CMakeFiles/kop_transform.dir/attestation.cpp.o.d"
  "CMakeFiles/kop_transform.dir/compiler.cpp.o"
  "CMakeFiles/kop_transform.dir/compiler.cpp.o.d"
  "CMakeFiles/kop_transform.dir/guard_injection.cpp.o"
  "CMakeFiles/kop_transform.dir/guard_injection.cpp.o.d"
  "CMakeFiles/kop_transform.dir/guard_opt.cpp.o"
  "CMakeFiles/kop_transform.dir/guard_opt.cpp.o.d"
  "CMakeFiles/kop_transform.dir/pass.cpp.o"
  "CMakeFiles/kop_transform.dir/pass.cpp.o.d"
  "CMakeFiles/kop_transform.dir/privileged.cpp.o"
  "CMakeFiles/kop_transform.dir/privileged.cpp.o.d"
  "CMakeFiles/kop_transform.dir/simplify.cpp.o"
  "CMakeFiles/kop_transform.dir/simplify.cpp.o.d"
  "libkop_transform.a"
  "libkop_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
