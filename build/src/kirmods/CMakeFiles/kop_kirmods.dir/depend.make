# Empty dependencies file for kop_kirmods.
# This may be replaced when dependencies are built.
