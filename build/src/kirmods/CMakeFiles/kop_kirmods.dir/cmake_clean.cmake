file(REMOVE_RECURSE
  "CMakeFiles/kop_kirmods.dir/corpus.cpp.o"
  "CMakeFiles/kop_kirmods.dir/corpus.cpp.o.d"
  "libkop_kirmods.a"
  "libkop_kirmods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_kirmods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
