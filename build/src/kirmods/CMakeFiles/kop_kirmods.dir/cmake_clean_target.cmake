file(REMOVE_RECURSE
  "libkop_kirmods.a"
)
