file(REMOVE_RECURSE
  "CMakeFiles/kop_sim.dir/machine.cpp.o"
  "CMakeFiles/kop_sim.dir/machine.cpp.o.d"
  "CMakeFiles/kop_sim.dir/stats.cpp.o"
  "CMakeFiles/kop_sim.dir/stats.cpp.o.d"
  "libkop_sim.a"
  "libkop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
