file(REMOVE_RECURSE
  "libkop_sim.a"
)
