file(REMOVE_RECURSE
  "CMakeFiles/fptrap_test.dir/fptrap_test.cpp.o"
  "CMakeFiles/fptrap_test.dir/fptrap_test.cpp.o.d"
  "fptrap_test"
  "fptrap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptrap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
