# Empty compiler generated dependencies file for fptrap_test.
# This may be replaced when dependencies are built.
