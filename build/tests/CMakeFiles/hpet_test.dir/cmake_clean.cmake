file(REMOVE_RECURSE
  "CMakeFiles/hpet_test.dir/hpet_test.cpp.o"
  "CMakeFiles/hpet_test.dir/hpet_test.cpp.o.d"
  "hpet_test"
  "hpet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
