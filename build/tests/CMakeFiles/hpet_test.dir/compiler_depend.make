# Empty compiler generated dependencies file for hpet_test.
# This may be replaced when dependencies are built.
