# Empty dependencies file for e1000e_test.
# This may be replaced when dependencies are built.
