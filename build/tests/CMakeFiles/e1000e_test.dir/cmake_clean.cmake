file(REMOVE_RECURSE
  "CMakeFiles/e1000e_test.dir/e1000e_test.cpp.o"
  "CMakeFiles/e1000e_test.dir/e1000e_test.cpp.o.d"
  "e1000e_test"
  "e1000e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1000e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
