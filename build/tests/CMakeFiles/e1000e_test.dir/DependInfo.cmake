
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/e1000e_test.cpp" "tests/CMakeFiles/e1000e_test.dir/e1000e_test.cpp.o" "gcc" "tests/CMakeFiles/e1000e_test.dir/e1000e_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/kop_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kir/CMakeFiles/kop_kir.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/kop_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/signing/CMakeFiles/kop_signing.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/kop_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/kop_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/kop_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/e1000e/CMakeFiles/kop_e1000e.dir/DependInfo.cmake"
  "/root/repo/build/src/hpet/CMakeFiles/kop_hpet.dir/DependInfo.cmake"
  "/root/repo/build/src/fptrap/CMakeFiles/kop_fptrap.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/kop_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kirmods/CMakeFiles/kop_kirmods.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
