file(REMOVE_RECURSE
  "CMakeFiles/kir_test.dir/kir_test.cpp.o"
  "CMakeFiles/kir_test.dir/kir_test.cpp.o.d"
  "kir_test"
  "kir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
