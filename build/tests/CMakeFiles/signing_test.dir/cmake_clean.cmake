file(REMOVE_RECURSE
  "CMakeFiles/signing_test.dir/signing_test.cpp.o"
  "CMakeFiles/signing_test.dir/signing_test.cpp.o.d"
  "signing_test"
  "signing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
