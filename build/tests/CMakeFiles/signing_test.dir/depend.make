# Empty dependencies file for signing_test.
# This may be replaced when dependencies are built.
