# Empty compiler generated dependencies file for policy_manager.
# This may be replaced when dependencies are built.
