# Empty dependencies file for packet_firewall.
# This may be replaced when dependencies are built.
