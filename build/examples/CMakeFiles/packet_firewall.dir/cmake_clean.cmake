file(REMOVE_RECURSE
  "CMakeFiles/packet_firewall.dir/packet_firewall.cpp.o"
  "CMakeFiles/packet_firewall.dir/packet_firewall.cpp.o.d"
  "packet_firewall"
  "packet_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
