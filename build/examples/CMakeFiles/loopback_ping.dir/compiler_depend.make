# Empty compiler generated dependencies file for loopback_ping.
# This may be replaced when dependencies are built.
