file(REMOVE_RECURSE
  "CMakeFiles/loopback_ping.dir/loopback_ping.cpp.o"
  "CMakeFiles/loopback_ping.dir/loopback_ping.cpp.o.d"
  "loopback_ping"
  "loopback_ping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loopback_ping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
