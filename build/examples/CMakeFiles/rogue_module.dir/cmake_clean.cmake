file(REMOVE_RECURSE
  "CMakeFiles/rogue_module.dir/rogue_module.cpp.o"
  "CMakeFiles/rogue_module.dir/rogue_module.cpp.o.d"
  "rogue_module"
  "rogue_module.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rogue_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
