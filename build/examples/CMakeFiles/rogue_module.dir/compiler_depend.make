# Empty compiler generated dependencies file for rogue_module.
# This may be replaced when dependencies are built.
