# Empty dependencies file for rogue_module.
# This may be replaced when dependencies are built.
