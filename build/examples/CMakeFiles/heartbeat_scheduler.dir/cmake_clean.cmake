file(REMOVE_RECURSE
  "CMakeFiles/heartbeat_scheduler.dir/heartbeat_scheduler.cpp.o"
  "CMakeFiles/heartbeat_scheduler.dir/heartbeat_scheduler.cpp.o.d"
  "heartbeat_scheduler"
  "heartbeat_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heartbeat_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
