# Empty compiler generated dependencies file for heartbeat_scheduler.
# This may be replaced when dependencies are built.
