// rogue_module: what CARAT KOP is for. Walks through the ways a hostile
// or buggy module tries to get at the core kernel, and how each is shut
// down:
//   1. inline assembly            -> refused by the compiler (no cert)
//   2. unsigned / tampered image  -> refused at insmod
//   3. guard stripped post-sign   -> refused at insmod (re-validation)
//   4. direct-map scribbling      -> guard violation -> kernel panic
//   5. privileged intrinsics      -> intrinsic guard -> kernel panic
#include <cstdio>
#include <fstream>

#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/kernel/procfs.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/policy/procfs.hpp"
#include "kop/signing/signer.hpp"
#include "kop/trace/exporters.hpp"
#include "kop/trace/trace.hpp"
#include "kop/transform/compiler.hpp"
#include "kop/transform/privileged.hpp"

namespace {

using namespace kop;

void Banner(int step, const char* title) {
  std::printf("\n[%d] %s\n", step, title);
}

}  // namespace

int main() {
  std::printf("rogue_module: attack surface walk-through\n");

  kernel::Kernel kernel;
  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultAllow);
  if (!policy.ok()) return 1;
  // Restrict the direct map (where core kernel data lives) to read-only
  // for modules — the paper's "restrict access to the heap" example.
  (void)(*policy)->engine().store().Add(
      policy::Region{kernel.direct_map_base(), kernel.direct_map_size(),
                     policy::kProtRead});

  signing::Keyring keyring;
  keyring.Trust(signing::SigningKey::DevelopmentKey());
  kernel::ModuleLoader loader(&kernel, keyring);

  Banner(1, "module with inline assembly");
  auto sneaky = transform::CompileModuleText(kirmods::InlineAsmSource());
  std::printf("    compile -> %s\n", sneaky.status().ToString().c_str());

  Banner(2, "module signed with an untrusted key");
  auto compiled = transform::CompileModuleText(kirmods::ScribblerSource());
  if (!compiled.ok()) return 1;
  {
    const auto rogue_image =
        signing::SignModule(compiled->text, compiled->attestation,
                            signing::SigningKey{"evil-vendor", "hunter2"});
    auto loaded = loader.Insmod(rogue_image);
    std::printf("    insmod -> %s\n", loaded.status().ToString().c_str());
  }

  Banner(3, "properly signed image with a guard stripped afterwards");
  {
    std::string stripped = compiled->text;
    const size_t pos = stripped.find("  call void @carat_guard");
    if (pos != std::string::npos) {
      stripped.erase(pos, stripped.find('\n', pos) - pos + 1);
    }
    const auto tampered =
        signing::SignModule(stripped, compiled->attestation,
                            signing::SigningKey::DevelopmentKey());
    auto loaded = loader.Insmod(tampered);
    std::printf("    insmod -> %s\n", loaded.status().ToString().c_str());
  }

  Banner(4, "legitimate-looking module scribbles over kernel data");
  {
    const auto image =
        signing::SignModule(compiled->text, compiled->attestation,
                            signing::SigningKey::DevelopmentKey());
    auto loaded = loader.Insmod(image);
    if (!loaded.ok()) return 1;
    auto core_data = kernel.heap().Kmalloc(4096);
    if (!core_data.ok()) return 1;
    std::printf("    module reads core data at 0x%llx: ",
                static_cast<unsigned long long>(*core_data));
    auto peek = (*loaded)->Call("peek", {*core_data});
    std::printf("%s\n", peek.ok() ? "allowed (read-only policy)" : "error");
    std::printf("    module writes the same address: ");
    try {
      (void)(*loaded)->Call("scribble_range", {*core_data, 512, 0x41414141});
      std::printf("!! not blocked\n");
    } catch (const kernel::KernelPanic& panic) {
      std::printf("%s\n", panic.what());
      kernel.ClearPanic();
    }
  }

  Banner(5, "module uses privileged intrinsics (cli)");
  {
    transform::CompileOptions options;
    options.wrap_privileged_intrinsics = true;
    auto priv = transform::CompileModuleText(kirmods::PrivuserSource(),
                                             options);
    if (!priv.ok()) return 1;
    auto loaded = loader.Insmod(
        signing::SignModule(priv->text, priv->attestation,
                            signing::SigningKey::DevelopmentKey()));
    if (!loaded.ok()) return 1;
    (*policy)->engine().SetIntrinsicDefaultAllow(false);
    std::printf("    disable_interrupts(): ");
    try {
      (void)(*loaded)->Call("disable_interrupts", {});
      std::printf("!! not blocked\n");
    } catch (const kernel::KernelPanic& panic) {
      std::printf("%s\n", panic.what());
      kernel.ClearPanic();
    }
  }

  std::printf("\nfinal dmesg (the operator's forensic trail):\n");
  for (const auto& record : kernel.log().Dmesg()) {
    std::printf("  %s\n", record.text.c_str());
  }
  std::printf("\nguard stats: %llu calls, %llu denied; %llu intrinsic "
              "checks, %llu denied\n",
              static_cast<unsigned long long>(
                  (*policy)->engine().stats().guard_calls),
              static_cast<unsigned long long>(
                  (*policy)->engine().stats().denied),
              static_cast<unsigned long long>(
                  (*policy)->engine().stats().intrinsic_calls),
              static_cast<unsigned long long>(
                  (*policy)->engine().stats().intrinsic_denied));

  // Observability: which guard site caught the scribble, and the trace
  // of the whole session — the forensic view beyond dmesg.
  std::printf("\nhot guard sites (perf-annotate view):\n%s",
              policy::ProcHotSites((*policy)->engine()).c_str());
  std::printf("\ntracepoints:\n%s", kernel::ProcTracepoints().c_str());
  const char* trace_path = "rogue_module.trace.json";
  if (std::ofstream out(trace_path); out) {
    out << trace::ExportChromeTrace(trace::GlobalTracer());
    std::printf("\nwrote %s (load in Perfetto / chrome://tracing)\n",
                trace_path);
  }
  return 0;
}
