// loopback_ping: exercise both halves of the protected driver. The NIC's
// transmit side is plugged into its own receive side (an external
// loopback dongle), and the CARAT-KOP-transformed driver pings itself:
// every sent frame must come back byte-identical through the RX ring,
// with both directions' driver accesses guarded.
#include <algorithm>
#include <cstdio>

#include "kop/e1000e/driver.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/net/frame.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/policy/policy_module.hpp"

int main() {
  using namespace kop;

  kernel::Kernel kernel;
  nic::LoopbackWire wire;
  nic::E1000Device device(&kernel.mem(), &wire);
  wire.AttachReceiver(&device);
  if (!device.MapAt(kernel::kVmallocBase).ok()) return 1;

  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultDeny);
  if (!policy.ok()) return 1;
  // The two-region rule again: kernel half yes, user half no.
  (void)(*policy)->engine().store().Add(
      policy::Region{kernel::kKernelHalfBase,
                     ~uint64_t{0} - kernel::kKernelHalfBase,
                     policy::kProtRW});
  (void)(*policy)->engine().store().Add(
      policy::Region{0, kernel::kUserSpaceEnd, policy::kProtNone});

  auto driver = e1000e::CaratDriver::Probe(
      e1000e::GuardedMemOps(&kernel, &(*policy)->engine()),
      kernel::kVmallocBase);
  if (!driver.ok()) {
    std::printf("probe failed: %s\n", driver.status().ToString().c_str());
    return 1;
  }
  uint8_t mac[6];
  device.ReceiveAddress(mac);
  std::printf("loopback_ping: driver up, MAC %02x:%02x:%02x:%02x:%02x:%02x "
              "(read from NVM via EERD)\n",
              mac[0], mac[1], mac[2], mac[3], mac[4], mac[5]);

  auto skb = kernel.heap().Kmalloc(2048, 64);
  if (!skb.ok()) return 1;

  const int kPings = 16;
  int echoed = 0;
  double rtt_sum = 0;
  for (int seq = 0; seq < kPings; ++seq) {
    net::EthernetFrame ping = net::MakeTestFrame(96, uint8_t(seq));
    const auto wire_bytes = ping.Serialize();
    if (!kernel.mem().Write(*skb, wire_bytes.data(), wire_bytes.size())
             .ok()) {
      return 1;
    }

    const double t0 = kernel.clock().NowCycles();
    if (!driver->XmitFrame(*skb, uint32_t(wire_bytes.size())).ok()) {
      std::printf("seq=%d: xmit failed\n", seq);
      continue;
    }
    // TX -> wire -> RX happened synchronously; poll the RX ring.
    std::vector<uint8_t> echo;
    auto got = driver->ReceiveFrame(&echo);
    const double rtt = kernel.clock().NowCycles() - t0;
    if (!got.ok() || !*got) {
      std::printf("seq=%d: no echo\n", seq);
      continue;
    }
    const bool match = echo == wire_bytes;
    if (match) {
      ++echoed;
      rtt_sum += rtt;
    }
    std::printf("seq=%d: %zu bytes echoed, rtt=%.0f cycles%s\n", seq,
                echo.size(), rtt, match ? "" : "  <-- PAYLOAD MISMATCH");
  }

  auto counters = driver->Counters();
  std::printf("\n%d/%d pings echoed; mean rtt %.0f cycles\n", echoed,
              kPings, echoed > 0 ? rtt_sum / echoed : 0.0);
  if (counters.ok()) {
    std::printf("driver counters: tx %llu rx %llu; wire forwarded %llu\n",
                static_cast<unsigned long long>(counters->tx_packets),
                static_cast<unsigned long long>(counters->rx_packets),
                static_cast<unsigned long long>(wire.forwarded()));
  }
  std::printf("guard calls across both directions: %llu (denied %llu)\n",
              static_cast<unsigned long long>(
                  (*policy)->engine().stats().guard_calls),
              static_cast<unsigned long long>(
                  (*policy)->engine().stats().denied));
  return echoed == kPings ? 0 : 1;
}
