// heartbeat_scheduler: the paper's own motivating module (§1 cites the
// authors' "fast timer delivery for heartbeat scheduling") running under
// CARAT KOP. A periodic HPET-class timer drives the module's ISR; the
// policy confines the module to its state page and the timer's MMIO
// window — and when the operator tightens the policy, the very first
// out-of-policy beat is stopped.
#include <cstdio>

#include "kop/hpet/heartbeat.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/policy/rules.hpp"

int main() {
  using namespace kop;

  kernel::Kernel kernel;
  hpet::TimerDevice timer;
  const uint64_t mmio = kernel::kVmallocBase + 0x100000;
  if (!timer.MapAt(&kernel.mem(), mmio).ok()) return 1;

  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultDeny);
  if (!policy.ok()) return 1;

  // The operator's firewall file for this module: its state lives in the
  // kernel heap (direct map), its device is the timer BAR — nothing else.
  const std::string rules =
      "mode deny\n"
      "allow direct-map rw      # module state page\n"
      "allow 0xffffc90000100000 +0x400 rw   # the HPET BAR\n";
  auto spec = policy::ParsePolicyRules(rules,
                                       policy::DefaultNamedRanges(kernel));
  if (!spec.ok()) return 1;
  if (!policy::ApplyPolicySpec(*spec, (*policy)->engine()).ok()) return 1;
  std::printf("policy loaded:\n%s\n",
              policy::RenderPolicyRules((*policy)->engine()).c_str());

  auto module = hpet::CaratHeartbeat::Probe(
      modrt::GuardedMemOps(&kernel, &(*policy)->engine()), mmio,
      /*period_ticks=*/1000);
  if (!module.ok()) {
    std::printf("probe failed: %s\n", module.status().ToString().c_str());
    return 1;
  }
  timer.SetIsr([&] { (void)module->Isr(); });

  // Run one simulated second at 10 MHz: 10,000 heartbeats.
  const double cycles_before = kernel.clock().NowCycles();
  timer.Tick(10'000'000);
  const double isr_cycles = kernel.clock().NowCycles() - cycles_before;

  auto counters = module->Counters();
  if (!counters.ok()) return 1;
  std::printf("one simulated second at 10 MHz, period 1000 ticks:\n");
  std::printf("  heartbeats delivered: %llu (overruns: %llu)\n",
              static_cast<unsigned long long>(counters->beats),
              static_cast<unsigned long long>(counters->overruns));
  std::printf("  ISR cost: %.1f cycles/beat under CARAT KOP "
              "(%llu guard checks, 0 denied)\n",
              isr_cycles / static_cast<double>(counters->beats),
              static_cast<unsigned long long>(
                  (*policy)->engine().stats().guard_calls));

  // Now the operator revokes the module's device access mid-flight.
  std::printf("\noperator revokes the HPET window (policy swap)...\n");
  (*policy)->engine().store().Clear();
  (void)(*policy)->engine().store().Add(
      policy::Region{kernel.direct_map_base(), kernel.direct_map_size(),
                     policy::kProtRW});
  try {
    timer.Tick(1000);  // next beat: ISR touches MMIO -> guard fires
    std::printf("!! beat went through\n");
  } catch (const kernel::KernelPanic& panic) {
    std::printf("next heartbeat: %s\n", panic.what());
    std::printf("dmesg: %s",
                kernel.log().Dmesg().empty()
                    ? "\n"
                    : (kernel.log().Dmesg().end() - 2)->text.c_str());
    std::printf("\n");
  }
  return 0;
}
