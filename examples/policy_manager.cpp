// policy-manager: the paper's userspace policy tool (Figure 1): "a root
// user can communicate with the policy module through an ioctl system
// call to add or remove regions from the table using a simple
// application, policy-manager."
//
// Usage (commands are applied in order against a fresh simulated kernel):
//   policy_manager add <base> <len> <r|w|rw|none>
//                  remove <base>
//                  clear
//                  mode <allow|deny>
//                  action <panic|quarantine|log>
//                  load <rules-file>           (the firewall-file format)
//                  dump                        (render policy as rules)
//                  list
//                  stats
//                  hotsites                    (per-guard-site hit table)
//                  trace                       (recent tracepoint records)
//                  trace-json <out.json>       (Chrome trace-event export)
//                  probe <addr> <size> <r|w>   (fire a guard check)
// With no arguments, runs a demonstration session.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "kop/kernel/kernel.hpp"
#include "kop/policy/ioctl_abi.hpp"
#include "kop/policy/rules.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/trace/exporters.hpp"
#include "kop/trace/trace.hpp"
#include "kop/util/carat_abi.hpp"

namespace {

using namespace kop;
using namespace kop::policy;

uint32_t ParseProt(const std::string& text) {
  if (text == "r") return kProtRead;
  if (text == "w") return kProtWrite;
  if (text == "rw") return kProtRW;
  if (text == "none") return kProtNone;
  std::fprintf(stderr, "bad prot '%s' (want r|w|rw|none)\n", text.c_str());
  std::exit(2);
}

uint64_t ParseU64(const std::string& text) {
  return std::strtoull(text.c_str(), nullptr, 0);
}

/// The "system call": what the real tool does through fd = open("/dev/carat").
Status CaratIoctl(kernel::Kernel& kernel, uint32_t cmd,
                  std::vector<uint8_t>& arg) {
  return kernel.devices().Ioctl(kCaratDevicePath, cmd, arg);
}

int RunCommands(kernel::Kernel& kernel, PolicyModule& policy,
                const std::vector<std::string>& args) {
  size_t i = 0;
  auto next = [&]() -> std::string {
    if (i >= args.size()) {
      std::fprintf(stderr, "missing argument\n");
      std::exit(2);
    }
    return args[i++];
  };

  while (i < args.size()) {
    const std::string command = next();
    if (command == "add") {
      const uint64_t base = ParseU64(next());
      const uint64_t len = ParseU64(next());
      const uint32_t prot = ParseProt(next());
      auto arg = PackArg(CaratRegionArg{base, len, prot, 0});
      const Status status = CaratIoctl(kernel, KOP_IOCTL_ADD_REGION, arg);
      std::printf("add [0x%llx,+0x%llx) -> %s\n",
                  static_cast<unsigned long long>(base),
                  static_cast<unsigned long long>(len),
                  status.ToString().c_str());
    } else if (command == "remove") {
      auto arg = PackArg(CaratRegionArg{ParseU64(next()), 0, 0, 0});
      const Status status =
          CaratIoctl(kernel, KOP_IOCTL_REMOVE_REGION, arg);
      std::printf("remove -> %s\n", status.ToString().c_str());
    } else if (command == "clear") {
      std::vector<uint8_t> empty;
      (void)CaratIoctl(kernel, KOP_IOCTL_CLEAR_REGIONS, empty);
      std::printf("clear -> ok\n");
    } else if (command == "mode") {
      const std::string mode = next();
      auto arg = PackArg(CaratModeArg{mode == "allow" ? 1u : 0u, 0});
      (void)CaratIoctl(kernel, KOP_IOCTL_SET_MODE, arg);
      std::printf("mode -> default-%s\n",
                  mode == "allow" ? "allow" : "deny");
    } else if (command == "list") {
      CaratListArg list;
      auto arg = PackArg(list);
      (void)CaratIoctl(kernel, KOP_IOCTL_LIST_REGIONS, arg);
      (void)UnpackArg(arg, &list);
      std::printf("policy table (%u region%s):\n", list.count,
                  list.count == 1 ? "" : "s");
      for (uint32_t r = 0; r < list.count; ++r) {
        const Region region{list.regions[r].base, list.regions[r].len,
                            list.regions[r].prot};
        std::printf("  %2u: %s\n", r, region.ToString().c_str());
      }
    } else if (command == "action") {
      const std::string action = next();
      policy.engine().SetViolationAction(
          action == "quarantine" ? ViolationAction::kQuarantine
          : action == "log"      ? ViolationAction::kLogOnly
                                 : ViolationAction::kPanic);
      std::printf("action -> %s\n", action.c_str());
    } else if (command == "load") {
      const std::string path = next();
      std::ifstream file(path);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
      }
      std::stringstream buffer;
      buffer << file.rdbuf();
      auto spec = ParsePolicyRules(buffer.str(),
                                   DefaultNamedRanges(kernel));
      if (!spec.ok()) {
        std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
        return 2;
      }
      const Status status = ApplyPolicySpec(*spec, policy.engine());
      std::printf("load %s -> %s (%zu regions)\n", path.c_str(),
                  status.ToString().c_str(), spec->regions.size());
    } else if (command == "dump") {
      std::printf("%s", RenderPolicyRules(policy.engine()).c_str());
    } else if (command == "stats") {
      CaratStatsArg stats;
      auto arg = PackArg(stats);
      (void)CaratIoctl(kernel, KOP_IOCTL_GET_STATS, arg);
      (void)UnpackArg(arg, &stats);
      std::printf("guard calls: %llu (allowed %llu, denied %llu); "
                  "intrinsics: %llu (%llu denied)\n",
                  static_cast<unsigned long long>(stats.guard_calls),
                  static_cast<unsigned long long>(stats.allowed),
                  static_cast<unsigned long long>(stats.denied),
                  static_cast<unsigned long long>(stats.intrinsic_calls),
                  static_cast<unsigned long long>(stats.intrinsic_denied));
    } else if (command == "violations") {
      CaratViolationsArg reply;
      auto arg = PackArg(reply);
      (void)CaratIoctl(kernel, KOP_IOCTL_GET_VIOLATIONS, arg);
      (void)UnpackArg(arg, &reply);
      std::printf("recent violations (%u):\n", reply.count);
      for (uint32_t v = 0; v < reply.count; ++v) {
        const auto& record = reply.records[v];
        if (record.intrinsic != 0) {
          std::printf("  #%llu intrinsic %llu denied\n",
                      static_cast<unsigned long long>(record.sequence),
                      static_cast<unsigned long long>(record.addr));
        } else {
          std::printf("  #%llu %s 0x%llx size %llu denied\n",
                      static_cast<unsigned long long>(record.sequence),
                      (record.access_flags & kGuardAccessWrite) ? "write"
                                                                : "read",
                      static_cast<unsigned long long>(record.addr),
                      static_cast<unsigned long long>(record.size));
        }
      }
    } else if (command == "hotsites") {
      CaratHotSitesArg reply;
      auto arg = PackArg(reply);
      (void)CaratIoctl(kernel, CARAT_IOC_GET_HOT_SITES, arg);
      (void)UnpackArg(arg, &reply);
      std::printf("hot guard sites (%u):\n", reply.count);
      std::printf("  site     hits     denied   location\n");
      for (uint32_t s = 0; s < reply.count; ++s) {
        const auto& row = reply.sites[s];
        std::printf("  %-8llu %-8llu %-8llu %s\n",
                    static_cast<unsigned long long>(row.site),
                    static_cast<unsigned long long>(row.hits),
                    static_cast<unsigned long long>(row.denied), row.label);
      }
    } else if (command == "trace") {
      CaratTraceArg reply;
      auto arg = PackArg(reply);
      (void)CaratIoctl(kernel, CARAT_IOC_READ_TRACE, arg);
      (void)UnpackArg(arg, &reply);
      std::printf("trace ring: %llu appended, %llu dropped; newest %u:\n",
                  static_cast<unsigned long long>(reply.total),
                  static_cast<unsigned long long>(reply.dropped),
                  reply.count);
      for (uint32_t r = 0; r < reply.count; ++r) {
        const auto& record = reply.records[r];
        const auto id = static_cast<trace::EventId>(record.event);
        std::printf("  #%-6llu tsc=%-10llu %-10s %-18s 0x%llx 0x%llx\n",
                    static_cast<unsigned long long>(record.seq),
                    static_cast<unsigned long long>(record.tsc),
                    std::string(trace::EventCategory(id)).c_str(),
                    std::string(trace::EventName(id)).c_str(),
                    static_cast<unsigned long long>(record.args[0]),
                    static_cast<unsigned long long>(record.args[1]));
      }
    } else if (command == "trace-json") {
      const std::string path = next();
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 2;
      }
      out << trace::ExportChromeTrace(trace::GlobalTracer());
      std::printf("trace-json -> %s (%llu records; load in Perfetto / "
                  "chrome://tracing)\n",
                  path.c_str(),
                  static_cast<unsigned long long>(
                      trace::GlobalTracer().ring().total_appended()));
    } else if (command == "probe") {
      const uint64_t addr = ParseU64(next());
      const uint64_t size = ParseU64(next());
      const std::string kind = next();
      const uint64_t flags =
          kind == "w" ? kGuardAccessWrite : kGuardAccessRead;
      // Log-only so a denied probe reports instead of panicking.
      policy.engine().SetViolationAction(ViolationAction::kLogOnly);
      const bool allowed = policy.engine().Guard(addr, size, flags);
      std::printf("probe %s 0x%llx size %llu -> %s\n", kind.c_str(),
                  static_cast<unsigned long long>(addr),
                  static_cast<unsigned long long>(size),
                  allowed ? "ALLOWED" : "DENIED");
    } else {
      std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  kernel::Kernel kernel;
  auto policy =
      PolicyModule::Insert(&kernel, nullptr, PolicyMode::kDefaultDeny);
  if (!policy.ok()) return 1;

  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    // Demonstration session: the paper's two-region rule plus probes.
    std::printf("(no arguments: running demo session; see --help in "
                "source header for the command set)\n\n");
    args = {"mode",  "deny",
            "add",   "0xffff800000000000", "0x7fffffffffff", "rw",
            "add",   "0x0",                "0x800000000000", "none",
            "list",
            "probe", "0xffff888000001000", "8", "w",
            "probe", "0x400000",           "8", "w",
            "violations",
            "stats",
            "hotsites",
            "trace"};
  }
  return RunCommands(kernel, **policy, args);
}
