// packet_firewall: the paper's headline scenario end to end. Brings up
// the simulated 82574L NIC with the CARAT-KOP-transformed e1000e driver
// under the two-region policy (kernel half allowed, user half denied),
// pushes traffic through the full sendmsg path, and reports throughput,
// latency and guard statistics next to an unprotected baseline run.
// Finally, tightens the policy to exclude the NIC's MMIO window and
// shows the protected driver being stopped cold.
#include <algorithm>
#include <cstdio>

#include "kop/e1000e/driver.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/net/packet_gun.hpp"
#include "kop/nic/e1000_device.hpp"
#include "kop/policy/policy_module.hpp"

namespace {

using namespace kop;

constexpr uint64_t kMmioBase = kernel::kVmallocBase;
constexpr uint64_t kPackets = 20000;
constexpr uint32_t kFrameBytes = 128;

struct RunReport {
  double pps = 0.0;
  double median_latency = 0.0;
  uint64_t guard_calls = 0;
  uint64_t frames_on_wire = 0;
};

template <typename DriverT, typename OpsT>
RunReport Run(OpsT ops, policy::PolicyModule* policy) {
  kernel::Kernel* kernel = ops.kernel();
  nic::CountingSink sink;
  nic::E1000Device device(&kernel->mem(), &sink);
  if (!device.MapAt(kMmioBase).ok()) std::abort();

  auto driver = DriverT::Probe(ops, kMmioBase);
  if (!driver.ok()) std::abort();
  net::DriverNetDevice<DriverT> netdev(&*driver);
  net::PacketSocket socket(kernel, &netdev, /*noise_seed=*/1);
  net::PacketGun gun(kernel, &socket);

  net::TrialConfig config;
  config.packets = kPackets;
  config.frame_bytes = kFrameBytes;
  config.collect_latencies = true;
  auto trial = gun.RunTrial(config);
  if (!trial.ok()) std::abort();

  RunReport report;
  report.pps = trial->packets_per_second;
  std::vector<double> latencies = std::move(trial->latencies_cycles);
  std::sort(latencies.begin(), latencies.end());
  report.median_latency = latencies[latencies.size() / 2];
  report.guard_calls =
      policy != nullptr ? policy->engine().stats().guard_calls : 0;
  report.frames_on_wire = sink.packets();
  return report;
}

}  // namespace

int main() {
  std::printf("packet_firewall: e1000e + CARAT KOP on the %s model\n\n",
              sim::MachineModel::R350().name.c_str());

  // ---- baseline (unprotected) run ----
  kernel::Kernel base_kernel;
  const RunReport baseline =
      Run<e1000e::BaselineDriver>(e1000e::RawMemOps(&base_kernel), nullptr);

  // ---- protected run under the two-region policy ----
  kernel::Kernel kernel;
  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultDeny);
  if (!policy.ok()) return 1;
  (void)(*policy)->engine().store().Add(
      policy::Region{kernel::kKernelHalfBase,
                     ~uint64_t{0} - kernel::kKernelHalfBase,
                     policy::kProtRW});
  (void)(*policy)->engine().store().Add(
      policy::Region{0, kernel::kUserSpaceEnd, policy::kProtNone});
  const RunReport carat = Run<e1000e::CaratDriver>(
      e1000e::GuardedMemOps(&kernel, &(*policy)->engine()), policy->get());

  std::printf("%-22s %12s %12s\n", "", "baseline", "carat");
  std::printf("%-22s %12.0f %12.0f\n", "throughput (pps)", baseline.pps,
              carat.pps);
  std::printf("%-22s %12.0f %12.0f\n", "median sendmsg (cyc)",
              baseline.median_latency, carat.median_latency);
  std::printf("%-22s %12llu %12llu\n", "frames on the wire",
              static_cast<unsigned long long>(baseline.frames_on_wire),
              static_cast<unsigned long long>(carat.frames_on_wire));
  std::printf("%-22s %12llu %12llu\n", "guard calls",
              static_cast<unsigned long long>(baseline.guard_calls),
              static_cast<unsigned long long>(carat.guard_calls));
  std::printf("%-22s %12s %11.3f%%\n", "overhead", "-",
              (baseline.pps - carat.pps) / baseline.pps * 100.0);

  // ---- now firewall the device itself ----
  std::printf("\ntightening policy: carve the NIC MMIO window out of the "
              "allowed set...\n");
  (*policy)->engine().store().Clear();
  (void)(*policy)->engine().store().Add(
      policy::Region{kMmioBase, nic::kMmioBarSize, policy::kProtNone});
  (void)(*policy)->engine().store().Add(
      policy::Region{kernel::kKernelHalfBase,
                     ~uint64_t{0} - kernel::kKernelHalfBase,
                     policy::kProtRW});
  nic::CountingSink sink;
  nic::E1000Device device(&kernel.mem(), &sink);
  // A second NIC instance cannot map over the first; reuse the address
  // space mapping by probing a fresh driver against the same window.
  try {
    auto driver = e1000e::CaratDriver::Probe(
        e1000e::GuardedMemOps(&kernel, &(*policy)->engine()), kMmioBase);
    (void)driver;
    std::printf("!! probe unexpectedly succeeded\n");
  } catch (const kernel::KernelPanic& panic) {
    std::printf("protected driver probe: %s\n", panic.what());
    std::printf("(the unprotected baseline driver would have reached the "
                "device unimpeded — that is the point)\n");
  }
  return 0;
}
