// Quickstart: the whole CARAT KOP pipeline in one file.
//
//   1. Boot a simulated kernel and insert the policy module.
//   2. Compile a kernel module with the CARAT KOP compiler (guards
//      injected before every load/store, attested, signed).
//   3. insmod it: signature + attestation validated, symbols linked.
//   4. Run it under a policy; watch an out-of-policy access get blocked.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/signing/signer.hpp"
#include "kop/transform/compiler.hpp"

int main() {
  using namespace kop;

  // 1. Boot the kernel and insert the CARAT KOP policy module, which
  //    exports the single guard symbol and registers /dev/carat.
  kernel::Kernel kernel;
  auto policy = policy::PolicyModule::Insert(
      &kernel, nullptr, policy::PolicyMode::kDefaultDeny);
  if (!policy.ok()) return 1;
  std::printf("[1] policy module inserted (%s)\n",
              std::string((*policy)->engine().store().name()).c_str());

  // 2. Compile the ring-buffer module. The compiler inserts a
  //    carat_guard call before every load and store, certifies the
  //    absence of inline assembly, and signs the image.
  auto compiled = transform::CompileModuleText(kirmods::RingbufSource());
  if (!compiled.ok()) return 1;
  const auto image =
      signing::SignModule(compiled->text, compiled->attestation,
                          signing::SigningKey::DevelopmentKey());
  std::printf("[2] compiled kop_ringbuf: %llu guards injected, signed by %s\n",
              static_cast<unsigned long long>(
                  compiled->attestation.guard_count),
              image.key_id.c_str());

  // 3. insmod: the kernel verifies the signature, re-checks that every
  //    access is guarded, and links carat_guard to the policy module.
  signing::Keyring keyring;
  keyring.Trust(signing::SigningKey::DevelopmentKey());
  kernel::ModuleLoader loader(&kernel, keyring);
  auto loaded = loader.Insmod(image);
  if (!loaded.ok()) {
    std::printf("insmod failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("[3] insmod kop_ringbuf: ok\n");

  // 4. Policy: allow the module area (where the module's own globals
  //    live) and nothing else — the operator's firewall rule.
  (void)(*policy)->engine().store().Add(policy::Region{
      kernel.module_area_base(), kernel.module_area_size(),
      policy::kProtRW});
  std::printf("[4] policy: allow module area only (default deny)\n\n");

  // The module works normally within its allowed region...
  (void)(*loaded)->Call("rb_init", {});
  for (uint64_t i = 1; i <= 5; ++i) (void)(*loaded)->Call("rb_push", {i * i});
  auto size = (*loaded)->Call("rb_size", {});
  auto front = (*loaded)->Call("rb_pop", {});
  std::printf("    rb_size() = %llu, rb_pop() = %llu  (guards: %llu calls, "
              "0 denied)\n",
              static_cast<unsigned long long>(size.value_or(0)),
              static_cast<unsigned long long>(front.value_or(0)),
              static_cast<unsigned long long>(
                  (*policy)->engine().stats().guard_calls));

  // ...but the same module image cannot touch anything outside the
  // policy. Load the scribbler and aim it at the kernel heap:
  auto rogue_compiled =
      transform::CompileModuleText(kirmods::ScribblerSource());
  if (!rogue_compiled.ok()) return 1;
  auto rogue = loader.Insmod(
      signing::SignModule(rogue_compiled->text, rogue_compiled->attestation,
                          signing::SigningKey::DevelopmentKey()));
  if (!rogue.ok()) return 1;
  auto victim = kernel.heap().Kmalloc(64);
  std::printf("\n    rogue module writes kernel heap 0x%llx ...\n",
              static_cast<unsigned long long>(victim.value_or(0)));
  try {
    (void)(*rogue)->Call("scribble", {*victim, 0xdeadbeef});
    std::printf("    !! write went through (policy misconfigured?)\n");
  } catch (const kernel::KernelPanic& panic) {
    std::printf("    -> %s\n", panic.what());
  }

  std::printf("\ndmesg:\n");
  for (const auto& record : kernel.log().Dmesg()) {
    std::printf("  %s\n", record.text.c_str());
  }
  return 0;
}
