// kopcc: the CARAT KOP compiler driver as a command-line tool — the
// stand-in for the paper's "script that wraps the underlying clang
// compiler" (§3.3). Compiles textual KIR modules into signed .kko
// containers, and inspects/validates existing containers.
//
//   kopcc compile <in.kir> -o <out.kko> [--no-guards] [--simplify]
//         [--wrap-priv] [--coalesce] [--dominate] [--elide|--no-elide]
//         [--key-id <id> --key-secret <secret>]
//   kopcc inspect <in.kko>          # header, attestation, disassembly
//         [--sites]                 # guard-site table, annotated with
//                                   # each cover's elision proof
//         [--bytecode]              # register-VM bytecode listing plus
//                                   # the elision provenance table and
//                                   # the attested CFI target-set table
//   kopcc verify <in.kko>           # run the insmod-time validator
//   kopcc check <in.kir|in.kko> [--json] [--as-shipped] [compile options]
//                                   # --as-shipped analyzes .kir source
//                                   # exactly as written (no guard/CFI
//                                   # injection) — for adversarial
//                                   # inputs the compiler would repair
//                                   # run the static analyses (guard
//                                   # coverage, provenance, privileged
//                                   # lint, cfi); .kir inputs are
//                                   # compiled first, .kko inputs
//                                   # analyzed as shipped; exit 1 on any
//                                   # error. --json adds the per-icall
//                                   # CFI annotation block (set id,
//                                   # target count, gate vs intra)
//   kopcc check --corpus [--json]   # self-check: every good corpus
//                                   # module must prove clean, every
//                                   # adversarial module must be rejected
//   kopcc run <in.kko> [--engine=interp|bytecode] [--entry=fn]
//         [--cpus=N] [args...]
//                                   # insmod into a simulated kernel
//                                   # (default-allow policy) and call an
//                                   # entry point; --cpus=N calls it
//                                   # concurrently from N simulated CPUs
//                                   # on per-CPU execution contexts
//   kopcc faultcamp [--seed N] [--trials N] [--json]
//         [--engine=interp|bytecode] [--recovery=quarantine|restart]
//                                   # deterministic fault-injection
//                                   # campaign against the resilience
//                                   # layer; exit 1 on any kernel
//                                   # invariant violation
//   kopcc forge [--seed N] [--trials N] [--jobs N] [--json]
//         [--policy=hardened|weak] [--no-minimize]
//         [--engine=interp|bytecode] [--recovery=quarantine|restart]
//         [--replay <token>]
//                                   # coverage-guided adversarial
//                                   # campaign: analysis-directed
//                                   # fuzzing of the forge target across
//                                   # N worker CPUs, crash minimization,
//                                   # and verified policy suggestions;
//                                   # report is byte-identical for any
//                                   # --jobs; exit 1 on any invariant
//                                   # violation. --replay re-executes a
//                                   # minimized repro token
//   kopcc postmortem [--json] [--check-schema] [--seed N]
//         [--engine=interp|bytecode] [--recovery=quarantine|restart]
//                                   # force one guard violation to
//                                   # containment and print the flight-
//                                   # recorder postmortem bundle;
//                                   # --check-schema exits 1 unless the
//                                   # JSON carries every documented key
//   kopcc stats [--watch] [--prom]  # run a canned guarded workload and
//                                   # print the metrics registry + span
//                                   # latency table; --prom renders the
//                                   # Prometheus text exposition;
//                                   # --watch redraws every second
//
// Exit code 0 on success; 1 on failure (diagnostics on stderr).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "kop/analysis/cfi.hpp"
#include "kop/analysis/static_verifier.hpp"
#include "kop/fault/campaign.hpp"
#include "kop/fault/forge.hpp"
#include "kop/flight/postmortem.hpp"
#include "kop/kernel/kernel.hpp"
#include "kop/kernel/module_loader.hpp"
#include "kop/kir/verifier.hpp"
#include "kop/kirmods/corpus.hpp"
#include "kop/kir/bytecode.hpp"
#include "kop/kir/parser.hpp"
#include "kop/kir/printer.hpp"
#include "kop/policy/policy_module.hpp"
#include "kop/signing/signer.hpp"
#include "kop/signing/validator.hpp"
#include "kop/smp/cpu.hpp"
#include "kop/smp/executor.hpp"
#include "kop/trace/metrics.hpp"
#include "kop/trace/span.hpp"
#include "kop/trace/trace.hpp"
#include "kop/transform/compiler.hpp"
#include "kop/transform/guard_sites.hpp"

namespace {

using namespace kop;

int Fail(const std::string& message) {
  std::fprintf(stderr, "kopcc: %s\n", message.c_str());
  return 1;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Internal("cannot write " + path);
  file << content;
  return OkStatus();
}

/// How a guard site executes at runtime: "inline" (fast-path range check
/// in the engine), "cover" (a widened/hoisted carat_guard_range), or
/// "intrinsic" (privileged-intrinsic gate).
const char* SiteKindName(const transform::GuardSite& site) {
  if (site.is_intrinsic) return "intrinsic";
  if (site.is_range) return "cover";
  return "inline";
}

const transform::ElisionRecord* FindElision(
    const std::vector<transform::ElisionRecord>& elisions, uint32_t site_id) {
  for (const transform::ElisionRecord& rec : elisions) {
    if (rec.site_id == site_id) return &rec;
  }
  return nullptr;
}

/// One human-readable proof line for a cover site, e.g.
///   "widen span=16 flags=1 elided=1: [+0 8B f1] [+8 8B f1]".
std::string RenderElisionProof(const transform::ElisionRecord& rec) {
  std::string out = rec.kind + " span=" + std::to_string(rec.span) +
                    " flags=" + std::to_string(rec.flags) +
                    " elided=" + std::to_string(rec.members.size() - 1) + ":";
  for (const transform::ElisionMember& m : rec.members) {
    out += " [+" + std::to_string(m.offset) + " " + std::to_string(m.size) +
           "B f" + std::to_string(m.flags) + "]";
  }
  return out;
}

std::string RenderElisionJson(const transform::ElisionRecord& rec) {
  std::string out = "{\"kind\":\"" + analysis::JsonEscape(rec.kind) +
                    "\",\"span\":" + std::to_string(rec.span) +
                    ",\"flags\":" + std::to_string(rec.flags) +
                    ",\"members\":[";
  bool first = true;
  for (const transform::ElisionMember& m : rec.members) {
    if (!first) out += ",";
    first = false;
    out += "{\"offset\":" + std::to_string(m.offset) +
           ",\"size\":" + std::to_string(m.size) +
           ",\"flags\":" + std::to_string(m.flags) + "}";
  }
  out += "]}";
  return out;
}

/// The annotated guard-site table for check --json: every site with its
/// runtime kind, and for covers the elision proof the validator re-proved.
std::string RenderSitesJson(
    const std::vector<transform::GuardSite>& sites,
    const std::vector<transform::ElisionRecord>& elisions) {
  std::string out = "[";
  bool first = true;
  for (const transform::GuardSite& site : sites) {
    if (!first) out += ",";
    first = false;
    out += "{\"site\":" + std::to_string(site.site_id) +
           ",\"function\":\"" + analysis::JsonEscape(site.function) +
           "\",\"inst\":" + std::to_string(site.inst_index) +
           ",\"kind\":\"" + SiteKindName(site) +
           "\",\"size\":" + std::to_string(site.access_size) +
           ",\"flags\":" + std::to_string(site.access_flags) +
           ",\"elided\":" + std::to_string(site.elided);
    if (const transform::ElisionRecord* rec =
            FindElision(elisions, site.site_id)) {
      out += ",\"proof\":" + RenderElisionJson(*rec);
    }
    out += "}";
  }
  out += "]";
  return out;
}

/// "gate" when the legal-target set names an external symbol (the
/// indirect module->kernel call gate), "intra" for module-local sets.
const char* CfiSiteKind(const analysis::CfiSite& site) {
  return site.gate ? "gate" : "intra";
}

/// The per-indirect-call CFI annotation block for check --json: the
/// deduped legal-target sets plus one entry per icall with its set id,
/// target count, gate/intra classification, and check adjacency.
std::string RenderCfiJson(const analysis::CfiSummary& cfi) {
  std::string out = "{\"sets\":[";
  for (size_t i = 0; i < cfi.sets.size(); ++i) {
    if (i != 0) out += ",";
    out += "{\"id\":" + std::to_string(i) + ",\"members\":[";
    for (size_t m = 0; m < cfi.sets[i].members.size(); ++m) {
      if (m != 0) out += ",";
      out += "\"" + analysis::JsonEscape(cfi.sets[i].members[m]) + "\"";
    }
    out += "]}";
  }
  out += "],\"sites\":[";
  bool first = true;
  for (const analysis::CfiSite& site : cfi.sites) {
    if (!first) out += ",";
    first = false;
    out += "{\"function\":\"" + analysis::JsonEscape(site.function) +
           "\",\"inst\":" + std::to_string(site.inst_index) +
           ",\"call\":" + std::to_string(site.call_ordinal) +
           ",\"set\":" + std::to_string(site.set_id) +
           ",\"targets\":" +
           std::to_string(cfi.sets[site.set_id].members.size()) +
           ",\"kind\":\"" + CfiSiteKind(site) + "\",\"top\":" +
           (site.derived_top ? "true" : "false") + ",\"checked\":" +
           (site.has_check && site.check_covers_target &&
                    site.check_set_id ==
                        static_cast<int64_t>(site.set_id)
                ? "true"
                : "false") +
           "}";
  }
  out += "]}";
  return out;
}

int Compile(const std::vector<std::string>& args) {
  std::string input;
  std::string output;
  transform::CompileOptions options;
  signing::SigningKey key = signing::SigningKey::DevelopmentKey();

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "-o" && i + 1 < args.size()) {
      output = args[++i];
    } else if (arg == "--no-guards") {
      options.inject_guards = false;
    } else if (arg == "--simplify") {
      options.simplify = true;
    } else if (arg == "--wrap-priv") {
      options.wrap_privileged_intrinsics = true;
    } else if (arg == "--coalesce") {
      options.coalesce_guards = true;
    } else if (arg == "--dominate") {
      options.dominate_guards = true;
    } else if (arg == "--elide") {
      options.elide_guards = true;
    } else if (arg == "--no-elide") {
      options.elide_guards = false;
    } else if (arg == "--key-id" && i + 1 < args.size()) {
      key.key_id = args[++i];
    } else if (arg == "--key-secret" && i + 1 < args.size()) {
      key.secret = args[++i];
    } else if (arg[0] == '-') {
      return Fail("unknown option '" + arg + "'");
    } else if (input.empty()) {
      input = arg;
    } else {
      return Fail("multiple inputs");
    }
  }
  if (input.empty()) return Fail("no input file");
  if (output.empty()) {
    output = input;
    const size_t dot = output.rfind('.');
    if (dot != std::string::npos) output.resize(dot);
    output += ".kko";
  }

  auto source = ReadFile(input);
  if (!source.ok()) return Fail(source.status().ToString());
  auto compiled = transform::CompileModuleText(*source, options);
  if (!compiled.ok()) return Fail(compiled.status().ToString());
  const auto image =
      signing::SignModule(compiled->text, compiled->attestation, key);
  if (Status status = WriteFile(output, image.Serialize()); !status.ok()) {
    return Fail(status.ToString());
  }
  std::string elide_note;
  if (compiled->elide_stats.covers_emitted != 0) {
    elide_note = ", " + std::to_string(compiled->elide_stats.clusters_widened) +
                 " widened + " +
                 std::to_string(compiled->elide_stats.guards_hoisted) +
                 " hoisted -> " +
                 std::to_string(compiled->elide_stats.covers_emitted) +
                 " covers";
  }
  std::printf("kopcc: %s -> %s (%llu guards%s%s, key %s)\n", input.c_str(),
              output.c_str(),
              static_cast<unsigned long long>(
                  compiled->attestation.guard_count),
              compiled->attestation.guards_optimized ? ", optimized" : "",
              elide_note.c_str(), key.key_id.c_str());
  return 0;
}

int Inspect(const std::vector<std::string>& args) {
  bool sites_only = false;
  bool bytecode_only = false;
  std::string path;
  for (const std::string& arg : args) {
    if (arg == "--sites") {
      sites_only = true;
    } else if (arg == "--bytecode") {
      bytecode_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Fail("unknown inspect option '" + arg + "'");
    } else if (path.empty()) {
      path = arg;
    } else {
      return Fail("inspect takes one container");
    }
  }
  if (path.empty()) return Fail("inspect takes one container");
  auto container = ReadFile(path);
  if (!container.ok()) return Fail(container.status().ToString());
  auto image = signing::SignedModule::Deserialize(*container);
  if (!image.ok()) return Fail(image.status().ToString());
  if (bytecode_only) {
    auto module = kir::ParseModule(image->module_text);
    if (!module.ok()) return Fail(module.status().ToString());
    auto bytecode = kir::CompileToBytecode(**module);
    if (!bytecode.ok()) return Fail(bytecode.status().ToString());
    std::fputs(kir::DisassembleBytecode(*bytecode).c_str(), stdout);
    // guard.range ops in the listing carry a proof obligation; print the
    // attested provenance so the listing is auditable on its own.
    auto attestation =
        transform::AttestationRecord::Deserialize(image->attestation_text);
    if (attestation.ok() && !attestation->elisions.empty()) {
      std::printf("--- elision provenance (%zu covers) ---\n",
                  attestation->elisions.size());
      for (const transform::ElisionRecord& rec : attestation->elisions) {
        std::printf("site %u @%s inst %u: %s\n", rec.site_id,
                    rec.function.c_str(), rec.inst_index,
                    RenderElisionProof(rec).c_str());
      }
    }
    // Same auditability for cfi.check ops: the attested legal-target
    // sets each set id in the listing resolves against.
    if (attestation.ok() && attestation->cfi_gated) {
      std::printf("--- cfi target sets (%zu sets, %zu gated icalls) ---\n",
                  attestation->cfi_sets.size(),
                  attestation->cfi_sites.size());
      for (const transform::CfiAttestedSet& set : attestation->cfi_sets) {
        std::printf("set %u (%zu targets):", set.set_id, set.members.size());
        for (const std::string& member : set.members) {
          std::printf(" @%s", member.c_str());
        }
        std::printf("\n");
      }
      for (const transform::CfiAttestedSite& site : attestation->cfi_sites) {
        std::printf("icall @%s inst %u: set %u (check call #%lld, "
                    "icall call #%llu)\n",
                    site.function.c_str(), site.inst_index, site.set_id,
                    static_cast<long long>(site.check_ordinal),
                    static_cast<unsigned long long>(site.icall_ordinal));
      }
    }
    return 0;
  }
  if (sites_only) {
    auto attestation =
        transform::AttestationRecord::Deserialize(image->attestation_text);
    if (!attestation.ok()) return Fail(attestation.status().ToString());
    std::vector<transform::GuardSite> sites = attestation->sites;
    if (sites.empty()) {
      // Pre-site-table container: derive the table from the shipped IR.
      auto module = kir::ParseModule(image->module_text);
      if (!module.ok()) return Fail(module.status().ToString());
      sites = transform::EnumerateGuardSites(**module);
    }
    std::printf("%zu guard sites in '%s':\n", sites.size(),
                attestation->module_name.c_str());
    std::printf("site  call  inst  kind       size  flags  elided  function\n");
    for (const transform::GuardSite& site : sites) {
      std::printf("%-5u %-5llu %-5u %-10s %-5u %-6u %-7u @%s\n", site.site_id,
                  static_cast<unsigned long long>(site.call_ordinal),
                  site.inst_index, SiteKindName(site), site.access_size,
                  site.access_flags, site.elided, site.function.c_str());
      if (const transform::ElisionRecord* rec =
              FindElision(attestation->elisions, site.site_id)) {
        std::printf("      proof: %s\n", RenderElisionProof(*rec).c_str());
      }
    }
    return 0;
  }
  std::printf("container: %s\n", path.c_str());
  std::printf("key id:    %s\n", image->key_id.c_str());
  std::printf("signature: %s\n",
              signing::DigestHex(image->signature).c_str());
  std::printf("--- attestation ---\n%s", image->attestation_text.c_str());
  std::printf("--- module (%zu bytes) ---\n%s", image->module_text.size(),
              image->module_text.c_str());
  return 0;
}

int Verify(const std::vector<std::string>& args) {
  if (args.empty()) return Fail("verify takes a container");
  auto container = ReadFile(args[0]);
  if (!container.ok()) return Fail(container.status().ToString());
  auto image = signing::SignedModule::Deserialize(*container);
  if (!image.ok()) return Fail(image.status().ToString());
  signing::Keyring keyring;
  keyring.Trust(signing::SigningKey::DevelopmentKey());
  // Additional trusted keys: --trust <id> <secret> pairs.
  for (size_t i = 1; i + 2 < args.size() + 1; ++i) {
    if (args[i] == "--trust" && i + 2 < args.size() + 1 &&
        i + 2 <= args.size()) {
      keyring.Trust(signing::SigningKey{args[i + 1], args[i + 2]});
      i += 2;
    }
  }
  auto validated = signing::ValidateSignedModule(*image, keyring);
  if (!validated.ok()) {
    std::printf("REJECTED: %s\n", validated.status().ToString().c_str());
    return 1;
  }
  std::printf("OK: module '%s', %llu guards, %zu instructions, signed by "
              "%s\n",
              validated->module->name().c_str(),
              static_cast<unsigned long long>(
                  validated->attestation.guard_count),
              validated->module->InstructionCount(),
              image->key_id.c_str());
  return 0;
}

struct CheckResult {
  analysis::AnalysisReport report;
  std::vector<transform::GuardSite> sites;
  std::vector<transform::ElisionRecord> elisions;
  analysis::CfiSummary cfi;
};

/// Analyze module source: a .kko container is analyzed exactly as
/// shipped; anything else is treated as KIR source and compiled first.
/// The guard-site table and elision provenance travel along so check
/// output can annotate each site with its runtime kind and cover proof.
Result<CheckResult> CheckOne(const std::string& content,
                             const transform::CompileOptions& options,
                             bool as_shipped) {
  CheckResult out;
  std::string module_text;
  if (auto image = signing::SignedModule::Deserialize(content); image.ok()) {
    module_text = image->module_text;
    if (auto attestation = transform::AttestationRecord::Deserialize(
            image->attestation_text);
        attestation.ok()) {
      out.elisions = attestation->elisions;
    }
  } else if (as_shipped) {
    // Analyze the KIR exactly as written: no guard/CFI injection. The
    // mode for adversarial inputs whose guards are already placed —
    // wrongly — the way a malicious toolchain would place them; the
    // compiler would silently repair them.
    module_text = content;
  } else {
    auto compiled = transform::CompileModuleText(content, options);
    if (!compiled.ok()) return compiled.status();
    module_text = compiled->text;
    out.elisions = compiled->attestation.elisions;
  }
  auto module = kir::ParseModule(module_text);
  if (!module.ok()) return module.status();
  KOP_RETURN_IF_ERROR(kir::VerifyModule(**module));
  out.sites = transform::EnumerateGuardSites(**module);
  out.report = analysis::AnalyzeModule(**module);
  out.cfi = analysis::DeriveCfi(**module);
  return out;
}

int Check(const std::vector<std::string>& args) {
  bool json = false;
  bool corpus = false;
  bool as_shipped = false;
  std::string input;
  transform::CompileOptions options;
  for (const std::string& arg : args) {
    if (arg == "--json") {
      json = true;
    } else if (arg == "--corpus") {
      corpus = true;
    } else if (arg == "--as-shipped") {
      as_shipped = true;
    } else if (arg == "--no-guards") {
      options.inject_guards = false;
    } else if (arg == "--simplify") {
      options.simplify = true;
    } else if (arg == "--wrap-priv") {
      options.wrap_privileged_intrinsics = true;
    } else if (arg == "--coalesce") {
      options.coalesce_guards = true;
    } else if (arg == "--dominate") {
      options.dominate_guards = true;
    } else if (arg == "--elide") {
      options.elide_guards = true;
    } else if (arg == "--no-elide") {
      options.elide_guards = false;
    } else if (!arg.empty() && arg[0] == '-') {
      return Fail("unknown check option '" + arg + "'");
    } else if (input.empty()) {
      input = arg;
    } else {
      return Fail("check takes one input");
    }
  }

  if (corpus) {
    if (!input.empty()) return Fail("--corpus takes no input file");
    bool all_as_expected = true;
    std::string json_out = "[";
    bool first = true;
    const auto record = [&](const std::string& name, bool expect_clean,
                            const analysis::AnalysisReport& report) {
      const bool as_expected = expect_clean == report.ok();
      all_as_expected = all_as_expected && as_expected;
      if (json) {
        if (!first) json_out += ",";
        first = false;
        json_out += "{\"module\":\"" + analysis::JsonEscape(name) +
                    "\",\"expect_clean\":" +
                    (expect_clean ? "true" : "false") +
                    ",\"as_expected\":" + (as_expected ? "true" : "false") +
                    ",\"report\":" + analysis::RenderJson(report) + "}";
      } else {
        std::fputs(analysis::RenderText(report).c_str(), stdout);
        std::printf("%s: expected %s, %s\n\n", name.c_str(),
                    expect_clean ? "clean" : "rejection",
                    as_expected ? "as expected" : "NOT AS EXPECTED");
      }
    };
    for (const kirmods::CorpusEntry& entry : kirmods::AllCorpusModules()) {
      auto checked = CheckOne(entry.source, options, /*as_shipped=*/false);
      if (!checked.ok()) return Fail(entry.name + ": " +
                                     checked.status().ToString());
      record(entry.name, /*expect_clean=*/true, checked->report);
    }
    // Adversarial modules ship pre-placed (wrong) guards: analyze the
    // source as-is, no compile step — the compiler would fix them.
    for (const kirmods::CorpusEntry& entry :
         kirmods::AdversarialCorpusModules()) {
      auto module = kir::ParseModule(entry.source);
      if (!module.ok()) return Fail(entry.name + ": " +
                                    module.status().ToString());
      if (Status status = kir::VerifyModule(**module); !status.ok()) {
        return Fail(entry.name + ": " + status.ToString());
      }
      record(entry.name, /*expect_clean=*/false,
             analysis::AnalyzeModule(**module));
    }
    if (json) std::printf("%s]\n", json_out.c_str());
    return all_as_expected ? 0 : 1;
  }

  if (input.empty()) return Fail("check takes an input file or --corpus");
  auto content = ReadFile(input);
  if (!content.ok()) return Fail(content.status().ToString());
  auto checked = CheckOne(*content, options, as_shipped);
  if (!checked.ok()) return Fail(checked.status().ToString());
  if (json) {
    std::printf("{\"report\":%s,\"guard_sites\":%s,\"cfi\":%s}\n",
                analysis::RenderJson(checked->report).c_str(),
                RenderSitesJson(checked->sites, checked->elisions).c_str(),
                RenderCfiJson(checked->cfi).c_str());
  } else {
    std::fputs(analysis::RenderText(checked->report).c_str(), stdout);
    if (!checked->elisions.empty()) {
      std::printf("elision provenance (%zu covers):\n",
                  checked->elisions.size());
      for (const transform::ElisionRecord& rec : checked->elisions) {
        std::printf("  site %u @%s inst %u: %s\n", rec.site_id,
                    rec.function.c_str(), rec.inst_index,
                    RenderElisionProof(rec).c_str());
      }
    }
    if (!checked->cfi.sites.empty()) {
      std::printf("cfi sites (%zu, %zu target set(s)):\n",
                  checked->cfi.sites.size(), checked->cfi.sets.size());
      for (const analysis::CfiSite& site : checked->cfi.sites) {
        std::printf("  @%s inst %u: set %u (%zu targets, %s%s)\n",
                    site.function.c_str(), site.inst_index, site.set_id,
                    checked->cfi.sets[site.set_id].members.size(),
                    CfiSiteKind(site),
                    site.has_check ? ", checked" : ", unchecked");
      }
    }
  }
  return checked->report.ok() ? 0 : 1;
}

int Run(const std::vector<std::string>& args) {
  std::string path;
  std::string entry = "init";
  kernel::ExecEngine engine = kernel::DefaultExecEngine();
  uint32_t cpus = 1;
  std::vector<uint64_t> call_args;
  for (const std::string& arg : args) {
    if (arg.rfind("--engine=", 0) == 0) {
      const std::string name = arg.substr(9);
      if (name == "interp") {
        engine = kernel::ExecEngine::kInterp;
      } else if (name == "bytecode") {
        engine = kernel::ExecEngine::kBytecode;
      } else {
        return Fail("unknown engine '" + name + "'");
      }
    } else if (arg.rfind("--entry=", 0) == 0) {
      entry = arg.substr(8);
    } else if (arg.rfind("--cpus=", 0) == 0) {
      try {
        cpus = static_cast<uint32_t>(std::stoul(arg.substr(7), nullptr, 0));
      } catch (const std::exception&) {
        return Fail("bad --cpus value");
      }
      if (cpus == 0 || cpus > smp::kMaxCpus) {
        return Fail("--cpus must be 1.." + std::to_string(smp::kMaxCpus));
      }
    } else if (!arg.empty() && arg[0] == '-' &&
               !(arg.size() > 1 && (arg[1] >= '0' && arg[1] <= '9'))) {
      return Fail("unknown run option '" + arg + "'");
    } else if (path.empty()) {
      path = arg;
    } else {
      try {
        call_args.push_back(std::stoull(arg, nullptr, 0));
      } catch (const std::exception&) {
        return Fail("bad argument '" + arg + "' (expected an integer)");
      }
    }
  }
  if (path.empty()) return Fail("run takes a container");

  auto container = ReadFile(path);
  if (!container.ok()) return Fail(container.status().ToString());
  auto image = signing::SignedModule::Deserialize(*container);
  if (!image.ok()) return Fail(image.status().ToString());

  kernel::Kernel kernel;
  signing::Keyring keyring;
  keyring.Trust(signing::SigningKey::DevelopmentKey());
  kernel::ModuleLoader loader(&kernel, std::move(keyring));
  loader.set_engine(engine);
  auto policy = policy::PolicyModule::Insert(&kernel, nullptr,
                                             policy::PolicyMode::kDefaultAllow);
  if (!policy.ok()) return Fail(policy.status().ToString());

  auto loaded = loader.Insmod(*image);
  if (!loaded.ok()) return Fail(loaded.status().ToString());

  if (cpus > 1) {
    // SMP run: every simulated CPU calls the same entry concurrently on
    // its own per-CPU execution context (one trace-ring shard per CPU).
    if (Status prepared = loader.PrepareCpus(cpus); !prepared.ok()) {
      return Fail(prepared.ToString());
    }
    trace::GlobalTracer().ring().SetShards(cpus);
    std::vector<Result<uint64_t>> results(cpus, uint64_t{0});
    smp::RunOnCpus(cpus, [&](uint32_t cpu) {
      results[cpu] = (*loaded)->Call(entry, call_args);
    });
    for (uint32_t cpu = 0; cpu < cpus; ++cpu) {
      if (results[cpu].ok()) {
        std::printf("cpu%u: @%s -> %llu (0x%llx)\n", cpu, entry.c_str(),
                    static_cast<unsigned long long>(*results[cpu]),
                    static_cast<unsigned long long>(*results[cpu]));
      } else {
        std::printf("cpu%u: @%s -> %s\n", cpu, entry.c_str(),
                    results[cpu].status().ToString().c_str());
      }
    }
    const policy::GuardStats guard_stats = (*policy)->engine().stats();
    const double elapsed = kernel.clock().MaxCycles();
    std::printf(
        "engine %s on %u cpus: %llu guard calls (%llu denied), %.0f "
        "virtual cycles elapsed, %.2f guards/kcycle\n",
        std::string((*loaded)->engine_name()).c_str(), cpus,
        static_cast<unsigned long long>(guard_stats.guard_calls),
        static_cast<unsigned long long>(guard_stats.denied),
        elapsed,
        elapsed > 0
            ? 1000.0 * static_cast<double>(guard_stats.guard_calls) / elapsed
            : 0.0);
    bool any_failed = false;
    for (const auto& r : results) any_failed = any_failed || !r.ok();
    return any_failed ? 1 : 0;
  }

  auto result = (*loaded)->Call(entry, call_args);
  if (!result.ok()) return Fail("@" + entry + ": " + result.status().ToString());

  const kir::InterpStats& stats = (*loaded)->exec_stats();
  const policy::GuardStats guard_stats = (*policy)->engine().stats();
  std::printf("@%s -> %llu (0x%llx)\n", entry.c_str(),
              static_cast<unsigned long long>(*result),
              static_cast<unsigned long long>(*result));
  std::printf("engine %s: %llu steps, %llu loads, %llu stores, %llu guard "
              "calls (%llu denied)\n",
              std::string((*loaded)->engine_name()).c_str(),
              static_cast<unsigned long long>(stats.steps),
              static_cast<unsigned long long>(stats.loads),
              static_cast<unsigned long long>(stats.stores),
              static_cast<unsigned long long>(guard_stats.guard_calls),
              static_cast<unsigned long long>(guard_stats.denied));
  return 0;
}

int FaultCamp(const std::vector<std::string>& args) {
  fault::CampaignConfig config;
  bool json = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--seed" && i + 1 < args.size()) {
      try {
        config.seed = std::stoull(args[++i], nullptr, 0);
      } catch (const std::exception&) {
        return Fail("bad seed");
      }
    } else if (arg == "--trials" && i + 1 < args.size()) {
      try {
        config.min_trials =
            static_cast<uint32_t>(std::stoul(args[++i], nullptr, 0));
      } catch (const std::exception&) {
        return Fail("bad trial count");
      }
    } else if (arg.rfind("--engine=", 0) == 0) {
      const std::string name = arg.substr(9);
      if (name == "interp") {
        config.engine = kernel::ExecEngine::kInterp;
      } else if (name == "bytecode") {
        config.engine = kernel::ExecEngine::kBytecode;
      } else {
        return Fail("unknown engine '" + name + "'");
      }
    } else if (arg.rfind("--recovery=", 0) == 0) {
      const std::string name = arg.substr(11);
      if (name == "quarantine") {
        config.recovery = resilience::RecoveryPolicy::kQuarantine;
      } else if (name == "restart") {
        config.recovery = resilience::RecoveryPolicy::kRestart;
      } else {
        return Fail("unknown recovery policy '" + name + "'");
      }
    } else {
      return Fail("unknown faultcamp option '" + arg + "'");
    }
  }
  const fault::CampaignReport report = fault::RunCampaign(config);
  if (json) {
    std::printf("%s\n", report.ToJson().c_str());
  } else {
    std::fputs(report.ToText().c_str(), stdout);
  }
  if (!report.ok()) {
    // A failing trial is exactly what the flight recorder exists for:
    // surface the most recent bundle (the store is reset per trial, so
    // this is the last incident the campaign saw) alongside the report.
    flight::PostmortemBundle bundle;
    if (flight::GlobalPostmortems().Latest(&bundle)) {
      std::fputs("--- latest postmortem bundle ---\n", stderr);
      std::fputs(bundle.ToText().c_str(), stderr);
    }
    return 1;
  }
  return 0;
}

int Forge(const std::vector<std::string>& args) {
  fault::ForgeConfig config;
  bool json = false;
  std::string replay_token;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--seed" && i + 1 < args.size()) {
      try {
        config.seed = std::stoull(args[++i], nullptr, 0);
      } catch (const std::exception&) {
        return Fail("bad seed");
      }
    } else if (arg == "--trials" && i + 1 < args.size()) {
      try {
        config.trials =
            static_cast<uint32_t>(std::stoul(args[++i], nullptr, 0));
      } catch (const std::exception&) {
        return Fail("bad trial count");
      }
    } else if (arg == "--jobs" && i + 1 < args.size()) {
      try {
        config.jobs =
            static_cast<uint32_t>(std::stoul(args[++i], nullptr, 0));
      } catch (const std::exception&) {
        return Fail("bad job count");
      }
    } else if (arg == "--replay" && i + 1 < args.size()) {
      replay_token = args[++i];
    } else if (arg == "--no-minimize") {
      config.minimize = false;
    } else if (arg.rfind("--policy=", 0) == 0) {
      const std::string name = arg.substr(9);
      if (name == "hardened") {
        config.policy = fault::PolicyFamily::kHardened;
      } else if (name == "weak") {
        config.policy = fault::PolicyFamily::kWeak;
      } else {
        return Fail("unknown policy family '" + name + "'");
      }
    } else if (arg.rfind("--engine=", 0) == 0) {
      const std::string name = arg.substr(9);
      if (name == "interp") {
        config.engine = kernel::ExecEngine::kInterp;
      } else if (name == "bytecode") {
        config.engine = kernel::ExecEngine::kBytecode;
      } else {
        return Fail("unknown engine '" + name + "'");
      }
    } else if (arg.rfind("--recovery=", 0) == 0) {
      const std::string name = arg.substr(11);
      if (name == "quarantine") {
        config.recovery = resilience::RecoveryPolicy::kQuarantine;
      } else if (name == "restart") {
        config.recovery = resilience::RecoveryPolicy::kRestart;
      } else {
        return Fail("unknown recovery policy '" + name + "'");
      }
    } else {
      return Fail("unknown forge option '" + arg + "'");
    }
  }

  if (!replay_token.empty()) {
    auto row = fault::ReplayForge(config, replay_token);
    if (!row.ok()) return Fail(row.status().ToString());
    std::printf("replay %s\n", replay_token.c_str());
    std::printf("  base %u, %zu step(s), kind %s, outcome: %s\n",
                row->input.base_seed, row->input.trail.size(),
                std::string(fault::FaultKindName(row->plan.kind)).c_str(),
                row->result.outcome.c_str());
    std::printf("  flagged path: %s, protected object: %s\n",
                row->reached_flagged ? "reached" : "not reached",
                row->scribbled ? "SCRIBBLED" : "intact");
    for (const std::string& failure : row->result.invariant_failures) {
      std::printf("  INVARIANT: %s\n", failure.c_str());
    }
    return row->result.invariant_failures.empty() ? 0 : 1;
  }

  const fault::ForgeReport report = fault::RunForge(config);
  if (json) {
    std::printf("%s\n", report.ToJson().c_str());
  } else {
    std::fputs(report.ToText().c_str(), stdout);
  }
  return report.ok() ? 0 : 1;
}

/// The documented bundle schema (DESIGN.md §14): every key that must be
/// present in a kop.flight.postmortem/v1 rendering.
const char* const kPostmortemSchemaKeys[] = {
    "\"schema\":\"kop.flight.postmortem/v1\"",
    "\"module\":",
    "\"engine\":",
    "\"reason\":",
    "\"what\":",
    "\"recovery\":",
    "\"cpu\":",
    "\"tsc\":",
    "\"violation\":",
    "\"vm\":",
    "\"journal\":{",
    "\"heap\":{",
    "\"restarts\":{",
    "\"policy\":",
    "\"heatmap\":[",
    "\"trace\":[",
};

int Postmortem(const std::vector<std::string>& args) {
  fault::CampaignConfig config;
  bool json = false;
  bool check_schema = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--check-schema") {
      check_schema = true;
    } else if (arg == "--seed" && i + 1 < args.size()) {
      try {
        config.seed = std::stoull(args[++i], nullptr, 0);
      } catch (const std::exception&) {
        return Fail("bad seed");
      }
    } else if (arg.rfind("--engine=", 0) == 0) {
      const std::string name = arg.substr(9);
      if (name == "interp") {
        config.engine = kernel::ExecEngine::kInterp;
      } else if (name == "bytecode") {
        config.engine = kernel::ExecEngine::kBytecode;
      } else {
        return Fail("unknown engine '" + name + "'");
      }
    } else if (arg.rfind("--recovery=", 0) == 0) {
      const std::string name = arg.substr(11);
      if (name == "quarantine") {
        config.recovery = resilience::RecoveryPolicy::kQuarantine;
      } else if (name == "restart") {
        config.recovery = resilience::RecoveryPolicy::kRestart;
      } else {
        return Fail("unknown recovery policy '" + name + "'");
      }
    } else {
      return Fail("unknown postmortem option '" + arg + "'");
    }
  }

  auto bundle = fault::RunPostmortemDemo(config);
  if (!bundle.ok()) return Fail(bundle.status().ToString());
  const std::string rendered = bundle->ToJson();
  if (json) {
    std::printf("%s\n", rendered.c_str());
  } else {
    std::fputs(bundle->ToText().c_str(), stdout);
  }
  if (check_schema) {
    int missing = 0;
    for (const char* key : kPostmortemSchemaKeys) {
      if (rendered.find(key) == std::string::npos) {
        std::fprintf(stderr, "kopcc: postmortem bundle missing %s\n", key);
        ++missing;
      }
    }
    if (missing != 0) return 1;
    std::fprintf(stderr, "kopcc: postmortem schema OK (%zu keys)\n",
                 sizeof(kPostmortemSchemaKeys) /
                     sizeof(kPostmortemSchemaKeys[0]));
  }
  return 0;
}

int Stats(const std::vector<std::string>& args) {
  bool watch = false;
  bool prom = false;
  for (const std::string& arg : args) {
    if (arg == "--watch") {
      watch = true;
    } else if (arg == "--prom") {
      prom = true;
    } else {
      return Fail("unknown stats option '" + arg + "'");
    }
  }

  // Canned guarded workload: the ringbuf corpus module under a
  // default-allow policy, so every push/pop exercises the guard path and
  // the span seams (module call, engine dispatch, guard decision,
  // journal commit).
  kernel::Kernel kernel;
  auto policy = policy::PolicyModule::Insert(&kernel, nullptr,
                                             policy::PolicyMode::kDefaultAllow);
  if (!policy.ok()) return Fail(policy.status().ToString());
  signing::Keyring keyring;
  keyring.Trust(signing::SigningKey::DevelopmentKey());
  kernel::ModuleLoader loader(&kernel, std::move(keyring));
  auto compiled = transform::CompileModuleText(kirmods::RingbufSource());
  if (!compiled.ok()) return Fail(compiled.status().ToString());
  auto loaded = loader.Insmod(
      signing::SignModule(compiled->text, compiled->attestation,
                          signing::SigningKey::DevelopmentKey()));
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  kernel::LoadedModule* mod = *loaded;
  if (auto init = mod->Call("rb_init", {}); !init.ok()) {
    return Fail(init.status().ToString());
  }

  uint64_t round = 0;
  const auto frame = [&]() -> std::string {
    // A burst per frame so --watch shows the counters moving.
    for (uint64_t i = 0; i < 16; ++i) {
      (void)mod->Call("rb_push", {round * 16 + i});
    }
    for (int i = 0; i < 8; ++i) (void)mod->Call("rb_pop", {});
    ++round;
    if (prom) {
      return trace::GlobalMetrics().RenderPrometheus() +
             trace::GlobalSpans().RenderPrometheus();
    }
    return trace::GlobalMetrics().RenderText() + "\n" +
           trace::GlobalSpans().RenderText();
  };

  if (!watch) {
    std::fputs(frame().c_str(), stdout);
    return 0;
  }
  for (;;) {
    const std::string rendered = frame();
    std::printf("\033[2J\033[H%s", rendered.c_str());
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(1));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Fail(
        "usage: kopcc compile <in.kir> [-o out.kko] [options] "
        "[--elide|--no-elide] | "
        "inspect [--sites|--bytecode] <in.kko> | verify <in.kko> | "
        "check <in.kir|in.kko> [--json] [--as-shipped] | "
        "check --corpus [--json] | "
        "run <in.kko> [--engine=interp|bytecode] [--entry=fn] [--cpus=N] "
        "[args...] | "
        "faultcamp [--seed N] [--trials N] [--json] "
        "[--engine=...] [--recovery=...] | "
        "forge [--seed N] [--trials N] [--jobs N] [--json] "
        "[--policy=hardened|weak] [--no-minimize] [--engine=...] "
        "[--recovery=...] [--replay <token>] | "
        "postmortem [--json] [--check-schema] [--seed N] [--engine=...] "
        "[--recovery=...] | "
        "stats [--watch] [--prom]");
  }
  const std::string command = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "compile") return Compile(args);
  if (command == "inspect") return Inspect(args);
  if (command == "verify") return Verify(args);
  if (command == "check") return Check(args);
  if (command == "run") return Run(args);
  if (command == "faultcamp") return FaultCamp(args);
  if (command == "forge") return Forge(args);
  if (command == "postmortem") return Postmortem(args);
  if (command == "stats") return Stats(args);
  return Fail("unknown command '" + command + "'");
}
